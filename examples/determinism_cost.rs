//! The price of determinism: what does flipping on deterministic kernels
//! cost *your* model on *your* GPU?
//!
//! Uses the calibrated kernel cost model to compare default vs
//! deterministic training time for the paper's ten profiled networks and
//! the filter-size sweep, and prints the kernel-level explanation (which
//! algorithms the autotuner loses access to).
//!
//! ```text
//! cargo run --release -p ns-examples --bin determinism_cost [network]
//! ```

use hwsim::{select_conv_kernels, Device, ExecutionMode, WorkloadOp};
use noisescope::experiments::cost;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "ResNet50".into());

    println!("== Determinism overhead across models (batch 64) ==");
    let all = cost::fig8a(64);
    for p in all.iter().filter(|p| p.device == "V100") {
        let bar = "#".repeat(((p.overhead_pct - 100.0) / 5.0).max(0.5) as usize + 1);
        println!("{:16} {:7.1}%  {}", p.workload, p.overhead_pct, bar);
    }

    println!("\n== Filter-size sensitivity (medium CNN) ==");
    for p in cost::fig8b(64) {
        println!("{:16} {:8} {:7.1}%", p.workload, p.device, p.overhead_pct);
    }

    // Kernel-level explanation for one network.
    let descs = nnet::arch::profiled_networks(64);
    let desc = descs
        .iter()
        .find(|d| d.name.eq_ignore_ascii_case(&which))
        .unwrap_or(&descs[5]);
    println!("\n== Why: kernel selection for {} on V100 ==", desc.name);
    let mut shown = 0;
    for op in &desc.ops {
        if let WorkloadOp::Conv { geom, batch } = op {
            let nd = select_conv_kernels(geom, *batch, &Device::v100(), ExecutionMode::Default);
            let det =
                select_conv_kernels(geom, *batch, &Device::v100(), ExecutionMode::Deterministic);
            if nd.forward.algorithm != det.forward.algorithm
                || nd.weight_grad.algorithm != det.weight_grad.algorithm
            {
                println!(
                    "conv {}x{} {:>4}->{:<4}: fwd {:?} -> {:?}, wgrad {:?} -> {:?} ({:.0}% slower)",
                    geom.k,
                    geom.k,
                    geom.in_c,
                    geom.out_c,
                    nd.forward.algorithm,
                    det.forward.algorithm,
                    nd.weight_grad.algorithm,
                    det.weight_grad.algorithm,
                    100.0 * (det.total_time_s() / nd.total_time_s() - 1.0),
                );
                shown += 1;
                if shown >= 8 {
                    println!("... ({} convolutions total)", desc.ops.len());
                    break;
                }
            }
        }
    }
    println!(
        "\nDeterministic mode forfeits Winograd/FFT transforms and atomic split-K\n\
         accumulation; the penalty grows with filter size and is worst on Pascal."
    );
}
