//! Offline stand-in for `serde_derive` (see `third_party/README.md`).
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! type shapes this workspace uses — non-generic structs with named fields
//! and non-generic enums with unit, newtype, tuple, and struct variants —
//! by walking the raw `proc_macro` token stream (no `syn`/`quote`
//! available offline) and emitting the impl as source text.
//!
//! Encodings match serde's defaults, so JSON produced here is
//! interchangeable with real serde_json output for these shapes:
//! struct → object; unit variant → `"Name"`; newtype variant →
//! `{"Name": value}`; tuple variant → `{"Name": [..]}`; struct variant →
//! `{"Name": {..}}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum TypeDef {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Consumes one attribute (`#[...]` or `#![...]`) if present.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match (toks.get(i), toks.get(i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => return i,
        }
    }
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, ...) if present.
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Advances past a type (or any token run) up to a top-level `,`,
/// tracking `<...>` nesting; returns the index of the `,` or end.
fn skip_to_top_level_comma(toks: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth: i32 = 0;
    while i < toks.len() {
        if let TokenTree::Punct(p) = &toks[i] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Parses `name: Type, ...` named-field lists, returning the field names.
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs(&toks, i);
        i = skip_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let TokenTree::Ident(name) = &toks[i] else {
            panic!("serde_derive stub: expected field name, got {:?}", toks[i]);
        };
        fields.push(name.to_string());
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive stub: expected ':' after field, got {other:?}"),
        }
        i = skip_to_top_level_comma(&toks, i);
        i += 1; // past the comma (or end)
    }
    fields
}

/// Counts the top-level comma-separated items of a tuple-variant payload.
fn count_tuple_fields(group: TokenStream) -> usize {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut n = 0;
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs(&toks, i);
        i = skip_vis(&toks, i);
        let end = skip_to_top_level_comma(&toks, i);
        if end > i {
            n += 1;
        }
        i = end + 1;
    }
    n
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs(&toks, i);
        if i >= toks.len() {
            break;
        }
        let TokenTree::Ident(name) = &toks[i] else {
            panic!(
                "serde_derive stub: expected variant name, got {:?}",
                toks[i]
            );
        };
        let name = name.to_string();
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantShape::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                VariantShape::Tuple(n)
            }
            _ => VariantShape::Unit,
        };
        // Skip a possible explicit discriminant, then the trailing comma.
        i = skip_to_top_level_comma(&toks, i);
        i += 1;
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_typedef(input: TokenStream) -> TypeDef {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&toks, 0);
    i = skip_vis(&toks, i);
    let TokenTree::Ident(kw) = &toks[i] else {
        panic!(
            "serde_derive stub: expected struct/enum keyword, got {:?}",
            toks[i]
        );
    };
    let kw = kw.to_string();
    i += 1;
    let TokenTree::Ident(name) = &toks[i] else {
        panic!("serde_derive stub: expected type name, got {:?}", toks[i]);
    };
    let name = name.to_string();
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic types are not supported (type {name})");
        }
    }
    let Some(TokenTree::Group(body)) = toks.get(i) else {
        panic!("serde_derive stub: expected type body for {name} (tuple/unit structs unsupported)");
    };
    match kw.as_str() {
        "struct" => {
            assert!(
                body.delimiter() == Delimiter::Brace,
                "serde_derive stub: only brace structs are supported (type {name})"
            );
            TypeDef::Struct {
                name,
                fields: parse_named_fields(body.stream()),
            }
        }
        "enum" => TypeDef::Enum {
            name,
            variants: parse_variants(body.stream()),
        },
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    }
}

/// Derives the workspace's simplified `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_typedef(input);
    let src = match def {
        TypeDef::Struct { name, fields } => {
            let mut inserts = String::new();
            for f in &fields {
                inserts.push_str(&format!(
                    "obj.insert(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut obj = ::std::collections::BTreeMap::new();\n\
                         {inserts}\
                         ::serde::Value::Obj(obj)\n\
                     }}\n\
                 }}"
            )
        }
        TypeDef::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => \
                         ::serde::Value::Str(::std::string::String::from(\"{vname}\")),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(x0) => {{\n\
                             let mut obj = ::std::collections::BTreeMap::new();\n\
                             obj.insert(::std::string::String::from(\"{vname}\"), \
                                        ::serde::Serialize::to_value(x0));\n\
                             ::serde::Value::Obj(obj)\n\
                         }}\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{\n\
                                 let mut obj = ::std::collections::BTreeMap::new();\n\
                                 obj.insert(::std::string::String::from(\"{vname}\"), \
                                            ::serde::Value::Arr(vec![{}]));\n\
                                 ::serde::Value::Obj(obj)\n\
                             }}\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds = fields.join(", ");
                        let mut inserts = String::new();
                        for f in fields {
                            inserts.push_str(&format!(
                                "inner.insert(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{\n\
                                 let mut inner = ::std::collections::BTreeMap::new();\n\
                                 {inserts}\
                                 let mut obj = ::std::collections::BTreeMap::new();\n\
                                 obj.insert(::std::string::String::from(\"{vname}\"), \
                                            ::serde::Value::Obj(inner));\n\
                                 ::serde::Value::Obj(obj)\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse()
        .expect("serde_derive stub: generated invalid Serialize impl")
}

/// Derives the workspace's simplified `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_typedef(input);
    let src = match def {
        TypeDef::Struct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(\
                         obj.get(\"{f}\").unwrap_or(&::serde::Value::Null))?,\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let obj = __v.as_object().ok_or_else(|| \
                             ::serde::DeError::expected(\"object\", \"{name}\"))?;\n\
                         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        TypeDef::Enum { name, variants } => {
            let unit: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .collect();
            let payload: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.shape, VariantShape::Unit))
                .collect();

            let mut body = String::new();
            if !unit.is_empty() {
                let mut arms = String::new();
                for v in &unit {
                    let vname = &v.name;
                    arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    ));
                }
                body.push_str(&format!(
                    "if let ::std::option::Option::Some(s) = __v.as_str() {{\n\
                         return match s {{\n{arms}\
                             other => ::std::result::Result::Err(::serde::DeError::msg(\
                                 format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                         }};\n\
                     }}\n"
                ));
            }
            if payload.is_empty() {
                body.push_str(&format!(
                    "::std::result::Result::Err(\
                         ::serde::DeError::expected(\"variant string\", \"{name}\"))\n"
                ));
            } else {
                let mut arms = String::new();
                for v in &payload {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => unreachable!(),
                        VariantShape::Tuple(1) => arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok(\
                                 {name}::{vname}(::serde::Deserialize::from_value(val)?)),\n"
                        )),
                        VariantShape::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&arr[{k}])?"))
                                .collect();
                            arms.push_str(&format!(
                                "\"{vname}\" => {{\n\
                                     let arr = val.as_array().ok_or_else(|| \
                                         ::serde::DeError::expected(\"array\", \"{name}\"))?;\n\
                                     if arr.len() != {n} {{\n\
                                         return ::std::result::Result::Err(\
                                             ::serde::DeError::expected(\
                                                 \"array of arity {n}\", \"{name}\"));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{vname}({}))\n\
                                 }}\n",
                                elems.join(", ")
                            ));
                        }
                        VariantShape::Struct(fields) => {
                            let mut inits = String::new();
                            for f in fields {
                                inits.push_str(&format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                         inner.get(\"{f}\").unwrap_or(&::serde::Value::Null))?,\n"
                                ));
                            }
                            arms.push_str(&format!(
                                "\"{vname}\" => {{\n\
                                     let inner = val.as_object().ok_or_else(|| \
                                         ::serde::DeError::expected(\"object\", \"{name}\"))?;\n\
                                     ::std::result::Result::Ok({name}::{vname} {{\n{inits}}})\n\
                                 }}\n"
                            ));
                        }
                    }
                }
                body.push_str(&format!(
                    "let obj = __v.as_object().ok_or_else(|| \
                         ::serde::DeError::expected(\"object or string\", \"{name}\"))?;\n\
                     let (key, val) = obj.iter().next().ok_or_else(|| \
                         ::serde::DeError::expected(\"single-key object\", \"{name}\"))?;\n\
                     match key.as_str() {{\n{arms}\
                         other => ::std::result::Result::Err(::serde::DeError::msg(\
                             format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                     }}\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse()
        .expect("serde_derive stub: generated invalid Deserialize impl")
}
