//! The training loop.
//!
//! Wires together the four algorithmic noise sources (initialization is the
//! model's job; the trainer owns shuffling, augmentation and the step
//! counter that addresses dropout streams) and the implementation noise
//! carried by the [`hwsim::ExecutionContext`].

use crate::checkpoint::Checkpoint;
use crate::loss::{argmax_predictions, binary_predictions, sigmoid_bce, softmax_cross_entropy};
use crate::model::Network;
use crate::optim::{Sgd, SgdConfig};
use crate::schedule::LrSchedule;
use detrand::{shuffle_in_place, Philox, StreamId, StreamRng};
use hwsim::ExecutionContext;
use nstensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a training run could not produce a usable report.
///
/// Training failures are *data*, not panics: the supervision layer in
/// `noisescope` catches these, retries deterministically, and records the
/// replica as degraded instead of taking the whole fleet down.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// A non-finite loss, gradient or weight was observed.
    Diverged {
        /// Epoch in which divergence was detected.
        epoch: u32,
        /// Global optimizer-step index at detection.
        step: u64,
        /// The offending loss value (NaN when the loss itself was finite
        /// but the update was not).
        loss: f32,
    },
    /// The execution context reported an injected or simulated hardware
    /// fault (e.g. a kernel-launch failure from `hwsim` chaos mode).
    Fault {
        /// Epoch in which the fault surfaced.
        epoch: u32,
        /// Global optimizer-step index at detection.
        step: u64,
        /// Human-readable fault description.
        detail: String,
    },
    /// The run took no optimizer steps (zero epochs or an empty dataset),
    /// so there is no report to return.
    NoSteps,
    /// An accuracy/metric helper was handed the wrong target kind.
    WrongTargets {
        /// Target kind the helper requires.
        expected: &'static str,
        /// Target kind it was given.
        found: &'static str,
    },
    /// A resume checkpoint does not match the run it was applied to.
    BadCheckpoint {
        /// What disagreed.
        detail: String,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Diverged { epoch, step, loss } => {
                write!(f, "diverged at epoch {epoch} step {step} (loss {loss})")
            }
            TrainError::Fault {
                epoch,
                step,
                detail,
            } => {
                write!(f, "hardware fault at epoch {epoch} step {step}: {detail}")
            }
            TrainError::NoSteps => write!(f, "no optimizer steps taken"),
            TrainError::WrongTargets { expected, found } => {
                write!(f, "expected {expected} targets, found {found}")
            }
            TrainError::BadCheckpoint { detail } => {
                write!(f, "checkpoint mismatch: {detail}")
            }
        }
    }
}

impl std::error::Error for TrainError {}

/// Supervision targets.
#[derive(Debug, Clone)]
pub enum Targets {
    /// One class index per sample (softmax cross-entropy).
    Classes(Vec<u32>),
    /// `[N, A]` binary attribute matrix (sigmoid BCE, CelebA-style).
    Binary(Tensor),
}

impl Targets {
    /// Number of samples covered.
    pub fn len(&self) -> usize {
        match self {
            Targets::Classes(v) => v.len(),
            Targets::Binary(t) => t.shape().dim(0),
        }
    }

    /// Whether there are no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn gather(&self, idx: &[usize]) -> Targets {
        match self {
            Targets::Classes(v) => Targets::Classes(idx.iter().map(|&i| v[i]).collect()),
            Targets::Binary(t) => {
                let a = t.shape().dim(1);
                let mut data = Vec::with_capacity(idx.len() * a);
                for &i in idx {
                    data.extend_from_slice(&t.as_slice()[i * a..(i + 1) * a]);
                }
                Targets::Binary(
                    Tensor::from_vec(Shape::of(&[idx.len(), a]), data).expect("target gather"),
                )
            }
        }
    }
}

/// An in-memory supervised dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Features: `[N, C, H, W]` images or `[N, D]` vectors.
    pub x: Tensor,
    /// Targets aligned with the first axis of `x`.
    pub targets: Targets,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if the sample counts disagree.
    pub fn new(x: Tensor, targets: Targets) -> Self {
        assert_eq!(x.shape().dim(0), targets.len(), "sample count mismatch");
        Self { x, targets }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.shape().dim(0)
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of one sample in scalars.
    pub fn sample_len(&self) -> usize {
        self.x.len() / self.len().max(1)
    }

    /// Gathers the samples at `idx` into a batch.
    pub fn gather(&self, idx: &[usize]) -> Batch {
        let sl = self.sample_len();
        let mut data = Vec::with_capacity(idx.len() * sl);
        for &i in idx {
            data.extend_from_slice(&self.x.as_slice()[i * sl..(i + 1) * sl]);
        }
        let mut dims = vec![idx.len()];
        dims.extend_from_slice(&self.x.shape().dims()[1..]);
        Batch {
            x: Tensor::from_vec(Shape::of(&dims), data).expect("batch gather"),
            targets: self.targets.gather(idx),
        }
    }
}

/// One minibatch.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Features.
    pub x: Tensor,
    /// Targets.
    pub targets: Targets,
}

/// Stochastic data augmentation applied per sample during training.
pub trait Augment: std::fmt::Debug {
    /// Mutates one sample in place. `dims` are the sample's dimensions
    /// (e.g. `[C, H, W]`); `rng` is the run's augmentation stream.
    fn apply(&self, sample: &mut [f32], dims: &[usize], rng: &mut StreamRng);
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: u32,
    /// Minibatch size.
    pub batch_size: usize,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
    /// Optimizer configuration.
    pub sgd: SgdConfig,
    /// Whether to reshuffle the training set every epoch (an algorithmic
    /// noise source; disabled for the paper's Fig. 6 ordering experiment).
    pub shuffle: bool,
    /// When set, the shuffle stream is drawn from this seed instead of the
    /// run's algorithmic root — lets an experiment vary *only* the data
    /// order while every other algorithmic factor stays fixed (the paper's
    /// Fig. 6 design).
    pub shuffle_seed_override: Option<u64>,
    /// Simulated data-parallel workers (1 = single device). Each batch is
    /// sharded across workers; shard gradients are combined through the
    /// device's `Misc` reducer, so a nondeterministic interconnect
    /// (arrival-order all-reduce) injects additional implementation noise —
    /// the distributed-training extension of the paper's §6.
    pub data_parallel_workers: usize,
    /// When set, the augmentation stream derives from this seed instead of
    /// the run's algorithmic root (vary *only* augmentation).
    pub augment_seed_override: Option<u64>,
    /// When set, stochastic layers (dropout) derive their streams from
    /// this seed instead of the run's algorithmic root (vary *only* the
    /// stochastic layers).
    pub dropout_seed_override: Option<u64>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 32,
            schedule: LrSchedule::Constant { lr: 0.05 },
            sgd: SgdConfig::default(),
            shuffle: true,
            shuffle_seed_override: None,
            data_parallel_workers: 1,
            augment_seed_override: None,
            dropout_seed_override: None,
        }
    }
}

/// Per-epoch training telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Total optimizer steps taken.
    pub steps: u64,
}

/// Resume/checkpoint controls for [`Trainer::fit_with`].
///
/// The default (`FitOptions::default()`) is the zero-cost path: no resume,
/// no checkpointing, byte-identical to what [`Trainer::fit`] did before
/// checkpointing existed.
#[derive(Default)]
pub struct FitOptions<'a> {
    /// Resume from this snapshot instead of starting at epoch 0.
    pub resume: Option<&'a Checkpoint>,
    /// Emit a checkpoint to `sink` every N completed epochs (0 disables).
    pub checkpoint_every_epochs: u32,
    /// Receives each emitted checkpoint (typically: persist it to disk).
    pub sink: Option<&'a mut dyn FnMut(&Checkpoint)>,
    /// Invoke `progress` after every N completed optimizer steps
    /// (0 disables). Pure observation: the hook sees the global step
    /// count and cannot perturb training, so arming it is bit-free.
    pub progress_every_steps: u32,
    /// Receives the global step count at each progress interval
    /// (typically: emit a liveness heartbeat to a supervisor).
    pub progress: Option<&'a mut dyn FnMut(u64)>,
}

impl fmt::Debug for FitOptions<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FitOptions")
            .field("resume", &self.resume.map(|c| c.epochs_done))
            .field("checkpoint_every_epochs", &self.checkpoint_every_epochs)
            .field("sink", &self.sink.is_some())
            .field("progress_every_steps", &self.progress_every_steps)
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

/// The training loop driver.
#[derive(Debug)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(config: TrainConfig) -> Self {
        assert!(config.batch_size > 0, "batch size must be positive");
        assert!(
            config.data_parallel_workers > 0,
            "worker count must be positive"
        );
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> TrainConfig {
        self.config
    }

    /// Trains `net` on `data`.
    ///
    /// `algo` is the run's algorithmic root: shuffling uses its `SHUFFLE`
    /// stream, augmentation its `AUGMENT` stream, dropout layers their own
    /// streams. `exec` carries the device's accumulation-order semantics.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Diverged`] on a non-finite loss, gradient or
    /// weight, [`TrainError::Fault`] when the execution context reports an
    /// injected hardware fault, and [`TrainError::NoSteps`] when the run
    /// takes no optimizer steps.
    pub fn fit(
        &self,
        net: &mut Network,
        data: &Dataset,
        exec: &mut ExecutionContext,
        algo: &Philox,
        augment: Option<&dyn Augment>,
    ) -> Result<TrainReport, TrainError> {
        self.fit_with(net, data, exec, algo, augment, FitOptions::default())
    }

    /// [`Trainer::fit`] with checkpoint/resume control.
    ///
    /// With `opts.resume` set, training continues from the snapshot's
    /// epoch boundary; because a replica is a pure function of its seeds
    /// and the checkpoint captures every RNG cursor byte-exactly, the
    /// resumed continuation is bitwise identical to the uninterrupted run.
    /// With `opts.checkpoint_every_epochs > 0`, a [`Checkpoint`] is handed
    /// to `opts.sink` at each matching epoch boundary.
    ///
    /// # Errors
    ///
    /// As [`Trainer::fit`], plus [`TrainError::BadCheckpoint`] when a
    /// resume snapshot does not fit the run's model or dataset.
    pub fn fit_with(
        &self,
        net: &mut Network,
        data: &Dataset,
        exec: &mut ExecutionContext,
        algo: &Philox,
        augment: Option<&dyn Augment>,
        mut opts: FitOptions<'_>,
    ) -> Result<TrainReport, TrainError> {
        let cfg = self.config;
        let mut opt = Sgd::new(cfg.sgd);
        let mut shuffle_rng = match cfg.shuffle_seed_override {
            Some(seed) => Philox::from_seed(seed).stream(StreamId::SHUFFLE),
            None => algo.stream(StreamId::SHUFFLE),
        };
        let mut augment_rng = match cfg.augment_seed_override {
            Some(seed) => Philox::from_seed(seed).stream(StreamId::AUGMENT),
            None => algo.stream(StreamId::AUGMENT),
        };
        // Stochastic layers read their streams from the root handed to
        // `forward`; substituting it isolates dropout as a noise source.
        let forward_root = cfg
            .dropout_seed_override
            .map(Philox::from_seed)
            .unwrap_or(*algo);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut step: u64 = 0;
        let mut start_epoch: u32 = 0;
        let mut epoch_losses = Vec::with_capacity(cfg.epochs as usize);
        let sample_dims: Vec<usize> = data.x.shape().dims()[1..].to_vec();

        if let Some(ck) = opts.resume {
            apply_checkpoint(
                ck,
                net,
                &mut opt,
                exec,
                &mut shuffle_rng,
                &mut augment_rng,
                &mut order,
            )?;
            start_epoch = ck.epochs_done.min(cfg.epochs);
            step = ck.steps;
            epoch_losses = ck.epoch_losses.clone();
        }

        for epoch in start_epoch..cfg.epochs {
            if cfg.shuffle {
                shuffle_in_place(&mut shuffle_rng, &mut order);
            }
            let lr = cfg.schedule.lr_at(epoch);
            let mut loss_sum = 0f64;
            let mut batches = 0u32;
            for chunk in order.chunks(cfg.batch_size) {
                exec.begin_step(step);
                let mut batch = data.gather(chunk);
                if let Some(aug) = augment {
                    let sl = data.sample_len();
                    for s in 0..chunk.len() {
                        aug.apply(
                            &mut batch.x.as_mut_slice()[s * sl..(s + 1) * sl],
                            &sample_dims,
                            &mut augment_rng,
                        );
                    }
                }
                let loss = if cfg.data_parallel_workers > 1 {
                    train_step_data_parallel(
                        net,
                        &batch,
                        chunk.len(),
                        cfg.data_parallel_workers,
                        exec,
                        &forward_root,
                        step,
                    )
                } else {
                    let logits = net.forward(batch.x, exec, &forward_root, step, true);
                    let (loss, dlogits) = match &batch.targets {
                        Targets::Classes(labels) => softmax_cross_entropy(&logits, labels),
                        Targets::Binary(t) => sigmoid_bce(&logits, t),
                    };
                    net.backward(dlogits, exec);
                    loss
                };
                if let Some(ev) = exec.take_fault() {
                    exec.disarm_chaos();
                    return Err(TrainError::Fault {
                        epoch,
                        step,
                        detail: ev.to_string(),
                    });
                }
                if !loss.is_finite() {
                    exec.disarm_chaos();
                    return Err(TrainError::Diverged { epoch, step, loss });
                }
                if !opt.step(net, lr) {
                    exec.disarm_chaos();
                    return Err(TrainError::Diverged { epoch, step, loss });
                }
                loss_sum += loss as f64;
                batches += 1;
                step += 1;
                if opts.progress_every_steps > 0
                    && step.is_multiple_of(opts.progress_every_steps as u64)
                {
                    if let Some(progress) = opts.progress.as_mut() {
                        progress(step);
                    }
                }
            }
            epoch_losses.push((loss_sum / batches.max(1) as f64) as f32);
            if opts.checkpoint_every_epochs > 0 && (epoch + 1) % opts.checkpoint_every_epochs == 0 {
                if let Some(sink) = opts.sink.as_mut() {
                    let ck = capture_checkpoint(
                        epoch + 1,
                        step,
                        &epoch_losses,
                        net,
                        &opt,
                        exec,
                        &shuffle_rng,
                        &augment_rng,
                        &order,
                    );
                    sink(&ck);
                }
            }
        }
        // Training is over: stop injecting faults so evaluation passes run
        // on clean semantics even when the same context is reused.
        exec.disarm_chaos();
        if step == 0 {
            return Err(TrainError::NoSteps);
        }
        let mut weights_finite = true;
        net.visit_params(&mut |p, _| {
            weights_finite &= p.as_slice().iter().all(|v| v.is_finite());
        });
        if !weights_finite {
            return Err(TrainError::Diverged {
                epoch: cfg.epochs,
                step,
                loss: f32::NAN,
            });
        }
        Ok(TrainReport {
            epoch_losses,
            steps: step,
        })
    }
}

/// Builds a [`Checkpoint`] from live training state at an epoch boundary.
#[allow(clippy::too_many_arguments)]
fn capture_checkpoint(
    epochs_done: u32,
    steps: u64,
    epoch_losses: &[f32],
    net: &mut Network,
    opt: &Sgd,
    exec: &ExecutionContext,
    shuffle_rng: &StreamRng,
    augment_rng: &StreamRng,
    order: &[usize],
) -> Checkpoint {
    Checkpoint {
        epochs_done,
        steps,
        epoch_losses: epoch_losses.to_vec(),
        weights: net.flat_weights(),
        velocity: opt.velocity().to_vec(),
        shuffle_rng: shuffle_rng.snapshot(),
        augment_rng: augment_rng.snapshot(),
        exec: exec.snapshot(),
        order: order.iter().map(|&i| i as u32).collect(),
    }
}

/// Applies a resume [`Checkpoint`] to live training state, validating that
/// it matches the model and dataset it is being applied to.
fn apply_checkpoint(
    ck: &Checkpoint,
    net: &mut Network,
    opt: &mut Sgd,
    exec: &mut ExecutionContext,
    shuffle_rng: &mut StreamRng,
    augment_rng: &mut StreamRng,
    order: &mut Vec<usize>,
) -> Result<(), TrainError> {
    net.set_flat_weights(&ck.weights)
        .map_err(|expected| TrainError::BadCheckpoint {
            detail: format!(
                "checkpoint has {} weights, model expects {expected}",
                ck.weights.len()
            ),
        })?;
    if ck.order.len() != order.len() {
        return Err(TrainError::BadCheckpoint {
            detail: format!(
                "checkpoint order covers {} samples, dataset has {}",
                ck.order.len(),
                order.len()
            ),
        });
    }
    if ck.exec.reducers.len() != hwsim::OpClass::ALL.len() {
        return Err(TrainError::BadCheckpoint {
            detail: format!(
                "checkpoint has {} reducer states, context expects {}",
                ck.exec.reducers.len(),
                hwsim::OpClass::ALL.len()
            ),
        });
    }
    opt.set_velocity(ck.velocity.clone());
    *shuffle_rng = StreamRng::from_snapshot(ck.shuffle_rng);
    *augment_rng = StreamRng::from_snapshot(ck.augment_rng);
    *order = ck.order.iter().map(|&i| i as usize).collect();
    exec.restore(&ck.exec);
    Ok(())
}

/// One simulated data-parallel training step: shard the batch, compute
/// per-worker gradients, and all-reduce them through the device's `Misc`
/// reducer (arrival-order combination on nondeterministic interconnects).
///
/// Returns the mean loss across shards; parameter gradients are left in
/// the network for the optimizer, exactly like the single-device path.
fn train_step_data_parallel(
    net: &mut Network,
    batch: &Batch,
    batch_len: usize,
    workers: usize,
    exec: &mut ExecutionContext,
    algo: &Philox,
    step: u64,
) -> f32 {
    let shard_size = batch_len.div_ceil(workers);
    let idx: Vec<usize> = (0..batch_len).collect();
    let sl = batch.x.len() / batch_len.max(1);
    let mut shard_grads: Vec<Vec<f32>> = Vec::new();
    let mut shard_weights: Vec<f32> = Vec::new();
    let mut loss_sum = 0f64;
    let mut shards = 0u32;

    for shard_idx in idx.chunks(shard_size) {
        // Materialize the shard.
        let mut data = Vec::with_capacity(shard_idx.len() * sl);
        for &i in shard_idx {
            data.extend_from_slice(&batch.x.as_slice()[i * sl..(i + 1) * sl]);
        }
        let mut dims = vec![shard_idx.len()];
        dims.extend_from_slice(&batch.x.shape().dims()[1..]);
        let x = Tensor::from_vec(Shape::of(&dims), data).expect("shard gather");
        let targets = batch.targets.gather(shard_idx);

        let logits = net.forward(x, exec, algo, step, true);
        let (loss, dlogits) = match &targets {
            Targets::Classes(labels) => softmax_cross_entropy(&logits, labels),
            Targets::Binary(t) => sigmoid_bce(&logits, t),
        };
        net.backward(dlogits, exec);
        loss_sum += loss as f64;
        shards += 1;

        // Snapshot this worker's gradients.
        let mut flat = Vec::new();
        net.visit_params(&mut |_, g| flat.extend_from_slice(g.as_slice()));
        shard_grads.push(flat);
        shard_weights.push(shard_idx.len() as f32 / batch_len as f32);
    }

    // All-reduce: combine per-worker gradients element-wise through the
    // device's reducer — the combination order is where interconnect
    // nondeterminism enters.
    let red = exec.reducer(hwsim::OpClass::Misc);
    let n_params = shard_grads[0].len();
    let mut combined = vec![0f32; n_params];
    let mut scratch = vec![0f32; shard_grads.len()];
    for i in 0..n_params {
        for (s, g) in shard_grads.iter().enumerate() {
            scratch[s] = g[i] * shard_weights[s];
        }
        combined[i] = red.sum(&scratch);
    }
    // Write the reduced gradients back for the optimizer.
    let mut offset = 0usize;
    net.visit_params(&mut |_, g| {
        let len = g.len();
        g.as_mut_slice()
            .copy_from_slice(&combined[offset..offset + len]);
        offset += len;
    });
    (loss_sum / shards.max(1) as f64) as f32
}

/// Runs inference over a dataset in batches; returns class predictions.
pub fn predict_classes(
    net: &mut Network,
    data: &Dataset,
    exec: &mut ExecutionContext,
    algo: &Philox,
    batch_size: usize,
) -> Vec<u32> {
    let idx: Vec<usize> = (0..data.len()).collect();
    let mut preds = Vec::with_capacity(data.len());
    for chunk in idx.chunks(batch_size.max(1)) {
        let batch = data.gather(chunk);
        let logits = net.forward(batch.x, exec, algo, u64::MAX, false);
        preds.extend(argmax_predictions(&logits));
    }
    preds
}

/// Runs inference; returns flat `[N × A]` binary attribute predictions.
pub fn predict_binary(
    net: &mut Network,
    data: &Dataset,
    exec: &mut ExecutionContext,
    algo: &Philox,
    batch_size: usize,
) -> Vec<u8> {
    let idx: Vec<usize> = (0..data.len()).collect();
    let mut preds = Vec::new();
    for chunk in idx.chunks(batch_size.max(1)) {
        let batch = data.gather(chunk);
        let logits = net.forward(batch.x, exec, algo, u64::MAX, false);
        preds.extend(binary_predictions(&logits));
    }
    preds
}

/// Classification accuracy of predictions against a dataset's labels.
///
/// # Errors
///
/// Returns [`TrainError::WrongTargets`] when the dataset is not
/// class-labelled.
///
/// # Panics
///
/// Panics if prediction and label counts mismatch.
pub fn accuracy(preds: &[u32], data: &Dataset) -> Result<f64, TrainError> {
    match &data.targets {
        Targets::Classes(labels) => {
            assert_eq!(preds.len(), labels.len());
            if labels.is_empty() {
                return Ok(0.0);
            }
            Ok(
                preds.iter().zip(labels).filter(|(p, l)| p == l).count() as f64
                    / labels.len() as f64,
            )
        }
        Targets::Binary(_) => Err(TrainError::WrongTargets {
            expected: "class",
            found: "binary",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use hwsim::{Device, ExecutionMode};

    /// A linearly separable 2-class problem the MLP must learn.
    fn toy_dataset(n: usize, seed: u64) -> Dataset {
        let root = Philox::from_seed(seed);
        let mut rng = root.stream(StreamId::DATASET);
        let mut x = Tensor::zeros(Shape::of(&[n, 4]));
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = (i % 2) as u32;
            labels.push(c);
            for j in 0..4 {
                let mean = if c == 1 { 1.0 } else { -1.0 };
                x.as_mut_slice()[i * 4 + j] = rng.normal_with(mean, 0.5);
            }
        }
        Dataset::new(x, Targets::Classes(labels))
    }

    fn mlp(seed: u64) -> (Network, Philox) {
        let root = Philox::from_seed(seed);
        let mut rng = root.stream(StreamId::INIT.child(0));
        let mut net = Network::new();
        net.push(Dense::new(4, 16, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(16, 2, &mut rng));
        (net, root)
    }

    #[test]
    fn training_reduces_loss_and_learns() {
        let data = toy_dataset(128, 1);
        let (mut net, root) = mlp(2);
        let mut exec = ExecutionContext::new(Device::cpu(), ExecutionMode::Default, 0);
        let trainer = Trainer::new(TrainConfig {
            epochs: 20,
            batch_size: 16,
            schedule: LrSchedule::Constant { lr: 0.1 },
            sgd: SgdConfig::default(),
            shuffle: true,
            shuffle_seed_override: None,
            data_parallel_workers: 1,
            augment_seed_override: None,
            dropout_seed_override: None,
        });
        let report = trainer
            .fit(&mut net, &data, &mut exec, &root, None)
            .expect("training failed");
        assert_eq!(report.steps, 20 * 8);
        assert!(
            report.epoch_losses.last().unwrap() < &(report.epoch_losses[0] * 0.5),
            "loss did not drop: {:?}",
            report.epoch_losses
        );
        let preds = predict_classes(&mut net, &data, &mut exec, &root, 32);
        assert!(accuracy(&preds, &data).expect("class targets") > 0.95);
    }

    #[test]
    fn identical_seeds_identical_training_on_cpu() {
        let data = toy_dataset(64, 3);
        let run = || {
            let (mut net, root) = mlp(7);
            let mut exec = ExecutionContext::new(Device::cpu(), ExecutionMode::Default, 0);
            let trainer = Trainer::new(TrainConfig {
                epochs: 5,
                ..TrainConfig::default()
            });
            trainer
                .fit(&mut net, &data, &mut exec, &root, None)
                .expect("training failed");
            net.flat_weights()
        };
        assert_eq!(run(), run(), "CPU training must be bitwise replayable");
    }

    #[test]
    fn shuffle_order_changes_training() {
        let data = toy_dataset(64, 3);
        let run = |algo_seed: u64| {
            let (mut net, _) = mlp(7); // same init
            let root = Philox::from_seed(algo_seed); // different shuffle
            let mut exec = ExecutionContext::new(Device::cpu(), ExecutionMode::Default, 0);
            let trainer = Trainer::new(TrainConfig {
                epochs: 3,
                ..TrainConfig::default()
            });
            trainer
                .fit(&mut net, &data, &mut exec, &root, None)
                .expect("training failed");
            net.flat_weights()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn zero_epochs_is_no_steps() {
        let data = toy_dataset(8, 5);
        let (mut net, root) = mlp(7);
        let mut exec = ExecutionContext::new(Device::cpu(), ExecutionMode::Default, 0);
        let trainer = Trainer::new(TrainConfig {
            epochs: 0,
            ..TrainConfig::default()
        });
        assert_eq!(
            trainer.fit(&mut net, &data, &mut exec, &root, None),
            Err(TrainError::NoSteps)
        );
    }

    #[test]
    fn accuracy_rejects_binary_targets() {
        let data = Dataset::new(
            Tensor::zeros(Shape::of(&[2, 4])),
            Targets::Binary(Tensor::zeros(Shape::of(&[2, 3]))),
        );
        assert_eq!(
            accuracy(&[0, 1], &data),
            Err(TrainError::WrongTargets {
                expected: "class",
                found: "binary",
            })
        );
    }

    /// Interrupt-at-epoch-k then resume must reproduce the uninterrupted
    /// run bit-for-bit — the core guarantee of the supervision layer,
    /// checked here at the trainer level on a nondeterministic device.
    #[test]
    fn resume_from_checkpoint_is_bitwise_identical() {
        let data = toy_dataset(64, 11);
        let cfg = TrainConfig {
            epochs: 6,
            batch_size: 16,
            ..TrainConfig::default()
        };
        let make_exec = || {
            ExecutionContext::builder(Device::v100())
                .mode(ExecutionMode::Default)
                .entropy(99)
                .build()
        };

        // Uninterrupted reference run.
        let (mut ref_net, root) = mlp(13);
        let mut exec = make_exec();
        let ref_report = Trainer::new(cfg)
            .fit(&mut ref_net, &data, &mut exec, &root, None)
            .expect("reference run");
        let ref_weights = ref_net.flat_weights();

        // Interrupted run: capture a checkpoint at epoch 3, throw the rest
        // away, then resume into a *fresh* network and context.
        let (mut int_net, root) = mlp(13);
        let mut exec = make_exec();
        let mut saved: Option<Checkpoint> = None;
        let mut sink = |ck: &Checkpoint| {
            if ck.epochs_done == 3 {
                saved = Some(ck.clone());
            }
        };
        Trainer::new(cfg)
            .fit_with(
                &mut int_net,
                &data,
                &mut exec,
                &root,
                None,
                FitOptions {
                    resume: None,
                    checkpoint_every_epochs: 3,
                    sink: Some(&mut sink),
                    ..FitOptions::default()
                },
            )
            .expect("interrupted run");
        let ck = saved.expect("epoch-3 checkpoint");
        assert_eq!(ck.epochs_done, 3);

        let (mut res_net, root) = mlp(13);
        let mut exec = make_exec();
        let res_report = Trainer::new(cfg)
            .fit_with(
                &mut res_net,
                &data,
                &mut exec,
                &root,
                None,
                FitOptions {
                    resume: Some(&ck),
                    checkpoint_every_epochs: 0,
                    sink: None,
                    ..FitOptions::default()
                },
            )
            .expect("resumed run");

        let to_bits = |w: &[f32]| -> Vec<u32> { w.iter().map(|v| v.to_bits()).collect() };
        assert_eq!(
            to_bits(&res_net.flat_weights()),
            to_bits(&ref_weights),
            "resumed weights must match the uninterrupted run bit-for-bit"
        );
        assert_eq!(res_report.steps, ref_report.steps);
        assert_eq!(
            to_bits(&res_report.epoch_losses),
            to_bits(&ref_report.epoch_losses)
        );
    }

    #[test]
    fn mismatched_checkpoint_is_rejected() {
        let data = toy_dataset(16, 3);
        let (mut net, root) = mlp(5);
        let mut exec = ExecutionContext::new(Device::cpu(), ExecutionMode::Default, 0);
        let mut saved: Option<Checkpoint> = None;
        let mut sink = |ck: &Checkpoint| saved = Some(ck.clone());
        Trainer::new(TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        })
        .fit_with(
            &mut net,
            &data,
            &mut exec,
            &root,
            None,
            FitOptions {
                resume: None,
                checkpoint_every_epochs: 1,
                sink: Some(&mut sink),
                ..FitOptions::default()
            },
        )
        .expect("train");
        let mut ck = saved.expect("checkpoint");
        ck.weights.pop(); // wrong parameter count
        let err = Trainer::new(TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        })
        .fit_with(
            &mut net,
            &data,
            &mut exec,
            &root,
            None,
            FitOptions {
                resume: Some(&ck),
                checkpoint_every_epochs: 0,
                sink: None,
                ..FitOptions::default()
            },
        )
        .expect_err("mismatched checkpoint must be rejected");
        assert!(matches!(err, TrainError::BadCheckpoint { .. }), "{err}");
    }

    /// A NaN poisoned into a gradient reduction by hwsim chaos mode must
    /// surface as a structured `Diverged` error, not a panic or a silent
    /// NaN report.
    #[test]
    fn injected_nan_surfaces_as_diverged() {
        use hwsim::{ChaosConfig, FaultPlan};
        let data = toy_dataset(64, 3);
        let (mut net, root) = mlp(7);
        let cfg = ChaosConfig {
            seed: 5,
            launch_failures: 0,
            kernel_panics: 0,
            nan_poisons: 1,
            hangs: 0,
            aborts: 0,
            hang_ms: 0,
            persistent: false,
        };
        // 5 epochs × 2 steps/epoch at batch 32.
        let plan = FaultPlan::build(&cfg, 0, 0, 10);
        assert!(!plan.is_empty());
        let mut exec = ExecutionContext::builder(Device::v100())
            .mode(ExecutionMode::Default)
            .entropy(1)
            .chaos(plan)
            .build();
        let err = Trainer::new(TrainConfig {
            epochs: 5,
            ..TrainConfig::default()
        })
        .fit(&mut net, &data, &mut exec, &root, None)
        .expect_err("poisoned run must fail");
        assert!(matches!(err, TrainError::Diverged { .. }), "{err}");
        assert!(!exec.chaos_armed(), "fit must disarm chaos on exit");
    }

    #[test]
    fn gather_preserves_rows() {
        let data = toy_dataset(8, 5);
        let batch = data.gather(&[3, 1]);
        assert_eq!(batch.x.shape().dims(), &[2, 4]);
        assert_eq!(
            &batch.x.as_slice()[0..4],
            &data.x.as_slice()[12..16],
            "row 3 first"
        );
        match batch.targets {
            Targets::Classes(ref l) => assert_eq!(l, &[1, 1]),
            _ => panic!(),
        }
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_rejected() {
        Trainer::new(TrainConfig {
            batch_size: 0,
            ..TrainConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "sample count mismatch")]
    fn dataset_validates_lengths() {
        Dataset::new(
            Tensor::zeros(Shape::of(&[3, 2])),
            Targets::Classes(vec![0, 1]),
        );
    }
}
