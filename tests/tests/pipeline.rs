//! Cross-crate pipeline tests: dataset generators → training stack →
//! metrics, exercising paths the per-crate unit tests cannot reach.

use detrand::Philox;
use hwsim::{Device, ExecutionContext, ExecutionMode};
use nnet::trainer::{predict_classes, Targets, Trainer};
use nnet::zoo;
use noisescope::prelude::*;
use ns_integration::{tiny_settings, tiny_task};
use nsdata::{GaussianSpec, ShiftFlip};

#[test]
fn model_actually_learns_the_generated_task() {
    // End-to-end sanity: a few epochs on an easy split must beat chance
    // by a wide margin.
    let spec = GaussianSpec {
        classes: 4,
        train_per_class: 32,
        test_per_class: 16,
        hw: 8,
        class_sep: 1.0,
        label_noise: 0.0,
        ..GaussianSpec::cifar10_sim()
    };
    let ds = spec.generate();
    let algo = Philox::from_seed(5);
    let mut net = zoo::micro_resnet18(8, 3, 4, &algo);
    let mut exec = ExecutionContext::new(Device::v100(), ExecutionMode::Default, 1);
    let cfg = nnet::trainer::TrainConfig {
        epochs: 8,
        ..Default::default()
    };
    Trainer::new(cfg)
        .fit(&mut net, &ds.train, &mut exec, &algo, None)
        .expect("sanity run trains");
    let preds = predict_classes(&mut net, &ds.test, &mut exec, &algo, 32);
    let labels = ds.test_labels();
    let acc = nsmetrics::accuracy(&preds, labels);
    assert!(acc > 0.7, "accuracy {acc} barely beats chance (0.25)");
}

#[test]
fn augmentation_changes_training_but_respects_the_seed() {
    let task = tiny_task();
    let prepared = PreparedTask::prepare(&task);
    let algo = Philox::from_seed(3);
    let run = |augment: bool| {
        let mut exec = ExecutionContext::new(Device::cpu(), ExecutionMode::Default, 0);
        let mut net = task.build_model(&algo);
        let aug = ShiftFlip::standard();
        Trainer::new(task.train)
            .fit(
                &mut net,
                prepared.train_set(),
                &mut exec,
                &algo,
                if augment { Some(&aug) } else { None },
            )
            .expect("augmentation run trains");
        net.flat_weights()
    };
    let plain = run(false);
    let augmented = run(true);
    assert_ne!(plain, augmented, "augmentation had no effect");
    assert_eq!(augmented, run(true), "augmentation is not seed-replayable");
}

#[test]
fn dropout_task_trains_and_is_a_noise_source() {
    let spec = GaussianSpec {
        classes: 4,
        train_per_class: 16,
        test_per_class: 8,
        hw: 8,
        ..GaussianSpec::cifar10_sim()
    };
    let ds = spec.generate();
    let run = |seed: u64| {
        let algo = Philox::from_seed(seed);
        // Same *weights* (seed 1 for init) would require splitting roots;
        // here the whole root varies → dropout + init both vary.
        let mut net = zoo::small_cnn_dropout(8, 3, 4, 0.3, &algo);
        let mut exec = ExecutionContext::new(Device::tpu_v2(), ExecutionMode::Default, 0);
        let cfg = nnet::trainer::TrainConfig {
            epochs: 2,
            ..Default::default()
        };
        Trainer::new(cfg)
            .fit(&mut net, &ds.train, &mut exec, &algo, None)
            .expect("dropout run trains");
        net.flat_weights()
    };
    assert_eq!(run(4), run(4), "dropout training must replay from the seed");
    assert_ne!(run(4), run(5));
}

#[test]
fn per_class_variance_exceeds_topline_variance() {
    // The Figure-4 effect at test scale: per-class accuracy across
    // replicas varies more than top-line accuracy.
    let prepared = PreparedTask::prepare(&tiny_task());
    let settings = ExperimentSettings {
        replicas: 4,
        ..tiny_settings()
    };
    let runs = run_variant(
        &prepared,
        &Device::v100(),
        NoiseVariant::AlgoImpl,
        &settings,
    );
    let report = stability_report(&prepared, &Device::v100(), NoiseVariant::AlgoImpl, &runs);
    let max_class = report.per_class_std.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        max_class >= report.std_accuracy,
        "per-class stddev {max_class} below top-line {}",
        report.std_accuracy
    );
}

#[test]
fn binary_and_class_tasks_share_the_runner() {
    // The CelebA (binary) path must flow through the same replica runner.
    let mut task = TaskSpec::celeba();
    if let DataSource::Celeba(spec) = &mut task.data {
        spec.train_len = 120;
        spec.test_len = 80;
    }
    task.train.epochs = 2;
    let prepared = PreparedTask::prepare(&task);
    let r = run_replica(
        &prepared,
        &Device::v100(),
        NoiseVariant::AlgoImpl,
        &tiny_settings(),
        0,
    )
    .expect("CelebA replica trains");
    match (&r.preds, &prepared.test_set().targets) {
        (noisescope::runner::Preds::Binary(p), Targets::Binary(t)) => {
            assert_eq!(p.len(), t.len());
        }
        _ => panic!("expected binary predictions for the CelebA task"),
    }
}
