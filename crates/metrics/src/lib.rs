//! Model-stability metrics from the NoiseScope study (§2.1 of the paper):
//! predictive churn, normalized weight L2 distance, and standard-deviation
//! decompositions over classes and protected subgroups.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod classification;
pub mod stability;
pub mod stats;

pub use classification::{
    accuracy, binary_rates, per_class_accuracy, subgroup_accuracy, BinaryRates,
};
pub use stability::{churn, l2_normalized, pairwise_mean_churn, pairwise_mean_l2};
pub use stats::{mean, relative_scale, stddev};
