//! Weight initializers.
//!
//! Random initialization is the first algorithmic noise source in the
//! paper's Table 1. All draws come from a named [`detrand`] stream so a
//! fixed seed reproduces initialization exactly regardless of what any
//! other component consumed.

use detrand::StreamRng;
use nstensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};

/// Weight-initialization schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Init {
    /// Glorot/Xavier uniform: `U(-√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`.
    GlorotUniform,
    /// He normal: `N(0, √(2/fan_in))` — the standard for ReLU networks.
    HeNormal,
    /// All zeros (biases).
    Zeros,
    /// A small positive constant (pre-ReLU biases; keeps unlucky
    /// initializations from producing dead layers with zero gradient flow).
    SmallPositive,
    /// All ones (batch-norm scale).
    Ones,
}

impl Init {
    /// Materializes a tensor of the given shape.
    ///
    /// `fan_in`/`fan_out` are the effective fan values (for convolutions,
    /// `channels × k²`).
    pub fn tensor(
        self,
        shape: Shape,
        fan_in: usize,
        fan_out: usize,
        rng: &mut StreamRng,
    ) -> Tensor {
        let mut t = Tensor::zeros(shape);
        match self {
            Init::GlorotUniform => {
                let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
                for v in t.as_mut_slice() {
                    *v = rng.uniform(-limit, limit);
                }
            }
            Init::HeNormal => {
                let std = (2.0 / fan_in as f32).sqrt();
                for v in t.as_mut_slice() {
                    *v = rng.normal_with(0.0, std);
                }
            }
            Init::Zeros => {}
            Init::SmallPositive => {
                for v in t.as_mut_slice() {
                    *v = 0.01;
                }
            }
            Init::Ones => {
                for v in t.as_mut_slice() {
                    *v = 1.0;
                }
            }
        }
        t
    }
}

#[cfg(test)]
// Tests assert exact float values: bit-identical replay is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use detrand::{Philox, StreamId};

    fn rng(seed: u64) -> StreamRng {
        Philox::from_seed(seed).stream(StreamId::INIT)
    }

    #[test]
    fn glorot_respects_limit() {
        let mut r = rng(1);
        let t = Init::GlorotUniform.tensor(Shape::of(&[100, 50]), 50, 100, &mut r);
        let limit = (6.0f32 / 150.0).sqrt();
        assert!(t.as_slice().iter().all(|&v| v.abs() <= limit));
        // Not all zero.
        assert!(t.as_slice().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn he_normal_std_close_to_target() {
        let mut r = rng(2);
        let fan_in = 64;
        let t = Init::HeNormal.tensor(Shape::of(&[40_000]), fan_in, 1, &mut r);
        let target = (2.0 / fan_in as f64).sqrt();
        let var: f64 = t
            .as_slice()
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            / t.len() as f64;
        assert!(
            (var.sqrt() - target).abs() < 0.02 * target + 1e-3,
            "std {} vs {target}",
            var.sqrt()
        );
    }

    #[test]
    fn zeros_and_ones() {
        let mut r = rng(3);
        assert!(Init::Zeros
            .tensor(Shape::of(&[5]), 1, 1, &mut r)
            .as_slice()
            .iter()
            .all(|&v| v == 0.0));
        assert!(Init::Ones
            .tensor(Shape::of(&[5]), 1, 1, &mut r)
            .as_slice()
            .iter()
            .all(|&v| v == 1.0));
    }

    #[test]
    fn same_seed_same_init() {
        let a = Init::HeNormal.tensor(Shape::of(&[64]), 8, 8, &mut rng(7));
        let b = Init::HeNormal.tensor(Shape::of(&[64]), 8, 8, &mut rng(7));
        assert_eq!(a.as_slice(), b.as_slice());
        let c = Init::HeNormal.tensor(Shape::of(&[64]), 8, 8, &mut rng(8));
        assert_ne!(a.as_slice(), c.as_slice());
    }
}
