//! Tier-1 gate: the workspace must be free of determinism hazards.
//!
//! Runs the same scan as `cargo run -p detlint` — every `.rs` file in the
//! repository, under the committed `detlint.toml` — and fails with the full
//! finding list if any unsuppressed hazard or malformed suppression exists.
//! This is what makes the lint a property of the codebase rather than an
//! optional tool: a PR that introduces a `HashMap` iteration into a report,
//! an ambient RNG seed, or an ad-hoc float reduction fails `cargo test`.

use std::path::Path;

use detlint::{report, Config};

fn workspace_root() -> &'static Path {
    // tests/ is a direct child of the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests crate has a parent directory")
}

#[test]
fn workspace_is_hazard_free() {
    let root = workspace_root();
    let config_path = root.join("detlint.toml");
    assert!(
        config_path.is_file(),
        "detlint.toml missing at workspace root {}",
        root.display()
    );
    let config = Config::load(&config_path).expect("detlint.toml parses");
    let scan = detlint::scan_workspace(root, &config).expect("workspace scan");
    assert!(
        scan.files_scanned > 50,
        "suspiciously few files scanned ({}); wrong root?",
        scan.files_scanned
    );
    assert!(
        scan.clean(),
        "determinism hazards in the workspace:\n{}",
        report::human(&scan)
    );
}

#[test]
fn every_suppression_carries_its_reason() {
    let root = workspace_root();
    let config = Config::load(&root.join("detlint.toml")).expect("config");
    let scan = detlint::scan_workspace(root, &config).expect("workspace scan");
    for (finding, reason) in &scan.suppressed {
        assert!(
            !reason.trim().is_empty(),
            "suppression without reason at {}:{}",
            finding.file,
            finding.line
        );
    }
    // Stale allows would rot into false documentation; keep zero tolerance.
    assert!(
        scan.unused_allows.is_empty(),
        "unused suppressions: {:?}",
        scan.unused_allows
    );
}

/// The DL008 registry in `detlint.toml` and the env reads in shipping
/// code must agree both ways: every `env::var("...")` literal in
/// `crates/` (outside detlint's own fixture corpus) is registered, and
/// every registered name is actually read somewhere — a registry entry
/// nobody reads is as stale as an unregistered knob is invisible.
#[test]
fn dl008_registry_matches_workspace_env_reads() {
    let root = workspace_root();
    let config = Config::load(&root.join("detlint.toml")).expect("config");
    let mut read: Vec<String> = Vec::new();
    collect_env_reads(&root.join("crates"), &mut read);
    read.sort();
    read.dedup();
    assert!(
        !read.is_empty(),
        "no env reads found — collector looking at the wrong root?"
    );
    for name in &read {
        assert!(
            config.registered_env.iter().any(|r| r == name),
            "env var `{name}` is read in crates/ but missing from the \
             [rules.DL008] registry in detlint.toml"
        );
    }
    for name in &config.registered_env {
        assert!(
            read.contains(name),
            "registry entry `{name}` in detlint.toml is read nowhere in \
             crates/ — delete it or wire it up"
        );
    }
}

fn collect_env_reads(dir: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // detlint's fixtures/tests deliberately read fake knobs.
            if name == "detlint" || name == "target" {
                continue;
            }
            collect_env_reads(&path, out);
        } else if name.ends_with(".rs") {
            let Ok(src) = std::fs::read_to_string(&path) else {
                continue;
            };
            let mut rest = src.as_str();
            while let Some(at) = rest.find("env::var(\"") {
                let tail = &rest[at + "env::var(\"".len()..];
                if let Some(end) = tail.find('"') {
                    out.push(tail[..end].to_string());
                    rest = &tail[end..];
                } else {
                    break;
                }
            }
        }
    }
}

#[test]
fn json_report_is_stable_and_well_formed() {
    let root = workspace_root();
    let config = Config::load(&root.join("detlint.toml")).expect("config");
    let scan = detlint::scan_workspace(root, &config).expect("workspace scan");
    let doc = report::json(&scan);
    assert_eq!(doc["clean"], scan.clean());
    assert_eq!(
        doc["files_scanned"].as_u64(),
        Some(scan.files_scanned as u64)
    );
    // Serialization must be deterministic (BTreeMap-backed objects).
    let a = serde_json::to_string(&doc).expect("encode");
    let b = serde_json::to_string(&report::json(&scan)).expect("encode");
    assert_eq!(a, b);
}
