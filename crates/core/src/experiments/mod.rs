//! One entry point per table and figure of the paper.
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Table 2 (accuracy ± std per hardware × task × variant) | [`stability::run_stability_grid`] + [`stability::render_table2`] |
//! | Figure 1 (stddev/churn/L2 by noise source, V100) | [`stability::render_fig_panel`] |
//! | Figure 2 (batch-norm ablation) | [`stability::fig2`] |
//! | Table 3 (CelebA subgroup counts) | [`fairness::table3`] |
//! | Figure 3 / Table 5 (subgroup variance) | [`fairness::fig3_table5`] |
//! | Figure 4 (per-class vs overall variance) | [`stability::fig4_from_reports`] |
//! | Figure 5 (hardware comparison incl. TC, TPU) | [`stability::fig5`] |
//! | Figure 6 (data-order noise vs batch size) | [`ordering::fig6`] |
//! | Figure 7 (top-20 kernel time, det vs default) | [`cost::fig7`] |
//! | Figure 8 left (overhead across 10 networks) | [`cost::fig8a`] |
//! | Figure 8 right (overhead vs filter size) | [`cost::fig8b`] |
//! | Figures 9/10 (Fig. 1 on P100 / RTX5000) | [`stability::render_fig_panel`] |
//! | Extension: distributed data parallelism (§6) | [`extensions::data_parallel_sweep`] |
//! | Extension: parallelism → noise ablation (§3.3) | [`extensions::lanes_sweep`] |

pub mod cost;
pub mod extensions;
pub mod fairness;
pub mod ordering;
pub mod stability;
