//! Stochastic data augmentation (the paper's random crop + flip).

use detrand::StreamRng;
use nnet::trainer::Augment;

/// Random shift ("crop with zero padding") and horizontal flip, applied
/// per sample during training — one of the four algorithmic noise sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShiftFlip {
    /// Maximum shift in pixels along each axis.
    pub max_shift: usize,
    /// Whether to flip horizontally with probability ½.
    pub flip: bool,
}

impl ShiftFlip {
    /// The paper's CIFAR recipe scaled down: ±2 px shift + flip.
    pub fn standard() -> Self {
        Self {
            max_shift: 2,
            flip: true,
        }
    }
}

impl Augment for ShiftFlip {
    fn apply(&self, sample: &mut [f32], dims: &[usize], rng: &mut StreamRng) {
        assert_eq!(dims.len(), 3, "ShiftFlip expects [C, H, W] samples");
        let (c, h, w) = (dims[0], dims[1], dims[2]);
        assert_eq!(sample.len(), c * h * w, "sample length mismatch");
        let span = (2 * self.max_shift + 1) as u32;
        let dy = rng.next_below(span) as isize - self.max_shift as isize;
        let dx = rng.next_below(span) as isize - self.max_shift as isize;
        let flip = self.flip && rng.bernoulli(0.5);
        if dy == 0 && dx == 0 && !flip {
            return;
        }
        let mut out = vec![0f32; sample.len()];
        for ch in 0..c {
            let plane = &sample[ch * h * w..(ch + 1) * h * w];
            let dst = &mut out[ch * h * w..(ch + 1) * h * w];
            for y in 0..h as isize {
                let sy = y - dy;
                if sy < 0 || sy >= h as isize {
                    continue;
                }
                for x in 0..w as isize {
                    let sx0 = x - dx;
                    if sx0 < 0 || sx0 >= w as isize {
                        continue;
                    }
                    let sx = if flip { w as isize - 1 - sx0 } else { sx0 };
                    dst[(y as usize) * w + x as usize] = plane[(sy as usize) * w + sx as usize];
                }
            }
        }
        sample.copy_from_slice(&out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detrand::{Philox, StreamId};

    fn rng(seed: u64) -> StreamRng {
        Philox::from_seed(seed).stream(StreamId::AUGMENT)
    }

    fn ramp(c: usize, h: usize, w: usize) -> Vec<f32> {
        (0..c * h * w).map(|i| i as f32).collect()
    }

    #[test]
    fn zero_shift_no_flip_is_identity() {
        let aug = ShiftFlip {
            max_shift: 0,
            flip: false,
        };
        let mut s = ramp(2, 4, 4);
        let orig = s.clone();
        aug.apply(&mut s, &[2, 4, 4], &mut rng(1));
        assert_eq!(s, orig);
    }

    #[test]
    fn augmentation_changes_samples_but_preserves_content_scale() {
        let aug = ShiftFlip::standard();
        let mut changed = 0;
        for seed in 0..20 {
            let mut s = ramp(1, 8, 8);
            let orig = s.clone();
            aug.apply(&mut s, &[1, 8, 8], &mut rng(seed));
            if s != orig {
                changed += 1;
            }
            // Shifted content is a subset of the original values plus zeros.
            for &v in &s {
                assert!(v == 0.0 || orig.contains(&v));
            }
        }
        assert!(changed > 10, "augmentation almost never changed the sample");
    }

    #[test]
    fn same_stream_state_same_augmentation() {
        let aug = ShiftFlip::standard();
        let mut a = ramp(1, 6, 6);
        let mut b = ramp(1, 6, 6);
        aug.apply(&mut a, &[1, 6, 6], &mut rng(5));
        aug.apply(&mut b, &[1, 6, 6], &mut rng(5));
        assert_eq!(a, b);
    }

    #[test]
    fn pure_flip_reverses_rows() {
        let aug = ShiftFlip {
            max_shift: 0,
            flip: true,
        };
        // Find a seed whose first Bernoulli draw is "flip".
        for seed in 0..64 {
            let mut s = vec![1.0, 2.0, 3.0, 4.0]; // 1×2×2
            aug.apply(&mut s, &[1, 2, 2], &mut rng(seed));
            if s != [1.0, 2.0, 3.0, 4.0] {
                assert_eq!(s, vec![2.0, 1.0, 4.0, 3.0]);
                return;
            }
        }
        panic!("no seed produced a flip in 64 tries");
    }

    #[test]
    #[should_panic(expected = "expects [C, H, W]")]
    fn rejects_flat_samples() {
        let aug = ShiftFlip::standard();
        let mut s = vec![0f32; 4];
        aug.apply(&mut s, &[4], &mut rng(0));
    }
}
