#!/usr/bin/env bash
# The full local CI gate — the same steps .github/workflows/ci.yml runs.
# Run from anywhere inside the repository.
set -euo pipefail

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --workspace --release
run cargo test -q --workspace
run cargo clippy --workspace --all-targets -- -D warnings
run cargo fmt --check

# Determinism lint: gate on the committed baseline (only new findings
# fail) and audit suppressions (a stale allow is a hard failure). The
# fleet clock shim's DL003 allow is the one sanctioned suppression and
# survives the audit because it is load-bearing.
run cargo run --release -p detlint -- --audit --baseline detlint.baseline.json

# Incremental-cache effectiveness: the run above warmed
# target/detlint-cache.json, so a rerun must reuse >= 90% of per-file
# results and print bit-identical output.
echo "==> detlint cache effectiveness"
cold_out=$(cargo run --release -q -p detlint -- --audit --baseline detlint.baseline.json 2>/dev/null)
warm_stats=$(cargo run --release -q -p detlint -- --audit --baseline detlint.baseline.json 2>&1 >/dev/null)
warm_out=$(cargo run --release -q -p detlint -- --audit --baseline detlint.baseline.json 2>/dev/null)
if [ "$cold_out" != "$warm_out" ]; then
    echo "detlint output differs between cache states" >&2
    exit 1
fi
echo "$warm_stats"
hits=$(echo "$warm_stats" | sed -n 's/.*cache: \([0-9]*\) hit(s).*/\1/p')
total=$(echo "$warm_stats" | sed -n 's/.*of \([0-9]*\) file(s).*/\1/p')
if [ -z "$hits" ] || [ -z "$total" ] || [ "$total" -eq 0 ] || [ $((hits * 10)) -lt $((total * 9)) ]; then
    echo "detlint warm cache effectiveness ${hits:-?}/${total:-?} below 90%" >&2
    exit 1
fi

echo "All checks passed."
