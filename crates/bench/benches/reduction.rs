//! Microbenchmarks of the order-sensitive reduction engine — the substrate
//! hot path under every figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nstensor::{ReduceOrder, Reducer};

fn bench_reductions(c: &mut Criterion) {
    let xs: Vec<f32> = (0..8192)
        .map(|i| ((i * 37 % 101) as f32 - 50.0) * 0.01)
        .collect();
    let mut group = c.benchmark_group("reduction_sum_8k");
    group.throughput(Throughput::Elements(xs.len() as u64));
    for (name, order) in [
        ("sequential", ReduceOrder::Sequential),
        ("fixed_tree", ReduceOrder::FixedTree),
        ("permuted", ReduceOrder::Permuted),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &order, |b, &order| {
            let mut r = Reducer::new(order, 48, 7);
            b.iter(|| std::hint::black_box(r.sum(&xs)));
        });
    }
    group.finish();

    let a: Vec<f32> = (0..1024).map(|i| (i as f32).sin()).collect();
    let bb: Vec<f32> = (0..1024).map(|i| (i as f32).cos()).collect();
    let mut group = c.benchmark_group("reduction_dot_1k");
    group.throughput(Throughput::Elements(a.len() as u64));
    for (name, order) in [
        ("sequential", ReduceOrder::Sequential),
        ("fixed_tree", ReduceOrder::FixedTree),
        ("permuted", ReduceOrder::Permuted),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &order, |b, &order| {
            let mut r = Reducer::new(order, 48, 7);
            b.iter(|| std::hint::black_box(r.dot(&a, &bb)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reductions);
criterion_main!(benches);
