//! DL004 fixture: order-sensitive float reductions.

// <explain:DL004:bad>
pub fn plain_sum(xs: &[f32]) -> f32 {
    xs.iter().sum() // fires: f32 sum (signature evidence)
}
// </explain:DL004:bad>

pub fn turbofish_sum(xs: &[i64]) -> f64 {
    xs.iter().map(|&x| x as f64).sum::<f64>() // fires: f64 turbofish sum
}

pub fn additive_fold(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |acc, x| acc + x) // fires: additive fold
}

pub fn tracked_binding(n: usize) -> Vec<f64> {
    let mut lane = [0f64; 8];
    lane[0] = n as f64;
    let total = lane.iter().sum(); // fires: binding-tracked float evidence
    vec![total]
}

pub fn product_of_probs(ps: &[f64]) -> f64 {
    ps.iter().product() // fires: float product
}
