//! Quickstart: isolate implementation noise on a simulated V100.
//!
//! Trains a fleet of small CNNs with the *same* algorithmic seed — same
//! initialization, same shuffling, same augmentation — and shows that on a
//! nondeterministic GPU the replicas still diverge (predictive churn,
//! weight-space distance), while deterministic execution makes them
//! bitwise identical.
//!
//! ```text
//! cargo run --release -p ns-examples --bin quickstart
//! ```

use noisescope::prelude::*;
use ns_examples::{demo_settings, demo_task};

fn main() {
    let task = demo_task();
    let settings = demo_settings();
    let device = Device::v100();
    println!(
        "Training {} replicas of '{}' on a simulated {} ({} accumulation lanes)\n",
        settings.replicas,
        task.name,
        device.name(),
        device.lanes()
    );

    let prepared = PreparedTask::prepare(&task);
    for variant in [NoiseVariant::Impl, NoiseVariant::Control] {
        let runs = run_variant(&prepared, &device, variant, &settings);
        let report = stability_report(&prepared, &device, variant, &runs);
        println!("{}", report.summary_line());
        if variant == NoiseVariant::Control {
            let identical = runs
                .results
                .windows(2)
                .all(|w| w[0].weights == w[1].weights);
            println!(
                "  control replicas bitwise identical: {identical} \
                 (deterministic kernels + fixed seed)"
            );
        } else {
            println!(
                "  same seed, nondeterministic kernels: churn {:.3} means {:.1}% of test \
                 predictions flip between runs of the *same* experiment",
                report.churn,
                100.0 * report.churn
            );
        }
    }
    println!(
        "\nImplementation noise alone is a significant source of run-to-run variance —\n\
         the headline observation of Zhuang et al. (MLSys 2022)."
    );
}
