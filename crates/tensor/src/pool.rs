//! Pooling operations.
//!
//! Max-pooling selects rather than accumulates, so it introduces no
//! floating-point-order sensitivity of its own; global average pooling does
//! reduce and therefore takes a [`Reducer`].

use crate::error::ShapeError;
use crate::reduce::Reducer;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Forward 2-D max pooling with square window `k` and stride `k`
/// (non-overlapping), input `[N, C, H, W]`.
///
/// Returns the pooled tensor and the flat argmax index (within the sample's
/// channel plane) for each output element, needed by the backward pass.
///
/// # Errors
///
/// Returns [`ShapeError`] if the input is not rank 4 or not divisible by `k`.
pub fn maxpool2d_forward(input: &Tensor, k: usize) -> Result<(Tensor, Vec<u32>), ShapeError> {
    if input.shape().rank() != 4 {
        return Err(ShapeError::new("maxpool2d", "expected rank-4 input"));
    }
    let (n, c, h, w) = (
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
        input.shape().dim(3),
    );
    if k == 0 || h % k != 0 || w % k != 0 {
        return Err(ShapeError::new(
            "maxpool2d",
            format!("input {h}x{w} not divisible by window {k}"),
        ));
    }
    let (oh, ow) = (h / k, w / k);
    let mut out = Tensor::zeros(Shape::of(&[n, c, oh, ow]));
    let mut arg = vec![0u32; n * c * oh * ow];
    let xv = input.as_slice();
    let ov = out.as_mut_slice();
    for s in 0..n {
        for ch in 0..c {
            let plane = &xv[(s * c + ch) * h * w..(s * c + ch + 1) * h * w];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_i = 0usize;
                    for dy in 0..k {
                        for dx in 0..k {
                            let i = (oy * k + dy) * w + ox * k + dx;
                            if plane[i] > best {
                                best = plane[i];
                                best_i = i;
                            }
                        }
                    }
                    let o = ((s * c + ch) * oh + oy) * ow + ox;
                    ov[o] = best;
                    arg[o] = best_i as u32;
                }
            }
        }
    }
    Ok((out, arg))
}

/// Backward 2-D max pooling: routes each output gradient to its argmax.
///
/// # Errors
///
/// Returns [`ShapeError`] if `dy` does not match the pooled shape implied by
/// `input_shape` and `k`.
pub fn maxpool2d_backward(
    input_shape: Shape,
    k: usize,
    dy: &Tensor,
    argmax: &[u32],
) -> Result<Tensor, ShapeError> {
    let (n, c, h, w) = (
        input_shape.dim(0),
        input_shape.dim(1),
        input_shape.dim(2),
        input_shape.dim(3),
    );
    let (oh, ow) = (h / k, w / k);
    if dy.shape() != Shape::of(&[n, c, oh, ow]) || argmax.len() != dy.len() {
        return Err(ShapeError::new("maxpool2d_backward", "dy/argmax mismatch"));
    }
    let mut dx = Tensor::zeros(input_shape);
    let dyv = dy.as_slice();
    let dxv = dx.as_mut_slice();
    for s in 0..n {
        for ch in 0..c {
            let base = (s * c + ch) * h * w;
            for o in (s * c + ch) * oh * ow..(s * c + ch + 1) * oh * ow {
                dxv[base + argmax[o] as usize] += dyv[o];
            }
        }
    }
    Ok(dx)
}

/// Forward global average pooling: `[N, C, H, W]` → `[N, C]`.
///
/// The spatial mean is an accumulation and goes through the reducer.
///
/// # Errors
///
/// Returns [`ShapeError`] if the input is not rank 4.
pub fn global_avg_pool_forward(input: &Tensor, red: &mut Reducer) -> Result<Tensor, ShapeError> {
    if input.shape().rank() != 4 {
        return Err(ShapeError::new("global_avg_pool", "expected rank-4 input"));
    }
    let (n, c, h, w) = (
        input.shape().dim(0),
        input.shape().dim(1),
        input.shape().dim(2),
        input.shape().dim(3),
    );
    let hw = h * w;
    let mut out = Tensor::zeros(Shape::of(&[n, c]));
    let xv = input.as_slice();
    let ov = out.as_mut_slice();
    let inv = 1.0 / hw as f32;
    for s in 0..n {
        for ch in 0..c {
            let plane = &xv[(s * c + ch) * hw..(s * c + ch + 1) * hw];
            ov[s * c + ch] = red.sum(plane) * inv;
        }
    }
    Ok(out)
}

/// Backward global average pooling: spreads `dy/[H·W]` uniformly.
///
/// # Errors
///
/// Returns [`ShapeError`] if `dy` is not `[N, C]` for the given input shape.
pub fn global_avg_pool_backward(input_shape: Shape, dy: &Tensor) -> Result<Tensor, ShapeError> {
    let (n, c, h, w) = (
        input_shape.dim(0),
        input_shape.dim(1),
        input_shape.dim(2),
        input_shape.dim(3),
    );
    if dy.shape() != Shape::of(&[n, c]) {
        return Err(ShapeError::new("global_avg_pool_backward", "dy mismatch"));
    }
    let hw = h * w;
    let inv = 1.0 / hw as f32;
    let mut dx = Tensor::zeros(input_shape);
    let dyv = dy.as_slice();
    let dxv = dx.as_mut_slice();
    for s in 0..n {
        for ch in 0..c {
            let g = dyv[s * c + ch] * inv;
            for v in &mut dxv[(s * c + ch) * hw..(s * c + ch + 1) * hw] {
                *v = g;
            }
        }
    }
    Ok(dx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_maxima() {
        let x = Tensor::from_vec(
            Shape::of(&[1, 1, 4, 4]),
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        )
        .unwrap();
        let (y, arg) = maxpool2d_forward(&x, 2).unwrap();
        assert_eq!(y.as_slice(), &[4.0, 8.0, 12.0, 16.0]);
        assert_eq!(arg, vec![5, 7, 13, 15]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(Shape::of(&[1, 1, 2, 2]), vec![1.0, 9.0, 3.0, 4.0]).unwrap();
        let (_, arg) = maxpool2d_forward(&x, 2).unwrap();
        let dy = Tensor::from_vec(Shape::of(&[1, 1, 1, 1]), vec![5.0]).unwrap();
        let dx = maxpool2d_backward(x.shape(), 2, &dy, &arg).unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_rejects_indivisible() {
        let x = Tensor::zeros(Shape::of(&[1, 1, 5, 4]));
        assert!(maxpool2d_forward(&x, 2).is_err());
    }

    #[test]
    fn gap_is_mean() {
        let x = Tensor::from_vec(
            Shape::of(&[1, 2, 2, 2]),
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0],
        )
        .unwrap();
        let y = global_avg_pool_forward(&x, &mut Reducer::sequential()).unwrap();
        assert_eq!(y.as_slice(), &[2.5, 10.0]);
    }

    #[test]
    fn gap_backward_uniform() {
        let shape = Shape::of(&[1, 1, 2, 2]);
        let dy = Tensor::from_vec(Shape::of(&[1, 1]), vec![8.0]).unwrap();
        let dx = global_avg_pool_backward(shape, &dy).unwrap();
        assert_eq!(dx.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn gap_gradient_check() {
        // L = Σ gap(x)², dL/dx must match finite differences.
        let x = Tensor::from_vec(Shape::of(&[1, 1, 2, 2]), vec![1.0, -2.0, 0.5, 3.0]).unwrap();
        let loss = |x: &Tensor| -> f64 {
            let y = global_avg_pool_forward(x, &mut Reducer::sequential()).unwrap();
            y.as_slice().iter().map(|&v| (v as f64).powi(2)).sum()
        };
        let y = global_avg_pool_forward(&x, &mut Reducer::sequential()).unwrap();
        let mut dy = y.clone();
        dy.scale(2.0);
        let dx = global_avg_pool_backward(x.shape(), &dy).unwrap();
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fd = (loss(&xp) - loss(&xm)) / (2.0 * eps as f64);
            assert!((fd - dx.as_slice()[i] as f64).abs() < 1e-3, "i={i}");
        }
    }
}
