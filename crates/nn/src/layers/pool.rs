//! Pooling and reshaping layers.

use super::Layer;
use detrand::Philox;
use hwsim::{ExecutionContext, OpClass};
use nstensor::{
    global_avg_pool_backward, global_avg_pool_forward, maxpool2d_backward, maxpool2d_forward,
    Shape, Tensor,
};

/// Non-overlapping 2-D max pooling with window (and stride) `k`.
#[derive(Debug)]
pub struct MaxPool2d {
    k: usize,
    cached_shape: Option<Shape>,
    argmax: Vec<u32>,
}

impl MaxPool2d {
    /// Creates the layer.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "pool window must be positive");
        Self {
            k,
            cached_shape: None,
            argmax: Vec::new(),
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(
        &mut self,
        x: Tensor,
        _exec: &mut ExecutionContext,
        _algo: &Philox,
        _step: u64,
        training: bool,
    ) -> Tensor {
        let shape = x.shape();
        let (y, arg) = maxpool2d_forward(&x, self.k).expect("maxpool shape");
        if training {
            self.cached_shape = Some(shape);
            self.argmax = arg;
        }
        y
    }

    fn backward(&mut self, dy: Tensor, _exec: &mut ExecutionContext) -> Tensor {
        let shape = self.cached_shape.take().expect("backward before forward");
        maxpool2d_backward(shape, self.k, &dy, &self.argmax).expect("maxpool backward shape")
    }

    fn kind(&self) -> &'static str {
        "maxpool2d"
    }
}

/// Global average pooling: `[N, C, H, W]` → `[N, C]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    cached_shape: Option<Shape>,
}

impl GlobalAvgPool {
    /// Creates the layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(
        &mut self,
        x: Tensor,
        exec: &mut ExecutionContext,
        _algo: &Philox,
        _step: u64,
        training: bool,
    ) -> Tensor {
        if training {
            self.cached_shape = Some(x.shape());
        }
        global_avg_pool_forward(&x, exec.reducer(OpClass::Misc)).expect("gap shape")
    }

    fn backward(&mut self, dy: Tensor, _exec: &mut ExecutionContext) -> Tensor {
        let shape = self.cached_shape.take().expect("backward before forward");
        global_avg_pool_backward(shape, &dy).expect("gap backward shape")
    }

    fn kind(&self) -> &'static str {
        "global_avg_pool"
    }
}

/// Flattens `[N, C, H, W]` into `[N, C·H·W]`.
#[derive(Debug, Default)]
pub struct Flatten {
    cached_shape: Option<Shape>,
}

impl Flatten {
    /// Creates the layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(
        &mut self,
        x: Tensor,
        _exec: &mut ExecutionContext,
        _algo: &Philox,
        _step: u64,
        training: bool,
    ) -> Tensor {
        let shape = x.shape();
        let n = shape.dim(0);
        let rest = shape.len() / n;
        if training {
            self.cached_shape = Some(shape);
        }
        x.reshape(Shape::of(&[n, rest])).expect("flatten reshape")
    }

    fn backward(&mut self, dy: Tensor, _exec: &mut ExecutionContext) -> Tensor {
        let shape = self.cached_shape.take().expect("backward before forward");
        dy.reshape(shape).expect("flatten backward reshape")
    }

    fn kind(&self) -> &'static str {
        "flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwsim::{Device, ExecutionMode};

    fn exec() -> ExecutionContext {
        ExecutionContext::new(Device::cpu(), ExecutionMode::Default, 0)
    }

    #[test]
    fn maxpool_round_trip() {
        let root = Philox::from_seed(0);
        let mut l = MaxPool2d::new(2);
        let x = Tensor::from_vec(Shape::of(&[1, 1, 2, 2]), vec![1.0, 4.0, 2.0, 3.0]).unwrap();
        let y = l.forward(x, &mut exec(), &root, 0, true);
        assert_eq!(y.as_slice(), &[4.0]);
        let dx = l.backward(Tensor::full(y.shape(), 1.0), &mut exec());
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn gap_shapes() {
        let root = Philox::from_seed(0);
        let mut l = GlobalAvgPool::new();
        let x = Tensor::full(Shape::of(&[2, 3, 4, 4]), 2.0);
        let y = l.forward(x, &mut exec(), &root, 0, true);
        assert_eq!(y.shape().dims(), &[2, 3]);
        assert!(y.as_slice().iter().all(|&v| (v - 2.0).abs() < 1e-6));
        let dx = l.backward(Tensor::full(Shape::of(&[2, 3]), 16.0), &mut exec());
        assert_eq!(dx.shape().dims(), &[2, 3, 4, 4]);
        assert!(dx.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn flatten_round_trip() {
        let root = Philox::from_seed(0);
        let mut l = Flatten::new();
        let x = Tensor::zeros(Shape::of(&[2, 3, 2, 2]));
        let y = l.forward(x, &mut exec(), &root, 0, true);
        assert_eq!(y.shape().dims(), &[2, 12]);
        let dx = l.backward(y, &mut exec());
        assert_eq!(dx.shape().dims(), &[2, 3, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        MaxPool2d::new(0);
    }
}
