//! DL006 fixture: an unordered-tainted value reaching a float
//! accumulation sink statements after the taint was introduced.
//! Positive cases carry a fires marker; the rest must stay quiet for
//! DL006 (other rules may legitimately fire on the same lines).

use std::collections::{BTreeMap, HashMap};

// <explain:DL006:bad>
pub fn tainted_sum(m: &HashMap<String, f64>) -> f64 {
    let vals: Vec<f64> = m.values().cloned().collect();
    let scale = 2.0;
    let s: f64 = vals.iter().sum(); // fires: taint from line 10 reaches the sum
    s * scale
}
// </explain:DL006:bad>

pub fn tainted_compound(m: &HashMap<u32, f64>) -> f64 {
    let vals: Vec<f64> = m.values().cloned().collect();
    let mut total = 0.0;
    for v in &vals {
        total += v; // fires: compound accumulation of hash-ordered elements
    }
    total
}

pub fn tainted_through_rename(m: &HashMap<String, f64>) -> f64 {
    let raw: Vec<f64> = m.values().cloned().collect();
    let renamed = raw;
    let s: f64 = renamed.iter().sum(); // fires: taint survives the rebinding
    s
}

pub fn parallel_collected(xs: &[f64]) -> f64 {
    let parts: Vec<f64> = xs.par_iter().map(|x| x * 2.0).collect();
    let total: f64 = parts.iter().sum(); // fires: par_iter collection order is scheduling-dependent
    total
}

// --- negative: sorting restores a deterministic order -----------------

pub fn sorted_then_summed(m: &HashMap<String, f64>) -> f64 {
    let mut vals: Vec<f64> = m.values().cloned().collect();
    vals.sort_by(|a, b| a.total_cmp(b));
    sum_ordered_f64(&vals)
}

// --- negative: sanctioned ordered reduction ---------------------------

// <explain:DL006:good>
pub fn sanctioned_sum(m: &HashMap<String, f64>) -> f64 {
    let vals: Vec<f64> = m.values().cloned().collect();
    sum_ordered_f64(&vals)
}
// </explain:DL006:good>

// --- negative: ordered collection clears the taint --------------------

pub fn ordered_collection(m: &HashMap<String, f64>) -> Vec<f64> {
    let ordered: BTreeMap<String, f64> = m.iter().map(|(k, v)| (k.clone(), *v)).collect();
    ordered.into_values().collect()
}

// --- negative: integer accumulation is order-insensitive --------------

pub fn integer_total(m: &HashMap<String, u32>) -> u32 {
    let counts: Vec<u32> = m.values().copied().collect();
    let n: u32 = counts.iter().sum();
    n
}

// --- negative: clean rebinding sheds the old taint --------------------

pub fn shadowed_clean(m: &HashMap<String, f64>, clean: &[f64]) -> f64 {
    let vals: Vec<f64> = m.values().cloned().collect();
    let vals: Vec<f64> = clean.to_vec();
    sum_ordered_f64(&vals)
}
