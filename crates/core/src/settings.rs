//! Fleet-level experiment settings.

use detrand::SplitMix64;
use hwsim::ChaosConfig;
use serde::{Deserialize, Serialize};

/// Settings shared by every experiment in a reproduction run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSettings {
    /// Independently trained replicas per variant (the paper uses 10; 5
    /// for ImageNet).
    pub replicas: u32,
    /// Base algorithmic seed.
    pub base_seed: u64,
    /// Salt for the per-replica scheduler entropy. Runs are *replayable
    /// nondeterminism*: each replica's schedule is pinned so results can be
    /// attributed and reproduced; vary the salt to draw a fresh fleet
    /// (set it from OS entropy for genuinely unrepeatable runs).
    pub entropy_salt: u64,
    /// Amplified-noise tier in ulps (see
    /// [`nstensor::Reducer::with_amplification`]): models the longer
    /// accumulation chains of full-scale workloads so that scaled-down
    /// trainings reach the divergence regime within their epoch budget.
    /// Set to 0 for faithful order-only noise.
    pub amp_ulps: f32,
    /// Multiplier on every task's epoch budget (quick-mode knob).
    pub epochs_scale: f32,
    /// Host threads the blocked GEMM engine may use *within* one replica's
    /// tensor ops. Purely a wall-clock knob — the engine is bitwise
    /// invariant in the thread count — and orthogonal to the replica-level
    /// parallelism of `run_variant`, so the default stays 1 to leave the
    /// cores to the embarrassingly parallel replica fleet.
    pub exec_threads: usize,
    /// How many times the supervisor re-runs a failed replica before
    /// recording it as [`crate::runner::ReplicaStatus::Failed`]. Retries
    /// re-derive every seed from the replica index, so a retried replica
    /// is bit-identical to one that never failed.
    pub retry_budget: u32,
    /// Chaos-injection configuration for `hwsim` (fault schedules are
    /// derived per replica and attempt). `None` — the default — is the
    /// zero-cost path: no fault bookkeeping anywhere in the hot loop.
    pub chaos: Option<ChaosConfig>,
}

impl Default for ExperimentSettings {
    fn default() -> Self {
        Self {
            replicas: 4,
            base_seed: 42,
            entropy_salt: 0x5EED_0015_EF00_D5ED,
            amp_ulps: 512.0,
            epochs_scale: 1.0,
            exec_threads: 1,
            retry_budget: 2,
            chaos: None,
        }
    }
}

impl ExperimentSettings {
    /// Reads overrides from the environment:
    /// `NS_REPLICAS`, `NS_SEED`, `NS_AMP_ULPS`, `NS_EPOCHS_SCALE`,
    /// `NS_EXEC_THREADS`, `NS_QUICK` (=1 → 3 replicas, half epochs),
    /// `NS_RETRIES` (supervisor retry budget), and `NS_CHAOS`
    /// (chaos-injection schedule, see [`hwsim::ChaosConfig::parse`]).
    pub fn from_env() -> Self {
        let mut s = Self::default();
        if let Ok(v) = std::env::var("NS_REPLICAS") {
            if let Ok(n) = v.parse() {
                s.replicas = n;
            }
        }
        if let Ok(v) = std::env::var("NS_SEED") {
            if let Ok(n) = v.parse() {
                s.base_seed = n;
            }
        }
        if let Ok(v) = std::env::var("NS_AMP_ULPS") {
            if let Ok(n) = v.parse() {
                s.amp_ulps = n;
            }
        }
        if let Ok(v) = std::env::var("NS_EPOCHS_SCALE") {
            if let Ok(n) = v.parse() {
                s.epochs_scale = n;
            }
        }
        if let Ok(v) = std::env::var("NS_EXEC_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                s.exec_threads = n.max(1);
            }
        }
        if let Ok(v) = std::env::var("NS_RETRIES") {
            if let Ok(n) = v.parse() {
                s.retry_budget = n;
            }
        }
        if let Some(cfg) = ChaosConfig::from_env() {
            s.chaos = Some(cfg);
        }
        if std::env::var("NS_QUICK").map(|v| v == "1").unwrap_or(false) {
            s.replicas = s.replicas.min(3);
            s.epochs_scale *= 0.5;
        }
        s
    }

    /// The scheduler-entropy value for a replica.
    pub fn entropy_for(&self, replica: u32) -> u64 {
        SplitMix64::new(self.entropy_salt ^ ((replica as u64) << 32)).next_u64()
    }

    /// Scales an epoch budget by `epochs_scale` (minimum 1).
    pub fn scale_epochs(&self, epochs: u32) -> u32 {
        ((epochs as f32 * self.epochs_scale).round() as u32).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let s = ExperimentSettings::default();
        assert!(s.replicas >= 2);
        assert!(s.amp_ulps >= 0.0);
        assert_eq!(s.scale_epochs(10), 10);
    }

    #[test]
    fn entropy_differs_per_replica_but_is_stable() {
        let s = ExperimentSettings::default();
        assert_ne!(s.entropy_for(0), s.entropy_for(1));
        assert_eq!(s.entropy_for(3), s.entropy_for(3));
    }

    #[test]
    fn scaling_clamps_to_one() {
        let s = ExperimentSettings {
            epochs_scale: 0.01,
            ..ExperimentSettings::default()
        };
        assert_eq!(s.scale_epochs(10), 1);
    }
}
