//! Seed management: the policies that define the paper's four experimental
//! variants.
//!
//! A [`SeedPolicy`] answers one question — *does replica `r` reuse the base
//! algorithmic seed, or get its own?* — which is exactly the ALGO axis of
//! the paper's variant matrix. (The IMPL axis lives in `hwsim`, as the
//! execution mode and scheduler entropy.)

use crate::philox::Philox;
use crate::splitmix::SplitMix64;
use serde::{Deserialize, Serialize};

/// How algorithmic seeds are assigned to replicas.
///
/// # Example
///
/// ```
/// use detrand::SeedPolicy;
/// // The IMPL variant pins the seed; ALGO gives each replica its own.
/// assert_eq!(SeedPolicy::Fixed.seed_for(42, 3), 42);
/// assert_ne!(SeedPolicy::PerReplica.seed_for(42, 3), SeedPolicy::PerReplica.seed_for(42, 4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SeedPolicy {
    /// Every replica uses the identical base seed: algorithmic factors are
    /// *controlled* (the paper's `IMPL` and `Control` variants).
    Fixed,
    /// Each replica derives a distinct seed from the base: algorithmic
    /// factors are *free* (the `ALGO` and `ALGO+IMPL` variants).
    PerReplica,
}

impl SeedPolicy {
    /// The algorithmic seed for replica `replica` under this policy.
    pub fn seed_for(self, base: u64, replica: u32) -> u64 {
        match self {
            SeedPolicy::Fixed => base,
            SeedPolicy::PerReplica => {
                // Mix thoroughly so that adjacent replicas are uncorrelated.
                let mut m = SplitMix64::new(base ^ ((replica as u64) << 32 | 0xA1C0_5EED));
                m.next_u64()
            }
        }
    }

    /// The root generator for replica `replica` under this policy.
    pub fn root_for(self, base: u64, replica: u32) -> Philox {
        Philox::from_seed(self.seed_for(base, replica))
    }
}

/// Expands one user-facing seed into any number of well-mixed 64-bit seeds.
///
/// Used wherever a component needs several unrelated seeds (e.g. dataset
/// generation vs. model training) from a single CLI-provided value.
///
/// # Example
///
/// ```
/// use detrand::SeedSequence;
/// let mut seq = SeedSequence::new(42);
/// let a = seq.next_seed();
/// let b = seq.next_seed();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct SeedSequence {
    mix: SplitMix64,
}

impl SeedSequence {
    /// Creates a sequence from an entropy value.
    pub fn new(entropy: u64) -> Self {
        Self {
            mix: SplitMix64::new(entropy),
        }
    }

    /// Returns the next derived seed.
    pub fn next_seed(&mut self) -> u64 {
        self.mix.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_reuses_base() {
        for r in 0..10 {
            assert_eq!(SeedPolicy::Fixed.seed_for(99, r), 99);
        }
    }

    #[test]
    fn per_replica_policy_gives_distinct_seeds() {
        let seeds: Vec<u64> = (0..64)
            .map(|r| SeedPolicy::PerReplica.seed_for(99, r))
            .collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn per_replica_policy_is_replayable() {
        assert_eq!(
            SeedPolicy::PerReplica.seed_for(1, 3),
            SeedPolicy::PerReplica.seed_for(1, 3)
        );
    }

    #[test]
    fn seed_sequence_yields_distinct_values() {
        let mut s = SeedSequence::new(7);
        let a: Vec<u64> = (0..32).map(|_| s.next_seed()).collect();
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len());
    }
}
