//! The simulated kernel profiler (the reproduction's `nvprof`).
//!
//! Executes a workload's *cost model* — no tensors move — accumulating
//! simulated GPU time per kernel name across training steps. Regenerates
//! the paper's Figure 7 (top-20 kernel cumulative runtime, deterministic
//! vs. default) and Figure 8 (determinism overhead across models, GPUs and
//! filter sizes).

use crate::autotune::select_conv_kernels;
use crate::cost::CostModel;
use crate::device::Device;
use crate::exec::ExecutionMode;
use crate::workload::WorkloadOp;
use nstensor::reduce::sum_ordered_f64;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregated time of one kernel across a profiled run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelRecord {
    /// Kernel display name.
    pub name: String,
    /// Number of invocations.
    pub invocations: u64,
    /// Cumulative simulated time, in seconds.
    pub total_time_s: f64,
}

/// The profile of a workload: per-kernel aggregated simulated GPU time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    device: String,
    mode: ExecutionMode,
    steps: u64,
    records: Vec<KernelRecord>,
}

impl KernelProfile {
    /// The device name this profile was captured on.
    pub fn device(&self) -> &str {
        &self.device
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Number of training steps profiled.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// All kernel records, sorted by descending cumulative time.
    pub fn records(&self) -> &[KernelRecord] {
        &self.records
    }

    /// The `n` most expensive kernels.
    pub fn top_k(&self, n: usize) -> &[KernelRecord] {
        &self.records[..n.min(self.records.len())]
    }

    /// Total simulated GPU time across all kernels, in seconds.
    pub fn total_time_s(&self) -> f64 {
        sum_ordered_f64(self.records.iter().map(|r| r.total_time_s))
    }

    /// Number of distinct kernels scheduled.
    pub fn distinct_kernels(&self) -> usize {
        self.records.len()
    }

    /// Fraction of total time spent in the single hottest kernel — a
    /// measure of how skewed the time allocation is (the paper observes
    /// deterministic mode concentrating time in fewer kernels).
    pub fn top1_share(&self) -> f64 {
        let total = self.total_time_s();
        if total == 0.0 {
            return 0.0;
        }
        self.records.first().map_or(0.0, |r| r.total_time_s / total)
    }

    /// Number of distinct convolution algorithm families scheduled
    /// (winograd, fft, atomic GEMM, ...). Deterministic mode is restricted
    /// to a narrower set — the mechanism behind the paper's Figure 7.
    pub fn conv_algorithm_families(&self) -> usize {
        let mut fams: Vec<&str> = self
            .records
            .iter()
            .filter_map(|r| {
                let rest = r.name.split("_scudnn_").nth(1)?;
                // Family = algorithm tag up to the pass tag.
                let end = ["_fprop", "_dgrad", "_wgrad"]
                    .iter()
                    .filter_map(|t| rest.find(t))
                    .min()?;
                Some(&rest[..end])
            })
            .collect();
        fams.sort_unstable();
        fams.dedup();
        fams.len()
    }
}

/// Profiles `steps` training steps of a workload on a device in a mode.
///
/// Every op contributes its forward pass; convs and dense layers also
/// contribute dgrad and wgrad kernels (one training step = fwd + bwd).
///
/// # Example
///
/// ```
/// use hwsim::{profile_workload, Device, ExecutionMode, WorkloadOp};
/// use nstensor::ConvGeometry;
///
/// let ops = [WorkloadOp::Conv {
///     geom: ConvGeometry::new(16, 32, 3, 1, 1, 28, 28),
///     batch: 8,
/// }];
/// let nd = profile_workload(&ops, &Device::p100(), ExecutionMode::Default, 10);
/// let det = profile_workload(&ops, &Device::p100(), ExecutionMode::Deterministic, 10);
/// // Determinism costs simulated GPU time:
/// assert!(det.total_time_s() > nd.total_time_s());
/// ```
pub fn profile_workload(
    ops: &[WorkloadOp],
    device: &Device,
    mode: ExecutionMode,
    steps: u64,
) -> KernelProfile {
    let model = CostModel::for_device(device);
    let deterministic = mode == ExecutionMode::Deterministic;
    // BTreeMap, not HashMap: the aggregate is iterated into the sorted
    // record list below, and kernels tied on total time must come out in
    // the same order every run (detlint DL001).
    let mut agg: BTreeMap<String, KernelRecord> = BTreeMap::new();
    let mut add = |name: String, time_s: f64| {
        let e = agg.entry(name.clone()).or_insert(KernelRecord {
            name,
            invocations: 0,
            total_time_s: 0.0,
        });
        e.invocations += steps;
        e.total_time_s += time_s * steps as f64;
    };

    for op in ops {
        match *op {
            WorkloadOp::Conv { geom, batch } => {
                let plan = select_conv_kernels(&geom, batch, device, mode);
                for choice in plan.choices() {
                    add(choice.name.clone(), choice.time_s);
                }
            }
            WorkloadOp::Dense {
                batch,
                in_features,
                out_features,
            } => {
                let t = model.misc_op_time(op, deterministic);
                let det_tag = if deterministic { "seq" } else { "splitk" };
                // fwd, dgrad, wgrad GEMMs.
                add(
                    format!("sgemm_{det_tag}_nn_{in_features}x{out_features}"),
                    t,
                );
                add(
                    format!("sgemm_{det_tag}_nt_{out_features}x{in_features}"),
                    t,
                );
                add(
                    format!("sgemm_{det_tag}_tn_{in_features}x{out_features}_b{batch}"),
                    t,
                );
            }
            WorkloadOp::BatchNorm { elems } => {
                let t = model.misc_op_time(op, deterministic);
                let det_tag = if deterministic { "det" } else { "atomic" };
                add(format!("bn_fw_stats_{det_tag}"), t);
                add(
                    format!("bn_bw_reduce_{det_tag}"),
                    t * elems.clamp(1, 2) as f64 / 2.0,
                );
            }
            WorkloadOp::Pool { .. } => {
                let t = model.misc_op_time(op, deterministic);
                add("pooling_fw".to_string(), t);
                add("pooling_bw".to_string(), t);
            }
            WorkloadOp::Activation { .. } => {
                let t = model.misc_op_time(op, deterministic);
                add("relu_fw_bw_fused".to_string(), 2.0 * t);
            }
        }
    }

    let mut records: Vec<KernelRecord> = agg.into_values().collect();
    // Tie-break on name so equal-cost kernels keep a stable order.
    records.sort_by(|a, b| {
        b.total_time_s
            .total_cmp(&a.total_time_s)
            .then_with(|| a.name.cmp(&b.name))
    });
    KernelProfile {
        device: device.name().to_string(),
        mode,
        steps,
        records,
    }
}

#[cfg(test)]
// Tests assert exact float values: bit-identical replay is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use nstensor::ConvGeometry;

    fn tiny_workload() -> Vec<WorkloadOp> {
        vec![
            WorkloadOp::Conv {
                geom: ConvGeometry::new(3, 16, 3, 1, 1, 32, 32),
                batch: 8,
            },
            WorkloadOp::BatchNorm {
                elems: 16 * 32 * 32 * 8,
            },
            WorkloadOp::Activation {
                elems: 16 * 32 * 32 * 8,
            },
            WorkloadOp::Conv {
                geom: ConvGeometry::new(16, 32, 3, 1, 1, 16, 16),
                batch: 8,
            },
            WorkloadOp::Dense {
                batch: 8,
                in_features: 32,
                out_features: 10,
            },
        ]
    }

    #[test]
    fn profile_accumulates_over_steps() {
        let ops = tiny_workload();
        let p1 = profile_workload(&ops, &Device::v100(), ExecutionMode::Default, 1);
        let p100 = profile_workload(&ops, &Device::v100(), ExecutionMode::Default, 100);
        assert!((p100.total_time_s() / p1.total_time_s() - 100.0).abs() < 1e-6);
        assert_eq!(p100.steps(), 100);
    }

    #[test]
    fn deterministic_mode_costs_more() {
        let ops = tiny_workload();
        let nd = profile_workload(&ops, &Device::p100(), ExecutionMode::Default, 10);
        let det = profile_workload(&ops, &Device::p100(), ExecutionMode::Deterministic, 10);
        assert!(det.total_time_s() > nd.total_time_s());
    }

    #[test]
    fn deterministic_mode_uses_fewer_distinct_conv_kernels() {
        // With both winograd-eligible and fft-eligible convs, default mode
        // spreads across more algorithms.
        let ops = vec![
            WorkloadOp::Conv {
                geom: ConvGeometry::new(16, 32, 3, 1, 1, 28, 28),
                batch: 8,
            },
            WorkloadOp::Conv {
                geom: ConvGeometry::new(16, 32, 5, 1, 2, 28, 28),
                batch: 8,
            },
            WorkloadOp::Conv {
                geom: ConvGeometry::new(16, 32, 1, 1, 0, 28, 28),
                batch: 8,
            },
        ];
        let nd = profile_workload(&ops, &Device::v100(), ExecutionMode::Default, 1);
        let det = profile_workload(&ops, &Device::v100(), ExecutionMode::Deterministic, 1);
        assert!(det.distinct_kernels() <= nd.distinct_kernels());
        // Deterministic mode is confined to a narrower algorithm menu.
        assert!(det.conv_algorithm_families() < nd.conv_algorithm_families());
        assert!(nd.conv_algorithm_families() >= 3); // winograd + fft + atomic
    }

    #[test]
    fn records_sorted_descending() {
        let p = profile_workload(&tiny_workload(), &Device::t4(), ExecutionMode::Default, 5);
        let times: Vec<f64> = p.records().iter().map(|r| r.total_time_s).collect();
        for w in times.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(p.top_k(3).len() <= 3);
        assert!(p.top1_share() > 0.0 && p.top1_share() <= 1.0);
    }

    #[test]
    fn empty_workload_is_empty_profile() {
        let p = profile_workload(&[], &Device::v100(), ExecutionMode::Default, 10);
        assert_eq!(p.total_time_s(), 0.0);
        assert_eq!(p.distinct_kernels(), 0);
        assert_eq!(p.top1_share(), 0.0);
    }
}
