//! Human-readable and JSON rendering of a scan report.

use serde_json::Value;

use crate::{Finding, ScanReport};

fn render_finding(f: &Finding) -> String {
    format!(
        "{}:{}: {} [{}] {}",
        f.file,
        f.line,
        f.rule.as_str(),
        f.rule.taxonomy().as_str(),
        f.message
    )
}

/// Formats the report for terminal output.
pub fn human(report: &ScanReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&render_finding(f));
        out.push('\n');
    }
    for p in &report.problems {
        out.push_str(&format!("error: {}:{}: {}\n", p.file, p.line, p.message));
    }
    for f in &report.grandfathered {
        out.push_str(&format!("warning: {} [baselined]\n", render_finding(f)));
    }
    for (file, line, rule) in &report.unused_allows {
        out.push_str(&format!(
            "warning: {file}:{line}: unused detlint::allow({})\n",
            rule.as_str()
        ));
    }
    let status = if report.clean() { "clean" } else { "FAILED" };
    let baselined = if report.grandfathered.is_empty() {
        String::new()
    } else {
        format!("{} baselined, ", report.grandfathered.len())
    };
    out.push_str(&format!(
        "detlint: {status} — {} finding(s), {baselined}{} problem(s), \
         {} suppressed, {} file(s) scanned\n",
        report.findings.len(),
        report.problems.len(),
        report.suppressed.len(),
        report.files_scanned,
    ));
    out
}

fn finding_value(f: &Finding) -> Value {
    serde_json::json!({
        "rule": f.rule.as_str(),
        "taxonomy": f.rule.taxonomy().as_str(),
        "file": f.file,
        "line": f.line,
        "message": f.message,
    })
}

/// Formats the report as a JSON document (stable key order).
pub fn json(report: &ScanReport) -> Value {
    serde_json::json!({
        "clean": report.clean(),
        "files_scanned": report.files_scanned,
        "findings": report.findings.iter().map(finding_value).collect::<Vec<_>>(),
        "grandfathered": report
            .grandfathered
            .iter()
            .map(finding_value)
            .collect::<Vec<_>>(),
        "suppressed": report
            .suppressed
            .iter()
            .map(|(f, reason)| {
                let mut v = finding_value(f);
                if let Value::Obj(m) = &mut v {
                    m.insert(
                        "reason".to_string(),
                        Value::Str(reason.clone()),
                    );
                }
                v
            })
            .collect::<Vec<_>>(),
        "problems": report
            .problems
            .iter()
            .map(|p| {
                serde_json::json!({
                    "file": p.file,
                    "line": p.line,
                    "message": p.message,
                })
            })
            .collect::<Vec<_>>(),
        "unused_allows": report
            .unused_allows
            .iter()
            .map(|(file, line, rule)| {
                serde_json::json!({
                    "file": file,
                    "line": line,
                    "rule": rule.as_str(),
                })
            })
            .collect::<Vec<_>>(),
    })
}
