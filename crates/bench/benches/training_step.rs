//! One training step of each zoo model under deterministic vs
//! nondeterministic execution — the microbenchmark behind Figures 1/2/5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use detrand::Philox;
use hwsim::{Device, ExecutionContext, ExecutionMode};
use nnet::loss::softmax_cross_entropy;
use nnet::zoo;
use nstensor::{Shape, Tensor};

fn bench_training_step(c: &mut Criterion) {
    let root = Philox::from_seed(7);
    let mut group = c.benchmark_group("train_step_batch16");
    group.sample_size(20);
    for (name, mode) in [
        ("small_cnn/default", ExecutionMode::Default),
        ("small_cnn/deterministic", ExecutionMode::Deterministic),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            let mut net = zoo::small_cnn(12, 3, 10, false, &root);
            let mut exec = ExecutionContext::new(Device::v100(), mode, 3);
            let x = Tensor::full(Shape::of(&[16, 3, 12, 12]), 0.1);
            let labels: Vec<u32> = (0..16).map(|i| (i % 10) as u32).collect();
            let mut step = 0u64;
            b.iter(|| {
                let logits = net.forward(x.clone(), &mut exec, &root, step, true);
                let (_, dl) = softmax_cross_entropy(&logits, &labels);
                net.backward(dl, &mut exec);
                step += 1;
            });
        });
    }
    for (name, mode) in [
        ("micro_resnet18/default", ExecutionMode::Default),
        ("micro_resnet18/deterministic", ExecutionMode::Deterministic),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            let mut net = zoo::micro_resnet18(8, 3, 10, &root);
            let mut exec = ExecutionContext::new(Device::v100(), mode, 3);
            let x = Tensor::full(Shape::of(&[16, 3, 8, 8]), 0.1);
            let labels: Vec<u32> = (0..16).map(|i| (i % 10) as u32).collect();
            let mut step = 0u64;
            b.iter(|| {
                let logits = net.forward(x.clone(), &mut exec, &root, step, true);
                let (_, dl) = softmax_cross_entropy(&logits, &labels);
                net.backward(dl, &mut exec);
                step += 1;
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training_step);
criterion_main!(benches);
