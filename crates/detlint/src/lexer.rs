//! A lightweight Rust lexer for determinism linting.
//!
//! `syn` is unavailable offline, and full parsing is unnecessary: every
//! detlint rule works on token patterns plus coarse structure (statement
//! boundaries, enclosing `fn` signatures, `#[cfg(test)]` regions). The
//! lexer handles the parts that break naive text matching — strings (incl.
//! raw strings), char literals vs. lifetimes, nested block comments — and
//! records comments separately so suppressions can be parsed from them.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line.
    pub line: u32,
    /// Token payload.
    pub kind: TokKind,
}

/// Token classification; only what the rules need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// A single punctuation character.
    Punct(char),
    /// Numeric literal (raw text kept for float detection).
    Num(String),
    /// String or byte-string literal. Contents are kept (escapes
    /// unresolved) so rules can inspect e.g. `std::env::var("NAME")`
    /// arguments; rules must never pattern-match hazard identifiers
    /// against them.
    Str(String),
    /// Char or byte literal.
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// `true` if this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self.kind, TokKind::Punct(p) if p == c)
    }

    /// `true` if this token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }

    /// The string-literal contents, if this token is a string literal.
    pub fn str_text(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A comment with its location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line of the comment's start.
    pub line: u32,
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
    /// `true` if tokens precede the comment on its line.
    pub trailing: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// Tokens in source order.
    pub tokens: Vec<Tok>,
    /// All comments (line, block, and doc comments).
    pub comments: Vec<Comment>,
}

struct Lexer<'a> {
    chars: &'a [char],
    pos: usize,
    line: u32,
    out: LexedFile,
}

impl<'a> Lexer<'a> {
    fn peek(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, line: u32, kind: TokKind) {
        self.out.tokens.push(Tok { line, kind });
    }

    fn tokens_on_line(&self, line: u32) -> bool {
        self.out
            .tokens
            .iter()
            .rev()
            .take_while(|t| t.line == line)
            .next()
            .is_some()
    }

    fn lex_line_comment(&mut self) {
        let line = self.line;
        let trailing = self.tokens_on_line(line);
        self.bump();
        self.bump(); // the two slashes
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            line,
            text,
            trailing,
        });
    }

    fn lex_block_comment(&mut self) {
        let line = self.line;
        let trailing = self.tokens_on_line(line);
        self.bump();
        self.bump(); // `/*`
        let mut depth = 1u32;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.out.comments.push(Comment {
            line,
            text,
            trailing,
        });
    }

    /// Consumes a quoted string body after the opening `"`, returning the
    /// raw contents (escape sequences left as written, minus backslashes).
    fn lex_string_body(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => return text,
                '\\' => {
                    if let Some(escaped) = self.bump() {
                        text.push(escaped);
                    }
                }
                _ => text.push(c),
            }
        }
        text
    }

    /// Consumes a raw string after `r`/`br`; `hashes` is the number of `#`s.
    fn lex_raw_string_body(&mut self, hashes: usize) -> String {
        // Opening quote already consumed by caller.
        let mut text = String::new();
        loop {
            match self.bump() {
                None => return text,
                Some('"') => {
                    let mut seen = 0;
                    while seen < hashes && self.peek(0) == Some('#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        return text;
                    }
                    text.push('"');
                    for _ in 0..seen {
                        text.push('#');
                    }
                }
                Some(c) => text.push(c),
            }
        }
    }

    /// Tries to consume a raw/byte string prefix at an `r` or `b`.
    /// Returns `true` if a literal was consumed.
    fn try_string_prefix(&mut self) -> bool {
        let line = self.line;
        let c0 = self.peek(0);
        // b'x' byte char
        if c0 == Some('b') && self.peek(1) == Some('\'') {
            self.bump();
            self.bump();
            if self.peek(0) == Some('\\') {
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
            self.bump(); // closing quote
            self.push(line, TokKind::Char);
            return true;
        }
        // b"..."
        if c0 == Some('b') && self.peek(1) == Some('"') {
            self.bump();
            self.bump();
            let text = self.lex_string_body();
            self.push(line, TokKind::Str(text));
            return true;
        }
        // r"..." / r#"..."# / br#"..."#
        let (skip, raw_start) = match (c0, self.peek(1)) {
            (Some('r'), Some(n)) if n == '"' || n == '#' => (1, 1),
            (Some('b'), Some('r')) => match self.peek(2) {
                Some(n) if n == '"' || n == '#' => (2, 2),
                _ => return false,
            },
            _ => return false,
        };
        let mut hashes = 0;
        while self.peek(raw_start + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(raw_start + hashes) != Some('"') {
            return false; // raw identifier like r#fn, or plain ident
        }
        for _ in 0..(skip + hashes + 1) {
            self.bump();
        }
        let text = self.lex_raw_string_body(hashes);
        self.push(line, TokKind::Str(text));
        true
    }

    fn lex_number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            let hex = text.starts_with("0x") || text.starts_with("0b");
            let take = c.is_ascii_alphanumeric()
                || c == '_'
                || ((c == '+' || c == '-') && !hex && text.ends_with(['e', 'E']))
                || (c == '.'
                    && !hex
                    && !text.contains('.')
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if take {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(line, TokKind::Num(text));
    }

    fn lex_ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(line, TokKind::Ident(text));
    }

    fn run(mut self) -> LexedFile {
        while let Some(c) = self.peek(0) {
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.lex_line_comment();
            } else if c == '/' && self.peek(1) == Some('*') {
                self.lex_block_comment();
            } else if c == '"' {
                let line = self.line;
                self.bump();
                let text = self.lex_string_body();
                self.push(line, TokKind::Str(text));
            } else if c == '\'' {
                let line = self.line;
                // Lifetime vs char literal.
                let is_lifetime = self.peek(1).is_some_and(|n| n.is_alphabetic() || n == '_')
                    && self.peek(2) != Some('\'');
                if is_lifetime {
                    self.bump();
                    while let Some(n) = self.peek(0) {
                        if n.is_alphanumeric() || n == '_' {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(line, TokKind::Lifetime);
                } else {
                    self.bump();
                    if self.peek(0) == Some('\\') {
                        self.bump();
                        self.bump();
                    } else {
                        self.bump();
                    }
                    // Closing quote (missing only in malformed source).
                    if self.peek(0) == Some('\'') {
                        self.bump();
                    }
                    self.push(line, TokKind::Char);
                }
            } else if (c == 'r' || c == 'b') && self.try_string_prefix() {
                // consumed a raw/byte literal
            } else if c.is_ascii_digit() {
                self.lex_number();
            } else if c.is_alphabetic() || c == '_' {
                self.lex_ident();
            } else {
                let line = self.line;
                self.bump();
                self.push(line, TokKind::Punct(c));
            }
        }
        self.out
    }
}

/// Lexes one file's source text.
pub fn lex(source: &str) -> LexedFile {
    let chars: Vec<char> = source.chars().collect();
    Lexer {
        chars: &chars,
        pos: 0,
        line: 1,
        out: LexedFile::default(),
    }
    .run()
}

/// Computes the 1-based line ranges (inclusive) of `#[cfg(test)]` items and
/// `#[test]` functions, so rules can skip test-only code.
pub fn test_regions(tokens: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_test_attr(tokens, i) {
            // Skip over any further attributes to the item, then to its `{`.
            let mut j = i;
            while j < tokens.len() && tokens[j].is_punct('#') {
                j = skip_attr(tokens, j);
            }
            let start_line = tokens[i].line;
            while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct('{') {
                let close = matching_brace(tokens, j);
                regions.push((start_line, tokens[close.min(tokens.len() - 1)].line));
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    regions
}

/// `true` if an attribute starting at `i` is `#[cfg(test)]` or `#[test]`.
fn is_test_attr(tokens: &[Tok], i: usize) -> bool {
    if !tokens.get(i).is_some_and(|t| t.is_punct('#'))
        || !tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        return false;
    }
    match tokens.get(i + 2).and_then(Tok::ident) {
        Some("test") => tokens.get(i + 3).is_some_and(|t| t.is_punct(']')),
        Some("cfg") => {
            tokens.get(i + 3).is_some_and(|t| t.is_punct('('))
                && tokens.get(i + 4).is_some_and(|t| t.is_ident("test"))
                && tokens.get(i + 5).is_some_and(|t| t.is_punct(')'))
        }
        _ => false,
    }
}

/// Returns the index just past an attribute starting at `#`.
fn skip_attr(tokens: &[Tok], i: usize) -> usize {
    let mut j = i + 1; // at `[`
    if !tokens.get(j).is_some_and(|t| t.is_punct('[')) {
        return i + 1;
    }
    let mut depth = 0i32;
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    tokens.len()
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < tokens.len() {
        if tokens[j].is_punct('{') {
            depth += 1;
        } else if tokens[j].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    tokens.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_separated() {
        let src = r##"
// a comment with HashMap inside
let x = "thread_rng in a string"; /* block HashMap */
let y = r#"raw "quoted" SystemTime"#;
"##;
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(!lexed
            .tokens
            .iter()
            .any(|t| t.is_ident("thread_rng") || t.is_ident("HashMap")));
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| matches!(t.kind, TokKind::Str(_)))
                .count(),
            2
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn numbers_keep_float_shape() {
        let lexed = lex("let a = 1e-3; let b = 0.5f32; let r = 0..5;");
        let nums: Vec<String> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Num(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, ["1e-3", "0.5f32", "0", "5"]);
    }

    #[test]
    fn cfg_test_regions_cover_mod() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n fn t() {}\n}\nfn after() {}\n";
        let lexed = lex(src);
        let regions = test_regions(&lexed.tokens);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].0, 2);
        assert!(regions[0].1 >= 5);
    }

    #[test]
    fn trailing_comments_flagged() {
        let lexed = lex("let x = 1; // detlint::allow(DL001, reason = \"demo\")\n// standalone\n");
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
    }
}
