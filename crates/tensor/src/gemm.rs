//! Cache-blocked, packed GEMM engine that is bit-identical to the
//! per-element reference path in [`crate::linalg`] for every
//! [`ReduceOrder`].
//!
//! # Why a blocked engine can be bit-identical at all
//!
//! Floating-point addition is not associative, so a conventional blocked
//! GEMM (which tiles the *k* dimension and combines per-tile partials)
//! would change every output's accumulation order and therefore its bits.
//! This engine never does that. The invariant is:
//!
//! > **Blocking may reorder *which outputs* are computed when; it must
//! > never reorder the k-dimension combine chain *inside* one output.**
//!
//! Each output element's reduction is executed exactly as
//! [`Reducer::dot`] would execute it — a single left-to-right chain for
//! [`ReduceOrder::Sequential`], the `e % lanes` lane fill plus fixed
//! index-order combine for [`ReduceOrder::FixedTree`], and the same lane
//! fill plus the scheduler-drawn permutation for
//! [`ReduceOrder::Permuted`]. The speed comes from vectorizing *across*
//! outputs: the micro-kernel advances [`NR`] independent accumulation
//! chains (one per output column) with each pass over k, which the
//! auto-vectorizer turns into wide FMAs without touching any single
//! chain's order.
//!
//! The remaining subtlety is the scheduler RNG: the reference path draws
//! permutations interleaved with compute, one output at a time in
//! row-major order. [`Reducer::plan_dots`] pre-draws all of them in that
//! exact order into a [`DotPlan`] *before* the engine runs, so tiles and
//! threads are free to race over outputs while the reducer ends the GEMM
//! in precisely the state `m·n` sequential `dot` calls would have left
//! it. That makes the engine bit-invariant in the thread count by
//! construction.
//!
//! [`ReduceOrder`]: crate::reduce::ReduceOrder
//! [`Reducer::dot`]: crate::reduce::Reducer::dot
//! [`Reducer::plan_dots`]: crate::reduce::Reducer::plan_dots

use crate::error::ShapeError;
use crate::pack::{pack_b_panels, pack_bt_panels, transpose_into, MR, NR};
use crate::reduce::{DotPlan, ReduceOrder, Reducer, MAX_LANES};
use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// Computes `C = A × B` through the blocked engine.
///
/// Bit-identical to [`crate::linalg::matmul`] for any reducer state, but
/// uses `ws` for scratch and runs row bands on up to `threads` threads.
///
/// # Errors
///
/// Returns [`ShapeError`] if the operands are not rank 2 or the inner
/// dimensions disagree.
pub fn matmul_ws(
    a: &Tensor,
    b: &Tensor,
    red: &mut Reducer,
    threads: usize,
    ws: &mut Workspace,
) -> Result<Tensor, ShapeError> {
    check_rank2("matmul", a, b)?;
    let (m, ka) = (a.shape().dim(0), a.shape().dim(1));
    let (kb, n) = (b.shape().dim(0), b.shape().dim(1));
    if ka != kb {
        return Err(ShapeError::mismatch("matmul", &a.shape(), &b.shape()));
    }
    let plan = red.plan_dots(m * n, ka);
    let mut out = Tensor::zeros(Shape::of(&[m, n]));
    if m != 0 && n != 0 {
        let mut packed = ws.take_scratch(n.div_ceil(NR) * ka * NR);
        pack_b_panels(b.as_slice(), kb, n, &mut packed);
        gemm_packed_planned(
            a.as_slice(),
            &packed,
            m,
            n,
            ka,
            &plan,
            threads,
            out.as_mut_slice(),
        );
        ws.recycle(packed);
    }
    Ok(out)
}

/// Computes `C = Aᵀ × B` through the blocked engine.
///
/// Bit-identical to [`crate::linalg::matmul_at_b`].
///
/// # Errors
///
/// Returns [`ShapeError`] if the operands are not rank 2 or `A`'s rows do
/// not match `B`'s rows.
pub fn matmul_at_b_ws(
    a: &Tensor,
    b: &Tensor,
    red: &mut Reducer,
    threads: usize,
    ws: &mut Workspace,
) -> Result<Tensor, ShapeError> {
    check_rank2("matmul_at_b", a, b)?;
    let (ka, m) = (a.shape().dim(0), a.shape().dim(1));
    let (kb, n) = (b.shape().dim(0), b.shape().dim(1));
    if ka != kb {
        return Err(ShapeError::mismatch("matmul_at_b", &a.shape(), &b.shape()));
    }
    let plan = red.plan_dots(m * n, ka);
    let mut out = Tensor::zeros(Shape::of(&[m, n]));
    if m != 0 && n != 0 {
        let mut at = ws.take_scratch(m * ka);
        transpose_into(a.as_slice(), ka, m, &mut at);
        let mut packed = ws.take_scratch(n.div_ceil(NR) * kb * NR);
        pack_b_panels(b.as_slice(), kb, n, &mut packed);
        gemm_packed_planned(&at, &packed, m, n, ka, &plan, threads, out.as_mut_slice());
        ws.recycle(at);
        ws.recycle(packed);
    }
    Ok(out)
}

/// Computes `C = A × Bᵀ` through the blocked engine.
///
/// Bit-identical to [`crate::linalg::matmul_a_bt`]. This is the engine's
/// native operand layout (`B`'s rows are already the output columns), so
/// no transpose scratch is needed.
///
/// # Errors
///
/// Returns [`ShapeError`] if the operands are not rank 2 or the column
/// counts disagree.
pub fn matmul_a_bt_ws(
    a: &Tensor,
    b: &Tensor,
    red: &mut Reducer,
    threads: usize,
    ws: &mut Workspace,
) -> Result<Tensor, ShapeError> {
    check_rank2("matmul_a_bt", a, b)?;
    let (m, ka) = (a.shape().dim(0), a.shape().dim(1));
    let (n, kb) = (b.shape().dim(0), b.shape().dim(1));
    if ka != kb {
        return Err(ShapeError::mismatch("matmul_a_bt", &a.shape(), &b.shape()));
    }
    let plan = red.plan_dots(m * n, ka);
    let mut out = Tensor::zeros(Shape::of(&[m, n]));
    gemm_bt_planned(
        a.as_slice(),
        b.as_slice(),
        m,
        n,
        ka,
        &plan,
        threads,
        ws,
        out.as_mut_slice(),
    );
    Ok(out)
}

/// The engine core: `out[i, j] = plan-ordered reduction of
/// Σ_kk a[i, kk] · bt[j, kk]`.
///
/// `a` is row-major `[m, k]`; `bt` is row-major `[n, k]` (each row one
/// output column); `out` is row-major `[m, n]`. The `plan` must have been
/// drawn for exactly `m * n` outputs of length `k` (or be a
/// [`DotPlan::fixed_lanes`] plan, which has no per-output state). Rows
/// are split into contiguous bands across up to `threads` threads; the
/// result is bitwise independent of `threads` because all per-output
/// combine state lives in `plan`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_bt_planned(
    a: &[f32],
    bt: &[f32],
    m: usize,
    n: usize,
    k: usize,
    plan: &DotPlan,
    threads: usize,
    ws: &mut Workspace,
    out: &mut [f32],
) {
    assert_eq!(bt.len(), n * k, "gemm Bt size");
    assert_eq!(out.len(), m * n, "gemm out size");
    if m == 0 || n == 0 {
        return;
    }
    let mut packed = ws.take_scratch(n.div_ceil(NR) * k * NR);
    pack_bt_panels(bt, n, k, &mut packed);
    gemm_packed_planned(a, &packed, m, n, k, plan, threads, out);
    ws.recycle(packed);
}

/// The engine core on an already-packed B operand (see
/// [`pack_b_panels`] / [`pack_bt_panels`] for the panel layout): callers
/// that produce panels directly — the conv lowering writes im2col output
/// straight into panel form — skip the intermediate `[n, k]` buffer
/// entirely.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_packed_planned(
    a: &[f32],
    packed: &[f32],
    m: usize,
    n: usize,
    k: usize,
    plan: &DotPlan,
    threads: usize,
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "gemm A size");
    assert_eq!(packed.len(), n.div_ceil(NR) * k * NR, "gemm packed size");
    assert_eq!(out.len(), m * n, "gemm out size");
    if plan.order == ReduceOrder::Permuted {
        assert_eq!(plan.specs.len(), m * n, "plan drawn for a different GEMM");
    }
    if m == 0 || n == 0 {
        return;
    }

    let threads_eff = threads.max(1).min(m);
    if threads_eff == 1 {
        run_band(a, packed, plan, n, k, 0, out);
    } else {
        let band_rows = m.div_ceil(threads_eff);
        std::thread::scope(|scope| {
            for (band_idx, band) in out.chunks_mut(band_rows * n).enumerate() {
                let row0 = band_idx * band_rows;
                scope.spawn(move || {
                    run_band(a, packed, plan, n, k, row0, band);
                });
            }
        });
    }
}

/// Computes one contiguous row band `[row0 .. row0 + band.len() / n)` of
/// the output.
fn run_band(
    a: &[f32],
    packed: &[f32],
    plan: &DotPlan,
    n: usize,
    k: usize,
    row0: usize,
    band: &mut [f32],
) {
    let rows = band.len() / n;
    match plan.order {
        ReduceOrder::Sequential => band_sequential(a, packed, n, k, row0, rows, band),
        // A single lane *is* one left-to-right chain: the lane fill puts
        // every element in lane 0 in increasing-k order and the combine
        // reads it back, so the fast sequential kernel computes the same
        // bits. Permuted adds only the per-output amplification scale
        // (its draws are 0 when lanes == 1).
        ReduceOrder::FixedTree if plan.lanes == 1 => {
            band_sequential(a, packed, n, k, row0, rows, band)
        }
        ReduceOrder::Permuted if plan.lanes == 1 => {
            band_sequential(a, packed, n, k, row0, rows, band);
            if plan.amplified {
                for (i, o) in band.iter_mut().enumerate() {
                    *o *= plan.specs[row0 * n + i].scale;
                }
            }
        }
        ReduceOrder::FixedTree => band_fixed_tree(a, packed, plan.lanes, n, k, row0, rows, band),
        ReduceOrder::Permuted => band_permuted(a, packed, plan, n, k, row0, rows, band),
    }
}

/// Reads the `NR`-wide panel row at depth `kk` as a fixed-size array so
/// the optimizer sees compile-time trip counts (no bounds checks, clean
/// vector code).
#[inline(always)]
fn panel_row(panel: &[f32], kk: usize) -> &[f32; NR] {
    panel[kk * NR..kk * NR + NR]
        .try_into()
        .expect("panel row is NR wide")
}

/// Sequential micro-kernel: an `MR × NR` register tile of *independent*
/// single-chain accumulators. Each output's chain is
/// `acc += a[i, kk] · b[kk, j]` for `kk = 0..k` — the identical
/// left-to-right chain [`Reducer::dot`] runs — while the `NR`-wide inner
/// loop and `MR` parallel rows give the CPU wide FMAs and ILP.
fn band_sequential(
    a: &[f32],
    packed: &[f32],
    n: usize,
    k: usize,
    row0: usize,
    rows: usize,
    band: &mut [f32],
) {
    let panels = n.div_ceil(NR);
    for p in 0..panels {
        let panel = &packed[p * k * NR..(p + 1) * k * NR];
        let col0 = p * NR;
        let cols = NR.min(n - col0);
        let mut i = 0;
        while i < rows {
            let rm = MR.min(rows - i);
            let arows = tile_rows(a, k, row0 + i, rm);
            let mut acc = [[0f32; NR]; MR];
            // The r loop always runs all MR rows (remainder tiles repeat
            // the last real row and discard the duplicates below) so the
            // inner loops have fixed trip counts — no bounds checks, clean
            // vector code.
            #[allow(clippy::needless_range_loop)] // kk walks panel and arows in lockstep
            for kk in 0..k {
                let pr = panel_row(panel, kk);
                for r in 0..MR {
                    let av = arows[r][kk];
                    for j in 0..NR {
                        acc[r][j] += av * pr[j];
                    }
                }
            }
            for r in 0..rm {
                let orow = &mut band[(i + r) * n + col0..(i + r) * n + col0 + cols];
                orow.copy_from_slice(&acc[r][..cols]);
            }
            i += rm;
        }
    }
}

/// The `MR` A-row slices of one register tile, with remainder tiles
/// clamped to the last real row (the kernels compute the duplicate rows
/// and discard them — cheaper than a variable trip count in the hot
/// loop).
#[inline(always)]
fn tile_rows(a: &[f32], k: usize, first: usize, rm: usize) -> [&[f32]; MR] {
    core::array::from_fn(|r| {
        let row = first + r.min(rm - 1);
        &a[row * k..row * k + k]
    })
}

/// Computes the lane-partial vectors of one `rm × NR` tile, one lane at a
/// time, entirely in registers, invoking `sink(r, lane_partials)` for each
/// lane in **increasing lane order**.
///
/// Lane `dl` owns the k indices `dl, dl + l, dl + 2l, …` — the same
/// assignment as the reference `p[e % l] += a[e] · b[e]` fill — and its
/// chain is accumulated in increasing-k order, so each invocation hands
/// the sink the exact reference lane partial. Looping lanes outermost
/// (instead of materializing an `l × NR` buffer) keeps every accumulator
/// in registers: the k-strided walks stay inside one row of `a` (≤ a few
/// KiB) and one packed panel, both L1-resident.
#[inline(always)]
fn for_each_lane_partial(
    arows: &[&[f32]; MR],
    panel: &[f32],
    l: usize,
    k: usize,
    rm: usize,
    mut sink: impl FnMut(usize, usize, &[f32; NR]),
) {
    for dl in 0..l {
        let mut lane = [[0f32; NR]; MR];
        let mut kk = dl;
        while kk < k {
            let pr = panel_row(panel, kk);
            for r in 0..MR {
                let av = arows[r][kk];
                for j in 0..NR {
                    lane[r][j] += av * pr[j];
                }
            }
            kk += l;
        }
        for (r, partial) in lane.iter().enumerate().take(rm) {
            sink(r, dl, partial);
        }
    }
}

/// [`ReduceOrder::FixedTree`] micro-kernel: no lane buffer at all. The
/// running sum starts at 0.0 and folds each lane partial in increasing
/// lane order — bit-identical to the reference
/// `p[..l].iter().sum::<f32>()` — with all `NR` output columns advancing
/// together so the combine vectorizes across columns.
#[allow(clippy::too_many_arguments)]
fn band_fixed_tree(
    a: &[f32],
    packed: &[f32],
    l: usize,
    n: usize,
    k: usize,
    row0: usize,
    rows: usize,
    band: &mut [f32],
) {
    let panels = n.div_ceil(NR);
    for p in 0..panels {
        let panel = &packed[p * k * NR..(p + 1) * k * NR];
        let col0 = p * NR;
        let cols = NR.min(n - col0);
        let mut i = 0;
        while i < rows {
            let rm = MR.min(rows - i);
            let arows = tile_rows(a, k, row0 + i, rm);
            let mut s = [[0f32; NR]; MR];
            for_each_lane_partial(&arows, panel, l, k, rm, |r, _dl, partial| {
                for j in 0..NR {
                    s[r][j] += partial[j];
                }
            });
            for r in 0..rm {
                let orow = &mut band[(i + r) * n + col0..(i + r) * n + col0 + cols];
                orow.copy_from_slice(&s[r][..cols]);
            }
            i += rm;
        }
    }
}

/// [`ReduceOrder::Permuted`] micro-kernel: lane partials are computed in
/// registers (one store per lane, never load-modify-store), then each
/// output column combines its lane column under the pre-drawn
/// [`PermuteSpec`](crate::reduce::PermuteSpec) for that output — the two
/// transpositions, the rotated left-to-right sum, and (when the plan is
/// amplified) the scheduler-drawn scale.
#[allow(clippy::too_many_arguments)]
fn band_permuted(
    a: &[f32],
    packed: &[f32],
    plan: &DotPlan,
    n: usize,
    k: usize,
    row0: usize,
    rows: usize,
    band: &mut [f32],
) {
    let l = plan.lanes;
    let panels = n.div_ceil(NR);
    // `MR × l × NR` lane partials (row-major, lane-major within a row) —
    // ≤ 8 KiB, L1-resident. Written exactly once per tile, so no zeroing.
    let mut lanebuf = vec![0f32; MR * l * NR];
    for p in 0..panels {
        let panel = &packed[p * k * NR..(p + 1) * k * NR];
        let col0 = p * NR;
        let cols = NR.min(n - col0);
        let mut i = 0;
        while i < rows {
            let rm = MR.min(rows - i);
            let arows = tile_rows(a, k, row0 + i, rm);
            {
                let lanebuf = &mut lanebuf;
                for_each_lane_partial(&arows, panel, l, k, rm, |r, dl, partial| {
                    lanebuf[(r * l + dl) * NR..(r * l + dl) * NR + NR].copy_from_slice(partial);
                });
            }
            for r in 0..rm {
                let lanes_r = &lanebuf[r * l * NR..(r + 1) * l * NR];
                let orow = &mut band[(i + r) * n + col0..(i + r) * n + col0 + cols];
                for (j, o) in orow.iter_mut().enumerate() {
                    let spec = &plan.specs[(row0 + i + r) * n + col0 + j];
                    let mut tmp = [0f32; MAX_LANES];
                    for lane in 0..l {
                        tmp[lane] = lanes_r[lane * NR + j];
                    }
                    let part = &mut tmp[..l];
                    part.swap(0, spec.j1 as usize);
                    part.swap(1.min(l - 1), spec.j2 as usize);
                    // Rotated read order (rot, …, l-1, 0, …, rot-1)
                    // without a per-element modulo.
                    let rot = spec.rot as usize;
                    let mut s = 0f32;
                    for &v in &part[rot..] {
                        s += v;
                    }
                    for &v in &part[..rot] {
                        s += v;
                    }
                    if plan.amplified {
                        s *= spec.scale;
                    }
                    *o = s;
                }
            }
            i += rm;
        }
    }
}

fn check_rank2(op: &'static str, a: &Tensor, b: &Tensor) -> Result<(), ShapeError> {
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return Err(ShapeError::new(
            op,
            format!(
                "expected rank-2 operands, got {} and {}",
                a.shape(),
                b.shape()
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
// Bit-identity to the reference path is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::linalg::{matmul_a_bt_reference, matmul_at_b_reference, matmul_reference};

    fn filled(rows: usize, cols: usize, salt: u64) -> Tensor {
        let mut seed = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let data = (0..rows * cols)
            .map(|_| {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((seed >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect();
        Tensor::from_vec(Shape::of(&[rows, cols]), data).unwrap()
    }

    fn reducers() -> Vec<Reducer> {
        let mut v = Vec::new();
        for order in [
            ReduceOrder::Sequential,
            ReduceOrder::FixedTree,
            ReduceOrder::Permuted,
        ] {
            for lanes in [1, 3, 40, MAX_LANES] {
                v.push(Reducer::new(order, lanes, 77));
                v.push(Reducer::new(order, lanes, 77).with_amplification(1e4));
            }
        }
        v
    }

    fn assert_bits_eq(fast: &Tensor, reference: &Tensor, what: &str) {
        assert_eq!(fast.shape(), reference.shape(), "{what}: shape");
        for (idx, (x, y)) in fast.as_slice().iter().zip(reference.as_slice()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: element {idx}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matmul_bit_identical_to_reference_all_orders() {
        for (m, k, n) in [(1, 1, 1), (3, 5, 2), (7, 129, 9), (16, 40, 24)] {
            let a = filled(m, k, 1);
            let b = filled(k, n, 2);
            for red in reducers() {
                let mut fast_red = red.clone();
                let mut ref_red = red.clone();
                let mut ws = Workspace::new();
                let fast = matmul_ws(&a, &b, &mut fast_red, 1, &mut ws).unwrap();
                let reference = matmul_reference(&a, &b, &mut ref_red).unwrap();
                assert_bits_eq(&fast, &reference, "matmul");
                // Reducer state must also be in sync (same RNG position,
                // same invocation count) for the *next* op to agree.
                assert_eq!(fast_red.invocations(), ref_red.invocations());
                let probe = filled(1, k.max(1), 3);
                assert_eq!(
                    fast_red.dot(probe.as_slice(), probe.as_slice()).to_bits(),
                    ref_red.dot(probe.as_slice(), probe.as_slice()).to_bits(),
                    "reducer RNG state diverged"
                );
            }
        }
    }

    #[test]
    fn at_b_and_a_bt_bit_identical_to_reference() {
        let (m, k, n) = (6, 33, 10);
        for red in reducers() {
            let mut ws = Workspace::new();
            let a = filled(k, m, 4);
            let b = filled(k, n, 5);
            let fast = matmul_at_b_ws(&a, &b, &mut red.clone(), 2, &mut ws).unwrap();
            let reference = matmul_at_b_reference(&a, &b, &mut red.clone()).unwrap();
            assert_bits_eq(&fast, &reference, "matmul_at_b");

            let a = filled(m, k, 6);
            let b = filled(n, k, 7);
            let fast = matmul_a_bt_ws(&a, &b, &mut red.clone(), 2, &mut ws).unwrap();
            let reference = matmul_a_bt_reference(&a, &b, &mut red.clone()).unwrap();
            assert_bits_eq(&fast, &reference, "matmul_a_bt");
        }
    }

    #[test]
    fn thread_count_is_bitwise_irrelevant() {
        let (m, k, n) = (13, 57, 11);
        let a = filled(m, k, 8);
        let b = filled(k, n, 9);
        for red in reducers() {
            let mut ws = Workspace::new();
            let one = matmul_ws(&a, &b, &mut red.clone(), 1, &mut ws).unwrap();
            for threads in [2, 3, 8, 64] {
                let many = matmul_ws(&a, &b, &mut red.clone(), threads, &mut ws).unwrap();
                assert_bits_eq(&many, &one, "threads");
            }
        }
    }

    #[test]
    fn degenerate_shapes() {
        let mut ws = Workspace::new();
        for red in reducers() {
            // k = 0: every output is an empty reduction.
            let a = Tensor::zeros(Shape::of(&[3, 0]));
            let b = Tensor::zeros(Shape::of(&[0, 4]));
            let fast = matmul_ws(&a, &b, &mut red.clone(), 2, &mut ws).unwrap();
            let reference = matmul_reference(&a, &b, &mut red.clone()).unwrap();
            assert_bits_eq(&fast, &reference, "k=0");
            // n = 0: no outputs at all.
            let a = filled(3, 4, 10);
            let b = Tensor::zeros(Shape::of(&[4, 0]));
            let mut fast_red = red.clone();
            let mut ref_red = red.clone();
            let fast = matmul_ws(&a, &b, &mut fast_red, 2, &mut ws).unwrap();
            let reference = matmul_reference(&a, &b, &mut ref_red).unwrap();
            assert_bits_eq(&fast, &reference, "n=0");
            assert_eq!(fast_red.invocations(), ref_red.invocations());
        }
    }

    #[test]
    fn shape_errors_match_reference_path() {
        let mut ws = Workspace::new();
        let mut red = Reducer::sequential();
        let a = filled(2, 3, 11);
        let b = filled(2, 2, 12);
        assert!(matmul_ws(&a, &b, &mut red, 1, &mut ws).is_err());
        let r4 = Tensor::zeros(Shape::of(&[2, 2, 1, 1]));
        assert!(matmul_ws(&r4, &b, &mut red, 1, &mut ws).is_err());
        let b3 = filled(3, 2, 13);
        assert!(matmul_at_b_ws(&a, &b3, &mut red, 1, &mut ws).is_err());
        assert!(matmul_a_bt_ws(&a, &b, &mut red, 1, &mut ws).is_err());
    }
}
