//! Execution contexts: the bridge from a (device, mode) pair to the
//! accumulation order of every reduction class in a training run.

use crate::device::{Architecture, Device};
use detrand::SplitMix64;
use nstensor::{ReduceOrder, Reducer};
use serde::{Deserialize, Serialize};

/// Framework-level execution mode — the paper's "TF deterministic ops"
/// switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Fastest available kernels; nondeterministic on GPUs.
    Default,
    /// Only deterministic kernels (the software patches the paper measures
    /// the cost of).
    Deterministic,
}

/// Classes of reduction in a training step, distinguished because hardware
/// routes them differently (e.g. Tensor Cores run matmuls on systolic units
/// but fall back to CUDA cores for gradient and statistics accumulations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Forward matmul/conv inner products.
    MatmulForward,
    /// Input-gradient (dgrad) accumulations.
    InputGrad,
    /// Weight-gradient (wgrad) accumulations — reductions across the batch.
    WeightGrad,
    /// Batch statistics (batch-norm mean/variance).
    Statistics,
    /// Bias sums and other miscellaneous accumulations.
    Misc,
}

impl OpClass {
    /// All classes, in a stable order.
    pub const ALL: [OpClass; 5] = [
        OpClass::MatmulForward,
        OpClass::InputGrad,
        OpClass::WeightGrad,
        OpClass::Statistics,
        OpClass::Misc,
    ];

    fn index(self) -> usize {
        match self {
            OpClass::MatmulForward => 0,
            OpClass::InputGrad => 1,
            OpClass::WeightGrad => 2,
            OpClass::Statistics => 3,
            OpClass::Misc => 4,
        }
    }

    /// Whether this class runs on systolic units when the device has them.
    fn is_matmul_class(self) -> bool {
        matches!(self, OpClass::MatmulForward | OpClass::InputGrad)
    }
}

/// The execution state of one simulated run: a reducer per op class, wired
/// to the device's accumulation semantics and (for nondeterministic
/// execution) to the run's scheduler entropy.
///
/// See the [crate-level docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct ExecutionContext {
    device: Device,
    mode: ExecutionMode,
    reducers: [Reducer; 5],
}

impl ExecutionContext {
    /// Creates a context for `device` in `mode`.
    ///
    /// `entropy` seeds the scheduler RNG. It is only consumed when the
    /// device/mode combination is nondeterministic; deterministic execution
    /// produces bitwise-identical results for any entropy.
    pub fn new(device: Device, mode: ExecutionMode, entropy: u64) -> Self {
        Self::with_amplification(device, mode, entropy, 0.0)
    }

    /// Creates a context with the amplified-noise tier enabled
    /// (see [`nstensor::Reducer::with_amplification`]): `amp_ulps` models
    /// the longer accumulation chains of full-scale workloads. Ignored by
    /// deterministic execution.
    pub fn with_amplification(
        device: Device,
        mode: ExecutionMode,
        entropy: u64,
        amp_ulps: f32,
    ) -> Self {
        let mut seeder = SplitMix64::new(entropy);
        let reducers = core::array::from_fn(|i| {
            let class = OpClass::ALL[i];
            let order = Self::order_for(&device, mode, class);
            let lanes = device.lanes();
            let seed = seeder.next_u64();
            Reducer::new(order, lanes, seed).with_amplification(amp_ulps)
        });
        Self {
            device,
            mode,
            reducers,
        }
    }

    /// The accumulation order a given op class uses on this device/mode.
    pub fn order_for(device: &Device, mode: ExecutionMode, class: OpClass) -> ReduceOrder {
        if device.arch() == Architecture::Cpu {
            return ReduceOrder::Sequential;
        }
        if device.deterministic_by_design() || mode == ExecutionMode::Deterministic {
            return ReduceOrder::FixedTree;
        }
        if device.systolic_matmul() && class.is_matmul_class() {
            // Tensor Cores: fixed-order systolic accumulation for matmuls...
            ReduceOrder::FixedTree
        } else {
            // ...but everything else still lands on CUDA cores.
            ReduceOrder::Permuted
        }
    }

    /// The reducer for an op class.
    pub fn reducer(&mut self, class: OpClass) -> &mut Reducer {
        &mut self.reducers[class.index()]
    }

    /// The device.
    pub fn device(&self) -> Device {
        self.device
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Whether any op class in this context is nondeterministic.
    pub fn is_nondeterministic(&self) -> bool {
        self.reducers.iter().any(|r| !r.order().is_deterministic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_is_sequential_everywhere() {
        for class in OpClass::ALL {
            assert_eq!(
                ExecutionContext::order_for(&Device::cpu(), ExecutionMode::Default, class),
                ReduceOrder::Sequential
            );
        }
    }

    #[test]
    fn gpu_default_mode_is_permuted_everywhere() {
        for class in OpClass::ALL {
            assert_eq!(
                ExecutionContext::order_for(&Device::v100(), ExecutionMode::Default, class),
                ReduceOrder::Permuted
            );
        }
    }

    #[test]
    fn gpu_deterministic_mode_is_fixed_everywhere() {
        for class in OpClass::ALL {
            assert_eq!(
                ExecutionContext::order_for(&Device::p100(), ExecutionMode::Deterministic, class),
                ReduceOrder::FixedTree
            );
        }
    }

    #[test]
    fn tensor_cores_split_by_class() {
        let d = Device::rtx5000_tensor_cores();
        assert_eq!(
            ExecutionContext::order_for(&d, ExecutionMode::Default, OpClass::MatmulForward),
            ReduceOrder::FixedTree
        );
        assert_eq!(
            ExecutionContext::order_for(&d, ExecutionMode::Default, OpClass::WeightGrad),
            ReduceOrder::Permuted
        );
        assert_eq!(
            ExecutionContext::order_for(&d, ExecutionMode::Default, OpClass::Statistics),
            ReduceOrder::Permuted
        );
        // So TC execution is still nondeterministic overall:
        let ctx = ExecutionContext::new(d, ExecutionMode::Default, 5);
        assert!(ctx.is_nondeterministic());
    }

    #[test]
    fn tpu_is_deterministic_in_default_mode() {
        let ctx = ExecutionContext::new(Device::tpu_v2(), ExecutionMode::Default, 5);
        assert!(!ctx.is_nondeterministic());
    }

    #[test]
    fn deterministic_mode_ignores_entropy() {
        let xs: Vec<f32> = (0..500).map(|i| (i as f32 * 0.7).sin()).collect();
        let mut a = ExecutionContext::new(Device::v100(), ExecutionMode::Deterministic, 111);
        let mut b = ExecutionContext::new(Device::v100(), ExecutionMode::Deterministic, 222);
        for class in OpClass::ALL {
            assert_eq!(
                a.reducer(class).sum(&xs).to_bits(),
                b.reducer(class).sum(&xs).to_bits()
            );
        }
    }

    #[test]
    fn default_mode_entropy_changes_results_eventually() {
        let xs: Vec<f32> = (0..2000).map(|i| (i as f32 * 0.7).sin()).collect();
        let mut a = ExecutionContext::new(Device::v100(), ExecutionMode::Default, 111);
        let mut b = ExecutionContext::new(Device::v100(), ExecutionMode::Default, 222);
        let mut any_diff = false;
        for _ in 0..64 {
            if a.reducer(OpClass::WeightGrad).sum(&xs).to_bits()
                != b.reducer(OpClass::WeightGrad).sum(&xs).to_bits()
            {
                any_diff = true;
                break;
            }
        }
        assert!(any_diff, "different entropy never changed a GPU reduction");
    }

    #[test]
    fn reducers_use_device_lanes() {
        let mut ctx = ExecutionContext::new(Device::t4(), ExecutionMode::Default, 0);
        assert_eq!(ctx.reducer(OpClass::Misc).lanes(), Device::t4().lanes());
    }
}
