//! Order-sensitive floating-point reduction.
//!
//! This module is the physical site of *implementation noise* in the
//! reproduction. A [`Reducer`] performs every sum and dot product in the
//! training hot path; its [`ReduceOrder`] decides whether the combination
//! order of partial sums is fixed (deterministic execution) or perturbed by
//! a scheduler RNG between calls (nondeterministic execution, as on GPUs
//! whose atomics and split-K kernels combine partials in arrival order).
//!
//! Two fidelity tiers are supported:
//!
//! - **Order-only** (`amp_ulps == 0`): the partial sums are mathematically
//!   identical across orders and differ only through f32 rounding — a
//!   faithful model, producing 1-ulp seeds that amplify through SGD.
//! - **Amplified** (`amp_ulps > 0`): an additional relative perturbation of
//!   `amp_ulps` ulps is applied to the combined result, modelling the far
//!   longer accumulation chains (millions of MACs) of full-scale workloads
//!   that a scaled-down simulation cannot afford to execute. The
//!   perturbation is proportional to the result's magnitude and vanishes
//!   identically under deterministic orders.

use detrand::SplitMix64;
use serde::{Deserialize, Serialize};

/// Maximum number of accumulation lanes a reducer will materialize.
///
/// Real devices have thousands of FP units; the *noise-relevant* property is
/// the number of independently-ordered partial sums, which saturates quickly.
/// Device models map core counts into `8..=MAX_LANES`.
pub const MAX_LANES: usize = 64;

/// The accumulation-order policy of a [`Reducer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReduceOrder {
    /// Left-to-right single-lane accumulation. Reference CPU semantics.
    Sequential,
    /// Strided multi-lane partials combined in fixed (index) order.
    /// Deterministic: bitwise-stable across calls and runs. Models
    /// deterministic GPU kernels and TPU systolic arrays.
    FixedTree,
    /// Strided multi-lane partials combined in an order perturbed by the
    /// scheduler RNG on every call. Models nondeterministic GPU kernels
    /// (atomic split-K, Winograd with atomic reductions, ...).
    Permuted,
}

impl ReduceOrder {
    /// Whether this order is bitwise reproducible across runs.
    pub fn is_deterministic(self) -> bool {
        !matches!(self, ReduceOrder::Permuted)
    }
}

/// An order-sensitive reduction engine.
///
/// Cheap to construct; typically one per simulated device execution stream.
/// See the [crate-level docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct Reducer {
    order: ReduceOrder,
    lanes: usize,
    sched: SplitMix64,
    /// Relative perturbation amplitude in ulps (0 = faithful order-only).
    amp_ulps: f32,
    /// Count of reductions performed (for profiling/attribution).
    invocations: u64,
    /// One-shot fault-injection flag: when set, the next direct reduction
    /// returns NaN (see [`Reducer::inject_nan`]).
    poisoned: bool,
}

/// The replayable state of a [`Reducer`]: the scheduler RNG position and
/// the invocation counter. Configuration (order, lanes, amplification) is
/// not part of the snapshot — it is rebuilt from the device/mode pair —
/// so restoring into a reducer with different configuration is a logic
/// error the caller must avoid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReducerSnapshot {
    /// The scheduler RNG state.
    pub sched_state: u64,
    /// Reductions performed so far.
    pub invocations: u64,
}

impl Reducer {
    /// Creates a reducer.
    ///
    /// `lanes` is clamped into `1..=MAX_LANES`. `sched_seed` seeds the
    /// scheduler RNG (only consumed by [`ReduceOrder::Permuted`]).
    pub fn new(order: ReduceOrder, lanes: usize, sched_seed: u64) -> Self {
        Self {
            order,
            lanes: lanes.clamp(1, MAX_LANES),
            sched: SplitMix64::new(sched_seed),
            amp_ulps: 0.0,
            invocations: 0,
            poisoned: false,
        }
    }

    /// Captures the replayable state (scheduler RNG + invocation count).
    pub fn snapshot(&self) -> ReducerSnapshot {
        ReducerSnapshot {
            sched_state: self.sched.state(),
            invocations: self.invocations,
        }
    }

    /// Restores the state captured by [`Reducer::snapshot`]. The poison
    /// flag is transient fault-injection state and is always cleared.
    pub fn restore(&mut self, s: ReducerSnapshot) {
        self.sched = SplitMix64::new(s.sched_state);
        self.invocations = s.invocations;
        self.poisoned = false;
    }

    /// Arms a one-shot fault: the next direct reduction ([`Reducer::sum`],
    /// [`Reducer::dot`] or [`Reducer::sum_strided`]) returns NaN instead of
    /// its result, modelling a kernel that silently produced garbage.
    /// Pre-planned GEMM batches ([`Reducer::plan_dots`]) are unaffected —
    /// the poison stays armed until a direct reduction materializes it.
    pub fn inject_nan(&mut self) {
        self.poisoned = true;
    }

    /// Sequential reference reducer.
    pub fn sequential() -> Self {
        Self::new(ReduceOrder::Sequential, 1, 0)
    }

    /// Sets the amplified-noise tier (relative perturbation in ulps).
    ///
    /// Only affects [`ReduceOrder::Permuted`]; deterministic orders ignore it
    /// so that deterministic execution stays bitwise stable.
    ///
    /// # Panics
    ///
    /// Panics if `ulps` is negative or non-finite.
    pub fn with_amplification(mut self, ulps: f32) -> Self {
        assert!(ulps.is_finite() && ulps >= 0.0, "bad amplification {ulps}");
        self.amp_ulps = ulps;
        self
    }

    /// The accumulation-order policy.
    pub fn order(&self) -> ReduceOrder {
        self.order
    }

    /// The effective lane count.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of reductions performed so far.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Sums a slice under the configured accumulation order.
    pub fn sum(&mut self, xs: &[f32]) -> f32 {
        self.invocations += 1;
        if self.poisoned {
            self.poisoned = false;
            return f32::NAN;
        }
        match self.order {
            ReduceOrder::Sequential => xs.iter().sum(),
            ReduceOrder::FixedTree => {
                let mut p = [0f32; MAX_LANES];
                let l = self.fill_lanes_sum(xs, &mut p);
                p[..l].iter().sum()
            }
            ReduceOrder::Permuted => {
                let mut p = [0f32; MAX_LANES];
                let l = self.fill_lanes_sum(xs, &mut p);
                self.combine_permuted(&mut p[..l])
            }
        }
    }

    /// Dot product of two equal-length slices under the configured order.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn dot(&mut self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "dot length mismatch");
        self.invocations += 1;
        if self.poisoned {
            self.poisoned = false;
            return f32::NAN;
        }
        match self.order {
            ReduceOrder::Sequential => {
                let mut s = 0f32;
                for i in 0..a.len() {
                    s += a[i] * b[i];
                }
                s
            }
            ReduceOrder::FixedTree => {
                let mut p = [0f32; MAX_LANES];
                let l = self.fill_lanes_dot(a, b, &mut p);
                p[..l].iter().sum()
            }
            ReduceOrder::Permuted => {
                let mut p = [0f32; MAX_LANES];
                let l = self.fill_lanes_dot(a, b, &mut p);
                self.combine_permuted(&mut p[..l])
            }
        }
    }

    /// Sums `xs[start], xs[start+stride], ...` (`count` elements) under the
    /// configured order. Used for reductions over strided tensor axes
    /// without materializing a copy.
    pub fn sum_strided(&mut self, xs: &[f32], start: usize, stride: usize, count: usize) -> f32 {
        self.invocations += 1;
        if self.poisoned {
            self.poisoned = false;
            return f32::NAN;
        }
        let lane_count = self.lanes.min(count.max(1));
        let mut p = [0f32; MAX_LANES];
        match self.order {
            ReduceOrder::Sequential => {
                let mut s = 0f32;
                let mut idx = start;
                for _ in 0..count {
                    s += xs[idx];
                    idx += stride;
                }
                s
            }
            ReduceOrder::FixedTree | ReduceOrder::Permuted => {
                let mut idx = start;
                for i in 0..count {
                    p[i % lane_count] += xs[idx];
                    idx += stride;
                }
                if self.order == ReduceOrder::FixedTree {
                    p[..lane_count].iter().sum()
                } else {
                    self.combine_permuted(&mut p[..lane_count])
                }
            }
        }
    }

    /// Fills lane partials for a plain sum; returns the lane count used.
    ///
    /// Element `i` lands in lane `i mod lanes`, iterated block-wise so the
    /// inner loop vectorizes.
    #[inline]
    fn fill_lanes_sum(&self, xs: &[f32], p: &mut [f32; MAX_LANES]) -> usize {
        let l = self.lanes.min(xs.len().max(1));
        let mut chunks = xs.chunks_exact(l);
        for chunk in &mut chunks {
            for (lane, &x) in p[..l].iter_mut().zip(chunk) {
                *lane += x;
            }
        }
        for (lane, &x) in p[..l].iter_mut().zip(chunks.remainder()) {
            *lane += x;
        }
        l
    }

    /// Fills lane partials for a dot product; returns the lane count used.
    #[inline]
    fn fill_lanes_dot(&self, a: &[f32], b: &[f32], p: &mut [f32; MAX_LANES]) -> usize {
        let l = self.lanes.min(a.len().max(1));
        let n = a.len();
        let full = n / l * l;
        let mut i = 0;
        while i < full {
            for j in 0..l {
                p[j] += a[i + j] * b[i + j];
            }
            i += l;
        }
        for j in 0..(n - full) {
            p[j] += a[i + j] * b[i + j];
        }
        l
    }

    /// Combines lane partials in a scheduler-perturbed order, optionally
    /// applying the amplified-noise tier.
    #[inline]
    fn combine_permuted(&mut self, p: &mut [f32]) -> f32 {
        let l = p.len();
        if l > 1 {
            // Two random transpositions followed by a random rotation: cheap
            // (three RNG draws) yet changes the combine order of most calls.
            let j1 = self.sched.next_below(l as u32) as usize;
            let j2 = self.sched.next_below(l as u32) as usize;
            p.swap(0, j1);
            p.swap(1.min(l - 1), j2);
            let rot = self.sched.next_below(l as u32) as usize;
            let mut s = 0f32;
            for k in 0..l {
                s += p[(k + rot) % l];
            }
            if self.amp_ulps > 0.0 {
                let u = (self.sched.next_f64() as f32) * 2.0 - 1.0;
                s *= 1.0 + u * self.amp_ulps * f32::EPSILON;
            }
            s
        } else {
            let mut s = p[0];
            if self.amp_ulps > 0.0 {
                let u = (self.sched.next_f64() as f32) * 2.0 - 1.0;
                s *= 1.0 + u * self.amp_ulps * f32::EPSILON;
            }
            s
        }
    }
}

/// How one output's lane partials must be combined — captured *ahead of
/// computation* so the blocked GEMM engine ([`crate::gemm`]) can evaluate
/// outputs in any order (tiles, threads) while the scheduler RNG is
/// consumed in exactly the order the per-element reference path would
/// have consumed it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PermuteSpec {
    /// First transposition target (`p.swap(0, j1)`).
    pub j1: u16,
    /// Second transposition target (`p.swap(1.min(l - 1), j2)`).
    pub j2: u16,
    /// Rotation offset of the combine loop.
    pub rot: u16,
    /// Amplified-noise multiplier; only applied when `amplified` is set on
    /// the plan (a `*= 1.0` is *not* a guaranteed bitwise no-op for NaN
    /// payloads, so the reference path's "skip when amp == 0" is
    /// reproduced exactly).
    pub scale: f32,
}

/// A pre-drawn accumulation plan for a batch of equal-length dot products
/// (one GEMM). See [`Reducer::plan_dots`].
#[derive(Debug, Clone)]
pub(crate) struct DotPlan {
    /// The accumulation order the batch runs under.
    pub order: ReduceOrder,
    /// Effective lane count (`lanes.min(k_len.max(1))`), as
    /// [`Reducer::dot`] would clamp it.
    pub lanes: usize,
    /// Whether the amplified-noise multiplier is applied.
    pub amplified: bool,
    /// Per-output combine specs in row-major output order; empty unless
    /// `order == Permuted` (deterministic orders need no per-output
    /// state).
    pub specs: Vec<PermuteSpec>,
}

impl DotPlan {
    /// A plan with deterministic fixed-lane combination and no reducer
    /// involvement — used for gradient paths whose reference code uses a
    /// fixed `index % lanes` lane assignment with left-to-right combining
    /// (e.g. the conv input-gradient loop) rather than a [`Reducer`] call.
    pub fn fixed_lanes(lanes: usize) -> Self {
        DotPlan {
            order: ReduceOrder::FixedTree,
            lanes: lanes.clamp(1, MAX_LANES),
            amplified: false,
            specs: Vec::new(),
        }
    }
}

impl Reducer {
    /// Pre-draws the accumulation plan for `count` dot products of length
    /// `k_len`, advancing this reducer's state (invocation counter and —
    /// for [`ReduceOrder::Permuted`] — the scheduler RNG) exactly as
    /// `count` sequential [`Reducer::dot`] calls would.
    ///
    /// This is the bridge that keeps the blocked GEMM engine bit-identical
    /// to the per-element reference path: the *plan* fixes every output's
    /// combine order up front, so the engine is free to reorder which
    /// outputs are computed when.
    pub(crate) fn plan_dots(&mut self, count: usize, k_len: usize) -> DotPlan {
        self.invocations += count as u64;
        let lanes = self.lanes.min(k_len.max(1));
        let amplified = self.amp_ulps > 0.0;
        let specs = if self.order == ReduceOrder::Permuted {
            (0..count)
                .map(|_| {
                    let (j1, j2, rot) = if lanes > 1 {
                        (
                            self.sched.next_below(lanes as u32) as u16,
                            self.sched.next_below(lanes as u32) as u16,
                            self.sched.next_below(lanes as u32) as u16,
                        )
                    } else {
                        (0, 0, 0)
                    };
                    let scale = if amplified {
                        let u = (self.sched.next_f64() as f32) * 2.0 - 1.0;
                        1.0 + u * self.amp_ulps * f32::EPSILON
                    } else {
                        1.0
                    };
                    PermuteSpec { j1, j2, rot, scale }
                })
                .collect()
        } else {
            Vec::new()
        };
        DotPlan {
            order: self.order,
            lanes,
            amplified,
            specs,
        }
    }
}

/// Fixed-order (left-to-right) `f64` summation for aggregation and
/// reporting paths.
///
/// Bit-identical to `Iterator::sum::<f64>()` over the same sequence; the
/// point of routing through this function is that the evaluation order is
/// explicit and lives in the one module audited for it. detlint rule DL004
/// flags ad-hoc float reductions and exempts this module, so every float
/// sum in the workspace is either a simulated-device [`Reducer`] call or
/// one of these ordered helpers.
pub fn sum_ordered_f64(xs: impl IntoIterator<Item = f64>) -> f64 {
    xs.into_iter().fold(0.0, |acc, x| acc + x)
}

/// Fixed-order (left-to-right) `f32` summation. See [`sum_ordered_f64`].
pub fn sum_ordered_f32(xs: impl IntoIterator<Item = f32>) -> f32 {
    xs.into_iter().fold(0.0, |acc, x| acc + x)
}

/// Neumaier-compensated fixed-order `f64` summation.
///
/// Still order-fixed and deterministic, but with an error bound independent
/// of length — use it when aggregating across many replicas where naive
/// accumulation error would rival the run-to-run deviations being measured.
pub fn sum_compensated_f64(xs: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0f64;
    let mut comp = 0.0f64;
    for x in xs {
        let t = sum + x;
        comp += if sum.abs() >= x.abs() {
            (sum - t) + x
        } else {
            (x - t) + sum
        };
        sum = t;
    }
    sum + comp
}

#[cfg(test)]
// Tests assert exact float values: bit-identical replay is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (((i * 2654435761) % 1000) as f32 - 500.0) * 1.7e-3)
            .collect()
    }

    #[test]
    fn sequential_matches_iter_sum() {
        let xs = data(100);
        let mut r = Reducer::sequential();
        assert_eq!(r.sum(&xs), xs.iter().sum::<f32>());
    }

    #[test]
    fn fixed_tree_is_bitwise_stable() {
        let xs = data(10_000);
        let mut r1 = Reducer::new(ReduceOrder::FixedTree, 48, 1);
        let mut r2 = Reducer::new(ReduceOrder::FixedTree, 48, 99);
        // Different scheduler seeds, same result: seed must be irrelevant.
        assert_eq!(r1.sum(&xs).to_bits(), r2.sum(&xs).to_bits());
        // And stable across repeated calls.
        assert_eq!(r1.sum(&xs).to_bits(), r1.sum(&xs).to_bits());
    }

    #[test]
    fn permuted_differs_across_calls_sometimes() {
        let xs = data(4096);
        let mut r = Reducer::new(ReduceOrder::Permuted, 48, 7);
        let first = r.sum(&xs);
        let mut any_diff = false;
        for _ in 0..64 {
            if r.sum(&xs).to_bits() != first.to_bits() {
                any_diff = true;
                break;
            }
        }
        assert!(any_diff, "permuted reduction never changed in 64 calls");
    }

    #[test]
    fn permuted_error_is_ulp_scale() {
        let xs = data(4096);
        let exact: f64 = xs.iter().map(|&x| x as f64).sum();
        let mut r = Reducer::new(ReduceOrder::Permuted, 48, 7);
        for _ in 0..100 {
            let s = r.sum(&xs) as f64;
            // Accumulation error of a 4096-element f32 sum is bounded well
            // below 1e-3 for these magnitudes.
            assert!((s - exact).abs() < 1e-3, "error too large: {}", s - exact);
        }
    }

    #[test]
    fn all_orders_agree_to_f32_tolerance() {
        let xs = data(2000);
        let exact: f64 = xs.iter().map(|&x| x as f64).sum();
        for order in [
            ReduceOrder::Sequential,
            ReduceOrder::FixedTree,
            ReduceOrder::Permuted,
        ] {
            let mut r = Reducer::new(order, 32, 3);
            let s = r.sum(&xs) as f64;
            assert!((s - exact).abs() < 1e-3, "{order:?} error {}", s - exact);
        }
    }

    #[test]
    fn dot_matches_reference() {
        let a = data(512);
        let b: Vec<f32> = data(512).iter().map(|x| x * 0.5 + 0.1).collect();
        let exact: f64 = a.iter().zip(&b).map(|(&x, &y)| x as f64 * y as f64).sum();
        for order in [
            ReduceOrder::Sequential,
            ReduceOrder::FixedTree,
            ReduceOrder::Permuted,
        ] {
            let mut r = Reducer::new(order, 32, 3);
            let d = r.dot(&a, &b) as f64;
            assert!((d - exact).abs() < 1e-3, "{order:?} error {}", d - exact);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_rejects_length_mismatch() {
        Reducer::sequential().dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn sum_strided_matches_dense() {
        let xs = data(300);
        let mut r = Reducer::new(ReduceOrder::FixedTree, 16, 0);
        // Sum every third element starting at 1.
        let dense: Vec<f32> = xs.iter().skip(1).step_by(3).copied().collect();
        let a = r.sum_strided(&xs, 1, 3, dense.len());
        let b = r.sum(&dense);
        assert!((a - b).abs() < 1e-5);
    }

    #[test]
    fn empty_inputs_sum_to_zero() {
        for order in [
            ReduceOrder::Sequential,
            ReduceOrder::FixedTree,
            ReduceOrder::Permuted,
        ] {
            let mut r = Reducer::new(order, 32, 1);
            assert_eq!(r.sum(&[]), 0.0);
            assert_eq!(r.dot(&[], &[]), 0.0);
            assert_eq!(r.sum_strided(&[], 0, 1, 0), 0.0);
        }
    }

    #[test]
    fn lanes_are_clamped() {
        assert_eq!(Reducer::new(ReduceOrder::FixedTree, 0, 0).lanes(), 1);
        assert_eq!(
            Reducer::new(ReduceOrder::FixedTree, 10_000, 0).lanes(),
            MAX_LANES
        );
    }

    #[test]
    fn amplification_respected_only_by_permuted() {
        let xs = data(128);
        let mut det = Reducer::new(ReduceOrder::FixedTree, 16, 5).with_amplification(1e6);
        assert_eq!(det.sum(&xs).to_bits(), det.sum(&xs).to_bits());
        let mut nd1 = Reducer::new(ReduceOrder::Permuted, 16, 5).with_amplification(1e6);
        let mut nd2 = Reducer::new(ReduceOrder::Permuted, 16, 6).with_amplification(1e6);
        assert_ne!(nd1.sum(&xs).to_bits(), nd2.sum(&xs).to_bits());
    }

    #[test]
    #[should_panic(expected = "bad amplification")]
    fn negative_amplification_panics() {
        Reducer::sequential().with_amplification(-1.0);
    }

    #[test]
    fn snapshot_restore_resumes_permuted_stream() {
        let xs = data(512);
        let mut r = Reducer::new(ReduceOrder::Permuted, 32, 11);
        for _ in 0..5 {
            r.sum(&xs);
        }
        let snap = r.snapshot();
        let ahead: Vec<u32> = (0..8).map(|_| r.sum(&xs).to_bits()).collect();
        let mut fresh = Reducer::new(ReduceOrder::Permuted, 32, 0);
        fresh.restore(snap);
        let replayed: Vec<u32> = (0..8).map(|_| fresh.sum(&xs).to_bits()).collect();
        assert_eq!(ahead, replayed);
        assert_eq!(fresh.invocations(), r.invocations());
    }

    #[test]
    fn inject_nan_poisons_exactly_one_reduction() {
        let xs = data(64);
        let mut r = Reducer::new(ReduceOrder::Permuted, 16, 3);
        let mut clean = r.clone();
        r.inject_nan();
        assert!(r.sum(&xs).is_nan());
        // One-shot: the next call is clean again (though the scheduler
        // stream has not advanced for the poisoned call).
        assert!(!r.sum(&xs).is_nan());
        // The poisoned call consumed no scheduler state.
        assert_eq!(clean.sum(&xs).to_bits(), {
            let mut r2 = Reducer::new(ReduceOrder::Permuted, 16, 3);
            r2.inject_nan();
            r2.sum(&[]);
            r2.sum(&xs).to_bits()
        });
    }

    #[test]
    fn restore_clears_poison() {
        let mut r = Reducer::new(ReduceOrder::FixedTree, 8, 0);
        let snap = r.snapshot();
        r.inject_nan();
        r.restore(snap);
        assert!(!r.sum(&[1.0, 2.0]).is_nan());
    }

    #[test]
    fn invocation_counter_increments() {
        let mut r = Reducer::sequential();
        r.sum(&[1.0]);
        r.dot(&[1.0], &[2.0]);
        r.sum_strided(&[1.0, 2.0], 0, 1, 2);
        assert_eq!(r.invocations(), 3);
    }

    #[test]
    fn deterministic_flag() {
        assert!(ReduceOrder::Sequential.is_deterministic());
        assert!(ReduceOrder::FixedTree.is_deterministic());
        assert!(!ReduceOrder::Permuted.is_deterministic());
    }

    #[test]
    fn ordered_sums_are_bit_identical_to_iter_sum() {
        let xs: Vec<f64> = data(1000).iter().map(|&x| x as f64).collect();
        assert_eq!(
            sum_ordered_f64(xs.iter().copied()).to_bits(),
            xs.iter().sum::<f64>().to_bits()
        );
        let ys = data(1000);
        assert_eq!(
            sum_ordered_f32(ys.iter().copied()).to_bits(),
            ys.iter().sum::<f32>().to_bits()
        );
    }

    #[test]
    fn compensated_sum_survives_cancellation() {
        let xs = [1e16, 1.0, -1e16];
        assert_eq!(sum_compensated_f64(xs.iter().copied()), 1.0);
        // Naive order loses the 1.0 entirely.
        assert_eq!(sum_ordered_f64(xs.iter().copied()), 0.0);
    }
}
