//! Reusable distribution objects.
//!
//! Thin wrappers over [`crate::StreamRng`] that carry their parameters, for
//! call sites that sample the same distribution repeatedly (initializers,
//! dataset generators).

use crate::stream::StreamRng;
use serde::{Deserialize, Serialize};

/// Uniform distribution over `[lo, hi)`.
///
/// # Example
///
/// ```
/// use detrand::{Philox, StreamId, Uniform};
/// let mut rng = Philox::from_seed(1).stream(StreamId::TEST);
/// let u = Uniform::new(-0.5, 0.5);
/// let x = u.sample(&mut rng);
/// assert!((-0.5..0.5).contains(&x));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uniform {
    lo: f32,
    hi: f32,
}

impl Uniform {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn new(lo: f32, hi: f32) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo < hi, "empty uniform range [{lo}, {hi})");
        Self { lo, hi }
    }

    /// Draws one sample.
    #[inline]
    pub fn sample(&self, rng: &mut StreamRng) -> f32 {
        rng.uniform(self.lo, self.hi)
    }

    /// Fills a slice with samples.
    pub fn fill(&self, rng: &mut StreamRng, out: &mut [f32]) {
        for v in out {
            *v = self.sample(rng);
        }
    }
}

/// Normal distribution with mean and standard deviation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    mean: f32,
    std: f32,
}

impl Normal {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or either parameter is non-finite.
    pub fn new(mean: f32, std: f32) -> Self {
        assert!(mean.is_finite() && std.is_finite(), "params must be finite");
        assert!(std >= 0.0, "negative standard deviation {std}");
        Self { mean, std }
    }

    /// The standard normal.
    pub fn standard() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Draws one sample.
    #[inline]
    pub fn sample(&self, rng: &mut StreamRng) -> f32 {
        rng.normal_with(self.mean, self.std)
    }

    /// Fills a slice with samples.
    pub fn fill(&self, rng: &mut StreamRng, out: &mut [f32]) {
        for v in out {
            *v = self.sample(rng);
        }
    }
}

/// Bernoulli distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bernoulli {
    p: f32,
}

impl Bernoulli {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        Self { p }
    }

    /// Draws one sample.
    #[inline]
    pub fn sample(&self, rng: &mut StreamRng) -> bool {
        rng.bernoulli(self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Philox, StreamId};

    fn rng() -> StreamRng {
        Philox::from_seed(314).stream(StreamId::TEST)
    }

    #[test]
    fn uniform_bounds_hold() {
        let mut r = rng();
        let u = Uniform::new(2.0, 3.0);
        for _ in 0..10_000 {
            let x = u.sample(&mut r);
            assert!((2.0..3.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty uniform range")]
    fn uniform_rejects_inverted_range() {
        Uniform::new(1.0, 1.0);
    }

    #[test]
    fn normal_fill_has_requested_moments() {
        let mut r = rng();
        let n = Normal::new(5.0, 2.0);
        let mut buf = vec![0.0f32; 100_000];
        n.fill(&mut r, &mut buf);
        let mean: f64 = buf.iter().map(|&x| x as f64).sum::<f64>() / buf.len() as f64;
        let var: f64 =
            buf.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / buf.len() as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    #[should_panic(expected = "negative standard deviation")]
    fn normal_rejects_negative_std() {
        Normal::new(0.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bernoulli_rejects_bad_probability() {
        Bernoulli::new(1.5);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = rng();
        assert!(!Bernoulli::new(0.0).sample(&mut r));
        assert!(Bernoulli::new(1.0).sample(&mut r));
    }
}
