//! SplitMix64: a tiny, fast generator used for seed expansion and for the
//! *scheduler* entropy stream in the hardware simulator.
//!
//! SplitMix64 is sequential (unlike [`crate::Philox`]) but has excellent
//! avalanche behaviour, which makes it the right tool where we explicitly
//! *want* an unreplayable-looking walk from a seed: the simulated GPU
//! scheduler's interleaving decisions.

use serde::{Deserialize, Serialize};

/// A SplitMix64 generator.
///
/// # Example
///
/// ```
/// use detrand::SplitMix64;
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The current internal state.
    ///
    /// Together with [`SplitMix64::new`] this makes the generator
    /// checkpointable: `SplitMix64::new(g.state())` resumes exactly where
    /// `g` left off (the state *is* the seed of the continuation).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns the next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "next_below bound must be positive");
        ((self.next_u64() >> 32).wrapping_mul(bound as u64) >> 32) as u32
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Splits off an independent generator (the "split" in SplitMix).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_vector() {
        // First output of SplitMix64 with seed 0 (reference value used by
        // the xoshiro project's seeding procedure).
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn split_streams_differ() {
        let mut g = SplitMix64::new(7);
        let mut a = g.split();
        let mut b = g.split();
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn state_round_trips_mid_stream() {
        let mut g = SplitMix64::new(1234);
        for _ in 0..17 {
            g.next_u64();
        }
        let mut resumed = SplitMix64::new(g.state());
        for _ in 0..32 {
            assert_eq!(g.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn next_below_in_range() {
        let mut g = SplitMix64::new(9);
        for _ in 0..10_000 {
            assert!(g.next_below(17) < 17);
        }
    }
}
