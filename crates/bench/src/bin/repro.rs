//! Regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--exp <id>]... [--out <dir>] [--fleet <procs>]
//!
//!   ids: table2 table3 table5 fig1 fig2 fig4 fig5 fig6 fig7 fig8a fig8b
//!        fig9 fig10 cost stability all (default: all)
//! ```
//!
//! Environment knobs (see `noisescope::settings`): `NS_REPLICAS`,
//! `NS_SEED`, `NS_AMP_ULPS`, `NS_EPOCHS_SCALE`, `NS_QUICK=1`,
//! `NS_RETRIES`, `NS_CHAOS`, `NS_WORKER_TIMEOUT`, `NS_HEARTBEAT_EVERY`.
//!
//! Rendered tables go to stdout; machine-readable JSON goes to `--out`
//! (default `results/`), published atomically (write-temp-then-rename) so
//! an interrupt can never leave a truncated report. The stability grids
//! are **resumable**: every completed replica and every in-flight epoch
//! checkpoint is persisted under `<out>/.ckpt/` (scoped by a settings
//! fingerprint), so an interrupted run picks up mid-fleet and
//! mid-training — bit-identically — on the next invocation. Delete
//! `<out>/.ckpt/` to force recomputation.
//!
//! `--fleet <procs>` runs the stability grids with **process-isolated**
//! replicas (`procs` concurrent workers; 0 = host parallelism): this
//! binary re-executes itself in a hidden `--worker` mode, one process per
//! replica attempt, under a heartbeat watchdog that kills and
//! re-dispatches hung or crashed workers. Results are bit-identical to
//! in-process runs and share the same checkpoint store.

use noisescope::experiments::{cost, extensions, fairness, ordering, stability};
use noisescope::paper;
use noisescope::prelude::*;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    // Worker dispatch must precede everything else: a worker's stdout is
    // the IPC pipe, so not a single banner byte may be printed first.
    if std::env::args().nth(1).as_deref() == Some("--worker") {
        std::process::exit(worker_main());
    }

    let mut exps: BTreeSet<String> = BTreeSet::new();
    let mut out_dir = PathBuf::from("results");
    let mut fleet: Option<FleetOptions> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--exp" => {
                let v = args.next().expect("--exp needs a value");
                exps.insert(v);
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().expect("--out needs a value"));
            }
            "--fleet" => {
                let v = args.next().expect("--fleet needs a worker-process count");
                let procs: usize = v.parse().unwrap_or_else(|_| {
                    eprintln!("--fleet needs an integer worker-process count, got {v:?}");
                    std::process::exit(2);
                });
                fleet = Some(FleetOptions {
                    procs,
                    ..FleetOptions::default()
                });
            }
            "--help" | "-h" => {
                println!(
                    "repro [--exp <id>]... [--out <dir>] [--fleet <procs>]\n  ids: table2 \
                     table3 table5 fig1 fig2 fig4 fig5 fig6 fig7 fig8a fig8b fig9 fig10 ext \
                     cost stability all\n  --fleet <procs>: process-isolated replicas for the \
                     stability grids (0 = host parallelism)"
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    if exps.is_empty() || exps.contains("all") {
        for id in [
            "table2", "table3", "table5", "fig1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8a",
            "fig8b", "fig9", "fig10", "ext",
        ] {
            exps.insert(id.to_string());
        }
    }
    if exps.remove("cost") {
        for id in ["fig7", "fig8a", "fig8b"] {
            exps.insert(id.to_string());
        }
    }
    if exps.remove("stability") {
        for id in ["table2", "fig1", "fig4", "fig9", "fig10"] {
            exps.insert(id.to_string());
        }
    }

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let settings = ExperimentSettings::from_env();
    if let Err(e) = settings.validate() {
        eprintln!("invalid configuration: {e}");
        std::process::exit(2);
    }
    // Durable fleet progress: interrupted grids resume from here.
    let store = CheckpointStore::for_settings(out_dir.join(".ckpt"), &settings);
    let ckpt_every = 1;
    println!(
        "# NoiseScope reproduction — replicas={} amp_ulps={} epochs_scale={} seed={}\n",
        settings.replicas, settings.amp_ulps, settings.epochs_scale, settings.base_seed
    );
    eprintln!("checkpoint store: {}", store.root().display());
    if fleet.is_some() {
        eprintln!("fleet mode: stability grids run with process-isolated replicas");
    }
    let save = |name: &str, json: &serde_json::Value| {
        let path = out_dir.join(format!("{name}.json"));
        noisescope::report::save_json(&path, json).expect("write result file");
        eprintln!("  wrote {}", path.display());
    };
    let t0 = Instant::now();

    // ---- fast cost-model experiments first ----
    if exps.contains("fig7") {
        let started = Instant::now();
        let fig = cost::fig7(100);
        println!("{}", cost::render_fig7(&fig));
        save("fig7", &serde_json::to_value(&fig).unwrap());
        eprintln!("fig7 done in {:.1}s", started.elapsed().as_secs_f32());
    }
    if exps.contains("fig8a") {
        let started = Instant::now();
        let pts = cost::fig8a(64);
        println!(
            "{}",
            cost::render_overheads(
                "Figure 8 (left): deterministic overhead across ten networks (batch 64)",
                &pts
            )
        );
        save("fig8a", &serde_json::to_value(&pts).unwrap());
        eprintln!("fig8a done in {:.1}s", started.elapsed().as_secs_f32());
    }
    if exps.contains("fig8b") {
        let started = Instant::now();
        let pts = cost::fig8b(64);
        println!(
            "{}",
            cost::render_overheads(
                "Figure 8 (right): deterministic overhead vs convolution filter size",
                &pts
            )
        );
        println!(
            "{}",
            paper::compare::render(
                "Figure 8 (right) paper-vs-measured: filter-sweep extremes",
                &paper::compare::fig8b(&pts)
            )
        );
        save("fig8b", &serde_json::to_value(&pts).unwrap());
        eprintln!("fig8b done in {:.1}s", started.elapsed().as_secs_f32());
    }
    if exps.contains("table3") {
        let counts = fairness::table3();
        println!("{}", fairness::render_table3(&counts));
        save("table3", &serde_json::to_value(counts).unwrap());
    }

    // ---- training experiments ----
    if exps.contains("fig6") {
        let started = Instant::now();
        let pts = ordering::fig6(&settings);
        println!("{}", ordering::render_fig6(&pts));
        save("fig6", &serde_json::to_value(&pts).unwrap());
        eprintln!("fig6 done in {:.1}s", started.elapsed().as_secs_f32());
    }
    if exps.contains("fig2") {
        let started = Instant::now();
        let grid = match &fleet {
            Some(opts) => stability::fig2_fleet(&settings, &store, ckpt_every, opts),
            None => stability::fig2_resumable(&settings, &store, ckpt_every),
        }
        .expect("checkpoint store IO");
        println!(
            "{}",
            stability::render_fig_panel(&grid, "V100", "Figure 2 (batch-norm ablation)")
        );
        save("fig2", &serde_json::to_value(&grid).unwrap());
        eprintln!("fig2 done in {:.1}s", started.elapsed().as_secs_f32());
    }
    if exps.contains("table5") {
        let started = Instant::now();
        // A bad subgroup configuration degrades this experiment, not the
        // whole reproduction run.
        match fairness::fig3_table5(&settings) {
            Ok(tables) => {
                println!("{}", fairness::render_table5(&tables));
                save("table5", &serde_json::to_value(&tables).unwrap());
                eprintln!(
                    "table5/fig3 done in {:.1}s",
                    started.elapsed().as_secs_f32()
                );
            }
            Err(e) => eprintln!("table5/fig3 skipped: {e}"),
        }
    }
    if exps.contains("fig5") {
        let started = Instant::now();
        let grid = match &fleet {
            Some(opts) => stability::fig5_fleet(&settings, &store, ckpt_every, opts),
            None => stability::fig5_resumable(&settings, &store, ckpt_every),
        }
        .expect("checkpoint store IO");
        let mut rows = Vec::new();
        for r in &grid.reports {
            rows.push(vec![
                r.device.clone(),
                r.variant.label().to_string(),
                format!("{:.3}", 100.0 * r.std_accuracy),
                format!("{:.4}", r.churn),
                format!("{:.4}", r.l2),
            ]);
        }
        println!(
            "{}",
            noisescope::report::render_table(
                "Figure 5: ResNet18/CIFAR-100-sim across accelerators",
                &["Accelerator", "Variant", "stddev(acc) %", "churn", "l2"],
                &rows
            )
        );
        save("fig5", &serde_json::to_value(&grid).unwrap());
        eprintln!("fig5 done in {:.1}s", started.elapsed().as_secs_f32());
    }

    if exps.contains("ext") {
        let started = Instant::now();
        let dp = extensions::data_parallel_sweep(&settings);
        println!("{}", extensions::render_data_parallel(&dp));
        save("ext_data_parallel", &serde_json::to_value(&dp).unwrap());
        let lanes = extensions::lanes_sweep(&settings);
        println!("{}", extensions::render_lanes(&lanes));
        save("ext_lanes", &serde_json::to_value(&lanes).unwrap());
        let arch = extensions::architecture_instability(&settings);
        println!("{}", extensions::render_architecture_instability(&arch));
        save("ext_architectures", &serde_json::to_value(&arch).unwrap());
        let sources = extensions::algo_source_decomposition(&settings);
        println!("{}", extensions::render_algo_sources(&sources));
        save("ext_algo_sources", &serde_json::to_value(&sources).unwrap());
        eprintln!("extensions done in {:.1}s", started.elapsed().as_secs_f32());
    }

    // The Table-2 grid also powers Figures 1, 4, 9 and 10.
    let needs_grid = ["table2", "fig1", "fig4", "fig9", "fig10"]
        .iter()
        .any(|e| exps.contains(*e));
    if needs_grid {
        let started = Instant::now();
        let grid = match &fleet {
            Some(opts) => stability::run_table2_grid_fleet(&settings, &store, ckpt_every, opts),
            None => stability::run_table2_grid_resumable(&settings, &store, ckpt_every),
        }
        .expect("checkpoint store IO");
        eprintln!(
            "stability grid done in {:.1}s",
            started.elapsed().as_secs_f32()
        );
        if exps.contains("table2") {
            println!("{}", stability::render_table2(&grid));
            println!(
                "{}",
                paper::compare::render(
                    "Table 2 paper-vs-measured (mean accuracy %, task difficulty anchor)",
                    &paper::compare::table2(&grid)
                )
            );
            save("table2", &serde_json::to_value(&grid).unwrap());
        }
        if exps.contains("fig1") {
            println!("{}", stability::render_fig_panel(&grid, "V100", "Figure 1"));
        }
        if exps.contains("fig9") {
            println!("{}", stability::render_fig_panel(&grid, "P100", "Figure 9"));
        }
        if exps.contains("fig10") {
            println!(
                "{}",
                stability::render_fig_panel(&grid, "RTX5000", "Figure 10")
            );
        }
        if exps.contains("fig4") {
            let series = stability::fig4_from_reports(&grid);
            let rows: Vec<Vec<String>> = series
                .iter()
                .map(|s| {
                    vec![
                        s.task.clone(),
                        s.variant.label().to_string(),
                        format!("{:.4}", s.overall_std),
                        format!("{:.4}", s.max_class_std),
                        format!("{:.1}X", s.ratio),
                    ]
                })
                .collect();
            println!(
                "{}",
                noisescope::report::render_table(
                    "Figure 4: per-class vs overall accuracy variance (V100)",
                    &[
                        "Task",
                        "Variant",
                        "stddev(acc)",
                        "max class stddev",
                        "ratio"
                    ],
                    &rows
                )
            );
            save("fig4", &serde_json::to_value(&series).unwrap());
        }
    }

    eprintln!("total {:.1}s", t0.elapsed().as_secs_f32());
}
