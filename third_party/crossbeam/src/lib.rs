//! Offline stand-in for the `crossbeam` crate (see `third_party/README.md`).
//!
//! Provides `crossbeam::thread::scope` with the crossbeam 0.8 call shape
//! (`scope(|s| { s.spawn(|_| ...); }).expect(...)`), implemented on top of
//! `std::thread::scope`.

/// Scoped-thread utilities.
pub mod thread {
    /// A scope handle passed to [`scope`] closures and to each spawned
    /// thread's closure (crossbeam passes the scope back into spawned
    /// closures so they can spawn siblings).
    #[derive(Debug, Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the
        /// scope itself, mirroring crossbeam's `|_| ...` signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let wrapper = Scope { inner: self.inner };
            self.inner.spawn(move || f(&wrapper))
        }
    }

    /// Runs `f` with a scope in which threads borrowing local state can be
    /// spawned; all are joined before `scope` returns.
    ///
    /// Unlike crossbeam, panics in spawned threads propagate out of
    /// `std::thread::scope` directly rather than being returned as `Err`,
    /// so the `Result` here is always `Ok` — callers that `.expect()` the
    /// result observe the same panic either way.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let wrapper = Scope { inner: s };
            f(&wrapper)
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects() {
        let data = [1u64, 2, 3, 4];
        let total = std::sync::atomic::AtomicU64::new(0);
        super::thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let sum: u64 = chunk.iter().sum();
                    total.fetch_add(sum, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(total.into_inner(), 10);
    }

    #[test]
    fn nested_spawn_via_passed_scope() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::thread::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| flag.store(true, std::sync::atomic::Ordering::Relaxed));
            });
        })
        .unwrap();
        assert!(flag.into_inner());
    }
}
