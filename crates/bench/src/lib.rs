//! Shared helpers for the benchmark harness.
//!
//! The heavy lifting lives in [`noisescope`]; this crate provides the
//! `repro` binary (regenerates every table and figure — see
//! `src/bin/repro.rs`) and Criterion microbenchmarks over the substrate
//! hot paths.

#![warn(missing_docs)]

use noisescope::prelude::*;
use nsdata::GaussianSpec;

/// A deliberately tiny task for microbenchmarks: small enough that one
/// replica trains in tens of milliseconds.
pub fn micro_task() -> TaskSpec {
    let mut t = TaskSpec::small_cnn_cifar10();
    t.data = DataSource::Gaussian(GaussianSpec {
        classes: 4,
        train_per_class: 16,
        test_per_class: 8,
        hw: 8,
        ..GaussianSpec::cifar10_sim()
    });
    t.train.epochs = 2;
    t.augment = false;
    t
}

/// Microbenchmark settings: two replicas, no epoch scaling.
pub fn micro_settings() -> ExperimentSettings {
    ExperimentSettings {
        replicas: 2,
        ..ExperimentSettings::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_task_trains_quickly() {
        let prepared = PreparedTask::prepare(&micro_task());
        let r = run_replica(
            &prepared,
            &Device::v100(),
            NoiseVariant::AlgoImpl,
            &micro_settings(),
            0,
        )
        .expect("micro replica trains");
        assert!(r.accuracy.is_finite());
    }
}
