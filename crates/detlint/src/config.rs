//! Configuration for a detlint run, loaded from `detlint.toml`.
//!
//! Only the TOML subset detlint needs is supported: top-level
//! `key = value` pairs, `[rules.DLxxx]` sections, string arrays
//! (single- or multi-line), and booleans. Unknown keys are errors so
//! config typos cannot silently disable a rule.

use std::collections::BTreeMap;
use std::path::Path;

use crate::RuleId;

/// Run configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path prefixes (relative to the workspace root, `/`-separated)
    /// that are skipped entirely.
    pub exclude: Vec<String>,
    /// When `false` (default), findings inside `#[cfg(test)]` / `#[test]`
    /// regions and under `tests/` or `benches/` directories are dropped.
    pub scan_test_code: bool,
    /// Per-rule path-prefix exemptions, e.g. the entropy module is the one
    /// place allowed to touch OS randomness.
    pub exempt: BTreeMap<RuleId, Vec<String>>,
    /// Env-var names registered as sanctioned experiment knobs (DL008's
    /// registry; `[rules.DL008] registered = [...]`). Anything Settings
    /// reads and folds into the experiment fingerprint belongs here.
    pub registered_env: Vec<String>,
    /// Audit mode (`--audit`): stale allows become DL009 findings
    /// instead of warnings. Set by the CLI, not by `detlint.toml`.
    pub audit: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            exclude: vec!["target".into(), ".git".into()],
            scan_test_code: false,
            exempt: BTreeMap::new(),
            registered_env: Vec::new(),
            audit: false,
        }
    }
}

impl Config {
    /// Loads a config file, or the defaults if `path` does not exist.
    pub fn load(path: &Path) -> Result<Config, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Config::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    /// Parses config text.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        // Section context: None = top level, Some(rule) = [rules.DLxxx].
        let mut section: Option<RuleId> = None;
        let mut lines = text.lines().enumerate();
        while let Some((idx, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let rule = name
                    .strip_prefix("rules.")
                    .and_then(RuleId::parse)
                    .ok_or_else(|| format!("line {}: unknown section [{name}]", idx + 1))?;
                section = Some(rule);
                continue;
            }
            let (key, mut value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
                .ok_or_else(|| format!("line {}: expected `key = value`", idx + 1))?;
            // Multi-line arrays: accumulate until the closing bracket.
            if value.starts_with('[') && !balanced_array(&value) {
                for (_, cont) in lines.by_ref() {
                    value.push(' ');
                    value.push_str(strip_comment(cont).trim());
                    if balanced_array(&value) {
                        break;
                    }
                }
            }
            match (section, key.as_str()) {
                (None, "exclude") => cfg.exclude = parse_string_array(&value, idx)?,
                (None, "scan_test_code") => {
                    cfg.scan_test_code = parse_bool(&value, idx)?;
                }
                (Some(rule), "exempt") => {
                    cfg.exempt.insert(rule, parse_string_array(&value, idx)?);
                }
                (Some(RuleId::Dl008), "registered") => {
                    cfg.registered_env = parse_string_array(&value, idx)?;
                }
                (_, k) => {
                    return Err(format!("line {}: unknown key `{k}`", idx + 1));
                }
            }
        }
        Ok(cfg)
    }

    /// `true` if the path is excluded from scanning altogether.
    pub fn excluded(&self, rel_path: &str) -> bool {
        self.exclude.iter().any(|p| path_has_prefix(rel_path, p))
    }

    /// `true` if `rule` is exempted for this path.
    pub fn rule_exempt(&self, rule: RuleId, rel_path: &str) -> bool {
        self.exempt
            .get(&rule)
            .is_some_and(|ps| ps.iter().any(|p| path_has_prefix(rel_path, p)))
    }

    /// `true` if `name` is a registered experiment knob (DL008).
    pub fn dl008_registered(&self, name: &str) -> bool {
        self.registered_env.iter().any(|n| n == name)
    }

    /// `true` if the path is test/bench code by convention.
    pub fn is_test_path(rel_path: &str) -> bool {
        rel_path.split('/').any(|c| c == "tests" || c == "benches")
    }
}

/// Prefix match on whole path components.
fn path_has_prefix(path: &str, prefix: &str) -> bool {
    let prefix = prefix.trim_end_matches('/');
    path == prefix
        || path
            .strip_prefix(prefix)
            .is_some_and(|rest| rest.starts_with('/'))
}

/// Drops a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = c == '\\' && !escaped;
    }
    line
}

fn balanced_array(value: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in value.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_bool(value: &str, idx: usize) -> Result<bool, String> {
    match value {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!(
            "line {}: expected true/false, got `{other}`",
            idx + 1
        )),
    }
}

fn parse_string_array(value: &str, idx: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("line {}: expected a [\"...\"] array", idx + 1))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        let s = item
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| format!("line {}: array items must be quoted strings", idx + 1))?;
        out.push(s.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let cfg = Config::parse(
            r#"
# comment
exclude = ["target", "crates/detlint/tests/fixtures"]
scan_test_code = false

[rules.DL002]
exempt = [
    "crates/rng/src/entropy.rs", # the one sanctioned entropy source
    "third_party/rand",
]
"#,
        )
        .unwrap();
        assert_eq!(cfg.exclude.len(), 2);
        assert!(!cfg.scan_test_code);
        assert!(cfg.rule_exempt(RuleId::Dl002, "crates/rng/src/entropy.rs"));
        assert!(cfg.rule_exempt(RuleId::Dl002, "third_party/rand/src/lib.rs"));
        assert!(!cfg.rule_exempt(RuleId::Dl002, "crates/rng/src/philox.rs"));
        assert!(!cfg.rule_exempt(RuleId::Dl003, "third_party/rand/src/lib.rs"));
    }

    #[test]
    fn prefix_matching_is_component_wise() {
        let cfg = Config {
            exclude: vec!["crates/rng".into()],
            ..Config::default()
        };
        assert!(cfg.excluded("crates/rng/src/lib.rs"));
        assert!(!cfg.excluded("crates/rng2/src/lib.rs"));
    }

    #[test]
    fn unknown_keys_are_errors() {
        assert!(Config::parse("scan_tets_code = true").is_err());
        assert!(Config::parse("[rules.DL999]\nexempt = []").is_err());
    }

    #[test]
    fn test_paths_detected() {
        assert!(Config::is_test_path("tests/tests/determinism.rs"));
        assert!(Config::is_test_path("crates/tensor/benches/matmul.rs"));
        assert!(!Config::is_test_path("crates/tensor/src/ops.rs"));
    }
}
