//! A from-scratch convolutional-network training stack whose every
//! floating-point reduction has explicit accumulation-order semantics.
//!
//! This crate is the training substrate of the NoiseScope reproduction. It
//! provides:
//!
//! - [`layers`] — Conv2d, Dense, BatchNorm2d, ReLU, MaxPool2d,
//!   GlobalAvgPool, Dropout, Flatten and residual blocks, each with
//!   hand-written forward/backward passes that route all accumulations
//!   through the executing device's [`hwsim::ExecutionContext`];
//! - [`loss`] — softmax cross-entropy and sigmoid BCE (multi-label);
//! - [`optim`] / [`schedule`] — SGD with momentum, step-decay and
//!   warmup-cosine learning-rate schedules;
//! - [`init`] — Glorot and He initializers fed from [`detrand`] streams
//!   (the *algorithmic* randomness the paper controls with a seed);
//! - [`model`] — the [`model::Network`] container;
//! - [`zoo`] — scaled-down trainable models mirroring the paper's training
//!   experiments (3-layer small CNN ± batch-norm, 6-layer medium CNN,
//!   Micro-ResNet-18/50);
//! - [`arch`] — full-fidelity layer-geometry descriptors of the ten
//!   networks the paper *profiles* (VGG-16/19, ResNet-50/152,
//!   DenseNet-121/201, MobileNetV2, EfficientNet-B0, Inception-v3, medium
//!   CNN), compiled to [`hwsim::WorkloadOp`] lists for the determinism
//!   cost study;
//! - [`trainer`] — the training loop wiring data order, dropout streams,
//!   the optimizer and the execution context together.
//!
//! # Example
//!
//! ```
//! use detrand::Philox;
//! use hwsim::{Device, ExecutionContext, ExecutionMode};
//! use nnet::{model::Network, zoo, trainer::{self, TrainConfig}};
//! use nstensor::{Shape, Tensor};
//!
//! // Build the paper's small CNN (scaled) with a seeded initializer.
//! let root = Philox::from_seed(42);
//! let mut net = zoo::small_cnn(12, 3, 10, false, &root);
//! // One forward pass on a V100 in default (nondeterministic) mode:
//! let mut exec = ExecutionContext::new(Device::v100(), ExecutionMode::Default, 7);
//! let x = Tensor::zeros(Shape::of(&[2, 3, 12, 12]));
//! let logits = net.forward(x, &mut exec, &root, 0, false);
//! assert_eq!(logits.shape().dims(), &[2, 10]);
//! # let _ = trainer::TrainConfig::default(); let _ = TrainConfig::default();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arch;
pub mod checkpoint;
pub mod init;
pub mod layers;
pub mod loss;
pub mod model;
pub mod optim;
pub mod schedule;
pub mod trainer;
pub mod zoo;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use layers::Layer;
pub use model::Network;
pub use trainer::{Batch, FitOptions, Targets, TrainConfig, TrainError, Trainer};
