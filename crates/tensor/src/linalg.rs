//! Matrix multiplication with explicit accumulation order.
//!
//! The inner `k`-dimension reduction of every output element flows through
//! the [`Reducer`], so a nondeterministic device genuinely changes the
//! floating-point accumulation order of the matmul — the dominant source of
//! implementation noise on GPUs (split-K and atomic-accumulation kernels).
//!
//! Since the blocked engine landed, the public entry points here are thin
//! wrappers over [`crate::gemm`]: same signatures, same bits, much faster.
//! The original per-element `*_reference` implementations are kept as the
//! oracle the engine is property-tested against (see `crate::gemm` tests
//! and `tests/proptests.rs`).

use crate::error::ShapeError;
use crate::gemm;
use crate::reduce::Reducer;
use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// Computes `C = A × B` for row-major rank-2 tensors.
///
/// Runs on the blocked engine ([`crate::gemm::matmul_ws`]) with a private
/// single-threaded workspace; hot paths that call repeatedly should use
/// the `_ws` variant directly to reuse scratch buffers.
///
/// # Errors
///
/// Returns [`ShapeError`] if the operands are not rank 2 or the inner
/// dimensions disagree.
///
/// # Example
///
/// ```
/// use nstensor::{matmul, Reducer, Shape, Tensor};
/// let a = Tensor::from_vec(Shape::of(&[2, 2]), vec![1.0, 2.0, 3.0, 4.0])?;
/// let b = Tensor::from_vec(Shape::of(&[2, 2]), vec![5.0, 6.0, 7.0, 8.0])?;
/// let c = matmul(&a, &b, &mut Reducer::sequential())?;
/// assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
/// # Ok::<(), nstensor::ShapeError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor, red: &mut Reducer) -> Result<Tensor, ShapeError> {
    gemm::matmul_ws(a, b, red, 1, &mut Workspace::new())
}

/// Computes `C = Aᵀ × B`. See [`matmul`] for the engine/workspace notes.
///
/// # Errors
///
/// Returns [`ShapeError`] if the operands are not rank 2 or `A`'s rows do
/// not match `B`'s rows.
pub fn matmul_at_b(a: &Tensor, b: &Tensor, red: &mut Reducer) -> Result<Tensor, ShapeError> {
    gemm::matmul_at_b_ws(a, b, red, 1, &mut Workspace::new())
}

/// Computes `C = A × Bᵀ`. See [`matmul`] for the engine/workspace notes.
///
/// # Errors
///
/// Returns [`ShapeError`] if the operands are not rank 2 or the column
/// counts disagree.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor, red: &mut Reducer) -> Result<Tensor, ShapeError> {
    gemm::matmul_a_bt_ws(a, b, red, 1, &mut Workspace::new())
}

/// Per-element reference `C = A × B`: one [`Reducer::dot`] per output, in
/// row-major order. The bit-identity oracle for the blocked engine.
///
/// # Errors
///
/// Returns [`ShapeError`] if the operands are not rank 2 or the inner
/// dimensions disagree.
pub fn matmul_reference(a: &Tensor, b: &Tensor, red: &mut Reducer) -> Result<Tensor, ShapeError> {
    check_rank2("matmul", a, b)?;
    let (m, ka) = (a.shape().dim(0), a.shape().dim(1));
    let (kb, n) = (b.shape().dim(0), b.shape().dim(1));
    if ka != kb {
        return Err(ShapeError::mismatch("matmul", &a.shape(), &b.shape()));
    }
    let mut out = Tensor::zeros(Shape::of(&[m, n]));
    // Transpose B once so each dot runs over two contiguous slices.
    let bt = transpose_data(b);
    let av = a.as_slice();
    let ov = out.as_mut_slice();
    for i in 0..m {
        let arow = &av[i * ka..(i + 1) * ka];
        for j in 0..n {
            let bcol = &bt[j * kb..(j + 1) * kb];
            ov[i * n + j] = red.dot(arow, bcol);
        }
    }
    Ok(out)
}

/// Per-element reference `C = Aᵀ × B`. See [`matmul_reference`].
///
/// # Errors
///
/// Returns [`ShapeError`] if the operands are not rank 2 or `A`'s rows do
/// not match `B`'s rows.
pub fn matmul_at_b_reference(
    a: &Tensor,
    b: &Tensor,
    red: &mut Reducer,
) -> Result<Tensor, ShapeError> {
    check_rank2("matmul_at_b", a, b)?;
    let (ka, m) = (a.shape().dim(0), a.shape().dim(1));
    let (kb, n) = (b.shape().dim(0), b.shape().dim(1));
    if ka != kb {
        return Err(ShapeError::mismatch("matmul_at_b", &a.shape(), &b.shape()));
    }
    // Materialize Aᵀ rows contiguously (columns of A).
    let at = transpose_data(a);
    let bt = transpose_data(b);
    let mut out = Tensor::zeros(Shape::of(&[m, n]));
    let ov = out.as_mut_slice();
    for i in 0..m {
        let arow = &at[i * ka..(i + 1) * ka];
        for j in 0..n {
            let bcol = &bt[j * kb..(j + 1) * kb];
            ov[i * n + j] = red.dot(arow, bcol);
        }
    }
    Ok(out)
}

/// Per-element reference `C = A × Bᵀ`. See [`matmul_reference`].
///
/// # Errors
///
/// Returns [`ShapeError`] if the operands are not rank 2 or the column
/// counts disagree.
pub fn matmul_a_bt_reference(
    a: &Tensor,
    b: &Tensor,
    red: &mut Reducer,
) -> Result<Tensor, ShapeError> {
    check_rank2("matmul_a_bt", a, b)?;
    let (m, ka) = (a.shape().dim(0), a.shape().dim(1));
    let (n, kb) = (b.shape().dim(0), b.shape().dim(1));
    if ka != kb {
        return Err(ShapeError::mismatch("matmul_a_bt", &a.shape(), &b.shape()));
    }
    let mut out = Tensor::zeros(Shape::of(&[m, n]));
    let av = a.as_slice();
    let bv = b.as_slice();
    let ov = out.as_mut_slice();
    for i in 0..m {
        let arow = &av[i * ka..(i + 1) * ka];
        for j in 0..n {
            let brow = &bv[j * kb..(j + 1) * kb];
            ov[i * n + j] = red.dot(arow, brow);
        }
    }
    Ok(out)
}

fn check_rank2(op: &'static str, a: &Tensor, b: &Tensor) -> Result<(), ShapeError> {
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return Err(ShapeError::new(
            op,
            format!(
                "expected rank-2 operands, got {} and {}",
                a.shape(),
                b.shape()
            ),
        ));
    }
    Ok(())
}

/// Returns the row-major data of the transpose of a rank-2 tensor.
fn transpose_data(t: &Tensor) -> Vec<f32> {
    let (r, c) = (t.shape().dim(0), t.shape().dim(1));
    let src = t.as_slice();
    let mut out = vec![0f32; r * c];
    for i in 0..r {
        for j in 0..c {
            out[j * r + i] = src[i * c + j];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::ReduceOrder;

    fn t(rows: usize, cols: usize, data: Vec<f32>) -> Tensor {
        Tensor::from_vec(Shape::of(&[rows, cols]), data).unwrap()
    }

    #[test]
    fn small_matmul_reference() {
        let a = t(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b, &mut Reducer::sequential()).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = t(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = t(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let c = matmul(&a, &i, &mut Reducer::sequential()).unwrap();
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn inner_dim_mismatch_is_error() {
        let a = t(2, 3, vec![0.0; 6]);
        let b = t(2, 2, vec![0.0; 4]);
        assert!(matmul(&a, &b, &mut Reducer::sequential()).is_err());
        assert!(matmul_reference(&a, &b, &mut Reducer::sequential()).is_err());
    }

    #[test]
    fn rank_check() {
        let a = Tensor::zeros(Shape::of(&[2, 2, 1, 1]));
        let b = Tensor::zeros(Shape::of(&[2, 2]));
        assert!(matmul(&a, &b, &mut Reducer::sequential()).is_err());
        assert!(matmul_reference(&a, &b, &mut Reducer::sequential()).is_err());
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = t(3, 2, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]); // Aᵀ is 2x3 [1,2,3;4,5,6]
        let b = t(3, 2, vec![7.0, 10.0, 8.0, 11.0, 9.0, 12.0]);
        let c = matmul_at_b(&a, &b, &mut Reducer::sequential()).unwrap();
        // Aᵀ·B = [[1,2,3],[4,5,6]] × [[7,10],[8,11],[9,12]]
        assert_eq!(c.as_slice(), &[50.0, 68.0, 122.0, 167.0]);
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = t(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(2, 3, vec![7.0, 9.0, 11.0, 8.0, 10.0, 12.0]); // Bᵀ = [[7,8],[9,10],[11,12]]
        let c = matmul_a_bt(&a, &b, &mut Reducer::sequential()).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn permuted_order_stays_close_to_reference() {
        let n = 24;
        let a = t(
            n,
            n,
            (0..n * n).map(|i| ((i % 13) as f32 - 6.0) * 0.1).collect(),
        );
        let b = t(
            n,
            n,
            (0..n * n).map(|i| ((i % 7) as f32 - 3.0) * 0.2).collect(),
        );
        let reference = matmul(&a, &b, &mut Reducer::sequential()).unwrap();
        let mut red = Reducer::new(ReduceOrder::Permuted, 32, 77);
        let c = matmul(&a, &b, &mut red).unwrap();
        for (x, y) in c.as_slice().iter().zip(reference.as_slice()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn fixed_tree_matmul_is_bitwise_stable() {
        let n = 16;
        let a = t(n, n, (0..n * n).map(|i| (i as f32).sin()).collect());
        let b = t(n, n, (0..n * n).map(|i| (i as f32).cos()).collect());
        let mut r1 = Reducer::new(ReduceOrder::FixedTree, 32, 1);
        let mut r2 = Reducer::new(ReduceOrder::FixedTree, 32, 2);
        let c1 = matmul(&a, &b, &mut r1).unwrap();
        let c2 = matmul(&a, &b, &mut r2).unwrap();
        assert_eq!(c1.as_slice(), c2.as_slice());
    }
}
