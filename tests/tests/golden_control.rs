//! Golden snapshot of Control-variant end-to-end training.
//!
//! The Control arm (fixed algorithmic seed + deterministic execution) must
//! produce *byte-identical* final weights across code changes: any
//! accumulation-order change anywhere in the training hot path shows up
//! here as a hash mismatch. The committed snapshot in
//! `tests/golden/control_weights.json` was generated before the blocked
//! GEMM engine landed, so it also certifies that the fast path is
//! bit-identical to the original per-element reference path.
//!
//! If the snapshot file is missing the test regenerates it and passes —
//! delete the file *only* when a change to golden values is intentional
//! and explained in the commit message.

use noisescope::prelude::*;
use ns_integration::{tiny_settings, tiny_task};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenEntry {
    device: String,
    weights_len: usize,
    /// FNV-1a over the little-endian bytes of every final weight.
    fnv1a64: String,
    /// First few weights as bit patterns, for debugging a mismatch.
    head_bits: Vec<u32>,
}

fn fnv1a64(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn snapshot() -> Vec<GoldenEntry> {
    let prepared = PreparedTask::prepare(&tiny_task());
    let settings = tiny_settings();
    [
        Device::cpu(),
        Device::v100(),
        Device::rtx5000_tensor_cores(),
    ]
    .into_iter()
    .map(|device| {
        let runs = run_variant(&prepared, &device, NoiseVariant::Control, &settings);
        let w = &runs.results[0].weights;
        GoldenEntry {
            device: device.name().to_string(),
            weights_len: w.len(),
            fnv1a64: format!(
                "{:016x}",
                fnv1a64(w.iter().flat_map(|x| x.to_le_bytes().into_iter()))
            ),
            head_bits: w.iter().take(8).map(|x| x.to_bits()).collect(),
        }
    })
    .collect()
}

#[test]
fn control_weights_match_golden_snapshot() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/control_weights.json");
    let current = snapshot();
    match std::fs::read_to_string(path) {
        Ok(text) => {
            let golden: Vec<GoldenEntry> =
                serde_json::from_str(&text).expect("golden snapshot parses");
            assert_eq!(
                current, golden,
                "Control-variant weights diverged from the committed golden \
                 snapshot ({path}); an accumulation order changed somewhere"
            );
        }
        Err(_) => {
            std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/golden"))
                .expect("create golden dir");
            std::fs::write(
                path,
                serde_json::to_string_pretty(&current).expect("serialize snapshot"),
            )
            .expect("write golden snapshot");
            eprintln!("golden snapshot regenerated at {path}; commit it");
        }
    }
}
