//! Loss functions.

use nstensor::{ops, Shape, Tensor};

/// Softmax cross-entropy over class logits.
///
/// Returns `(mean_loss, dlogits)` where `dlogits = (softmax − onehot)/N`.
///
/// # Panics
///
/// Panics if `logits` is not `[N, C]` with `labels.len() == N`, or a label
/// is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[u32]) -> (f32, Tensor) {
    assert_eq!(logits.shape().rank(), 2, "logits must be [N, C]");
    let (n, c) = (logits.shape().dim(0), logits.shape().dim(1));
    assert_eq!(labels.len(), n, "label count mismatch");
    let mut probs = logits.clone();
    ops::softmax_rows(&mut probs).expect("softmax shape");
    let mut loss = 0f64;
    let inv_n = 1.0 / n as f32;
    let mut grad = probs.clone();
    {
        let gv = grad.as_mut_slice();
        let pv = probs.as_slice();
        for (i, &label) in labels.iter().enumerate() {
            let label = label as usize;
            assert!(label < c, "label {label} out of range for {c} classes");
            loss -= (pv[i * c + label].max(1e-12) as f64).ln();
            gv[i * c + label] -= 1.0;
        }
        for v in gv.iter_mut() {
            *v *= inv_n;
        }
    }
    ((loss / n as f64) as f32, grad)
}

/// Mean sigmoid binary cross-entropy over `[N, A]` logits against `{0, 1}`
/// targets — the multi-label objective used for CelebA-style attribute
/// prediction.
///
/// Returns `(mean_loss, dlogits)` with `dlogits = (σ(z) − t)/(N·A)`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn sigmoid_bce(logits: &Tensor, targets: &Tensor) -> (f32, Tensor) {
    assert_eq!(logits.shape(), targets.shape(), "logits/targets mismatch");
    let count = logits.len().max(1) as f32;
    let mut grad = Tensor::zeros(logits.shape());
    let mut loss = 0f64;
    {
        let gv = grad.as_mut_slice();
        let zv = logits.as_slice();
        let tv = targets.as_slice();
        for i in 0..zv.len() {
            let z = zv[i] as f64;
            let t = tv[i] as f64;
            // Numerically stable: log(1+e^{-|z|}) + max(z,0) − z·t.
            loss += z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln();
            let p = 1.0 / (1.0 + (-z).exp());
            gv[i] = ((p - t) / count as f64) as f32;
        }
    }
    ((loss / count as f64) as f32, grad)
}

/// Row-wise argmax predictions from `[N, C]` logits.
///
/// # Panics
///
/// Panics if `logits` is not rank 2.
pub fn argmax_predictions(logits: &Tensor) -> Vec<u32> {
    assert_eq!(logits.shape().rank(), 2);
    let c = logits.shape().dim(1);
    logits
        .as_slice()
        .chunks(c)
        .map(|row| {
            let mut best = 0usize;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            best as u32
        })
        .collect()
}

/// Thresholded binary predictions (`σ(z) > 0.5` ⇔ `z > 0`) from logits.
pub fn binary_predictions(logits: &Tensor) -> Vec<u8> {
    logits.as_slice().iter().map(|&z| (z > 0.0) as u8).collect()
}

/// Builds a `[N, A]` target tensor from per-sample binary attribute rows.
///
/// # Panics
///
/// Panics if rows have uneven lengths.
pub fn binary_targets(rows: &[Vec<u8>]) -> Tensor {
    let n = rows.len();
    let a = rows.first().map_or(0, Vec::len);
    let mut data = Vec::with_capacity(n * a);
    for row in rows {
        assert_eq!(row.len(), a, "ragged target rows");
        data.extend(row.iter().map(|&b| b as f32));
    }
    Tensor::from_vec(Shape::of(&[n, a]), data).expect("target shape")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ce_loss_of_perfect_prediction_is_small() {
        let logits =
            Tensor::from_vec(Shape::of(&[2, 3]), vec![10.0, 0.0, 0.0, 0.0, 10.0, 0.0]).unwrap();
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-3, "loss {loss}");
    }

    #[test]
    fn ce_loss_of_uniform_is_log_c() {
        let logits = Tensor::zeros(Shape::of(&[4, 10]));
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3, 5, 9]);
        assert!((loss - (10f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn ce_gradient_matches_finite_difference() {
        let logits =
            Tensor::from_vec(Shape::of(&[2, 3]), vec![0.5, -0.2, 0.1, -1.0, 0.3, 0.8]).unwrap();
        let labels = [2u32, 1];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..6 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &labels);
            let (fm, _) = softmax_cross_entropy(&lm, &labels);
            let fd = (fp - fm) as f64 / (2.0 * eps as f64);
            assert!(
                (fd - grad.as_slice()[i] as f64).abs() < 1e-3,
                "grad[{i}]: {fd} vs {}",
                grad.as_slice()[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ce_rejects_bad_label() {
        let logits = Tensor::zeros(Shape::of(&[1, 3]));
        softmax_cross_entropy(&logits, &[3]);
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(Shape::of(&[2, 2]), vec![0.3, -1.2, 2.0, 0.0]).unwrap();
        let targets = Tensor::from_vec(Shape::of(&[2, 2]), vec![1.0, 0.0, 1.0, 1.0]).unwrap();
        let (_, grad) = sigmoid_bce(&logits, &targets);
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let (fp, _) = sigmoid_bce(&lp, &targets);
            let (fm, _) = sigmoid_bce(&lm, &targets);
            let fd = (fp - fm) as f64 / (2.0 * eps as f64);
            assert!((fd - grad.as_slice()[i] as f64).abs() < 1e-3);
        }
    }

    #[test]
    fn bce_is_stable_for_large_logits() {
        let logits = Tensor::from_vec(Shape::of(&[1, 2]), vec![80.0, -80.0]).unwrap();
        let targets = Tensor::from_vec(Shape::of(&[1, 2]), vec![1.0, 0.0]).unwrap();
        let (loss, grad) = sigmoid_bce(&logits, &targets);
        assert!(loss.is_finite() && loss < 1e-3);
        assert!(grad.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn predictions() {
        let logits =
            Tensor::from_vec(Shape::of(&[2, 3]), vec![0.1, 0.9, 0.2, 3.0, -1.0, 2.0]).unwrap();
        assert_eq!(argmax_predictions(&logits), vec![1, 0]);
        let z = Tensor::from_vec(Shape::of(&[1, 3]), vec![0.5, -0.5, 0.0]).unwrap();
        assert_eq!(binary_predictions(&z), vec![1, 0, 0]);
    }

    #[test]
    fn binary_targets_layout() {
        let t = binary_targets(&[vec![1, 0], vec![0, 1]]);
        assert_eq!(t.shape().dims(), &[2, 2]);
        assert_eq!(t.as_slice(), &[1.0, 0.0, 0.0, 1.0]);
    }
}
