//! Calibration guards for the determinism cost model: the reproduced
//! Figure-7/8 results must keep the paper's shape (and roughly its
//! magnitudes) as the code evolves.

use noisescope::experiments::cost::{fig7, fig8a, fig8b};

fn series(points: &[noisescope::experiments::cost::OverheadPoint], device: &str) -> Vec<f64> {
    points
        .iter()
        .filter(|p| p.device == device)
        .map(|p| p.overhead_pct)
        .collect()
}

#[test]
fn filter_sweep_is_monotone_and_in_paper_ranges() {
    let pts = fig8b(64);
    // Paper Fig. 8 (right): 284–746 % on P100, 129–241 % on V100,
    // 117–196 % on T4, monotone in filter size.
    let expect = [
        ("P100", 230.0, 900.0),
        ("V100", 115.0, 300.0),
        ("T4", 105.0, 240.0),
    ];
    for (device, lo, hi) in expect {
        let s = series(&pts, device);
        assert_eq!(s.len(), 4, "{device}");
        for w in s.windows(2) {
            assert!(w[1] >= w[0], "{device}: overhead not monotone in k: {s:?}");
        }
        assert!(s[0] >= lo && s[0] <= hi, "{device} k=1: {}", s[0]);
        assert!(s[3] >= lo && s[3] <= hi, "{device} k=7: {}", s[3]);
        // Dynamic range of the sweep must be substantial, like the paper's.
        assert!(s[3] / s[0] > 1.5, "{device}: sweep too flat: {s:?}");
    }
}

#[test]
fn pascal_pays_most_for_determinism() {
    let pts = fig8b(64);
    for i in 0..4 {
        let p100 = series(&pts, "P100")[i];
        let v100 = series(&pts, "V100")[i];
        let t4 = series(&pts, "T4")[i];
        assert!(p100 > v100, "point {i}");
        assert!(v100 > t4, "point {i}");
    }
}

#[test]
fn model_sweep_shape_matches_paper() {
    let pts = fig8a(64);
    let get = |w: &str, d: &str| {
        pts.iter()
            .find(|p| p.workload == w && p.device == d)
            .map(|p| p.overhead_pct)
            .unwrap_or_else(|| panic!("missing {w}/{d}"))
    };
    for device in ["P100", "V100", "T4"] {
        // MobileNet is the cheapest network to make deterministic
        // (pointwise + depthwise convolutions).
        let mobile = get("MobileNetV2", device);
        for heavy in ["VGG16", "VGG19", "InceptionV3"] {
            assert!(
                get(heavy, device) > mobile,
                "{heavy} should exceed MobileNetV2 on {device}"
            );
        }
        // Every model pays at least parity; none explodes past the
        // medium-CNN extremes.
        for p in pts.iter().filter(|p| p.device == device) {
            assert!(p.overhead_pct >= 99.9, "{}: {}", p.workload, p.overhead_pct);
        }
    }
    // V100 VGG-19 lands near the paper's 185 % (generous tolerance).
    let vgg19_v100 = get("VGG19", "V100");
    assert!(
        (120.0..220.0).contains(&vgg19_v100),
        "VGG19/V100 {vgg19_v100}"
    );
}

#[test]
fn fig7_profile_has_paper_properties() {
    let fig = fig7(100);
    // Deterministic mode is slower overall...
    assert!(fig.deterministic_profile.total_time_s() > fig.default_profile.total_time_s());
    // ...schedules a narrower kernel set...
    assert!(fig.deterministic_profile.distinct_kernels() < fig.default_profile.distinct_kernels());
    // ...and its invocation counts scale with the profiled steps.
    let top = &fig.default_profile.top_k(1)[0];
    assert_eq!(top.invocations % 100, 0);
    // Top-20 cumulative time must dominate the profile (skewed allocation).
    let top20: f64 = fig
        .default_profile
        .top_k(20)
        .iter()
        .map(|r| r.total_time_s)
        .sum();
    assert!(top20 / fig.default_profile.total_time_s() > 0.5);
}
