//! The network container.

use crate::layers::Layer;
use detrand::Philox;
use hwsim::ExecutionContext;
use nstensor::Tensor;

/// A sequential stack of layers.
///
/// # Example
///
/// ```
/// use detrand::{Philox, StreamId};
/// use hwsim::{Device, ExecutionContext, ExecutionMode};
/// use nnet::layers::{Dense, Relu};
/// use nnet::model::Network;
/// use nstensor::{Shape, Tensor};
///
/// let root = Philox::from_seed(1);
/// let mut rng = root.stream(StreamId::INIT.child(0));
/// let mut net = Network::new();
/// net.push(Dense::new(4, 8, &mut rng));
/// net.push(Relu::new());
/// net.push(Dense::new(8, 2, &mut rng));
/// let mut exec = ExecutionContext::new(Device::cpu(), ExecutionMode::Default, 0);
/// let y = net.forward(Tensor::zeros(Shape::of(&[3, 4])), &mut exec, &root, 0, false);
/// assert_eq!(y.shape().dims(), &[3, 2]);
/// ```
#[derive(Debug, Default)]
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Forward pass through every layer.
    pub fn forward(
        &mut self,
        mut x: Tensor,
        exec: &mut ExecutionContext,
        algo: &Philox,
        step: u64,
        training: bool,
    ) -> Tensor {
        for layer in &mut self.layers {
            x = layer.forward(x, exec, algo, step, training);
        }
        x
    }

    /// Backward pass through every layer in reverse.
    pub fn backward(&mut self, mut dy: Tensor, exec: &mut ExecutionContext) -> Tensor {
        for layer in self.layers.iter_mut().rev() {
            dy = layer.backward(dy, exec);
        }
        dy
    }

    /// Visits every `(parameter, gradient)` pair.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Flattens every parameter into one vector (for weight-divergence
    /// measurements between replicas).
    pub fn flat_weights(&mut self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        self.visit_params(&mut |p, _| out.extend_from_slice(p.as_slice()));
        out
    }

    /// Overwrites every parameter from a flat vector produced by
    /// [`Network::flat_weights`] (checkpoint restore).
    ///
    /// # Errors
    ///
    /// Returns the expected length when `flat` does not match the
    /// network's parameter count; the network is left untouched.
    pub fn set_flat_weights(&mut self, flat: &[f32]) -> Result<(), usize> {
        let expected = self.param_count();
        if flat.len() != expected {
            return Err(expected);
        }
        let mut offset = 0usize;
        self.visit_params(&mut |p, _| {
            let n = p.len();
            p.as_mut_slice().copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        });
        Ok(())
    }

    /// Euclidean norm of all weights.
    pub fn weight_norm(&mut self) -> f64 {
        let mut s = 0f64;
        self.visit_params(&mut |p, _| {
            s += nstensor::reduce::sum_ordered_f64(
                p.as_slice().iter().map(|&v| (v as f64) * (v as f64)),
            );
        });
        s.sqrt()
    }

    /// The kinds of the layers, in order.
    pub fn layer_kinds(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.kind()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use detrand::StreamId;
    use hwsim::{Device, ExecutionMode};
    use nstensor::Shape;

    fn mlp(seed: u64) -> (Network, Philox) {
        let root = Philox::from_seed(seed);
        let mut rng = root.stream(StreamId::INIT.child(0));
        let mut net = Network::new();
        net.push(Dense::new(3, 5, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(5, 2, &mut rng));
        (net, root)
    }

    #[test]
    fn forward_backward_shapes() {
        let (mut net, root) = mlp(1);
        let mut exec = ExecutionContext::new(Device::cpu(), ExecutionMode::Default, 0);
        let y = net.forward(
            Tensor::full(Shape::of(&[4, 3]), 0.5),
            &mut exec,
            &root,
            0,
            true,
        );
        assert_eq!(y.shape().dims(), &[4, 2]);
        let dx = net.backward(Tensor::full(Shape::of(&[4, 2]), 1.0), &mut exec);
        assert_eq!(dx.shape().dims(), &[4, 3]);
    }

    #[test]
    fn param_count_and_flat_weights_agree() {
        let (mut net, _) = mlp(2);
        assert_eq!(net.param_count(), 3 * 5 + 5 + 5 * 2 + 2);
        assert_eq!(net.flat_weights().len(), net.param_count());
    }

    #[test]
    fn same_seed_identical_weights() {
        let (mut a, _) = mlp(3);
        let (mut b, _) = mlp(3);
        assert_eq!(a.flat_weights(), b.flat_weights());
        let (mut c, _) = mlp(4);
        assert_ne!(a.flat_weights(), c.flat_weights());
    }

    #[test]
    fn layer_kinds_in_order() {
        let (net, _) = mlp(5);
        assert_eq!(net.layer_kinds(), vec!["dense", "relu", "dense"]);
        assert_eq!(net.len(), 3);
        assert!(!net.is_empty());
    }
}
