//! A lightweight structural parser on top of the lexer.
//!
//! detlint v1 worked on raw token runs delimited by `;`/`{`/`}`. That is
//! enough for single-statement pattern rules, but the dataflow rules
//! (DL006–DL008) need to know *which function* a statement belongs to,
//! what a `let` binds, and where a multi-line statement *starts* (so a
//! suppression on the first line covers the whole expression). This
//! module recovers exactly that shape — items, `fn` signatures, blocks,
//! statements with line spans, and `let`-bindings — without attempting a
//! full Rust grammar.
//!
//! Design constraints, in order:
//!
//! 1. **Never panic, never loop.** The parser runs over every file in the
//!    workspace including malformed ones (a fuzz test feeds it byte-mangled
//!    source). Every loop consumes at least one token; recursion is
//!    depth-capped and falls back to brace-skipping beyond the cap.
//! 2. **Agree with the v1 rules engine.** Statement boundaries are the same
//!    `;`/`{`/`}` splits `rules::Ctx::stmt_range` uses, so the parser swap
//!    cannot move any DL001–DL005 finding. The parser *adds* structure
//!    (full statement extents across nested expression braces, bindings,
//!    enclosing functions); it does not reinterpret the old boundaries.
//! 3. **Heuristics are explicit.** A `{` after a control keyword (`if`,
//!    `for`, `while`, `loop`, `match`, `unsafe`, `else`) or an item
//!    keyword (`fn`, `impl`, `mod`, ...) opens a block; any other `{` is
//!    an expression brace (struct literal, closure body, match arm body)
//!    and is kept *inside* the current statement's extent. Rust's
//!    no-struct-literal-in-control-header rule makes this sound for real
//!    source.

use crate::lexer::Tok;

/// Maximum block recursion depth; beyond it, nested blocks are skipped
/// generically (their statements are not recorded). Real workspace source
/// nests a handful of levels; only adversarial input goes deeper.
const MAX_DEPTH: u32 = 64;

/// Keywords that head a control-flow construct whose `{` is a block.
const CONTROL_KEYWORDS: &[&str] = &["if", "while", "for", "loop", "match", "unsafe", "else"];

/// Keywords that head an item whose `{` is a body/field block.
const ITEM_KEYWORDS: &[&str] = &[
    "fn", "impl", "mod", "trait", "enum", "struct", "union", "extern",
];

/// One binding introduced by a `let` statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LetBinding {
    /// Names bound by the pattern (all idents in pattern position; for
    /// `let (a, b) = ..` both `a` and `b`).
    pub names: Vec<String>,
    /// Token range of the initializer (after `=`), inclusive, if any.
    pub init: Option<(usize, usize)>,
}

/// One statement: a token run plus structure.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// Inclusive token index range. For a statement with nested
    /// *expression* braces (struct literals, closure bodies) the range
    /// spans them; for a control-flow header (`for x in xs {`) the range
    /// ends before the `{` and the body statements are recorded
    /// separately.
    pub range: (usize, usize),
    /// 1-based line of the statement's first token.
    pub first_line: u32,
    /// 1-based line of the statement's last token.
    pub last_line: u32,
    /// Index into [`ParsedFile::functions`] of the innermost enclosing
    /// `fn`, if any.
    pub fn_idx: Option<usize>,
    /// The bindings, when this is a `let` statement.
    pub let_binding: Option<LetBinding>,
}

/// One `fn` item (free function, method, or nested fn).
#[derive(Debug, Clone)]
pub struct Function {
    /// The function's name (`fn` keyword's following ident), if present.
    pub name: Option<String>,
    /// Inclusive token range of the signature (`fn` through the token
    /// before the body `{`).
    pub sig: (usize, usize),
    /// Indices into [`ParsedFile::stmts`] of every statement in the body,
    /// including statements of nested blocks, in source order. Nested
    /// `fn` items get their own entry; their statements belong to the
    /// inner function only.
    pub stmt_indices: Vec<usize>,
}

/// The parsed shape of one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// All statements, in source order.
    pub stmts: Vec<Stmt>,
    /// All `fn` items, in source order of their `fn` keyword.
    pub functions: Vec<Function>,
}

impl ParsedFile {
    /// The first line of the statement covering `line`, if any statement's
    /// span contains it. Statements never overlap lines except through
    /// nesting; the *innermost* (latest-starting) covering statement wins
    /// so a suppression attaches as tightly as possible.
    pub fn stmt_first_line(&self, line: u32) -> Option<u32> {
        self.stmts
            .iter()
            .filter(|s| s.first_line <= line && line <= s.last_line)
            .map(|s| s.first_line)
            .max()
    }

    /// The statement covering token index `i` (innermost wins).
    pub fn stmt_at_token(&self, i: usize) -> Option<&Stmt> {
        self.stmts
            .iter()
            .filter(|s| s.range.0 <= i && i <= s.range.1)
            .max_by_key(|s| s.range.0)
    }
}

struct Parser<'a> {
    tokens: &'a [Tok],
    out: ParsedFile,
}

/// Parses a lexed file into statements and functions.
pub fn parse(tokens: &[Tok]) -> ParsedFile {
    let mut p = Parser {
        tokens,
        out: ParsedFile::default(),
    };
    p.parse_stmts(0, tokens.len(), None, 0);
    p.out
}

impl Parser<'_> {
    fn is(&self, i: usize, c: char) -> bool {
        self.tokens.get(i).is_some_and(|t| t.is_punct(c))
    }

    fn ident_at(&self, i: usize) -> Option<&str> {
        self.tokens.get(i).and_then(Tok::ident)
    }

    /// Index just past the `}` matching the `{` at `open` (or `end`).
    fn skip_braces(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < end {
            if self.is(i, '{') {
                depth += 1;
            } else if self.is(i, '}') {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        end
    }

    /// `true` if the `=` at `i` is a plain assignment operator (not part
    /// of `==`, `=>`, `<=`, `>=`, `!=`, `+=`, ...).
    fn is_plain_eq(&self, i: usize, stmt_start: usize) -> bool {
        if !self.is(i, '=') {
            return false;
        }
        if self.is(i + 1, '=') || self.is(i + 1, '>') {
            return false;
        }
        if i > stmt_start {
            let prev = &self.tokens[i - 1];
            for c in ['=', '<', '>', '!', '+', '-', '*', '/', '%', '&', '|', '^'] {
                if prev.is_punct(c) {
                    return false;
                }
            }
        }
        true
    }

    /// Parses statements in `[i, end)` at one block level. `fn_idx` is the
    /// innermost enclosing function. Returns the index just past `end` or
    /// past the closing `}` that ended the region.
    fn parse_stmts(
        &mut self,
        mut i: usize,
        end: usize,
        fn_idx: Option<usize>,
        depth: u32,
    ) -> usize {
        while i < end {
            if self.is(i, '}') {
                return i + 1;
            }
            if self.is(i, ';') || self.is(i, ',') {
                // Empty statement / stray separator (match-arm commas land
                // here after an arm's expression statement).
                i += 1;
                continue;
            }
            if self.is(i, '{') {
                // Bare block statement.
                i = self.enter_block(i, end, fn_idx, depth);
                continue;
            }
            i = self.parse_stmt(i, end, fn_idx, depth);
        }
        end
    }

    /// Descends into the block whose `{` is at `open`; returns the index
    /// just past its `}`.
    fn enter_block(&mut self, open: usize, end: usize, fn_idx: Option<usize>, depth: u32) -> usize {
        if depth >= MAX_DEPTH {
            return self.skip_braces(open, end);
        }
        self.parse_stmts(open + 1, end, fn_idx, depth + 1)
    }

    /// Parses one statement starting at `i` (not a `}`/`;`/`{`). Returns
    /// the index just past it (past its `;`, or past its body block for a
    /// control/item statement, or at the region's `}`).
    fn parse_stmt(&mut self, start: usize, end: usize, fn_idx: Option<usize>, depth: u32) -> usize {
        // Leading attributes `#[...]` belong to the statement but must not
        // confuse keyword detection.
        let mut i = start;
        while self.is(i, '#') && self.is(i + 1, '[') {
            let mut d = 0i32;
            let mut j = i + 1;
            while j < end {
                if self.is(j, '[') {
                    d += 1;
                } else if self.is(j, ']') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                j += 1;
            }
            i = (j + 1).min(end);
        }
        let head = i;
        // Skip visibility / leading qualifiers to find the head keyword.
        let mut kw = head;
        loop {
            match self.ident_at(kw) {
                Some("pub") => {
                    kw += 1;
                    if self.is(kw, '(') {
                        // pub(crate) / pub(super)
                        let mut d = 0i32;
                        while kw < end {
                            if self.is(kw, '(') {
                                d += 1;
                            } else if self.is(kw, ')') {
                                d -= 1;
                                if d == 0 {
                                    kw += 1;
                                    break;
                                }
                            }
                            kw += 1;
                        }
                    }
                }
                Some("const") if self.ident_at(kw + 1) == Some("fn") => kw += 1,
                Some("async" | "unsafe")
                    if self
                        .ident_at(kw + 1)
                        .is_some_and(|s| s == "fn" || s == "extern") =>
                {
                    kw += 1
                }
                _ => break,
            }
        }
        let head_kw = self.ident_at(kw);
        let is_item = head_kw.is_some_and(|s| ITEM_KEYWORDS.contains(&s));
        let is_control = head_kw.is_some_and(|s| CONTROL_KEYWORDS.contains(&s));
        let is_fn = head_kw == Some("fn");
        let is_let = head_kw == Some("let");

        // Scan to the statement end: a `;` at paren/bracket depth 0, a
        // region-closing `}`, or — for control/item heads — the body `{`.
        let mut j = kw;
        if is_control || is_item {
            j = kw + 1; // the keyword itself can't end the statement
        }
        let mut nest = 0i32; // ( and [ nesting
        let mut eq_at: Option<usize> = None;
        let mut stmt_end = None; // inclusive index of last token
        let mut resume_at = end;
        while j < end {
            let t = &self.tokens[j];
            if t.is_punct('(') || t.is_punct('[') {
                nest += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                nest -= 1;
            } else if nest <= 0 && t.is_punct(';') {
                stmt_end = Some(j.saturating_sub(1).max(start));
                resume_at = j + 1;
                break;
            } else if nest <= 0 && t.is_punct(',') && !is_control && !is_item {
                // Match-arm style separator at block level ends the
                // statement (tuples at true statement level are not a
                // thing; inside parens/brackets nest > 0 shields commas).
                stmt_end = Some(j.saturating_sub(1).max(start));
                resume_at = j + 1;
                break;
            } else if nest <= 0 && t.is_punct('}') {
                // Region closes without a `;` (tail expression).
                stmt_end = Some(j.saturating_sub(1).max(start));
                resume_at = j; // caller sees the `}`
                break;
            } else if nest <= 0 && t.is_punct('{') {
                if is_control || (is_item && !is_fn) {
                    // Control/item body block: header statement ends
                    // before the brace; body parsed as nested statements.
                    stmt_end = Some(j.saturating_sub(1).max(start));
                    resume_at = self.enter_block(j, end, fn_idx, depth);
                    break;
                }
                if is_fn {
                    // Function body: record the function, parse the body
                    // with the new fn index. Statements register
                    // themselves with their own enclosing fn, so nested
                    // fns keep their statements to themselves.
                    let func_idx = self.out.functions.len();
                    self.out.functions.push(Function {
                        name: self.ident_at(kw + 1).map(str::to_string),
                        sig: (start, j.saturating_sub(1).max(start)),
                        stmt_indices: Vec::new(),
                    });
                    let after_body = self.enter_block(j, end, Some(func_idx), depth);
                    stmt_end = Some(j.saturating_sub(1).max(start));
                    resume_at = after_body;
                    break;
                }
                // Expression brace (struct literal, closure body, `match`
                // used as a value, ...): stays inside this statement.
                j = self.skip_braces(j, end);
                continue;
            } else if nest <= 0 && eq_at.is_none() && self.is_plain_eq(j, start) {
                eq_at = Some(j);
            }
            j += 1;
        }
        let stmt_end = stmt_end.unwrap_or_else(|| end.saturating_sub(1).max(start));
        if resume_at == end && j >= end {
            // Ran off the region without a terminator.
            resume_at = end;
        }

        let let_binding = if is_let {
            Some(self.parse_let(kw, stmt_end, eq_at))
        } else if is_control {
            self.parse_header_binding(kw, stmt_end)
        } else {
            None
        };
        let range = (start, stmt_end.min(end.saturating_sub(1)).max(start));
        let (first_line, last_line) = (self.tokens[range.0].line, self.tokens[range.1].line);
        self.out.stmts.push(Stmt {
            range,
            first_line,
            last_line: last_line.max(first_line),
            fn_idx,
            let_binding,
        });
        if let Some(fi) = fn_idx {
            let idx = self.out.stmts.len() - 1;
            self.out.functions[fi].stmt_indices.push(idx);
        }
        resume_at.max(start + 1) // always make progress
    }

    /// Extracts the bindings of a `let` statement: `kw` is the `let`
    /// token, `stmt_end` the statement's last token, `eq_at` the `=` if
    /// one was seen at depth 0.
    fn parse_let(&self, kw: usize, stmt_end: usize, eq_at: Option<usize>) -> LetBinding {
        // Pattern range: after `let` up to the `:` (type annotation) or
        // `=` at paren depth 0, or the statement end.
        let pat_end = eq_at.unwrap_or(stmt_end + 1);
        let mut names = Vec::new();
        let mut nest = 0i32;
        let mut i = kw + 1;
        let mut ty_started = false;
        while i < pat_end && i <= stmt_end {
            let t = &self.tokens[i];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                nest += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
                nest -= 1;
            } else if nest <= 0 && t.is_punct(':') && !self.is(i + 1, ':') && !self.is(i - 1, ':') {
                ty_started = true;
            } else if !ty_started {
                if let Some(id) = t.ident() {
                    // Skip binding-mode keywords and path segments used as
                    // enum constructors (`Some(x)` → `x` only); a path
                    // segment is followed by `(`/`::`/`{`.
                    let is_kw = matches!(id, "mut" | "ref" | "box" | "_");
                    let is_path = self.is(i + 1, '(')
                        || self.is(i + 1, '{')
                        || (self.is(i + 1, ':') && self.is(i + 2, ':'));
                    if !is_kw && !is_path {
                        names.push(id.to_string());
                    }
                }
            }
            i += 1;
        }
        let init = eq_at.and_then(|e| {
            let s = e + 1;
            (s <= stmt_end).then_some((s, stmt_end))
        });
        LetBinding { names, init }
    }

    /// Bindings introduced by a control-flow header: `for PAT in EXPR`,
    /// `if let PAT = EXPR`, `while let PAT = EXPR`.
    fn parse_header_binding(&self, kw: usize, stmt_end: usize) -> Option<LetBinding> {
        if self.ident_at(kw) == Some("for") {
            // Pattern between `for` and `in` (at paren depth 0).
            let mut nest = 0i32;
            let mut in_at = None;
            for i in kw + 1..=stmt_end {
                let t = &self.tokens[i];
                if t.is_punct('(') || t.is_punct('[') {
                    nest += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    nest -= 1;
                } else if nest <= 0 && t.is_ident("in") {
                    in_at = Some(i);
                    break;
                }
            }
            let in_at = in_at?;
            let mut names = Vec::new();
            for i in kw + 1..in_at {
                if let Some(id) = self.tokens[i].ident() {
                    let is_kw = matches!(id, "mut" | "ref" | "_");
                    let is_path =
                        self.is(i + 1, '(') || (self.is(i + 1, ':') && self.is(i + 2, ':'));
                    if !is_kw && !is_path {
                        names.push(id.to_string());
                    }
                }
            }
            let init = (in_at < stmt_end).then_some((in_at + 1, stmt_end));
            return Some(LetBinding { names, init });
        }
        // `if let` / `while let`: find the `let`, then its `=`.
        let let_at = (kw + 1..=stmt_end).find(|&i| self.tokens[i].is_ident("let"))?;
        let eq_at = (let_at + 1..=stmt_end).find(|&i| self.is_plain_eq(i, let_at));
        Some(self.parse_let(let_at, stmt_end, eq_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src).tokens)
    }

    #[test]
    fn functions_and_statements_are_recovered() {
        let src = "\
fn alpha(x: u32) -> u32 {
    let y = x + 1;
    y
}

pub fn beta() {
    let z: f64 = 0.0;
}
";
        let p = parse_src(src);
        assert_eq!(p.functions.len(), 2);
        assert_eq!(p.functions[0].name.as_deref(), Some("alpha"));
        assert_eq!(p.functions[1].name.as_deref(), Some("beta"));
        assert_eq!(p.functions[0].stmt_indices.len(), 2);
        assert_eq!(p.functions[1].stmt_indices.len(), 1);
    }

    #[test]
    fn multi_line_statement_spans_its_lines() {
        let src = "\
fn f(vals: &[f64]) -> f64 {
    let s: f64 = vals
        .iter()
        .map(|v| v * 2.0)
        .sum();
    s
}
";
        let p = parse_src(src);
        // The let statement starts on line 2 and ends on line 5.
        assert_eq!(p.stmt_first_line(5), Some(2));
        assert_eq!(p.stmt_first_line(3), Some(2));
        let stmt = p
            .stmts
            .iter()
            .find(|s| s.let_binding.is_some())
            .expect("let stmt");
        assert_eq!(stmt.first_line, 2);
        assert_eq!(stmt.last_line, 5);
        assert_eq!(
            stmt.let_binding.as_ref().unwrap().names,
            vec!["s".to_string()]
        );
    }

    #[test]
    fn let_patterns_bind_every_name() {
        let p = parse_src("fn f() { let (a, b) = pair(); let Some(c) = opt else { return; }; }");
        let bindings: Vec<Vec<String>> = p
            .stmts
            .iter()
            .filter_map(|s| s.let_binding.as_ref().map(|b| b.names.clone()))
            .collect();
        assert!(bindings.contains(&vec!["a".to_string(), "b".to_string()]));
        assert!(bindings.iter().any(|b| b.contains(&"c".to_string())));
    }

    #[test]
    fn control_flow_bodies_are_nested_statements() {
        let src = "\
fn f(xs: &[f64]) -> f64 {
    let mut total = 0.0;
    for x in xs {
        total += x;
    }
    total
}
";
        let p = parse_src(src);
        assert_eq!(p.functions.len(), 1);
        // let, for-header, total += x, total
        assert_eq!(p.functions[0].stmt_indices.len(), 4);
        // The for-header statement ends before its `{`.
        let header = p
            .stmts
            .iter()
            .find(|s| s.first_line == 3)
            .expect("for header");
        assert_eq!(header.last_line, 3);
    }

    #[test]
    fn struct_literal_brace_stays_in_statement() {
        let src = "\
fn f() -> Foo {
    let foo = Foo {
        a: 1,
        b: 2,
    };
    foo
}
";
        let p = parse_src(src);
        let stmt = p
            .stmts
            .iter()
            .find(|s| s.let_binding.is_some())
            .expect("let stmt");
        assert_eq!(stmt.first_line, 2);
        assert_eq!(stmt.last_line, 5);
    }

    #[test]
    fn if_let_body_is_a_block_not_an_expression_brace() {
        let src = "\
fn f(opt: Option<u32>) {
    if let Some(x) = opt {
        use_it(x);
    }
}
";
        let p = parse_src(src);
        let header = p
            .stmts
            .iter()
            .find(|s| s.first_line == 2)
            .expect("if header");
        assert_eq!(header.last_line, 2, "body must not be swallowed");
        assert!(p.stmts.iter().any(|s| s.first_line == 3));
    }

    #[test]
    fn nested_fn_statements_belong_to_inner_fn() {
        let src = "fn outer() { fn inner() { let a = 1; } let b = 2; }";
        let p = parse_src(src);
        assert_eq!(p.functions.len(), 2);
        let outer = p
            .functions
            .iter()
            .find(|f| f.name.as_deref() == Some("outer"))
            .unwrap();
        let inner = p
            .functions
            .iter()
            .find(|f| f.name.as_deref() == Some("inner"))
            .unwrap();
        let inner_lets: Vec<&str> = inner
            .stmt_indices
            .iter()
            .filter_map(|&i| p.stmts[i].let_binding.as_ref())
            .flat_map(|b| b.names.iter().map(String::as_str))
            .collect();
        assert_eq!(inner_lets, ["a"]);
        assert!(outer
            .stmt_indices
            .iter()
            .filter_map(|&i| p.stmts[i].let_binding.as_ref())
            .flat_map(|b| b.names.iter())
            .any(|n| n == "b"));
    }

    #[test]
    fn malformed_input_terminates() {
        for src in [
            "",
            "{",
            "}",
            "{{{{",
            "}}}}",
            "fn",
            "fn f(",
            "let",
            "let x = ",
            "fn f() {",
            ";;;;",
            "fn f() { let = ; }",
            "#[",
            "#[derive(",
            "match {",
        ] {
            let _ = parse_src(src); // must not panic or hang
        }
    }

    #[test]
    fn deep_nesting_is_capped_not_crashed() {
        let mut src = String::from("fn f() { ");
        for _ in 0..500 {
            src.push_str("if a { ");
        }
        for _ in 0..500 {
            src.push('}');
        }
        src.push('}');
        let _ = parse_src(&src);
    }
}
