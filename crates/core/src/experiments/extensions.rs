//! Extension experiments beyond the paper's published figures.
//!
//! The paper's §6 names distributed training as the key open question
//! ("an important area of future work involves understanding how
//! distributed training impacts model stability"), and its §3.3 attributes
//! V100's higher implementation noise to its larger CUDA-core count.
//! These two experiments probe both claims directly in the simulator:
//!
//! - [`data_parallel_sweep`] — IMPL-only noise as the batch is sharded
//!   across 1..=8 simulated workers whose gradients are all-reduced in
//!   nondeterministic arrival order;
//! - [`lanes_sweep`] — IMPL-only noise as a synthetic GPU's core count
//!   (and therefore its independently-ordered accumulation-lane count)
//!   grows, isolating the parallelism → noise mechanism from all other
//!   architectural differences.

use crate::report::render_table;
use crate::runner::{run_variant, PreparedTask};
use crate::settings::ExperimentSettings;
use crate::task::{ModelKind, TaskSpec};
use crate::variant::NoiseVariant;
use hwsim::{Architecture, Device};
use nsmetrics::{pairwise_mean_churn, pairwise_mean_l2};
use serde::{Deserialize, Serialize};

/// One point of the data-parallel extension sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataParallelPoint {
    /// Simulated worker count.
    pub workers: usize,
    /// IMPL-only pairwise churn.
    pub churn: f64,
    /// IMPL-only pairwise normalized weight L2.
    pub l2: f64,
    /// Mean test accuracy (sanity signal).
    pub mean_accuracy: f64,
}

/// Sweeps simulated data-parallel worker counts under IMPL-only noise.
pub fn data_parallel_sweep(settings: &ExperimentSettings) -> Vec<DataParallelPoint> {
    let device = Device::v100();
    [1usize, 2, 4, 8]
        .into_iter()
        .map(|workers| {
            let mut task = TaskSpec::resnet18_cifar10();
            task.train.data_parallel_workers = workers;
            let prepared = PreparedTask::prepare(&task);
            let runs = run_variant(&prepared, &device, NoiseVariant::Impl, settings);
            let preds = runs
                .class_pred_sets()
                .expect("CIFAR-style tasks predict classes");
            let weights = runs.weight_sets();
            DataParallelPoint {
                workers,
                churn: pairwise_mean_churn(&preds),
                l2: pairwise_mean_l2(&weights),
                mean_accuracy: nsmetrics::mean(&runs.accuracies()),
            }
        })
        .collect()
}

/// One point of the accumulation-lane (parallelism) sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LanesPoint {
    /// Synthetic CUDA-core count.
    pub cuda_cores: u32,
    /// Effective accumulation lanes ([`Device::lanes`]).
    pub lanes: usize,
    /// IMPL-only pairwise churn.
    pub churn: f64,
    /// IMPL-only pairwise normalized weight L2.
    pub l2: f64,
}

/// Sweeps a synthetic GPU's core count under IMPL-only noise (everything
/// else — throughput model, architecture family — held fixed).
pub fn lanes_sweep(settings: &ExperimentSettings) -> Vec<LanesPoint> {
    let task = TaskSpec::small_cnn_cifar10();
    let prepared = PreparedTask::prepare(&task);
    [640u32, 1280, 2560, 5120]
        .into_iter()
        .map(|cores| {
            let device =
                Device::custom("SWEEP-GPU", Architecture::Volta, cores, false, false, 14.9);
            let runs = run_variant(&prepared, &device, NoiseVariant::Impl, settings);
            LanesPoint {
                cuda_cores: cores,
                lanes: device.lanes(),
                churn: pairwise_mean_churn(
                    &runs
                        .class_pred_sets()
                        .expect("CIFAR-style tasks predict classes"),
                ),
                l2: pairwise_mean_l2(&runs.weight_sets()),
            }
        })
        .collect()
}

/// Renders the data-parallel sweep.
pub fn render_data_parallel(points: &[DataParallelPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.workers.to_string(),
                format!("{:.4}", p.churn),
                format!("{:.4}", p.l2),
                format!("{:.2}%", 100.0 * p.mean_accuracy),
            ]
        })
        .collect();
    render_table(
        "Extension: IMPL noise vs simulated data-parallel workers (V100, ResNet18/CIFAR-10-sim)",
        &["Workers", "churn", "l2", "mean acc"],
        &rows,
    )
}

/// Renders the lanes sweep.
pub fn render_lanes(points: &[LanesPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.cuda_cores.to_string(),
                p.lanes.to_string(),
                format!("{:.4}", p.churn),
                format!("{:.4}", p.l2),
            ]
        })
        .collect();
    render_table(
        "Extension: IMPL noise vs accumulation-lane count (synthetic GPU sweep)",
        &["CUDA cores", "lanes", "churn", "l2"],
        &rows,
    )
}

/// One arm of the per-source ALGO decomposition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlgoSourcePoint {
    /// The isolated source ("init", "shuffle", "augment", "dropout", "all").
    pub source: String,
    /// Pairwise churn across replicas varying only in this source.
    pub churn: f64,
    /// Pairwise normalized weight L2.
    pub l2: f64,
}

/// Decomposes ALGO noise into its four sources (paper Table 1): for each
/// arm, every factor is pinned except one — initialization, data
/// shuffling, augmentation, or dropout — and the replicas run on the
/// deterministic TPU so no scheduler noise mixes in. (Shuffle-order arms
/// still pick up the data-order accumulation effect of Fig. 6; that is
/// intrinsic to varying the order.) Extends the framework in the
/// direction of Summers & Dinneen (2021), which the paper cites as the
/// per-source study.
pub fn algo_source_decomposition(settings: &ExperimentSettings) -> Vec<AlgoSourcePoint> {
    use detrand::{Philox, SeedPolicy};
    use hwsim::{ExecutionContext, ExecutionMode};
    use nnet::trainer::{predict_classes, Trainer};

    let mut task = TaskSpec::small_cnn_cifar10();
    task.model = ModelKind::SmallCnnDropout { rate: 0.2 };
    let prepared = PreparedTask::prepare(&task);
    let device = Device::tpu_v2();
    let fixed = settings.base_seed;

    let arms: [&str; 5] = ["init", "shuffle", "augment", "dropout", "all"];
    arms.iter()
        .map(|&source| {
            let mut preds_sets = Vec::new();
            let mut weight_sets = Vec::new();
            for replica in 0..settings.replicas {
                let vary = SeedPolicy::PerReplica.seed_for(fixed, replica);
                // Pin every stream to `fixed`; open exactly one to `vary`.
                let model_root = Philox::from_seed(if source == "init" || source == "all" {
                    vary
                } else {
                    fixed
                });
                let mut cfg = task.train_config(settings);
                cfg.shuffle_seed_override = Some(if source == "shuffle" || source == "all" {
                    vary
                } else {
                    fixed
                });
                cfg.augment_seed_override = Some(if source == "augment" || source == "all" {
                    vary
                } else {
                    fixed
                });
                cfg.dropout_seed_override = Some(if source == "dropout" || source == "all" {
                    vary
                } else {
                    fixed
                });
                let mut exec = ExecutionContext::new(device, ExecutionMode::Default, 0);
                let mut net = task.build_model(&model_root);
                let augment = nsdata::ShiftFlip::standard();
                Trainer::new(cfg)
                    .fit(
                        &mut net,
                        prepared.train_set(),
                        &mut exec,
                        &model_root,
                        Some(&augment),
                    )
                    .expect("algo-source decomposition training run");
                let p = predict_classes(&mut net, prepared.test_set(), &mut exec, &model_root, 64);
                preds_sets.push(p);
                weight_sets.push(net.flat_weights());
            }
            AlgoSourcePoint {
                source: source.to_string(),
                churn: pairwise_mean_churn(&preds_sets),
                l2: pairwise_mean_l2(&weight_sets),
            }
        })
        .collect()
}

/// Renders the ALGO-source decomposition.
pub fn render_algo_sources(points: &[AlgoSourcePoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.source.clone(),
                format!("{:.4}", p.churn),
                format!("{:.4}", p.l2),
            ]
        })
        .collect();
    render_table(
        "Extension: per-source decomposition of ALGO noise (TPU, dropout small CNN)",
        &["Varied source", "churn", "l2"],
        &rows,
    )
}

/// One point of the architecture-instability comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArchInstabilityPoint {
    /// Model name.
    pub model: String,
    /// ALGO+IMPL pairwise churn.
    pub churn: f64,
    /// ALGO+IMPL accuracy stddev.
    pub std_accuracy: f64,
    /// Mean accuracy.
    pub mean_accuracy: f64,
}

/// Compares architecture families' instability under full (ALGO+IMPL)
/// noise on the same dataset — extends the paper's Fig. 1/2 observation
/// (model design moderates noise) to LeNet-5, which Pham et al. (ASE'20)
/// found to be the most variance-prone architecture across DL libraries,
/// and to the bottleneck-ResNet topology.
pub fn architecture_instability(settings: &ExperimentSettings) -> Vec<ArchInstabilityPoint> {
    let device = Device::v100();
    let models: [(&str, ModelKind); 4] = [
        ("LeNet5", ModelKind::LeNet5),
        ("SmallCNN", ModelKind::SmallCnn { with_bn: false }),
        ("SmallCNN+BN", ModelKind::SmallCnn { with_bn: true }),
        ("MicroResNet18", ModelKind::MicroResNet18),
    ];
    models
        .into_iter()
        .map(|(name, model)| {
            let mut task = TaskSpec::small_cnn_cifar10();
            task.name = name.to_string();
            task.model = model;
            let prepared = PreparedTask::prepare(&task);
            let runs = run_variant(&prepared, &device, NoiseVariant::AlgoImpl, settings);
            ArchInstabilityPoint {
                model: name.to_string(),
                churn: pairwise_mean_churn(
                    &runs
                        .class_pred_sets()
                        .expect("CIFAR-style tasks predict classes"),
                ),
                std_accuracy: nsmetrics::stddev(&runs.accuracies()),
                mean_accuracy: nsmetrics::mean(&runs.accuracies()),
            }
        })
        .collect()
}

/// Renders the architecture-instability comparison.
pub fn render_architecture_instability(points: &[ArchInstabilityPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.model.clone(),
                format!("{:.4}", p.churn),
                format!("{:.3}", 100.0 * p.std_accuracy),
                format!("{:.2}%", 100.0 * p.mean_accuracy),
            ]
        })
        .collect();
    render_table(
        "Extension: architecture instability under ALGO+IMPL (same dataset, V100)",
        &["Model", "churn", "stddev(acc) %", "mean acc"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::DataSource;
    use nsdata::GaussianSpec;

    #[test]
    fn data_parallel_training_still_learns_and_injects_noise() {
        // Direct check of the mechanism at tiny scale: sharded gradients
        // combined through a nondeterministic reducer diverge replicas.
        let mut task = TaskSpec::small_cnn_cifar10();
        task.data = DataSource::Gaussian(GaussianSpec {
            classes: 3,
            train_per_class: 16,
            test_per_class: 8,
            hw: 8,
            ..GaussianSpec::cifar10_sim()
        });
        task.train.epochs = 2;
        task.train.data_parallel_workers = 4;
        task.augment = false;
        let prepared = PreparedTask::prepare(&task);
        let settings = ExperimentSettings {
            replicas: 2,
            ..ExperimentSettings::default()
        };
        let runs = run_variant(&prepared, &Device::v100(), NoiseVariant::Impl, &settings);
        assert_ne!(runs.results[0].weights, runs.results[1].weights);
        // And the control stays exact even when sharded.
        let control = run_variant(&prepared, &Device::v100(), NoiseVariant::Control, &settings);
        assert_eq!(control.results[0].weights, control.results[1].weights);
    }

    #[test]
    fn sharded_and_unsharded_control_agree_on_learning() {
        // Sharding changes accumulation structure but must not change what
        // is learned in any material way (deterministic device).
        let mut task = TaskSpec::small_cnn_cifar10();
        task.data = DataSource::Gaussian(GaussianSpec {
            classes: 3,
            train_per_class: 16,
            test_per_class: 8,
            hw: 8,
            ..GaussianSpec::cifar10_sim()
        });
        task.train.epochs = 2;
        task.augment = false;
        let settings = ExperimentSettings {
            replicas: 1,
            ..ExperimentSettings::default()
        };
        let single = {
            let prepared = PreparedTask::prepare(&task);
            crate::runner::run_replica(
                &prepared,
                &Device::tpu_v2(),
                NoiseVariant::Control,
                &settings,
                0,
            )
            .expect("single-device control replica")
        };
        task.train.data_parallel_workers = 4;
        let sharded = {
            let prepared = PreparedTask::prepare(&task);
            crate::runner::run_replica(
                &prepared,
                &Device::tpu_v2(),
                NoiseVariant::Control,
                &settings,
                0,
            )
            .expect("sharded control replica")
        };
        // Not bitwise equal (different reduction structure), but the
        // learned functions must be close.
        let l2 = nsmetrics::l2_normalized(&single.weights, &sharded.weights);
        assert!(
            l2 < 0.5,
            "sharded training diverged from single-device: {l2}"
        );
    }
}
