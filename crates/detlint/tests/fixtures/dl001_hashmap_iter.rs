//! DL001 fixture: hash-container iteration feeding order-sensitive sinks.
//! Every block here must fire; this file is excluded from workspace scans.

use std::collections::{HashMap, HashSet};

// <explain:DL001:bad>
pub fn collect_values(agg: HashMap<String, f64>) -> Vec<f64> {
    agg.into_values().collect() // fires: collect from HashMap
}
// </explain:DL001:bad>

pub fn serialize_keys(index: &HashMap<String, u32>) -> String {
    index.keys().cloned().collect::<Vec<_>>().join(",") // fires: join
}

pub fn print_members(seen: &HashSet<u64>) {
    for id in seen.iter() { // fires: output sink inside the loop body
        println!("{id}");
    }
}

pub fn accumulate(weights: HashMap<u32, f64>, out: &mut Vec<f64>) {
    for (_, w) in &weights { // fires: accumulation inside the loop body
        out.push(*w);
    }
}

pub fn compound_accumulate(weights: &HashMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for (_, w) in weights.iter() { // fires: float `+=` inside the loop body
        total += w;
    }
    total
}
