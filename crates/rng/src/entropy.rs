//! Entropy sources for *implementation* noise.
//!
//! Nondeterministic hardware draws its scheduling decisions from state the
//! experimenter does not control (warp dispatch timing, memory-system
//! races). The simulator models that as an [`EntropySource`]: either truly
//! fresh OS entropy (the default, mirroring real hardware) or a pinned value
//! (for tests that need to replay a specific nondeterministic schedule).
//!
//! This is the only place in the workspace that touches `rand` / the OS RNG.

use std::fmt;

/// Where the simulated scheduler gets its per-run entropy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EntropySource {
    /// Fresh OS entropy on every call — genuine run-to-run nondeterminism,
    /// like a real GPU.
    #[default]
    Os,
    /// A pinned value — replays one specific nondeterministic schedule.
    /// Used by tests and by experiment replicas that must be attributable.
    Pinned(u64),
}

impl fmt::Debug for EntropySource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntropySource::Os => write!(f, "EntropySource::Os"),
            EntropySource::Pinned(v) => write!(f, "EntropySource::Pinned({v:#x})"),
        }
    }
}

impl EntropySource {
    /// Draws a 64-bit entropy value.
    pub fn draw(&self) -> u64 {
        match self {
            EntropySource::Os => rand::random::<u64>(),
            EntropySource::Pinned(v) => *v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_is_stable() {
        let e = EntropySource::Pinned(0xDEAD_BEEF);
        assert_eq!(e.draw(), e.draw());
        assert_eq!(e.draw(), 0xDEAD_BEEF);
    }

    #[test]
    fn os_draws_vary() {
        let e = EntropySource::Os;
        // 64-bit collisions across four draws are vanishingly unlikely.
        let draws = [e.draw(), e.draw(), e.draw(), e.draw()];
        assert!(
            draws.windows(2).any(|w| w[0] != w[1]),
            "OS entropy returned identical values"
        );
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", EntropySource::Os).is_empty());
        assert!(format!("{:?}", EntropySource::Pinned(1)).contains("Pinned"));
    }
}
