//! Workload descriptions consumed by the profiler.
//!
//! A workload is the op-level trace of one training step: the convolution
//! geometries, dense (fully-connected) shapes and normalization/pooling/
//! activation volumes of a network at a given batch size. The `nnet` crate
//! compiles its architecture descriptors into this form.

use nstensor::ConvGeometry;
use serde::{Deserialize, Serialize};

/// One operation in a training-step workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WorkloadOp {
    /// A 2-D convolution of the given geometry at the given batch size.
    Conv {
        /// Convolution geometry.
        geom: ConvGeometry,
        /// Batch size.
        batch: usize,
    },
    /// A dense layer: `[batch, in] × [in, out]`.
    Dense {
        /// Batch size.
        batch: usize,
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
    /// Batch normalization over `batch * channels * spatial` elements.
    BatchNorm {
        /// Total normalized elements.
        elems: usize,
    },
    /// Pooling over `elems` input elements.
    Pool {
        /// Total input elements.
        elems: usize,
    },
    /// Elementwise activation over `elems` elements.
    Activation {
        /// Total elements.
        elems: usize,
    },
}

impl WorkloadOp {
    /// Forward FLOP count of the op (multiply-accumulates × 2).
    pub fn forward_flops(&self) -> u64 {
        match *self {
            WorkloadOp::Conv { geom, batch } => geom.flops(batch),
            WorkloadOp::Dense {
                batch,
                in_features,
                out_features,
            } => 2 * (batch * in_features * out_features) as u64,
            // Memory-bound ops: count element touches, not MACs.
            WorkloadOp::BatchNorm { elems } => 4 * elems as u64,
            WorkloadOp::Pool { elems } => elems as u64,
            WorkloadOp::Activation { elems } => elems as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_flops_delegate_to_geometry() {
        let geom = ConvGeometry::new(3, 8, 3, 1, 1, 8, 8);
        let op = WorkloadOp::Conv { geom, batch: 4 };
        assert_eq!(op.forward_flops(), geom.flops(4));
    }

    #[test]
    fn dense_flops() {
        let op = WorkloadOp::Dense {
            batch: 2,
            in_features: 10,
            out_features: 5,
        };
        assert_eq!(op.forward_flops(), 200);
    }

    #[test]
    fn memory_bound_ops_scale_with_elems() {
        assert_eq!(WorkloadOp::Activation { elems: 7 }.forward_flops(), 7);
        assert_eq!(WorkloadOp::Pool { elems: 7 }.forward_flops(), 7);
        assert_eq!(WorkloadOp::BatchNorm { elems: 7 }.forward_flops(), 28);
    }
}
