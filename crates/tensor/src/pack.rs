//! Operand packing for the blocked GEMM engine.
//!
//! The micro-kernel in [`crate::gemm`] walks the k dimension once per
//! output tile and wants the `NR` output columns of a tile interleaved at
//! each k index, so one contiguous load feeds all `NR` accumulation
//! chains. Packing rearranges the B operand into that layout ahead of the
//! kernel loop. Packing only *copies* values — it never adds two floats —
//! so it cannot perturb any accumulation order.

/// Column-tile width of the packed layout: how many output columns one
/// micro-kernel pass produces. Sixteen `f32`s fill a 512-bit vector lane
/// (and two 256-bit lanes on AVX2-only hosts), which is what the
/// auto-vectorizer targets under `-C target-cpu=native`.
pub const NR: usize = 16;

/// Row-tile height of the sequential micro-kernel (independent
/// accumulation chains per column, giving the out-of-order core parallel
/// FMA chains to overlap).
pub const MR: usize = 4;

/// Packs `bt` (row-major `[n, k]`; each row is one output column of the
/// GEMM) into `NR`-wide column panels.
///
/// Output layout: panel `p` occupies `packed[p * k * NR ..][.. k * NR]`,
/// and within a panel element `[kk * NR + j]` is column `p * NR + j` at
/// depth `kk`. Columns past `n` are zero-padded; the kernel computes them
/// and discards the results, which is cheaper than edge-case loops and
/// has no effect on any real output's accumulation chain.
///
/// # Panics
///
/// Panics if `bt.len() != n * k` or `packed` is not `n.div_ceil(NR) * k *
/// NR` long.
pub fn pack_bt_panels(bt: &[f32], n: usize, k: usize, packed: &mut [f32]) {
    assert_eq!(bt.len(), n * k, "bt shape mismatch");
    let panels = n.div_ceil(NR);
    assert_eq!(packed.len(), panels * k * NR, "packed buffer size");
    for p in 0..panels {
        let dst = &mut packed[p * k * NR..(p + 1) * k * NR];
        let cols = NR.min(n - p * NR);
        for j in 0..cols {
            let src = &bt[(p * NR + j) * k..(p * NR + j + 1) * k];
            for (kk, &v) in src.iter().enumerate() {
                dst[kk * NR + j] = v;
            }
        }
        // Zero the padded columns (the buffer may be recycled and dirty).
        if cols < NR {
            for kk in 0..k {
                for j in cols..NR {
                    dst[kk * NR + j] = 0.0;
                }
            }
        }
    }
}

/// Packs `b` (row-major `[k, n]`; ordinary matmul layout, each *column*
/// one output column of the GEMM) into `NR`-wide column panels — the same
/// output layout as [`pack_bt_panels`], read transpose-free.
///
/// At each depth `kk` the `NR` panel values are contiguous in `b`'s row,
/// so packing streams both operands; callers that used to transpose `B`
/// first can skip the transpose scratch entirely.
///
/// # Panics
///
/// Panics if `b.len() != k * n` or `packed` is not `n.div_ceil(NR) * k *
/// NR` long.
pub fn pack_b_panels(b: &[f32], k: usize, n: usize, packed: &mut [f32]) {
    assert_eq!(b.len(), k * n, "b shape mismatch");
    let panels = n.div_ceil(NR);
    assert_eq!(packed.len(), panels * k * NR, "packed buffer size");
    for p in 0..panels {
        let dst = &mut packed[p * k * NR..(p + 1) * k * NR];
        let col0 = p * NR;
        let cols = NR.min(n - col0);
        for kk in 0..k {
            let drow = &mut dst[kk * NR..(kk + 1) * NR];
            drow[..cols].copy_from_slice(&b[kk * n + col0..kk * n + col0 + cols]);
            // Zero the padded columns (the buffer may be recycled and
            // dirty).
            drow[cols..].fill(0.0);
        }
    }
}

/// Writes the row-major transpose of `src` (`[r, c]`) into `dst`
/// (`[c, r]`). The GEMM entry points use this to bring `A × B` and
/// `Aᵀ × B` operands into the canonical `[rows, k]` / `[cols, k]` form.
///
/// # Panics
///
/// Panics if the buffers are not `r * c` long.
pub fn transpose_into(src: &[f32], r: usize, c: usize, dst: &mut [f32]) {
    assert_eq!(src.len(), r * c, "transpose src size");
    assert_eq!(dst.len(), r * c, "transpose dst size");
    for i in 0..r {
        for j in 0..c {
            dst[j * r + i] = src[i * c + j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_interleaves_columns() {
        // bt: 3 columns of k=2: col0=[1,2], col1=[3,4], col2=[5,6].
        let bt = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut packed = vec![7.0; 2 * NR]; // deliberately dirty
        pack_bt_panels(&bt, 3, 2, &mut packed);
        // Depth 0 holds [1, 3, 5, pad...], depth 1 holds [2, 4, 6, pad...].
        assert_eq!(&packed[..3], &[1.0, 3.0, 5.0]);
        assert_eq!(&packed[NR..NR + 3], &[2.0, 4.0, 6.0]);
        assert!(packed[3..NR].iter().all(|&x| x == 0.0), "padding zeroed");
    }

    #[test]
    #[allow(clippy::float_cmp)] // packing copies values; bit equality is the contract
    fn pack_multiple_panels() {
        let n = NR + 2;
        let k = 3;
        let bt: Vec<f32> = (0..n * k).map(|i| i as f32).collect();
        let mut packed = vec![0.0; 2 * k * NR];
        pack_bt_panels(&bt, n, k, &mut packed);
        // Column NR (first of panel 1), depth 1 == bt[NR * k + 1].
        assert_eq!(packed[k * NR + NR], bt[NR * k + 1]);
    }

    #[test]
    fn transpose_round_trips() {
        let src: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let mut t = vec![0.0; 12];
        transpose_into(&src, 3, 4, &mut t);
        let mut back = vec![0.0; 12];
        transpose_into(&t, 4, 3, &mut back);
        assert_eq!(src, back);
        assert_eq!(t[0..3], [0.0, 4.0, 8.0]);
    }
}
