//! Hierarchical Gaussian-cluster image datasets (CIFAR / ImageNet stand-ins).

use detrand::{Philox, StreamId};
use nnet::trainer::{Dataset, Targets};
use nstensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};

/// Specification of a Gaussian-cluster dataset.
///
/// Every class `c` owns a prototype image
/// `P_c = super_sep · S_{sc(c)} + class_sep · C_c` (superclass direction
/// plus class-specific direction); a sample is `P_c + noise_std · ε`. The
/// Bayes error — and therefore how much predictive churn small weight
/// perturbations can cause — is controlled by the ratio of `class_sep` to
/// `noise_std`, and `label_noise` flips a fraction of training labels to
/// keep decision boundaries permanently contested (standing in for the
/// hard, ambiguous examples of real CIFAR).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaussianSpec {
    /// Number of classes.
    pub classes: usize,
    /// Number of superclasses (1 = flat class structure).
    pub superclasses: usize,
    /// Image height = width.
    pub hw: usize,
    /// Image channels.
    pub channels: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Scale of the per-class prototype direction.
    pub class_sep: f32,
    /// Scale of the shared superclass direction.
    pub super_sep: f32,
    /// Per-sample noise scale.
    pub noise_std: f32,
    /// Fraction of training labels flipped to a random class.
    pub label_noise: f32,
    /// Generator seed (a dataset identity, not a run seed).
    pub seed: u64,
}

impl GaussianSpec {
    /// The CIFAR-10 stand-in: 10 flat classes, moderate overlap, sized so a
    /// replica fleet trains in seconds.
    pub fn cifar10_sim() -> Self {
        Self {
            classes: 10,
            superclasses: 1,
            hw: 12,
            channels: 3,
            train_per_class: 64,
            test_per_class: 40,
            class_sep: 0.55,
            super_sep: 0.0,
            noise_std: 1.0,
            label_noise: 0.06,
            seed: 0xC1FA_0010,
        }
    }

    /// The CIFAR-100 stand-in: 100 classes in 20 superclasses; classes
    /// within a superclass overlap heavily, which is what drives the
    /// paper's 23× per-class-variance result.
    pub fn cifar100_sim() -> Self {
        Self {
            classes: 100,
            superclasses: 20,
            hw: 12,
            channels: 3,
            train_per_class: 20,
            test_per_class: 12,
            class_sep: 0.75,
            super_sep: 0.8,
            noise_std: 1.0,
            label_noise: 0.04,
            seed: 0xC1FA_0100,
        }
    }

    /// The ImageNet stand-in used for *training* experiments: more classes
    /// and a slightly larger canvas, still laptop-scale. (The determinism
    /// cost study uses the full-fidelity 224² descriptors in `nnet::arch`
    /// instead.)
    pub fn imagenet_sim() -> Self {
        Self {
            classes: 40,
            superclasses: 8,
            hw: 16,
            channels: 3,
            train_per_class: 24,
            test_per_class: 10,
            class_sep: 0.6,
            super_sep: 0.7,
            noise_std: 1.0,
            label_noise: 0.03,
            seed: 0x1A6E_0001,
        }
    }

    /// Total training samples.
    pub fn train_len(&self) -> usize {
        self.classes * self.train_per_class
    }

    /// Total test samples.
    pub fn test_len(&self) -> usize {
        self.classes * self.test_per_class
    }

    /// Generates the dataset.
    ///
    /// # Panics
    ///
    /// Panics if `classes`, `superclasses` or image dimensions are zero, or
    /// `label_noise` is outside `[0, 1]`.
    pub fn generate(&self) -> SplitDataset {
        assert!(
            self.classes > 0 && self.superclasses > 0,
            "empty class structure"
        );
        assert!(self.hw > 0 && self.channels > 0, "empty image shape");
        assert!(
            (0.0..=1.0).contains(&self.label_noise),
            "label_noise outside [0, 1]"
        );
        let root = Philox::from_seed(self.seed);
        let dim = self.channels * self.hw * self.hw;

        // Prototypes: spatially *smooth* low-frequency patterns (coarse
        // noise bilinearly upsampled), so that convolution/pooling preserve
        // the class signal and shift-crop augmentation perturbs rather than
        // destroys it — the properties real natural-image classes have.
        let mut proto_rng = root.stream(StreamId::DATASET.child(0));
        let mut super_dirs = vec![0f32; self.superclasses * dim];
        for chunk in super_dirs.chunks_mut(dim) {
            smooth_field(&mut proto_rng, self.channels, self.hw, chunk);
        }
        let mut class_dirs = vec![0f32; self.classes * dim];
        for chunk in class_dirs.chunks_mut(dim) {
            smooth_field(&mut proto_rng, self.channels, self.hw, chunk);
        }

        let mut sample_rng = root.stream(StreamId::DATASET.child(1));
        let mut label_rng = root.stream(StreamId::DATASET.child(2));

        let mut make_split = |per_class: usize, with_label_noise: bool| -> Dataset {
            let n = self.classes * per_class;
            let mut x = vec![0f32; n * dim];
            let mut labels = Vec::with_capacity(n);
            for c in 0..self.classes {
                let sc = c % self.superclasses;
                for s in 0..per_class {
                    let row = (c * per_class + s) * dim;
                    for j in 0..dim {
                        x[row + j] = self.super_sep * super_dirs[sc * dim + j]
                            + self.class_sep * class_dirs[c * dim + j]
                            + self.noise_std * sample_rng.normal();
                    }
                    let mut label = c as u32;
                    if with_label_noise && label_rng.bernoulli(self.label_noise) {
                        label = label_rng.next_below(self.classes as u32);
                    }
                    labels.push(label);
                }
            }
            Dataset::new(
                Tensor::from_vec(Shape::of(&[n, self.channels, self.hw, self.hw]), x)
                    .expect("dataset shape"),
                Targets::Classes(labels),
            )
        };

        SplitDataset {
            train: make_split(self.train_per_class, true),
            test: make_split(self.test_per_class, false),
            classes: self.classes,
        }
    }
}

/// Fills `out` (`channels × hw × hw`) with a smooth unit-variance random
/// field: coarse Gaussian grid, bilinearly upsampled per channel.
fn smooth_field(rng: &mut detrand::StreamRng, channels: usize, hw: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), channels * hw * hw);
    let grid = (hw / 3).max(2);
    let mut coarse = vec![0f32; grid * grid];
    for c in 0..channels {
        for v in &mut coarse {
            *v = rng.normal();
        }
        let plane = &mut out[c * hw * hw..(c + 1) * hw * hw];
        let scale = (grid - 1) as f32 / (hw - 1).max(1) as f32;
        for y in 0..hw {
            let fy = y as f32 * scale;
            let (y0, ty) = (fy as usize, fy.fract());
            let y1 = (y0 + 1).min(grid - 1);
            for x in 0..hw {
                let fx = x as f32 * scale;
                let (x0, tx) = (fx as usize, fx.fract());
                let x1 = (x0 + 1).min(grid - 1);
                let top = coarse[y0 * grid + x0] * (1.0 - tx) + coarse[y0 * grid + x1] * tx;
                let bot = coarse[y1 * grid + x0] * (1.0 - tx) + coarse[y1 * grid + x1] * tx;
                plane[y * hw + x] = top * (1.0 - ty) + bot * ty;
            }
        }
    }
}

/// A generated train/test split.
#[derive(Debug, Clone)]
pub struct SplitDataset {
    /// Training split (with label noise if configured).
    pub train: Dataset,
    /// Test split (clean labels).
    pub test: Dataset,
    /// Number of classes.
    pub classes: usize,
}

impl SplitDataset {
    /// The test labels (panics if not class-labelled; cannot happen for
    /// generated splits).
    pub fn test_labels(&self) -> &[u32] {
        match &self.test.targets {
            Targets::Classes(l) => l,
            Targets::Binary(_) => unreachable!("gaussian datasets are class-labelled"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_spec() {
        let spec = GaussianSpec::cifar10_sim();
        let ds = spec.generate();
        assert_eq!(ds.train.len(), spec.train_len());
        assert_eq!(ds.test.len(), spec.test_len());
        assert_eq!(ds.classes, 10);
        assert_eq!(
            ds.train.x.shape().dims(),
            &[spec.train_len(), 3, spec.hw, spec.hw]
        );
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let spec = GaussianSpec::cifar10_sim();
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.train.x.as_slice(), b.train.x.as_slice());
        let mut spec2 = spec;
        spec2.seed += 1;
        let c = spec2.generate();
        assert_ne!(a.train.x.as_slice(), c.train.x.as_slice());
    }

    #[test]
    fn test_labels_are_clean_and_balanced() {
        let spec = GaussianSpec::cifar10_sim();
        let ds = spec.generate();
        let labels = ds.test_labels();
        for c in 0..10u32 {
            let count = labels.iter().filter(|&&l| l == c).count();
            assert_eq!(count, spec.test_per_class);
        }
        // Clean test labels are exactly class-ordered.
        assert_eq!(labels[0], 0);
        assert_eq!(labels[spec.test_per_class], 1);
    }

    #[test]
    fn label_noise_flips_some_training_labels() {
        let spec = GaussianSpec {
            label_noise: 0.3,
            ..GaussianSpec::cifar10_sim()
        };
        let ds = spec.generate();
        let labels = match &ds.train.targets {
            Targets::Classes(l) => l,
            _ => unreachable!(),
        };
        // With clean labels sample i has class i / per_class.
        let flipped = labels
            .iter()
            .enumerate()
            .filter(|(i, &l)| l != (i / spec.train_per_class) as u32)
            .count();
        let frac = flipped as f64 / labels.len() as f64;
        // ~0.3 × (1 − 1/10) expected visible flips.
        assert!((0.15..0.40).contains(&frac), "flip fraction {frac}");
    }

    #[test]
    fn superclass_members_are_closer_than_strangers() {
        let spec = GaussianSpec::cifar100_sim();
        let ds = spec.generate();
        let dim = 3 * spec.hw * spec.hw;
        // Class prototypes approximated by the mean test image per class.
        let mut protos = vec![vec![0f64; dim]; spec.classes];
        for (c, proto) in protos.iter_mut().enumerate() {
            for s in 0..spec.test_per_class {
                let row = (c * spec.test_per_class + s) * dim;
                for (p, &x) in proto.iter_mut().zip(&ds.test.x.as_slice()[row..row + dim]) {
                    *p += x as f64;
                }
            }
            for v in proto.iter_mut() {
                *v /= spec.test_per_class as f64;
            }
        }
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        // Class 0 and 20 share superclass 0; class 0 and 1 do not.
        let same_super = dist(&protos[0], &protos[20]);
        let diff_super = dist(&protos[0], &protos[1]);
        assert!(
            same_super < diff_super,
            "same-superclass distance {same_super} !< cross {diff_super}"
        );
    }

    #[test]
    #[should_panic(expected = "label_noise outside")]
    fn bad_label_noise_rejected() {
        GaussianSpec {
            label_noise: 1.5,
            ..GaussianSpec::cifar10_sim()
        }
        .generate();
    }
}
