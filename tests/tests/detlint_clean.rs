//! Tier-1 gate: the workspace must be free of determinism hazards.
//!
//! Runs the same scan as `cargo run -p detlint` — every `.rs` file in the
//! repository, under the committed `detlint.toml` — and fails with the full
//! finding list if any unsuppressed hazard or malformed suppression exists.
//! This is what makes the lint a property of the codebase rather than an
//! optional tool: a PR that introduces a `HashMap` iteration into a report,
//! an ambient RNG seed, or an ad-hoc float reduction fails `cargo test`.

use std::path::Path;

use detlint::{report, Config};

fn workspace_root() -> &'static Path {
    // tests/ is a direct child of the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests crate has a parent directory")
}

#[test]
fn workspace_is_hazard_free() {
    let root = workspace_root();
    let config_path = root.join("detlint.toml");
    assert!(
        config_path.is_file(),
        "detlint.toml missing at workspace root {}",
        root.display()
    );
    let config = Config::load(&config_path).expect("detlint.toml parses");
    let scan = detlint::scan_workspace(root, &config).expect("workspace scan");
    assert!(
        scan.files_scanned > 50,
        "suspiciously few files scanned ({}); wrong root?",
        scan.files_scanned
    );
    assert!(
        scan.clean(),
        "determinism hazards in the workspace:\n{}",
        report::human(&scan)
    );
}

#[test]
fn every_suppression_carries_its_reason() {
    let root = workspace_root();
    let config = Config::load(&root.join("detlint.toml")).expect("config");
    let scan = detlint::scan_workspace(root, &config).expect("workspace scan");
    for (finding, reason) in &scan.suppressed {
        assert!(
            !reason.trim().is_empty(),
            "suppression without reason at {}:{}",
            finding.file,
            finding.line
        );
    }
    // Stale allows would rot into false documentation; keep zero tolerance.
    assert!(
        scan.unused_allows.is_empty(),
        "unused suppressions: {:?}",
        scan.unused_allows
    );
}

#[test]
fn json_report_is_stable_and_well_formed() {
    let root = workspace_root();
    let config = Config::load(&root.join("detlint.toml")).expect("config");
    let scan = detlint::scan_workspace(root, &config).expect("workspace scan");
    let doc = report::json(&scan);
    assert_eq!(doc["clean"], scan.clean());
    assert_eq!(
        doc["files_scanned"].as_u64(),
        Some(scan.files_scanned as u64)
    );
    // Serialization must be deterministic (BTreeMap-backed objects).
    let a = serde_json::to_string(&doc).expect("encode");
    let b = serde_json::to_string(&report::json(&scan)).expect("encode");
    assert_eq!(a, b);
}
