//! DL003 fixture: wall-clock reads in result-producing paths.

use std::time::{Instant, SystemTime};

// <explain:DL003:bad>
pub fn timed_loss(xs: &[f32]) -> (f32, f64) {
    let t0 = Instant::now(); // fires: Instant::now
    let loss = xs[0];
    (loss, t0.elapsed().as_secs_f64())
}
// </explain:DL003:bad>

pub fn stamped_report() -> u64 {
    let stamp = SystemTime::now(); // fires: SystemTime::now
    stamp.elapsed().unwrap().as_secs()
}
