//! Cross-crate property tests on the invariants the reproduction's claims
//! rest on.

// Exact float assertions are deliberate: bit-identical replay is what these tests check.
#![allow(clippy::float_cmp)]

use detrand::Philox;
use hwsim::{Device, ExecutionContext, ExecutionMode, OpClass};
use proptest::prelude::*;

fn bounded_f32() -> impl Strategy<Value = f32> {
    (-1000i32..1000).prop_map(|v| v as f32 * 1e-3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Deterministic execution contexts are pure functions of the data:
    /// entropy never leaks into any op class.
    #[test]
    fn deterministic_context_entropy_invariant(
        xs in prop::collection::vec(bounded_f32(), 1..512),
        e1 in any::<u64>(),
        e2 in any::<u64>(),
    ) {
        let mut a = ExecutionContext::new(Device::p100(), ExecutionMode::Deterministic, e1);
        let mut b = ExecutionContext::new(Device::p100(), ExecutionMode::Deterministic, e2);
        for class in OpClass::ALL {
            prop_assert_eq!(
                a.reducer(class).sum(&xs).to_bits(),
                b.reducer(class).sum(&xs).to_bits()
            );
        }
    }

    /// The TPU is deterministic in *default* mode (its design, not a flag).
    #[test]
    fn tpu_default_mode_entropy_invariant(
        xs in prop::collection::vec(bounded_f32(), 1..512),
        e1 in any::<u64>(),
        e2 in any::<u64>(),
    ) {
        let mut a = ExecutionContext::new(Device::tpu_v2(), ExecutionMode::Default, e1);
        let mut b = ExecutionContext::new(Device::tpu_v2(), ExecutionMode::Default, e2);
        for class in OpClass::ALL {
            prop_assert_eq!(
                a.reducer(class).sum(&xs).to_bits(),
                b.reducer(class).sum(&xs).to_bits()
            );
        }
    }

    /// Nondeterministic execution stays within the f32 error envelope of
    /// the exact sum — noise is rounding-scale, never magnitude-scale.
    #[test]
    fn gpu_noise_is_rounding_scale(
        xs in prop::collection::vec(bounded_f32(), 1..512),
        entropy in any::<u64>(),
    ) {
        let exact: f64 = xs.iter().map(|&x| x as f64).sum();
        let abs: f64 = xs.iter().map(|&x| (x as f64).abs()).sum();
        let bound = (xs.len() as f64) * (f32::EPSILON as f64) * abs + 1e-9;
        let mut ctx = ExecutionContext::new(Device::v100(), ExecutionMode::Default, entropy);
        for _ in 0..8 {
            let s = ctx.reducer(OpClass::WeightGrad).sum(&xs) as f64;
            prop_assert!((s - exact).abs() <= bound, "err {}", (s - exact).abs());
        }
    }

    /// Model construction is a pure function of the algorithmic seed.
    #[test]
    fn model_weights_pure_in_seed(seed in any::<u64>()) {
        let a = nnet::zoo::small_cnn(8, 3, 4, true, &Philox::from_seed(seed));
        let b = nnet::zoo::small_cnn(8, 3, 4, true, &Philox::from_seed(seed));
        let mut a = a;
        let mut b = b;
        prop_assert_eq!(a.flat_weights(), b.flat_weights());
    }

    /// Churn is a metric: symmetric, bounded, zero on the diagonal.
    #[test]
    fn churn_metric_properties(
        a in prop::collection::vec(0u32..5, 1..128),
        seed in any::<u64>(),
    ) {
        let mut rng = Philox::from_seed(seed).rng_at(0);
        let b: Vec<u32> = a.iter().map(|&v| if rng.next_f32() < 0.3 { (v + 1) % 5 } else { v }).collect();
        let ab = nsmetrics::churn(&a, &b);
        prop_assert_eq!(ab, nsmetrics::churn(&b, &a));
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert_eq!(nsmetrics::churn(&a, &a), 0.0);
    }

    /// Normalized L2 is scale-invariant and bounded by 2.
    #[test]
    fn l2_metric_properties(
        w in prop::collection::vec(bounded_f32(), 2..128),
        scale in 1u32..1000,
    ) {
        prop_assume!(w.iter().any(|&x| x != 0.0));
        let scaled: Vec<f32> = w.iter().map(|&x| x * scale as f32).collect();
        prop_assert!(nsmetrics::l2_normalized(&w, &scaled) < 1e-5);
        let neg: Vec<f32> = w.iter().map(|&x| -x).collect();
        let d = nsmetrics::l2_normalized(&w, &neg);
        prop_assert!((d - 2.0).abs() < 1e-5);
    }

    /// Dataset generation is pure in the spec.
    #[test]
    fn dataset_pure_in_seed(seed in any::<u64>()) {
        let spec = nsdata::GaussianSpec {
            classes: 3,
            train_per_class: 4,
            test_per_class: 2,
            hw: 6,
            seed,
            ..nsdata::GaussianSpec::cifar10_sim()
        };
        let a = spec.generate();
        let b = spec.generate();
        prop_assert_eq!(a.train.x.as_slice(), b.train.x.as_slice());
        prop_assert_eq!(a.test.x.as_slice(), b.test.x.as_slice());
    }
}
