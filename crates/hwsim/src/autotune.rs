//! The kernel autotuner.
//!
//! Mirrors cuDNN's `cudnnFindConvolutionForwardAlgorithm`: for each pass of
//! each convolution, pick the fastest *admissible* algorithm. In
//! [`ExecutionMode::Deterministic`] admissibility excludes nondeterministic
//! algorithms — the restriction whose cost the paper quantifies.

use crate::cost::CostModel;
use crate::device::{Architecture, Device};
use crate::exec::ExecutionMode;
use crate::kernels::{kernel_name, ConvAlgorithm, ConvPass, KernelChoice};
use nstensor::ConvGeometry;
use serde::{Deserialize, Serialize};

/// The kernels selected for the three passes of one convolution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvKernelPlan {
    /// Forward kernel.
    pub forward: KernelChoice,
    /// Input-gradient kernel.
    pub input_grad: KernelChoice,
    /// Weight-gradient kernel.
    pub weight_grad: KernelChoice,
}

impl ConvKernelPlan {
    /// Total simulated time of one fwd+bwd execution, in seconds.
    pub fn total_time_s(&self) -> f64 {
        self.forward.time_s + self.input_grad.time_s + self.weight_grad.time_s
    }

    /// Whether every selected kernel is deterministic.
    pub fn is_deterministic(&self) -> bool {
        self.forward.algorithm.is_deterministic()
            && self.input_grad.algorithm.is_deterministic()
            && self.weight_grad.algorithm.is_deterministic()
    }

    /// The three choices in pass order.
    pub fn choices(&self) -> [&KernelChoice; 3] {
        [&self.forward, &self.input_grad, &self.weight_grad]
    }
}

/// Short architecture tag used in kernel names.
fn arch_tag(arch: Architecture) -> &'static str {
    match arch {
        Architecture::Pascal => "pascal",
        Architecture::Volta => "volta",
        Architecture::Turing => "turing",
        Architecture::TpuV2 => "tpu",
        Architecture::Cpu => "cpu",
    }
}

/// Selects the fastest admissible kernel for every pass of a convolution.
///
/// # Panics
///
/// Never panics for valid geometries: a deterministic fallback exists for
/// every pass (guaranteed by the kernel registry tests).
pub fn select_conv_kernels(
    geom: &ConvGeometry,
    batch: usize,
    device: &Device,
    mode: ExecutionMode,
) -> ConvKernelPlan {
    let model = CostModel::for_device(device);
    let pick = |pass: ConvPass| -> KernelChoice {
        let mut best: Option<KernelChoice> = None;
        for alg in ConvAlgorithm::ALL {
            if !alg.supports(pass, geom) {
                continue;
            }
            if mode == ExecutionMode::Deterministic && !alg.is_deterministic() {
                continue;
            }
            let time_s = model.conv_pass_time(alg, pass, geom, batch);
            let better = best.as_ref().is_none_or(|b| time_s < b.time_s);
            if better {
                best = Some(KernelChoice {
                    algorithm: alg,
                    pass,
                    time_s,
                    name: kernel_name(arch_tag(device.arch()), alg, pass, geom),
                });
            }
        }
        best.expect("registry guarantees at least one admissible kernel per pass")
    };
    ConvKernelPlan {
        forward: pick(ConvPass::Forward),
        input_grad: pick(ConvPass::InputGrad),
        weight_grad: pick(ConvPass::WeightGrad),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(k: usize) -> ConvGeometry {
        ConvGeometry::new(32, 64, k, 1, k / 2, 28, 28)
    }

    #[test]
    fn default_mode_picks_winograd_for_3x3() {
        let plan = select_conv_kernels(&geom(3), 32, &Device::v100(), ExecutionMode::Default);
        assert_eq!(plan.forward.algorithm, ConvAlgorithm::WinogradNonfused);
        assert!(!plan.is_deterministic());
    }

    #[test]
    fn default_mode_picks_fft_for_large_filters() {
        let plan = select_conv_kernels(&geom(7), 32, &Device::v100(), ExecutionMode::Default);
        assert_eq!(plan.forward.algorithm, ConvAlgorithm::FftTiling);
    }

    #[test]
    fn deterministic_mode_selects_only_deterministic_kernels() {
        for k in [1, 3, 5, 7] {
            for d in [Device::p100(), Device::v100(), Device::t4()] {
                let plan = select_conv_kernels(&geom(k), 32, &d, ExecutionMode::Deterministic);
                assert!(plan.is_deterministic(), "k={k} on {}", d.name());
            }
        }
    }

    #[test]
    fn deterministic_mode_is_never_faster() {
        for k in [1, 3, 5, 7] {
            for d in [Device::p100(), Device::v100(), Device::t4()] {
                let nd = select_conv_kernels(&geom(k), 32, &d, ExecutionMode::Default);
                let det = select_conv_kernels(&geom(k), 32, &d, ExecutionMode::Deterministic);
                assert!(
                    det.total_time_s() >= nd.total_time_s(),
                    "k={k} on {}",
                    d.name()
                );
            }
        }
    }

    #[test]
    fn overhead_grows_with_filter_size() {
        for d in [Device::p100(), Device::v100(), Device::t4()] {
            let mut prev = 0.0f64;
            for k in [1, 3, 5, 7] {
                let nd = select_conv_kernels(&geom(k), 32, &d, ExecutionMode::Default);
                let det = select_conv_kernels(&geom(k), 32, &d, ExecutionMode::Deterministic);
                let ratio = det.total_time_s() / nd.total_time_s();
                assert!(
                    ratio >= prev * 0.999,
                    "{}: ratio not monotone at k={k}: {ratio} < {prev}",
                    d.name()
                );
                prev = ratio;
            }
        }
    }

    #[test]
    fn wgrad_never_selects_transform_algorithms() {
        for k in [3, 5, 7] {
            let plan = select_conv_kernels(&geom(k), 32, &Device::v100(), ExecutionMode::Default);
            assert!(matches!(
                plan.weight_grad.algorithm,
                ConvAlgorithm::ImplicitGemmAtomic
            ));
        }
    }

    #[test]
    fn kernel_names_carry_arch_tag() {
        let plan = select_conv_kernels(&geom(3), 32, &Device::p100(), ExecutionMode::Default);
        assert!(plan.forward.name.starts_with("pascal_"));
    }
}
