//! Elementwise operations and axis reductions.
//!
//! Elementwise maps are order-insensitive and never touch the reducer; any
//! function here that *accumulates* takes a [`Reducer`].

use crate::error::ShapeError;
use crate::reduce::Reducer;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// In-place ReLU; returns the activation mask (1.0 where the input was
/// positive) for the backward pass.
pub fn relu_forward(x: &mut Tensor) -> Vec<f32> {
    let mut mask = vec![0f32; x.len()];
    for (v, m) in x.as_mut_slice().iter_mut().zip(&mut mask) {
        if *v > 0.0 {
            *m = 1.0;
        } else {
            *v = 0.0;
        }
    }
    mask
}

/// Backward ReLU: `dx = dy ⊙ mask` in place on `dy`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn relu_backward(dy: &mut Tensor, mask: &[f32]) {
    assert_eq!(dy.len(), mask.len(), "relu mask length mismatch");
    for (g, m) in dy.as_mut_slice().iter_mut().zip(mask) {
        *g *= m;
    }
}

/// Adds a row vector `bias` (`[C]`) to every row of a `[N, C]` tensor.
///
/// # Errors
///
/// Returns [`ShapeError`] on mismatch.
pub fn add_row_bias(x: &mut Tensor, bias: &Tensor) -> Result<(), ShapeError> {
    if x.shape().rank() != 2 || bias.shape() != Shape::of(&[x.shape().dim(1)]) {
        return Err(ShapeError::mismatch(
            "add_row_bias",
            &x.shape(),
            &bias.shape(),
        ));
    }
    let c = x.shape().dim(1);
    let bv = bias.as_slice().to_vec();
    for row in x.as_mut_slice().chunks_mut(c) {
        for (v, b) in row.iter_mut().zip(&bv) {
            *v += b;
        }
    }
    Ok(())
}

/// Sums a `[N, C]` tensor over rows, producing `[C]`. The per-column sum is
/// a cross-data-point reduction and goes through the reducer.
///
/// # Errors
///
/// Returns [`ShapeError`] if the input is not rank 2.
pub fn sum_rows(x: &Tensor, red: &mut Reducer) -> Result<Tensor, ShapeError> {
    if x.shape().rank() != 2 {
        return Err(ShapeError::new("sum_rows", "expected rank-2 input"));
    }
    let (n, c) = (x.shape().dim(0), x.shape().dim(1));
    let mut out = Tensor::zeros(Shape::of(&[c]));
    let xv = x.as_slice();
    for (j, o) in out.as_mut_slice().iter_mut().enumerate() {
        *o = red.sum_strided(xv, j, c, n);
    }
    Ok(out)
}

/// Per-channel mean and (biased) variance of a `[N, C, H, W]` tensor —
/// batch-norm statistics. Both accumulations go through the reducer, which
/// is precisely why batch-norm interacts with implementation noise.
///
/// # Errors
///
/// Returns [`ShapeError`] if the input is not rank 4.
pub fn channel_mean_var(x: &Tensor, red: &mut Reducer) -> Result<(Vec<f32>, Vec<f32>), ShapeError> {
    if x.shape().rank() != 4 {
        return Err(ShapeError::new("channel_mean_var", "expected rank-4 input"));
    }
    let (n, c, h, w) = (
        x.shape().dim(0),
        x.shape().dim(1),
        x.shape().dim(2),
        x.shape().dim(3),
    );
    let hw = h * w;
    let count = (n * hw) as f32;
    let xv = x.as_slice();
    let mut means = vec![0f32; c];
    let mut vars = vec![0f32; c];
    let mut scratch = vec![0f32; n * hw];
    for ch in 0..c {
        // Gather the channel across the batch so the reduction spans data
        // points (the cross-sample accumulation order matters).
        for s in 0..n {
            let src = &xv[(s * c + ch) * hw..(s * c + ch + 1) * hw];
            scratch[s * hw..(s + 1) * hw].copy_from_slice(src);
        }
        let mean = red.sum(&scratch) / count;
        let mut sq = vec![0f32; n * hw];
        for (d, &v) in sq.iter_mut().zip(scratch.iter()) {
            let dv = v - mean;
            *d = dv * dv;
        }
        let var = red.sum(&sq) / count;
        means[ch] = mean;
        vars[ch] = var;
    }
    Ok((means, vars))
}

/// Numerically stable row-wise softmax of a `[N, C]` tensor, in place.
///
/// # Errors
///
/// Returns [`ShapeError`] if the input is not rank 2.
pub fn softmax_rows(x: &mut Tensor) -> Result<(), ShapeError> {
    if x.shape().rank() != 2 {
        return Err(ShapeError::new("softmax_rows", "expected rank-2 input"));
    }
    let c = x.shape().dim(1);
    for row in x.as_mut_slice().chunks_mut(c) {
        let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0f32;
        for v in row.iter_mut() {
            *v = (*v - m).exp();
            z += *v;
        }
        let inv = 1.0 / z;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_round_trip() {
        let mut x = Tensor::from_vec(Shape::of(&[4]), vec![-1.0, 2.0, 0.0, 3.0]).unwrap();
        let mask = relu_forward(&mut x);
        assert_eq!(x.as_slice(), &[0.0, 2.0, 0.0, 3.0]);
        assert_eq!(mask, vec![0.0, 1.0, 0.0, 1.0]);
        let mut dy = Tensor::from_vec(Shape::of(&[4]), vec![1.0; 4]).unwrap();
        relu_backward(&mut dy, &mask);
        assert_eq!(dy.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn bias_broadcasts_over_rows() {
        let mut x = Tensor::zeros(Shape::of(&[2, 3]));
        let b = Tensor::from_vec(Shape::of(&[3]), vec![1.0, 2.0, 3.0]).unwrap();
        add_row_bias(&mut x, &b).unwrap();
        assert_eq!(x.as_slice(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        let bad = Tensor::zeros(Shape::of(&[4]));
        assert!(add_row_bias(&mut x, &bad).is_err());
    }

    #[test]
    fn sum_rows_reference() {
        let x =
            Tensor::from_vec(Shape::of(&[3, 2]), vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0]).unwrap();
        let s = sum_rows(&x, &mut Reducer::sequential()).unwrap();
        assert_eq!(s.as_slice(), &[6.0, 60.0]);
    }

    #[test]
    fn channel_stats_reference() {
        // Channel 0: values 1..4 → mean 2.5, var 1.25. Channel 1: constant.
        let x = Tensor::from_vec(
            Shape::of(&[2, 2, 1, 2]),
            vec![1.0, 2.0, 7.0, 7.0, 3.0, 4.0, 7.0, 7.0],
        )
        .unwrap();
        let (m, v) = channel_mean_var(&x, &mut Reducer::sequential()).unwrap();
        assert!((m[0] - 2.5).abs() < 1e-6);
        assert!((v[0] - 1.25).abs() < 1e-6);
        assert!((m[1] - 7.0).abs() < 1e-6);
        assert!(v[1].abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let mut x = Tensor::from_vec(
            Shape::of(&[2, 3]),
            vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0],
        )
        .unwrap();
        softmax_rows(&mut x).unwrap();
        for row in x.as_slice().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&p| p.is_finite() && p >= 0.0));
        }
        // Monotonicity within the first row.
        assert!(x.get2(0, 0) < x.get2(0, 1));
        assert!(x.get2(0, 1) < x.get2(0, 2));
    }
}
