//! JSON rendering (compact and pretty) for the [`Value`] model.

use serde::{Number, Value};

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::UInt(u) => out.push_str(&u.to_string()),
        Number::Int(i) => out.push_str(&i.to_string()),
        Number::Float(f) => {
            if f.is_finite() {
                // Rust's shortest round-trip float rendering; add ".0" so
                // integral floats stay floats on re-parse, like serde_json.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // serde_json errors on non-finite floats; the stand-in
                // degrades to null, which parses back as Value::Null.
                out.push_str("null");
            }
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, n),
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_value(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push(']');
        }
        Value::Obj(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push('}');
        }
    }
}

pub(crate) fn write_compact(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None);
    out
}

pub(crate) fn write_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(0));
    out
}
