//! SARIF 2.1.0 output for code-scanning integrations.
//!
//! The shape follows what GitHub code scanning ingests: a single run
//! with a `tool.driver` describing every rule, and one `result` per
//! finding with a `physicalLocation`. Gate-failing findings are
//! `level: "error"` with `baselineState: "new"`; grandfathered findings
//! (matched by `--baseline`) are `level: "warning"` with
//! `baselineState: "unchanged"`; malformed suppressions surface as
//! errors under a synthetic `suppression-problem` rule so they are
//! never silently dropped from the upload.

use serde_json::Value;

use crate::{Finding, RuleId, ScanReport};

/// The schema URI GitHub's ingestion validates against.
pub const SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Rule id used for malformed-suppression problems.
const PROBLEM_RULE: &str = "suppression-problem";

fn rule_descriptor(rule: RuleId) -> Value {
    serde_json::json!({
        "id": rule.as_str(),
        "name": rule.as_str(),
        "shortDescription": { "text": rule.summary() },
        "helpUri": "https://example.invalid/detlint#--explain",
        "properties": {
            "taxonomy": rule.taxonomy().as_str(),
        },
    })
}

fn location(file: &str, line: u32) -> Value {
    serde_json::json!({
        "physicalLocation": {
            "artifactLocation": {
                "uri": file,
                "uriBaseId": "%SRCROOT%",
            },
            "region": { "startLine": line },
        },
    })
}

fn result(f: &Finding, level: &str, baseline_state: &str) -> Value {
    // ruleIndex points into the rules array, which lists RuleId::ALL in
    // order followed by the synthetic problem rule.
    let idx = RuleId::ALL.iter().position(|r| *r == f.rule).unwrap_or(0);
    serde_json::json!({
        "ruleId": f.rule.as_str(),
        "ruleIndex": idx,
        "level": level,
        "message": { "text": f.message },
        "baselineState": baseline_state,
        "locations": [location(&f.file, f.line)],
    })
}

/// Renders the report as a SARIF 2.1.0 document.
pub fn sarif(report: &ScanReport) -> Value {
    let mut rules: Vec<Value> = RuleId::ALL.iter().map(|r| rule_descriptor(*r)).collect();
    rules.push(serde_json::json!({
        "id": PROBLEM_RULE,
        "name": PROBLEM_RULE,
        "shortDescription": { "text": "malformed detlint::allow annotation" },
        "properties": { "taxonomy": "REPORTING" },
    }));
    let problem_index = rules.len() - 1;

    let mut results: Vec<Value> = Vec::new();
    for f in &report.findings {
        results.push(result(f, "error", "new"));
    }
    for f in &report.grandfathered {
        results.push(result(f, "warning", "unchanged"));
    }
    for p in &report.problems {
        results.push(serde_json::json!({
            "ruleId": PROBLEM_RULE,
            "ruleIndex": problem_index,
            "level": "error",
            "message": { "text": p.message },
            "baselineState": "new",
            "locations": [location(&p.file, p.line)],
        }));
    }

    serde_json::json!({
        "$schema": SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "detlint",
                    "version": env!("CARGO_PKG_VERSION"),
                    "informationUri": "https://example.invalid/detlint",
                    "rules": Value::Arr(rules),
                },
            },
            "results": Value::Arr(results),
            "columnKind": "utf16CodeUnits",
        }],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Config;

    fn shape_check(doc: &Value) {
        assert_eq!(doc.get("version").and_then(Value::as_str), Some("2.1.0"));
        assert_eq!(doc.get("$schema").and_then(Value::as_str), Some(SCHEMA));
        let runs = doc.get("runs").and_then(Value::as_array).expect("runs");
        assert_eq!(runs.len(), 1);
        let driver = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .expect("tool.driver");
        assert_eq!(driver.get("name").and_then(Value::as_str), Some("detlint"));
        let rules = driver
            .get("rules")
            .and_then(Value::as_array)
            .expect("rules");
        assert_eq!(rules.len(), RuleId::ALL.len() + 1);
        for r in runs[0].get("results").and_then(Value::as_array).unwrap() {
            let rule_id = r.get("ruleId").and_then(Value::as_str).expect("ruleId");
            let idx = r
                .get("ruleIndex")
                .and_then(Value::as_u64)
                .expect("ruleIndex") as usize;
            assert_eq!(
                rules[idx].get("id").and_then(Value::as_str),
                Some(rule_id),
                "ruleIndex must point at the matching rule"
            );
            assert!(r.get("message").and_then(|m| m.get("text")).is_some());
            let loc = &r.get("locations").and_then(Value::as_array).unwrap()[0];
            let phys = loc.get("physicalLocation").expect("physicalLocation");
            assert!(phys
                .get("artifactLocation")
                .and_then(|a| a.get("uri"))
                .is_some());
            assert!(phys
                .get("region")
                .and_then(|g| g.get("startLine"))
                .and_then(Value::as_u64)
                .is_some());
            assert!(matches!(
                r.get("level").and_then(Value::as_str),
                Some("error" | "warning")
            ));
            assert!(matches!(
                r.get("baselineState").and_then(Value::as_str),
                Some("new" | "unchanged")
            ));
        }
    }

    #[test]
    fn sarif_document_has_the_github_code_scanning_shape() {
        let src = "pub fn f(xs: &[f32]) -> f32 {\n    xs.iter().sum()\n}\n\
                   // detlint::allow(DL001)\npub fn g() {}\n";
        let mut report = crate::scan_file("crates/x/src/lib.rs", src, &Config::default());
        // Exercise the grandfathered path too.
        let moved = report.findings.pop().unwrap();
        report.grandfathered.push(moved);
        let doc = sarif(&report);
        shape_check(&doc);
        let results = doc.get("runs").unwrap().as_array().unwrap()[0]
            .get("results")
            .unwrap()
            .as_array()
            .unwrap()
            .clone();
        assert!(!results.is_empty());
        assert!(results
            .iter()
            .any(|r| r.get("baselineState").and_then(Value::as_str) == Some("unchanged")));
        // Deterministic rendering.
        let a = serde_json::to_string(&doc).unwrap();
        let b = serde_json::to_string(&sarif(&report)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_report_is_still_valid_sarif() {
        let report = crate::ScanReport::default();
        shape_check(&sarif(&report));
    }
}
