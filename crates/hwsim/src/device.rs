//! Device models.
//!
//! Each [`Device`] captures the properties of an accelerator that matter
//! for nondeterminism: how many independently-scheduled accumulation lanes
//! it effectively has (a function of its core count), whether matmul-class
//! ops run on fixed-order systolic hardware (Tensor Cores, TPU MXU), and
//! its effective floating-point throughput for the cost model.

use nstensor::MAX_LANES;
use serde::{Deserialize, Serialize};

/// Accelerator micro-architecture family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Architecture {
    /// NVIDIA Pascal (P100).
    Pascal,
    /// NVIDIA Volta (V100).
    Volta,
    /// NVIDIA Turing (T4, RTX 5000).
    Turing,
    /// Google TPU v2 (systolic matrix unit; deterministic by design).
    TpuV2,
    /// Host CPU (sequential reference).
    Cpu,
}

/// A simulated accelerator.
///
/// Construct with the named presets ([`Device::p100`], [`Device::v100`],
/// [`Device::rtx5000`], [`Device::rtx5000_tensor_cores`], [`Device::t4`],
/// [`Device::tpu_v2`], [`Device::cpu`]) or [`Device::custom`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Device {
    name: &'static str,
    arch: Architecture,
    cuda_cores: u32,
    /// Whether matmul-class ops are routed to fixed-order systolic units
    /// (Tensor Cores / TPU MXU).
    systolic_matmul: bool,
    /// Whether *every* op is deterministic by hardware design (TPU).
    deterministic_by_design: bool,
    /// Effective sustained throughput for the cost model, in TFLOP/s.
    eff_tflops: f32,
}

impl Device {
    /// NVIDIA P100 (Pascal, 3584 CUDA cores).
    pub fn p100() -> Self {
        Self {
            name: "P100",
            arch: Architecture::Pascal,
            cuda_cores: 3584,
            systolic_matmul: false,
            deterministic_by_design: false,
            eff_tflops: 9.5,
        }
    }

    /// NVIDIA V100 (Volta, 5120 CUDA cores).
    pub fn v100() -> Self {
        Self {
            name: "V100",
            arch: Architecture::Volta,
            cuda_cores: 5120,
            systolic_matmul: false,
            deterministic_by_design: false,
            eff_tflops: 14.9,
        }
    }

    /// NVIDIA RTX 5000 (Turing, 3072 CUDA cores), CUDA-core execution.
    pub fn rtx5000() -> Self {
        Self {
            name: "RTX5000",
            arch: Architecture::Turing,
            cuda_cores: 3072,
            systolic_matmul: false,
            deterministic_by_design: false,
            eff_tflops: 11.2,
        }
    }

    /// NVIDIA RTX 5000 with Tensor Cores enabled: matmul-class ops run on
    /// fixed-order systolic units, but unsupported ops (gradient and
    /// statistics accumulations) fall back to nondeterministic CUDA cores —
    /// which is why the paper finds Tensor-Core training still
    /// nondeterministic.
    pub fn rtx5000_tensor_cores() -> Self {
        Self {
            name: "RTX5000-TC",
            arch: Architecture::Turing,
            cuda_cores: 3072,
            systolic_matmul: true,
            deterministic_by_design: false,
            eff_tflops: 22.3,
        }
    }

    /// NVIDIA T4 (Turing, 2560 CUDA cores).
    pub fn t4() -> Self {
        Self {
            name: "T4",
            arch: Architecture::Turing,
            cuda_cores: 2560,
            systolic_matmul: false,
            deterministic_by_design: false,
            eff_tflops: 8.1,
        }
    }

    /// Google TPU v2-8 chip: single-threaded deterministic execution model.
    pub fn tpu_v2() -> Self {
        Self {
            name: "TPUv2",
            arch: Architecture::TpuV2,
            cuda_cores: 0,
            systolic_matmul: true,
            deterministic_by_design: true,
            eff_tflops: 22.5,
        }
    }

    /// Sequential host CPU (reference semantics).
    pub fn cpu() -> Self {
        Self {
            name: "CPU",
            arch: Architecture::Cpu,
            cuda_cores: 1,
            systolic_matmul: false,
            deterministic_by_design: true,
            eff_tflops: 0.1,
        }
    }

    /// A custom device (for sweeps over parallelism).
    pub fn custom(
        name: &'static str,
        arch: Architecture,
        cuda_cores: u32,
        systolic_matmul: bool,
        deterministic_by_design: bool,
        eff_tflops: f32,
    ) -> Self {
        Self {
            name,
            arch,
            cuda_cores,
            systolic_matmul,
            deterministic_by_design,
            eff_tflops,
        }
    }

    /// The device's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The micro-architecture family.
    pub fn arch(&self) -> Architecture {
        self.arch
    }

    /// Number of CUDA cores (0 for TPU).
    pub fn cuda_cores(&self) -> u32 {
        self.cuda_cores
    }

    /// Whether matmul-class ops use fixed-order systolic accumulation.
    pub fn systolic_matmul(&self) -> bool {
        self.systolic_matmul
    }

    /// Whether every op is deterministic by hardware design.
    pub fn deterministic_by_design(&self) -> bool {
        self.deterministic_by_design
    }

    /// Effective sustained throughput for the cost model, in TFLOP/s.
    pub fn eff_tflops(&self) -> f32 {
        self.eff_tflops
    }

    /// The number of independently-ordered accumulation lanes the device
    /// effectively exhibits. More cores → more concurrently arriving
    /// partial sums → more ordering freedom. Scaled into
    /// `[8, MAX_LANES]` for GPUs; 16 fixed lanes for systolic hardware;
    /// 1 for the CPU.
    pub fn lanes(&self) -> usize {
        match self.arch {
            Architecture::Cpu => 1,
            Architecture::TpuV2 => 16,
            _ => ((self.cuda_cores / 80) as usize).clamp(8, MAX_LANES),
        }
    }

    /// All GPU presets evaluated by the paper's stability experiments.
    pub fn stability_gpus() -> Vec<Device> {
        vec![Self::p100(), Self::v100(), Self::rtx5000()]
    }

    /// All GPU presets evaluated by the paper's overhead experiments.
    pub fn overhead_gpus() -> Vec<Device> {
        vec![Self::p100(), Self::v100(), Self::t4()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_ordering_follows_core_count() {
        // V100 has the most CUDA cores, so the widest ordering freedom.
        assert!(Device::v100().lanes() > Device::p100().lanes());
        assert!(Device::p100().lanes() > Device::rtx5000().lanes());
        assert!(Device::rtx5000().lanes() > Device::t4().lanes());
    }

    #[test]
    fn lanes_within_bounds() {
        for d in [
            Device::p100(),
            Device::v100(),
            Device::rtx5000(),
            Device::t4(),
            Device::tpu_v2(),
            Device::cpu(),
        ] {
            assert!((1..=MAX_LANES).contains(&d.lanes()), "{}", d.name());
        }
    }

    #[test]
    fn tpu_is_deterministic_by_design() {
        assert!(Device::tpu_v2().deterministic_by_design());
        assert!(!Device::v100().deterministic_by_design());
    }

    #[test]
    fn tensor_core_variant_is_systolic_but_not_deterministic() {
        let tc = Device::rtx5000_tensor_cores();
        assert!(tc.systolic_matmul());
        assert!(!tc.deterministic_by_design());
    }

    #[test]
    fn preset_names_are_distinct() {
        let names: Vec<&str> = [
            Device::p100(),
            Device::v100(),
            Device::rtx5000(),
            Device::rtx5000_tensor_cores(),
            Device::t4(),
            Device::tpu_v2(),
            Device::cpu(),
        ]
        .iter()
        .map(|d| d.name())
        .collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
