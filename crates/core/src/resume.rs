//! Resumable fleet execution: durable per-cell progress under
//! `results/.ckpt/`.
//!
//! The reproduction driver runs large (task × device × variant) grids that
//! can be interrupted at any point — a wall-clock limit, a host failure, a
//! ctrl-C. This module makes those interruptions cheap instead of fatal:
//!
//! - every *completed* replica's [`ReplicaResult`] is persisted to its
//!   cell directory the moment it finishes (resume skips it entirely);
//! - every *in-flight* replica sinks an epoch-boundary [`Checkpoint`] to
//!   disk, so a resumed run re-enters mid-training instead of re-training
//!   from scratch;
//! - a human-readable `manifest.txt` per cell records fleet progress.
//!
//! Because replicas are pure functions of `(task, device, variant,
//! settings, replica)` and checkpoints capture the *complete* training
//! state (weights, optimizer velocity, RNG streams, scheduler state, data
//! order), a resumed fleet is bit-identical to an uninterrupted one. That
//! property is asserted by this module's tests and by the golden resume
//! integration test.
//!
//! Layout under the store root (one directory per cell):
//!
//! ```text
//! <root>/<task>/<device>/<variant>/
//!     r0.result      completed replica 0 (binary, byte-exact floats)
//!     r0.status      "ok" | "retried N" | "failed <reason>"
//!     r1.ckpt        epoch-boundary checkpoint of in-flight replica 1
//!     manifest.txt   human-readable fleet progress
//! ```

use crate::runner::{
    run_replica_with, Preds, PreparedTask, ReplicaOptions, ReplicaResult, ReplicaStatus,
    VariantRuns,
};
use crate::settings::ExperimentSettings;
use crate::variant::NoiseVariant;
use hwsim::Device;
use nnet::checkpoint::Checkpoint;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Magic prefix of a persisted replica result ("NSRR").
const RESULT_MAGIC: u32 = 0x4E53_5252;
/// Result codec version.
const RESULT_VERSION: u32 = 1;

/// A directory of durable fleet progress, rooted (by convention) at
/// `results/.ckpt/`.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    root: PathBuf,
}

/// Replaces path-hostile characters so task/device/variant names can name
/// directories ("SmallCNN CIFAR-10" → "SmallCNN_CIFAR-10").
fn path_component(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl CheckpointStore {
    /// Opens (or designates) a store rooted at `root`. No IO happens until
    /// a fleet runs.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into() }
    }

    /// A store scoped under `root` by a fingerprint of every settings knob
    /// that shapes replica results. Cells are keyed only by (task, device,
    /// variant), so without the scope a run with a different seed or epoch
    /// scale would silently reuse stale cached replicas.
    pub fn for_settings(root: impl Into<PathBuf>, settings: &ExperimentSettings) -> Self {
        let fp = format!(
            "s{}-r{}-u{}-e{}-t{}",
            settings.base_seed,
            settings.replicas,
            settings.amp_ulps,
            settings.epochs_scale,
            settings.exec_threads
        );
        Self {
            root: root.into().join(path_component(&fp)),
        }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory holding one cell's progress.
    pub fn cell_dir(&self, task: &str, device: &str, variant: NoiseVariant) -> PathBuf {
        self.root
            .join(path_component(task))
            .join(path_component(device))
            .join(path_component(variant.label()))
    }
}

/// Encodes a [`ReplicaResult`] with byte-exact floats (`f32::to_bits` /
/// `f64::to_bits`): a resumed fleet must reproduce an uninterrupted one
/// bit-for-bit, and a text codec cannot promise that. Shared with the
/// fleet IPC layer, which ships the same bytes over a pipe instead of
/// through a file.
pub(crate) fn encode_result(r: &ReplicaResult) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + 4 * r.weights.len());
    out.extend_from_slice(&RESULT_MAGIC.to_le_bytes());
    out.extend_from_slice(&RESULT_VERSION.to_le_bytes());
    out.extend_from_slice(&r.replica.to_le_bytes());
    out.extend_from_slice(&r.accuracy.to_bits().to_le_bytes());
    match &r.preds {
        Preds::Classes(p) => {
            out.push(0);
            out.extend_from_slice(&(p.len() as u64).to_le_bytes());
            for &c in p {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        Preds::Binary(p) => {
            out.push(1);
            out.extend_from_slice(&(p.len() as u64).to_le_bytes());
            out.extend_from_slice(p);
        }
    }
    out.extend_from_slice(&(r.weights.len() as u64).to_le_bytes());
    for &w in &r.weights {
        out.extend_from_slice(&w.to_bits().to_le_bytes());
    }
    out.extend_from_slice(&r.final_train_loss.to_bits().to_le_bytes());
    out
}

/// Little-endian reader over a persisted result; every accessor
/// bounds-checks so truncated or foreign files surface as
/// [`io::ErrorKind::InvalidData`], never a panic.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn bad(detail: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("replica result: {detail}"),
    )
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> io::Result<&[u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| bad("overflow"))?;
        if end > self.buf.len() {
            return Err(bad("truncated"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// A declared element count, sanity-checked against the bytes that
    /// actually remain so a corrupt length cannot trigger a huge
    /// allocation.
    fn len(&mut self, elem_size: usize) -> io::Result<usize> {
        let n = self.u64()? as usize;
        if n.saturating_mul(elem_size) > self.buf.len() - self.pos {
            return Err(bad("length exceeds payload"));
        }
        Ok(n)
    }
}

pub(crate) fn decode_result(bytes: &[u8]) -> io::Result<ReplicaResult> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.u32()? != RESULT_MAGIC {
        return Err(bad("bad magic"));
    }
    let version = r.u32()?;
    if version != RESULT_VERSION {
        return Err(bad(&format!("unsupported version {version}")));
    }
    let replica = r.u32()?;
    let accuracy = f64::from_bits(r.u64()?);
    let preds = match r.u8()? {
        0 => {
            let n = r.len(4)?;
            let mut p = Vec::with_capacity(n);
            for _ in 0..n {
                p.push(r.u32()?);
            }
            Preds::Classes(p)
        }
        1 => {
            let n = r.len(1)?;
            Preds::Binary(r.take(n)?.to_vec())
        }
        t => return Err(bad(&format!("unknown preds tag {t}"))),
    };
    let n = r.len(4)?;
    let mut weights = Vec::with_capacity(n);
    for _ in 0..n {
        weights.push(f32::from_bits(r.u32()?));
    }
    let final_train_loss = f32::from_bits(r.u32()?);
    if r.pos != bytes.len() {
        return Err(bad("trailing bytes"));
    }
    Ok(ReplicaResult {
        replica,
        accuracy,
        preds,
        weights,
        final_train_loss,
    })
}

/// Writes `bytes` atomically (tmp + fsync + rename), so an interrupt
/// mid-write never leaves a half-written file where a reader would look.
/// Used for every durable artifact this crate publishes: checkpoint-store
/// cells here, and (via [`crate::report::save_json`]) the `results/*.json`
/// reports.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

pub(crate) fn status_line(status: &ReplicaStatus) -> String {
    match status {
        ReplicaStatus::Ok => "ok".into(),
        ReplicaStatus::Retried { attempts } => format!("retried {attempts}"),
        ReplicaStatus::Failed { reason } => format!("failed {}", reason.replace('\n', " ")),
        ReplicaStatus::TimedOut { attempts } => format!("timedout {attempts}"),
        ReplicaStatus::Crashed { reason } => format!("crashed {}", reason.replace('\n', " ")),
    }
}

pub(crate) fn parse_status(line: &str) -> Option<ReplicaStatus> {
    let line = line.trim();
    if line == "ok" {
        return Some(ReplicaStatus::Ok);
    }
    if let Some(rest) = line.strip_prefix("retried ") {
        return rest
            .parse()
            .ok()
            .map(|attempts| ReplicaStatus::Retried { attempts });
    }
    if let Some(rest) = line.strip_prefix("timedout ") {
        return rest
            .parse()
            .ok()
            .map(|attempts| ReplicaStatus::TimedOut { attempts });
    }
    if let Some(reason) = line.strip_prefix("crashed ") {
        return Some(ReplicaStatus::Crashed {
            reason: reason.to_string(),
        });
    }
    line.strip_prefix("failed ")
        .map(|reason| ReplicaStatus::Failed {
            reason: reason.to_string(),
        })
}

pub(crate) fn result_path(dir: &Path, replica: u32) -> PathBuf {
    dir.join(format!("r{replica}.result"))
}

pub(crate) fn status_path(dir: &Path, replica: u32) -> PathBuf {
    dir.join(format!("r{replica}.status"))
}

pub(crate) fn ckpt_path(dir: &Path, replica: u32) -> PathBuf {
    dir.join(format!("r{replica}.ckpt"))
}

/// Rewrites the cell's human-readable progress manifest.
pub(crate) fn write_manifest(
    dir: &Path,
    task: &str,
    device: &str,
    variant: NoiseVariant,
    statuses: &[(u32, String)],
    total: u32,
) -> io::Result<()> {
    let mut out = format!(
        "cell: {task} / {device} / {variant}\nreplicas: {} of {total} accounted for\n",
        statuses.len()
    );
    for (r, s) in statuses {
        out.push_str(&format!("r{r}: {s}\n"));
    }
    write_atomic(&dir.join("manifest.txt"), out.as_bytes())
}

/// One replica under supervision with durable progress: attempts resume
/// from the newest on-disk epoch checkpoint and sink fresh checkpoints as
/// they train. Checkpoints are only ever emitted at fault-free epoch
/// boundaries (`fit` aborts *before* the sink on a faulted step), so a
/// checkpoint from a crashed attempt is still a bit-exact prefix of the
/// clean trajectory and safe for any later attempt to resume from.
fn supervise_resumable(
    prepared: &PreparedTask,
    device: &Device,
    variant: NoiseVariant,
    settings: &ExperimentSettings,
    replica: u32,
    dir: &Path,
    checkpoint_every_epochs: u32,
) -> io::Result<(Option<ReplicaResult>, ReplicaStatus)> {
    let ckpt = ckpt_path(dir, replica);
    let mut last_reason = String::new();
    for attempt in 0..=settings.retry_budget {
        // An unreadable checkpoint (partial write survived a crash before
        // the atomic rename existed, disk corruption, ...) must degrade to
        // a fresh start, not kill the replica.
        let resume = match Checkpoint::load(&ckpt) {
            Ok(c) => Some(c),
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(_) => {
                std::fs::remove_file(&ckpt).ok();
                None
            }
        };
        let mut sink_err: Option<io::Error> = None;
        let mut sink = |c: &Checkpoint| {
            if sink_err.is_none() {
                if let Err(e) = c.save(&ckpt) {
                    sink_err = Some(e);
                }
            }
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_replica_with(
                prepared,
                device,
                variant,
                settings,
                replica,
                ReplicaOptions {
                    attempt,
                    resume: resume.as_ref(),
                    checkpoint_every_epochs,
                    sink: Some(&mut sink),
                    ..ReplicaOptions::default()
                },
            )
        }));
        if let Some(e) = sink_err {
            return Err(e);
        }
        match outcome {
            Ok(Ok(result)) => {
                let status = if attempt == 0 {
                    ReplicaStatus::Ok
                } else {
                    ReplicaStatus::Retried {
                        attempts: attempt + 1,
                    }
                };
                write_atomic(&result_path(dir, replica), &encode_result(&result))?;
                write_atomic(&status_path(dir, replica), status_line(&status).as_bytes())?;
                std::fs::remove_file(&ckpt).ok();
                return Ok((Some(result), status));
            }
            Ok(Err(err)) => last_reason = err.to_string(),
            Err(payload) => last_reason = crate::runner::panic_reason(payload),
        }
    }
    let attempts = settings.retry_budget + 1;
    let status = ReplicaStatus::Failed {
        reason: format!("{attempts} attempts exhausted; last: {last_reason}"),
    };
    write_atomic(&status_path(dir, replica), status_line(&status).as_bytes())?;
    Ok((None, status))
}

/// [`crate::runner::run_variant`] with durable progress: completed
/// replicas are loaded from the store instead of re-trained, in-flight
/// replicas resume from their newest epoch checkpoint, and every
/// completion is persisted before the fleet moves on.
///
/// `checkpoint_every_epochs = 0` still persists *results* (fleet-level
/// resume) but no mid-training checkpoints.
///
/// Previously-`Failed` replicas are re-attempted on resume: under a
/// deterministic chaos schedule they fail identically (cheap), while a
/// real transient host fault gets a fresh chance.
///
/// # Errors
///
/// Only store IO failures are errors; training faults degrade into
/// [`ReplicaStatus`] entries exactly as in the in-memory supervisor.
pub fn run_variant_resumable(
    prepared: &PreparedTask,
    device: &Device,
    variant: NoiseVariant,
    settings: &ExperimentSettings,
    store: &CheckpointStore,
    checkpoint_every_epochs: u32,
) -> io::Result<VariantRuns> {
    settings
        .validate_for(&prepared.spec)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    let dir = store.cell_dir(&prepared.spec.name, device.name(), variant);
    std::fs::create_dir_all(&dir)?;
    let n = settings.replicas;

    type Supervised = (Option<ReplicaResult>, ReplicaStatus);
    let mut harvested: Vec<Option<io::Result<Supervised>>> = (0..n).map(|_| None).collect();
    let mut pending: Vec<u32> = Vec::new();
    for r in 0..n {
        // A readable result file is a completed replica; anything else
        // (absent, torn write predating atomic saves, foreign bytes) means
        // the replica runs again.
        match std::fs::read(result_path(&dir, r)).map(|b| decode_result(&b)) {
            Ok(Ok(result)) => {
                let status = std::fs::read_to_string(status_path(&dir, r))
                    .ok()
                    .and_then(|s| parse_status(&s))
                    .unwrap_or(ReplicaStatus::Ok);
                harvested[r as usize] = Some(Ok((Some(result), status)));
            }
            _ => pending.push(r),
        }
    }

    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(pending.len().max(1));
    if workers <= 1 {
        for &r in &pending {
            harvested[r as usize] = Some(supervise_resumable(
                prepared,
                device,
                variant,
                settings,
                r,
                &dir,
                checkpoint_every_epochs,
            ));
        }
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let pending = &pending;
        let dir_ref = &dir;
        let collected = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(u32, io::Result<Supervised>)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(&r) = pending.get(i) else {
                                return local;
                            };
                            local.push((
                                r,
                                supervise_resumable(
                                    prepared,
                                    device,
                                    variant,
                                    settings,
                                    r,
                                    dir_ref,
                                    checkpoint_every_epochs,
                                ),
                            ));
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("resumable supervisor thread panicked"))
                .collect::<Vec<_>>()
        });
        for (r, out) in collected {
            harvested[r as usize] = Some(out);
        }
    }

    let mut results = Vec::with_capacity(n as usize);
    let mut statuses = Vec::with_capacity(n as usize);
    let mut manifest = Vec::with_capacity(n as usize);
    for (r, cell) in harvested.into_iter().enumerate() {
        let (result, status) = cell.expect("replica not supervised")?;
        manifest.push((r as u32, status_line(&status)));
        results.extend(result);
        statuses.push(status);
    }
    write_manifest(
        &dir,
        &prepared.spec.name,
        device.name(),
        variant,
        &manifest,
        n,
    )?;
    Ok(VariantRuns {
        variant,
        results,
        statuses,
    })
}

#[cfg(test)]
// Bit-identical resume is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::runner::run_variant;
    use crate::task::{DataSource, TaskSpec};
    use nsdata::GaussianSpec;

    fn tiny_task() -> TaskSpec {
        let mut t = TaskSpec::small_cnn_cifar10();
        t.data = DataSource::Gaussian(GaussianSpec {
            classes: 3,
            train_per_class: 10,
            test_per_class: 6,
            ..GaussianSpec::cifar10_sim()
        });
        t.train.epochs = 4;
        t.augment = false;
        t
    }

    fn tiny_settings() -> ExperimentSettings {
        ExperimentSettings {
            replicas: 2,
            ..ExperimentSettings::default()
        }
    }

    /// A unique scratch store per test, cleaned up on drop.
    struct Scratch(CheckpointStore);

    impl Scratch {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("noisescope-resume-{tag}-{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            Scratch(CheckpointStore::new(dir))
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            std::fs::remove_dir_all(self.0.root()).ok();
        }
    }

    #[test]
    fn result_codec_round_trips_byte_exact() {
        let r = ReplicaResult {
            replica: 7,
            accuracy: 0.687_432_109_8,
            preds: Preds::Classes(vec![0, 3, 2, 1]),
            weights: vec![1.5, -0.25, f32::MIN_POSITIVE, 1e-30],
            final_train_loss: 0.042,
        };
        let bytes = encode_result(&r);
        let back = decode_result(&bytes).expect("decode");
        assert_eq!(back.replica, r.replica);
        assert_eq!(back.accuracy.to_bits(), r.accuracy.to_bits());
        assert_eq!(back.preds, r.preds);
        let bits = |ws: &[f32]| ws.iter().map(|w| w.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back.weights), bits(&r.weights));
        assert_eq!(
            back.final_train_loss.to_bits(),
            r.final_train_loss.to_bits()
        );

        let b = ReplicaResult {
            preds: Preds::Binary(vec![0, 1, 1, 0]),
            ..r
        };
        assert_eq!(
            decode_result(&encode_result(&b)).expect("decode").preds,
            b.preds
        );
    }

    #[test]
    fn result_codec_rejects_malformed_input() {
        assert!(decode_result(&[]).is_err());
        assert!(decode_result(b"not a result file").is_err());
        let r = ReplicaResult {
            replica: 0,
            accuracy: 0.5,
            preds: Preds::Classes(vec![1]),
            weights: vec![1.0],
            final_train_loss: 0.1,
        };
        let mut bytes = encode_result(&r);
        bytes.truncate(bytes.len() - 2);
        assert!(decode_result(&bytes).is_err());
        let mut bytes = encode_result(&r);
        bytes.push(0);
        assert!(decode_result(&bytes).is_err());
    }

    #[test]
    fn status_lines_round_trip() {
        for s in [
            ReplicaStatus::Ok,
            ReplicaStatus::Retried { attempts: 3 },
            ReplicaStatus::Failed {
                reason: "2 attempts exhausted; last: injected".into(),
            },
            ReplicaStatus::TimedOut { attempts: 3 },
            ReplicaStatus::Crashed {
                reason: "signal 6".into(),
            },
        ] {
            assert_eq!(parse_status(&status_line(&s)), Some(s));
        }
        assert_eq!(parse_status("gibberish"), None);
    }

    #[test]
    fn resumable_fleet_matches_in_memory_fleet() {
        let scratch = Scratch::new("fresh");
        let prepared = PreparedTask::prepare(&tiny_task());
        let settings = tiny_settings();
        let device = Device::v100();
        let baseline = run_variant(&prepared, &device, NoiseVariant::Impl, &settings);
        let durable = run_variant_resumable(
            &prepared,
            &device,
            NoiseVariant::Impl,
            &settings,
            &scratch.0,
            2,
        )
        .expect("resumable fleet");
        assert_eq!(durable.statuses, baseline.statuses);
        for (a, b) in baseline.results.iter().zip(&durable.results) {
            assert_eq!(a.weights, b.weights);
            assert_eq!(a.preds, b.preds);
        }
        let dir = scratch
            .0
            .cell_dir(&prepared.spec.name, device.name(), NoiseVariant::Impl);
        assert!(result_path(&dir, 0).exists());
        assert!(result_path(&dir, 1).exists());
        assert!(
            !ckpt_path(&dir, 0).exists(),
            "completed replicas clean up their checkpoints"
        );
        let manifest = std::fs::read_to_string(dir.join("manifest.txt")).expect("manifest");
        assert!(manifest.contains("2 of 2 accounted for"), "{manifest}");
    }

    #[test]
    fn mid_fleet_resume_skips_completed_replicas_bit_identically() {
        let scratch = Scratch::new("midfleet");
        let prepared = PreparedTask::prepare(&tiny_task());
        let settings = tiny_settings();
        let device = Device::v100();

        // Interrupted first pass: only replica 0 completed.
        let one = ExperimentSettings {
            replicas: 1,
            ..settings
        };
        let first =
            run_variant_resumable(&prepared, &device, NoiseVariant::Impl, &one, &scratch.0, 0)
                .expect("first pass");
        assert_eq!(first.results.len(), 1);

        // Resume with the full fleet: replica 0 loads from disk (we corrupt
        // nothing but a re-train would be detected below anyway), replica 1
        // trains fresh.
        let resumed = run_variant_resumable(
            &prepared,
            &device,
            NoiseVariant::Impl,
            &settings,
            &scratch.0,
            0,
        )
        .expect("resumed pass");
        let reference = run_variant(&prepared, &device, NoiseVariant::Impl, &settings);
        assert_eq!(resumed.results.len(), 2);
        for (a, b) in reference.results.iter().zip(&resumed.results) {
            assert_eq!(a.weights, b.weights, "replica {}", a.replica);
            assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
        }
    }

    #[test]
    fn mid_training_resume_from_epoch_checkpoint_is_bit_identical() {
        let scratch = Scratch::new("midtrain");
        let prepared = PreparedTask::prepare(&tiny_task());
        let settings = tiny_settings();
        let device = Device::v100();
        let dir = scratch
            .0
            .cell_dir(&prepared.spec.name, device.name(), NoiseVariant::Impl);
        std::fs::create_dir_all(&dir).expect("mkdir");

        // Simulate an interrupted replica 0: capture its epoch-2 checkpoint
        // (as the durable sink would have) and plant it in the store.
        let mut planted: Option<Checkpoint> = None;
        let mut sink = |c: &Checkpoint| {
            if c.epochs_done == 2 {
                planted = Some(c.clone());
            }
        };
        run_replica_with(
            &prepared,
            &device,
            NoiseVariant::Impl,
            &settings,
            0,
            ReplicaOptions {
                checkpoint_every_epochs: 2,
                sink: Some(&mut sink),
                ..ReplicaOptions::default()
            },
        )
        .expect("probe replica");
        planted
            .expect("4-epoch run checkpoints at epoch 2")
            .save(&ckpt_path(&dir, 0))
            .expect("plant checkpoint");

        let resumed = run_variant_resumable(
            &prepared,
            &device,
            NoiseVariant::Impl,
            &settings,
            &scratch.0,
            2,
        )
        .expect("resumed fleet");
        let reference = run_variant(&prepared, &device, NoiseVariant::Impl, &settings);
        for (a, b) in reference.results.iter().zip(&resumed.results) {
            assert_eq!(
                a.weights, b.weights,
                "replica {} resumed mid-training must be bit-identical",
                a.replica
            );
            assert_eq!(a.preds, b.preds);
        }
    }

    #[test]
    fn corrupt_store_files_degrade_to_retraining() {
        let scratch = Scratch::new("corrupt");
        let prepared = PreparedTask::prepare(&tiny_task());
        let settings = tiny_settings();
        let device = Device::v100();
        let dir = scratch
            .0
            .cell_dir(&prepared.spec.name, device.name(), NoiseVariant::Impl);
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(result_path(&dir, 0), b"torn write").expect("plant corrupt result");
        std::fs::write(ckpt_path(&dir, 1), b"torn write").expect("plant corrupt ckpt");

        let runs = run_variant_resumable(
            &prepared,
            &device,
            NoiseVariant::Impl,
            &settings,
            &scratch.0,
            0,
        )
        .expect("fleet survives corrupt store files");
        let reference = run_variant(&prepared, &device, NoiseVariant::Impl, &settings);
        assert_eq!(runs.results.len(), 2);
        for (a, b) in reference.results.iter().zip(&runs.results) {
            assert_eq!(a.weights, b.weights);
        }
    }
}
