//! Regression fixture: suppressions attach to the *statement*, not the
//! physical line. A finding on a continuation line of a multi-line
//! expression is covered by an allow on the statement's first line —
//! v1 matched on the finding's own line only, so these stayed findings.

pub fn multi_line_sum(vals: &[f64]) -> f64 {
    // detlint::allow(DL004, reason = "fixed-size probe buffer, order is static")
    let total: f64 = vals
        .iter()
        .map(|v| v * 2.0)
        .sum();
    total
}

pub fn trailing_on_first_line(vals: &[f32]) -> f32 {
    let s: f32 = vals // detlint::allow(DL004, reason = "len fixed at 3 upstream")
        .iter()
        .sum();
    s
}
