//! Dense `f32` tensors whose reductions have *explicit, pluggable
//! accumulation order* — the substrate for simulating accelerator
//! floating-point nondeterminism.
//!
//! Floating-point addition is not associative: `(a + b) + c` and
//! `a + (b + c)` can differ in the last unit-in-last-place. Massively
//! parallel accelerators exploit that freedom — atomics, split-K matmuls and
//! warp-level trees combine partial sums in whatever order the hardware
//! scheduler happens to produce — which makes the *numerical result of
//! training* a function of scheduling, not just of the algorithm. This is
//! the "implementation noise" of Zhuang et al. (MLSys 2022), and this crate
//! is where it physically happens in the reproduction.
//!
//! Every reduction in the training hot path (matmul/conv dot products,
//! gradient sums over the batch, batch-norm statistics) flows through a
//! [`Reducer`], whose [`ReduceOrder`] selects:
//!
//! - [`ReduceOrder::Sequential`] — plain left-to-right accumulation (CPU
//!   reference semantics),
//! - [`ReduceOrder::FixedTree`] — strided multi-lane partial sums combined
//!   in fixed index order (deterministic GPU kernels, TPU systolic arrays),
//! - [`ReduceOrder::Permuted`] — the same lane partials combined in an
//!   order perturbed by a scheduler RNG (nondeterministic GPU kernels).
//!
//! `FixedTree` and `Permuted` share lane structure, so a deterministic run
//! is one valid accumulation order of the nondeterministic kernel — exactly
//! the relation between cuDNN's deterministic and default algorithms.
//!
//! # Example
//!
//! ```
//! use nstensor::{Reducer, ReduceOrder};
//!
//! let xs: Vec<f32> = (0..1000).map(|i| ((i * 37 % 101) as f32 - 50.0) * 0.137).collect();
//! let mut det = Reducer::new(ReduceOrder::FixedTree, 32, 0);
//! // Deterministic reducers are bitwise stable:
//! assert_eq!(det.sum(&xs), det.sum(&xs));
//! // Nondeterministic reducers re-order partial sums between calls; results
//! // stay within a few ulps but are not bitwise stable in general.
//! let mut nd = Reducer::new(ReduceOrder::Permuted, 32, 42);
//! let a = nd.sum(&xs);
//! let b = nd.sum(&xs);
//! assert!((a - b).abs() < 1e-3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod conv;
pub mod error;
pub mod gemm;
pub mod linalg;
pub mod ops;
pub mod pack;
pub mod pool;
pub mod reduce;
pub mod shape;
pub mod tensor;
pub mod workspace;

pub use conv::{
    conv2d_backward, conv2d_backward_ws, conv2d_forward, conv2d_forward_ws, Conv2dGrads,
    ConvGeometry,
};
pub use error::ShapeError;
pub use gemm::{matmul_a_bt_ws, matmul_at_b_ws, matmul_ws};
pub use linalg::{
    matmul, matmul_a_bt, matmul_a_bt_reference, matmul_at_b, matmul_at_b_reference,
    matmul_reference,
};
pub use pool::{
    global_avg_pool_backward, global_avg_pool_forward, maxpool2d_backward, maxpool2d_forward,
};
pub use reduce::{ReduceOrder, Reducer, ReducerSnapshot, MAX_LANES};
pub use shape::Shape;
pub use tensor::Tensor;
pub use workspace::Workspace;
