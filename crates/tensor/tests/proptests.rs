//! Property-based tests for the order-sensitive tensor substrate.

use nstensor::{matmul, ReduceOrder, Reducer, Shape, Tensor};
use proptest::prelude::*;

fn small_f32() -> impl Strategy<Value = f32> {
    // Bounded magnitudes so f64 reference sums are exact enough to compare.
    (-1000i32..1000).prop_map(|v| v as f32 * 1e-3)
}

proptest! {
    /// Any accumulation order must agree with the f64 reference to within
    /// the classic sequential-summation error bound.
    #[test]
    fn reduction_error_is_bounded(
        xs in prop::collection::vec(small_f32(), 0..2048),
        lanes in 1usize..64,
        seed in any::<u64>(),
    ) {
        let exact: f64 = xs.iter().map(|&x| x as f64).sum();
        let abs_sum: f64 = xs.iter().map(|&x| (x as f64).abs()).sum();
        let bound = (xs.len().max(1) as f64) * (f32::EPSILON as f64) * abs_sum + 1e-9;
        for order in [ReduceOrder::Sequential, ReduceOrder::FixedTree, ReduceOrder::Permuted] {
            let mut r = Reducer::new(order, lanes, seed);
            let s = r.sum(&xs) as f64;
            prop_assert!((s - exact).abs() <= bound, "{order:?}: err {} > bound {bound}", (s - exact).abs());
        }
    }

    /// FixedTree reductions are a pure function of (data, lanes): bitwise
    /// identical across scheduler seeds and repeated calls.
    #[test]
    fn fixed_tree_bitwise_stable(
        xs in prop::collection::vec(small_f32(), 0..512),
        lanes in 1usize..64,
        s1 in any::<u64>(),
        s2 in any::<u64>(),
    ) {
        let mut a = Reducer::new(ReduceOrder::FixedTree, lanes, s1);
        let mut b = Reducer::new(ReduceOrder::FixedTree, lanes, s2);
        prop_assert_eq!(a.sum(&xs).to_bits(), b.sum(&xs).to_bits());
        prop_assert_eq!(a.sum(&xs).to_bits(), a.sum(&xs).to_bits());
    }

    /// Dot products agree with the f64 reference under every order.
    #[test]
    fn dot_error_is_bounded(
        pairs in prop::collection::vec((small_f32(), small_f32()), 0..512),
        lanes in 1usize..64,
        seed in any::<u64>(),
    ) {
        let a: Vec<f32> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f32> = pairs.iter().map(|p| p.1).collect();
        let exact: f64 = pairs.iter().map(|p| p.0 as f64 * p.1 as f64).sum();
        let abs: f64 = pairs.iter().map(|p| (p.0 as f64 * p.1 as f64).abs()).sum();
        let bound = (pairs.len().max(1) as f64 + 1.0) * (f32::EPSILON as f64) * abs + 1e-9;
        for order in [ReduceOrder::Sequential, ReduceOrder::FixedTree, ReduceOrder::Permuted] {
            let mut r = Reducer::new(order, lanes, seed);
            let d = r.dot(&a, &b) as f64;
            prop_assert!((d - exact).abs() <= bound);
        }
    }

    /// Matmul under any order stays within tolerance of an f64 reference.
    #[test]
    fn matmul_close_to_reference(
        m in 1usize..6, k in 1usize..8, n in 1usize..6,
        seed in any::<u64>(),
    ) {
        let gen = |len: usize, salt: u64| -> Vec<f32> {
            (0..len).map(|i| {
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(salt ^ seed);
                ((h >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            }).collect()
        };
        let a = Tensor::from_vec(Shape::of(&[m, k]), gen(m * k, 1)).unwrap();
        let b = Tensor::from_vec(Shape::of(&[k, n]), gen(k * n, 2)).unwrap();
        let mut reference = vec![0f64; m * n];
        for i in 0..m {
            for j in 0..n {
                for l in 0..k {
                    reference[i * n + j] += a.get2(i, l) as f64 * b.get2(l, j) as f64;
                }
            }
        }
        let mut red = Reducer::new(ReduceOrder::Permuted, 32, seed);
        let c = matmul(&a, &b, &mut red).unwrap();
        for (x, e) in c.as_slice().iter().zip(&reference) {
            prop_assert!((*x as f64 - e).abs() < 1e-4);
        }
    }

    /// reshape preserves data; tensor round-trips through into_vec.
    #[test]
    fn tensor_round_trip(data in prop::collection::vec(small_f32(), 1..64)) {
        let n = data.len();
        let t = Tensor::from_vec(Shape::of(&[n]), data.clone()).unwrap();
        prop_assert_eq!(t.clone().into_vec(), data);
        let r = t.reshape(Shape::of(&[1, n])).unwrap();
        let rs = r.shape();
        prop_assert_eq!(rs.dims(), &[1, n][..]);
    }
}
