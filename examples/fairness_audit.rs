//! Fairness audit: does training noise harm protected subgroups unevenly?
//!
//! Reproduces the paper's CelebA study at demo scale: trains attribute
//! predictors under each noise variant and dis-aggregates the stability of
//! accuracy/FPR/FNR over protected subgroups (Male/Female, Young/Old)
//! whose positive-label representation matches the paper's Table 3. The
//! underrepresented groups (Male: ~2 % positive, Old) show the largest
//! run-to-run variance — models with identical top-line metrics can treat
//! them very differently depending on nothing but noise.
//!
//! ```text
//! cargo run --release -p ns-examples --bin fairness_audit
//! ```

use noisescope::experiments::fairness;
use noisescope::prelude::*;

fn main() {
    let settings = ExperimentSettings {
        replicas: 4,
        ..ExperimentSettings::default()
    };

    let counts = fairness::table3();
    println!("{}", fairness::render_table3(&counts));
    println!(
        "Male positive rate: {:.1}% — Female: {:.1}% (the imbalance driving the result)\n",
        100.0 * counts.male_pos as f64 / (counts.male_pos + counts.male_neg) as f64,
        100.0 * counts.female_pos as f64 / (counts.female_pos + counts.female_neg) as f64,
    );

    println!(
        "Training {} replicas per noise variant on V100...\n",
        settings.replicas
    );
    let tables = fairness::fig3_table5(&settings).expect("built-in subgroups always resolve");
    println!("{}", fairness::render_table5(&tables));

    for t in &tables {
        let all = &t.rows[0];
        if let Some(worst) = t
            .rows
            .iter()
            .skip(1)
            .max_by(|a, b| a.rel_fnr.total_cmp(&b.rel_fnr))
        {
            println!(
                "[{}] worst FNR instability: {} at {:.1}x the population level \
                 (population stddev {:.4})",
                t.variant.label(),
                worst.group,
                worst.rel_fnr,
                all.std_fnr
            );
        }
    }
    println!(
        "\nEven when top-line accuracy variance is tiny, subgroup error rates swing far\n\
         more between retrainings — noise amplifies bias on the long tail."
    );
}
