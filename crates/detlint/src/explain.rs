//! `--explain DLxxx`: rule rationale plus bad/good examples.
//!
//! The examples are not prose — they are extracted at compile time from
//! the fixture corpus under `tests/fixtures/`, the same sources the
//! fixture tests assert against. A `bad` example is a region the rule is
//! proven to fire on; a `good` example is proven quiet. The no-rot tests
//! at the bottom re-scan every extracted example, so an explanation can
//! never drift out of sync with what the analyzer actually does.
//!
//! Markup inside a fixture:
//!
//! ```text
//! // <explain:DL006:bad>
//! pub fn tainted_sum(...) { ... }
//! // </explain:DL006:bad>
//! ```

use crate::RuleId;

/// Fixture sources holding `// <explain:DLxxx:bad|good>` regions.
const CORPUS: &[&str] = &[
    include_str!("../tests/fixtures/clean.rs"),
    include_str!("../tests/fixtures/dl001_hashmap_iter.rs"),
    include_str!("../tests/fixtures/dl002_entropy.rs"),
    include_str!("../tests/fixtures/dl003_wallclock.rs"),
    include_str!("../tests/fixtures/dl004_float_sum.rs"),
    include_str!("../tests/fixtures/dl005_parallel.rs"),
    include_str!("../tests/fixtures/dl006_taint_flow.rs"),
    include_str!("../tests/fixtures/dl007_entropy_boundary.rs"),
    include_str!("../tests/fixtures/dl008_env_knob.rs"),
    include_str!("../tests/fixtures/dl009_stale_allow.rs"),
    include_str!("../tests/fixtures/suppressed.rs"),
];

/// Everything `--explain` knows about one rule.
pub struct Explanation {
    pub rule: RuleId,
    pub rationale: &'static str,
    pub bad: Option<String>,
    pub good: Option<String>,
}

/// Assemble the explanation for one rule.
pub fn explain(rule: RuleId) -> Explanation {
    Explanation {
        rule,
        rationale: rationale(rule),
        bad: example(rule, "bad"),
        good: example(rule, "good"),
    }
}

/// Render the explanation as the text `--explain` prints.
pub fn render(rule: RuleId) -> String {
    let ex = explain(rule);
    let mut out = format!(
        "{} [{}] — {}\n\n{}\n",
        rule.as_str(),
        rule.taxonomy().as_str(),
        rule.summary(),
        ex.rationale.trim(),
    );
    if let Some(bad) = &ex.bad {
        out.push_str("\nHazard (fires):\n\n");
        push_indented(&mut out, bad);
    }
    if let Some(good) = &ex.good {
        out.push_str("\nSanctioned pattern (quiet):\n\n");
        push_indented(&mut out, good);
    }
    out
}

fn push_indented(out: &mut String, block: &str) {
    for line in block.lines() {
        out.push_str("    ");
        out.push_str(line);
        out.push('\n');
    }
}

/// Extract the marked region for `(rule, kind)` from the corpus. The
/// `// fires:` annotations the fixture tests key on are stripped — they
/// are test markup, not part of the example.
fn example(rule: RuleId, kind: &str) -> Option<String> {
    let open = format!("// <explain:{}:{kind}>", rule.as_str());
    let close = format!("// </explain:{}:{kind}>", rule.as_str());
    for src in CORPUS {
        let mut region = Vec::new();
        let mut inside = false;
        for line in src.lines() {
            let trimmed = line.trim();
            if trimmed == open {
                inside = true;
                continue;
            }
            if trimmed == close {
                return Some(region.join("\n"));
            }
            if inside {
                let kept = match line.find("// fires:") {
                    Some(at) => line[..at].trim_end(),
                    None => line,
                };
                region.push(kept.to_string());
            }
        }
    }
    None
}

fn rationale(rule: RuleId) -> &'static str {
    match rule {
        RuleId::Dl001 => {
            "HashMap and HashSet iterate in an order derived from the hasher's\n\
             per-process random keys, so two runs of the same binary walk the\n\
             same container differently. Any sink that observes that order —\n\
             accumulation, serialization, printing — inherits the randomness.\n\
             Route aggregates through BTreeMap/BTreeSet, or sort before\n\
             consuming."
        }
        RuleId::Dl002 => {
            "An RNG seeded from OS entropy or the wall clock draws a different\n\
             stream every run, which makes the run unreproducible by\n\
             construction. All randomness must derive from the experiment\n\
             seed via the deterministic seed tree, so any replica can be\n\
             replayed bit-identically from its Settings."
        }
        RuleId::Dl003 => {
            "Wall-clock reads differ across runs and hosts. A timestamp that\n\
             leaks into a result artifact makes bit-identical comparison\n\
             impossible even when the actual numerics are deterministic.\n\
             Timing belongs in bench code or in explicitly audited\n\
             diagnostics, never in serialized results."
        }
        RuleId::Dl004 => {
            "Float addition is not associative: (a + b) + c and a + (b + c)\n\
             round differently, so the same multiset of floats summed in two\n\
             orders yields two bit patterns. Every float reduction must go\n\
             through the ordered helpers (`sum_ordered_f64`/`f32`), which fix\n\
             a left-to-right order regardless of how the caller iterates."
        }
        RuleId::Dl005 => {
            "Parallel combinators combine partial results in scheduling order,\n\
             so a float reduction over `par_iter` forms a different\n\
             combination tree on every run. Reduce within fixed shards in\n\
             index order, then combine the per-shard results in index order."
        }
        RuleId::Dl006 => {
            "The dataflow variant of DL001/DL005: the unordered source and the\n\
             float sink sit in different statements, so no single line looks\n\
             wrong. detlint tracks Unordered taint through let-bindings,\n\
             renames, and loop headers; sorting the data, collecting into an\n\
             ordered container, or handing it to a sanctioned ordered\n\
             reduction clears the taint."
        }
        RuleId::Dl007 => {
            "A sequential RNG draw is a function of the RNG cursor at call\n\
             time. Capture one in a spawned closure or an IPC frame and the\n\
             computation now encodes scheduling history — replaying a single\n\
             replica from its Settings no longer reproduces it. Cross the\n\
             boundary with the replica index instead and re-derive the\n\
             stream on the far side (`entropy_for`, `rng_at`, snapshots)."
        }
        RuleId::Dl008 => {
            "An environment variable that feeds a numeric path is an\n\
             experiment knob. If it is not registered in Settings it changes\n\
             results without appearing in the experiment fingerprint, so two\n\
             \"identical\" runs can silently differ. Register the name (and\n\
             list it in detlint.toml) or keep the read off numeric paths."
        }
        RuleId::Dl009 => {
            "A `detlint::allow` whose rule no longer fires on the line it\n\
             covers is stale: it documents a hazard that does not exist and\n\
             will silently mask the next real one introduced nearby. Under\n\
             `--audit` stale allows are findings, not warnings — delete them\n\
             or re-justify them. DL009 itself cannot be suppressed."
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::scan_file;

    /// Scan one extracted example as if it were a source file, with the
    /// registry the examples assume. Goes through [`scan_file`] so valid
    /// suppressions apply — a "good" example may be an audited allow.
    fn scan_example(src: &str) -> Vec<RuleId> {
        let cfg = Config::parse("[rules.DL008]\nregistered = [\"NS_REPLICAS\"]\n").unwrap();
        scan_file("src/example.rs", src, &cfg)
            .findings
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn every_rule_has_a_bad_and_good_example() {
        for rule in RuleId::ALL {
            let ex = explain(rule);
            assert!(ex.bad.is_some(), "{} lacks a bad example", rule.as_str());
            assert!(ex.good.is_some(), "{} lacks a good example", rule.as_str());
            assert!(!ex.rationale.trim().is_empty());
        }
    }

    #[test]
    fn bad_examples_fire_their_rule() {
        for rule in RuleId::ALL {
            // DL009 is an audit over suppressions, not a scan rule; its
            // example is exercised by the dl009 fixture test instead.
            if rule == RuleId::Dl009 {
                continue;
            }
            let bad = explain(rule).bad.unwrap();
            let fired = scan_example(&bad);
            assert!(
                fired.contains(&rule),
                "{} bad example does not fire it: {:?}\n{}",
                rule.as_str(),
                fired,
                bad
            );
        }
    }

    #[test]
    fn good_examples_stay_quiet() {
        for rule in RuleId::ALL {
            if rule == RuleId::Dl009 {
                continue;
            }
            let good = explain(rule).good.unwrap();
            let fired = scan_example(&good);
            assert!(
                !fired.contains(&rule),
                "{} good example fires it\n{}",
                rule.as_str(),
                good
            );
        }
    }

    #[test]
    fn render_mentions_taxonomy_and_both_examples() {
        let text = render(RuleId::Dl006);
        assert!(text.contains("DL006"));
        assert!(text.contains("[IMPL]"));
        assert!(text.contains("Hazard (fires):"));
        assert!(text.contains("Sanctioned pattern (quiet):"));
        assert!(!text.contains("// fires:"), "test markup leaked:\n{text}");
    }
}
