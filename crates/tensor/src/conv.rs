//! 2-D convolution (im2col formulation) with explicit accumulation order.
//!
//! Convolutions are where cuDNN's determinism trade-offs live, so they get
//! first-class treatment here: the forward inner products, and crucially the
//! *weight-gradient reduction across the whole batch* (the reduction the
//! paper singles out as an overlooked source of implementation noise), all
//! flow through the [`Reducer`].
//!
//! Both passes run on the blocked GEMM engine ([`crate::gemm`]) and are
//! bit-identical to the original per-element loops: the engine only
//! reorders *which outputs* are computed when, never the k-dimension
//! combine order inside one output, and all scheduler RNG is pre-drawn in
//! reference order via [`Reducer::plan_dots`]. The `_ws` variants reuse
//! caller-provided [`Workspace`] scratch (im2col columns, packed panels,
//! transposes) across calls; the plain variants allocate privately.

use crate::error::ShapeError;
use crate::gemm::gemm_packed_planned;
use crate::pack::{pack_b_panels, NR};
use crate::reduce::{DotPlan, ReduceOrder, Reducer};
use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::workspace::Workspace;
use serde::{Deserialize, Serialize};

/// Geometry of a 2-D convolution.
///
/// # Example
///
/// ```
/// use nstensor::ConvGeometry;
/// let g = ConvGeometry::new(3, 16, 3, 1, 1, 8, 8);
/// assert_eq!(g.out_h(), 8);
/// assert_eq!(g.patch_len(), 27);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvGeometry {
    /// Input channels.
    pub in_c: usize,
    /// Output channels.
    pub out_c: usize,
    /// Square filter size.
    pub k: usize,
    /// Stride (both axes).
    pub stride: usize,
    /// Zero padding (both axes).
    pub pad: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
}

impl ConvGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero (except `pad`) or the filter does not
    /// fit the padded input.
    pub fn new(
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        in_h: usize,
        in_w: usize,
    ) -> Self {
        assert!(in_c > 0 && out_c > 0 && k > 0 && stride > 0 && in_h > 0 && in_w > 0);
        assert!(
            in_h + 2 * pad >= k && in_w + 2 * pad >= k,
            "filter {k} larger than padded input {}x{}",
            in_h + 2 * pad,
            in_w + 2 * pad
        );
        Self {
            in_c,
            out_c,
            k,
            stride,
            pad,
            in_h,
            in_w,
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Receptive-field (patch) length: `in_c * k * k`.
    pub fn patch_len(&self) -> usize {
        self.in_c * self.k * self.k
    }

    /// Number of output pixels per channel.
    pub fn out_pixels(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Multiply-accumulate count for one forward pass over a batch of `n`.
    pub fn flops(&self, n: usize) -> u64 {
        2 * (n * self.out_c * self.out_pixels() * self.patch_len()) as u64
    }
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient w.r.t. the input, `[N, C, H, W]`.
    pub dx: Tensor,
    /// Gradient w.r.t. the weights, `[out_c, patch_len]`.
    pub dw: Tensor,
    /// Gradient w.r.t. the bias, `[out_c]`.
    pub db: Tensor,
}

/// Lowers one sample into patch-major (`[out_pixels, patch_len]`) layout.
fn im2col(x: &[f32], g: &ConvGeometry, out: &mut [f32]) {
    let (oh, ow, pl) = (g.out_h(), g.out_w(), g.patch_len());
    debug_assert_eq!(out.len(), oh * ow * pl);
    let kk = g.k * g.k;
    for oy in 0..oh {
        for c in 0..g.in_c {
            let chan = &x[c * g.in_h * g.in_w..(c + 1) * g.in_h * g.in_w];
            for ky in 0..g.k {
                let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                if iy < 0 || iy as usize >= g.in_h {
                    for ox in 0..ow {
                        let dst = (oy * ow + ox) * pl + c * kk + ky * g.k;
                        out[dst..dst + g.k].fill(0.0);
                    }
                    continue;
                }
                let src_row = &chan[iy as usize * g.in_w..(iy as usize + 1) * g.in_w];
                for ox in 0..ow {
                    let dst = &mut out[(oy * ow + ox) * pl + c * kk + ky * g.k..][..g.k];
                    let ix0 = (ox * g.stride) as isize - g.pad as isize;
                    if ix0 >= 0 && ix0 as usize + g.k <= g.in_w {
                        // Interior patch row: one contiguous copy.
                        dst.copy_from_slice(&src_row[ix0 as usize..ix0 as usize + g.k]);
                    } else {
                        for (kx, d) in dst.iter_mut().enumerate() {
                            let ix = ix0 + kx as isize;
                            *d = if ix >= 0 && (ix as usize) < g.in_w {
                                src_row[ix as usize]
                            } else {
                                0.0
                            };
                        }
                    }
                }
            }
        }
    }
}

/// Lowers a batch of samples *directly into the GEMM engine's packed
/// panel layout* (see [`crate::pack::pack_b_panels`]): element
/// `[p * pl * NR + kk * NR + j]` is patch position `kk` of global output
/// pixel `p * NR + j`, where global pixels run `(sample, oy, ox)`
/// row-major across the batch. Panel columns past the last pixel are
/// zeroed. Fusing the lowering with packing skips the intermediate
/// `[pixels, patch_len]` buffer and turns the inner loop into contiguous
/// row copies (one per run of output pixels sharing an image row).
///
/// Packing only copies values, so this cannot perturb any accumulation
/// order.
pub(crate) fn im2col_packed(x: &[f32], g: &ConvGeometry, batch: usize, packed: &mut [f32]) {
    let (oh, ow, pl) = (g.out_h(), g.out_w(), g.patch_len());
    let pixels = oh * ow;
    let np = batch * pixels;
    let panels = np.div_ceil(NR);
    let kk2 = g.k * g.k;
    let ihw = g.in_h * g.in_w;
    let sample = g.in_c * ihw;
    debug_assert_eq!(x.len(), batch * sample);
    assert_eq!(packed.len(), panels * pl * NR, "packed buffer size");
    for p in 0..panels {
        let dst_panel = &mut packed[p * pl * NR..(p + 1) * pl * NR];
        let g0 = p * NR;
        let cols = NR.min(np - g0);
        // Zero the pad columns of the last panel (buffers may be dirty).
        if cols < NR {
            for kkp in 0..pl {
                dst_panel[kkp * NR + cols..(kkp + 1) * NR].fill(0.0);
            }
        }
        // Walk runs of pixels sharing one output row: one div/mod per run
        // instead of per element, and contiguous source rows inside.
        let mut j0 = 0;
        while j0 < cols {
            let gidx = g0 + j0;
            let s = gidx / pixels;
            let local = gidx - s * pixels;
            let oy = local / ow;
            let ox0 = local - oy * ow;
            let run = (ow - ox0).min(cols - j0);
            let xs = &x[s * sample..(s + 1) * sample];
            for c in 0..g.in_c {
                let chan = &xs[c * ihw..(c + 1) * ihw];
                for ky in 0..g.k {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    let kbase = c * kk2 + ky * g.k;
                    if iy < 0 || iy as usize >= g.in_h {
                        for kx in 0..g.k {
                            dst_panel[(kbase + kx) * NR + j0..(kbase + kx) * NR + j0 + run]
                                .fill(0.0);
                        }
                        continue;
                    }
                    let row = &chan[iy as usize * g.in_w..(iy as usize + 1) * g.in_w];
                    for kx in 0..g.k {
                        let dst =
                            &mut dst_panel[(kbase + kx) * NR + j0..(kbase + kx) * NR + j0 + run];
                        if g.stride == 1 {
                            // dst[dj] reads input column ix0 + dj; clip the
                            // padding edges, copy the interior in one go.
                            let ix0 = (ox0 + kx) as isize - g.pad as isize;
                            let lo = ((-ix0).max(0) as usize).min(run);
                            let hi = ((g.in_w as isize - ix0).max(0) as usize).min(run);
                            dst[..lo].fill(0.0);
                            if hi > lo {
                                dst[lo..hi].copy_from_slice(
                                    &row[(ix0 + lo as isize) as usize
                                        ..(ix0 + hi as isize) as usize],
                                );
                            }
                            let tail = hi.max(lo);
                            dst[tail..].fill(0.0);
                        } else {
                            for (dj, d) in dst.iter_mut().enumerate() {
                                let ix = ((ox0 + dj) * g.stride + kx) as isize - g.pad as isize;
                                *d = if ix >= 0 && (ix as usize) < g.in_w {
                                    row[ix as usize]
                                } else {
                                    0.0
                                };
                            }
                        }
                    }
                }
            }
            j0 += run;
        }
    }
}

/// Scatters patch-major gradients back into an input-shaped buffer.
fn col2im(dcol: &[f32], g: &ConvGeometry, out: &mut [f32]) {
    let (oh, ow, pl) = (g.out_h(), g.out_w(), g.patch_len());
    let kk = g.k * g.k;
    for oy in 0..oh {
        for ox in 0..ow {
            let row = (oy * ow + ox) * pl;
            for c in 0..g.in_c {
                for ky in 0..g.k {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    for kx in 0..g.k {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        if iy >= 0 && ix >= 0 && (iy as usize) < g.in_h && (ix as usize) < g.in_w {
                            out[c * g.in_h * g.in_w + iy as usize * g.in_w + ix as usize] +=
                                dcol[row + c * kk + ky * g.k + kx];
                        }
                    }
                }
            }
        }
    }
}

/// Forward 2-D convolution.
///
/// `input` is `[N, in_c, in_h, in_w]`, `weights` is `[out_c, patch_len]`
/// (flattened `[out_c, in_c, k, k]`), `bias` is `[out_c]`. Returns
/// `[N, out_c, out_h, out_w]`.
///
/// Allocates private scratch; hot paths should use
/// [`conv2d_forward_ws`].
///
/// # Errors
///
/// Returns [`ShapeError`] if any operand disagrees with `geom`.
pub fn conv2d_forward(
    input: &Tensor,
    weights: &Tensor,
    bias: &Tensor,
    geom: &ConvGeometry,
    red: &mut Reducer,
) -> Result<Tensor, ShapeError> {
    conv2d_forward_ws(input, weights, bias, geom, red, 1, &mut Workspace::new())
}

/// Forward 2-D convolution on the blocked engine, reusing `ws` scratch
/// and running output row bands on up to `threads` threads.
///
/// Bit-identical to [`conv2d_forward`] for every reducer configuration
/// and thread count: per sample, the output `[out_c, pixels]` block is
/// one GEMM whose row-major output order matches the reference
/// channel-major `(o, p)` loop, so [`Reducer::plan_dots`] consumes the
/// scheduler RNG in exactly the reference order.
///
/// # Errors
///
/// Returns [`ShapeError`] if any operand disagrees with `geom`.
pub fn conv2d_forward_ws(
    input: &Tensor,
    weights: &Tensor,
    bias: &Tensor,
    geom: &ConvGeometry,
    red: &mut Reducer,
    threads: usize,
    ws: &mut Workspace,
) -> Result<Tensor, ShapeError> {
    validate(input, weights, bias, geom)?;
    let n = input.shape().dim(0);
    let (oh, ow, oc, pl) = (geom.out_h(), geom.out_w(), geom.out_c, geom.patch_len());
    let pixels = oh * ow;
    let mut out = Tensor::zeros(Shape::of(&[n, oc, oh, ow]));
    let xin = input.as_slice();
    let wv = weights.as_slice();
    let bv = bias.as_slice();
    let ov = out.as_mut_slice();
    let sample = geom.in_c * geom.in_h * geom.in_w;
    if red.order() == ReduceOrder::Permuted {
        // The reference draws each sample's permutation specs before the
        // next sample's, so Permuted keeps one plan (and one GEMM) per
        // sample.
        let mut packed = ws.take_scratch(pixels.div_ceil(NR) * pl * NR);
        for s in 0..n {
            im2col_packed(&xin[s * sample..(s + 1) * sample], geom, 1, &mut packed);
            let plan = red.plan_dots(oc * pixels, pl);
            let oblock = &mut ov[s * oc * pixels..(s + 1) * oc * pixels];
            gemm_packed_planned(wv, &packed, oc, pixels, pl, &plan, threads, oblock);
            // Bias after the dot: `dot + b` exactly as the reference
            // computes.
            for o in 0..oc {
                let b = bv[o];
                for v in &mut oblock[o * pixels..(o + 1) * pixels] {
                    *v += b;
                }
            }
        }
        ws.recycle(packed);
    } else {
        // Sequential and FixedTree dots never consult the scheduler RNG,
        // so every per-sample GEMM can fuse into one batch-wide GEMM over
        // n·pixels output columns — each output's chain is unchanged, the
        // outputs are merely computed in a different order.
        let np = n * pixels;
        let mut packed = ws.take_scratch(np.div_ceil(NR) * pl * NR);
        im2col_packed(xin, geom, n, &mut packed);
        let plan = red.plan_dots(oc * np, pl);
        let mut out_r = ws.take_scratch(oc * np);
        gemm_packed_planned(wv, &packed, oc, np, pl, &plan, threads, &mut out_r);
        // Scatter [oc, n·pixels] back to [n, oc, pixels], adding the bias
        // after the dot exactly as the reference computes.
        for s in 0..n {
            for o in 0..oc {
                let b = bv[o];
                let src = &out_r[o * np + s * pixels..o * np + (s + 1) * pixels];
                let dst = &mut ov[(s * oc + o) * pixels..(s * oc + o + 1) * pixels];
                for (d, &v) in dst.iter_mut().zip(src) {
                    *d = v + b;
                }
            }
        }
        ws.recycle(out_r);
        ws.recycle(packed);
    }
    Ok(out)
}

/// Backward 2-D convolution: gradients w.r.t. input, weights and bias.
///
/// The weight gradient is computed as a *single* matmul whose inner
/// dimension spans every (sample, pixel) pair in the batch — the exact
/// cross-data-point reduction whose accumulation order the paper identifies
/// as a latent implementation-noise source.
///
/// Allocates private scratch; hot paths should use
/// [`conv2d_backward_ws`].
///
/// # Errors
///
/// Returns [`ShapeError`] if any operand disagrees with `geom`.
pub fn conv2d_backward(
    input: &Tensor,
    weights: &Tensor,
    dy: &Tensor,
    geom: &ConvGeometry,
    red: &mut Reducer,
) -> Result<Conv2dGrads, ShapeError> {
    conv2d_backward_ws(input, weights, dy, geom, red, 1, &mut Workspace::new())
}

/// Backward 2-D convolution on the blocked engine. See
/// [`conv2d_backward`] for the math and [`conv2d_forward_ws`] for the
/// engine/workspace contract.
///
/// The reducer call order of the reference path is preserved exactly:
/// first the dW matmul's `out_c × patch_len` planned dots over the
/// all-batch inner dimension, then `out_c` bias-gradient sums. The input
/// gradient never touched the reducer in the reference path (it uses a
/// fixed `channel % lanes` assignment combined left-to-right), so it runs
/// under a stateless [`DotPlan::fixed_lanes`] plan.
///
/// # Errors
///
/// Returns [`ShapeError`] if any operand disagrees with `geom`.
pub fn conv2d_backward_ws(
    input: &Tensor,
    weights: &Tensor,
    dy: &Tensor,
    geom: &ConvGeometry,
    red: &mut Reducer,
    threads: usize,
    ws: &mut Workspace,
) -> Result<Conv2dGrads, ShapeError> {
    let bias = Tensor::zeros(Shape::of(&[geom.out_c]));
    validate(input, weights, &bias, geom)?;
    let n = input.shape().dim(0);
    let (oh, ow, oc, pl) = (geom.out_h(), geom.out_w(), geom.out_c, geom.patch_len());
    let pixels = oh * ow;
    if dy.shape() != Shape::of(&[n, oc, oh, ow]) {
        return Err(ShapeError::new(
            "conv2d_backward",
            format!("dy shape {} != [{n}, {oc}, {oh}, {ow}]", dy.shape()),
        ));
    }

    let xin = input.as_slice();
    let dyv = dy.as_slice();
    let wv = weights.as_slice();
    let sample = geom.in_c * geom.in_h * geom.in_w;
    let np = n * pixels;

    // --- all-batch im2col: [N*pixels, patch_len] ---
    let mut col_all = ws.take_scratch(np * pl);
    for s in 0..n {
        im2col(
            &xin[s * sample..(s + 1) * sample],
            geom,
            &mut col_all[s * pixels * pl..(s + 1) * pixels * pl],
        );
    }

    // --- dW = dYr [oc, N*pixels] × col_all [N*pixels, pl] ---
    // Rearrange dy from [N, oc, pixels] to [oc, N*pixels].
    let mut dy_r = ws.take_scratch(oc * np);
    for s in 0..n {
        for o in 0..oc {
            let src = &dyv[(s * oc + o) * pixels..(s * oc + o + 1) * pixels];
            dy_r[o * np + s * pixels..o * np + (s + 1) * pixels].copy_from_slice(src);
        }
    }
    let mut col_packed = ws.take_scratch(pl.div_ceil(NR) * np * NR);
    pack_b_panels(&col_all, np, pl, &mut col_packed);
    let mut dw = Tensor::zeros(Shape::of(&[oc, pl]));
    let plan = red.plan_dots(oc * pl, np);
    gemm_packed_planned(
        &dy_r,
        &col_packed,
        oc,
        pl,
        np,
        &plan,
        threads,
        dw.as_mut_slice(),
    );
    ws.recycle(col_all);
    ws.recycle(col_packed);

    // --- db[o] = Σ_{s,p} dy[s,o,p] (cross-batch reduction) ---
    let mut db = Tensor::zeros(Shape::of(&[oc]));
    {
        let dbv = db.as_mut_slice();
        for o in 0..oc {
            dbv[o] = red.sum(&dy_r[o * np..(o + 1) * np]);
        }
    }
    ws.recycle(dy_r);

    // --- dX: per-sample dcolT = dY_sᵀ [pixels, oc] × W [oc, pl], then col2im ---
    // The reference combines channels with a fixed `o % lc` lane assignment
    // and a left-to-right lane sum, never consulting the reducer's RNG; a
    // stateless fixed-lane plan reproduces that bit-for-bit.
    let lc = red.lanes().min(oc.max(1));
    let dx_plan = DotPlan::fixed_lanes(lc);
    let mut dx = Tensor::zeros(input.shape());
    let dxv = dx.as_mut_slice();
    // The plan is stateless (fixed lane assignment, no per-output draws),
    // so all samples fuse into one [n·pixels, patch_len] GEMM; `W` is
    // already in the engine's `[k, n]` layout and packs transpose-free.
    let mut dyt_all = ws.take_scratch(np * oc);
    for s in 0..n {
        for o in 0..oc {
            let src = &dyv[(s * oc + o) * pixels..(s * oc + o + 1) * pixels];
            for (p, &v) in src.iter().enumerate() {
                dyt_all[(s * pixels + p) * oc + o] = v;
            }
        }
    }
    let mut w_packed = ws.take_scratch(pl.div_ceil(NR) * oc * NR);
    pack_b_panels(wv, oc, pl, &mut w_packed);
    let mut dcol_all = ws.take_scratch(np * pl);
    gemm_packed_planned(
        &dyt_all,
        &w_packed,
        np,
        pl,
        oc,
        &dx_plan,
        threads,
        &mut dcol_all,
    );
    for s in 0..n {
        col2im(
            &dcol_all[s * pixels * pl..(s + 1) * pixels * pl],
            geom,
            &mut dxv[s * sample..(s + 1) * sample],
        );
    }
    ws.recycle(dyt_all);
    ws.recycle(w_packed);
    ws.recycle(dcol_all);

    Ok(Conv2dGrads { dx, dw, db })
}

fn validate(
    input: &Tensor,
    weights: &Tensor,
    bias: &Tensor,
    g: &ConvGeometry,
) -> Result<(), ShapeError> {
    if input.shape().rank() != 4
        || input.shape().dim(1) != g.in_c
        || input.shape().dim(2) != g.in_h
        || input.shape().dim(3) != g.in_w
    {
        return Err(ShapeError::new(
            "conv2d",
            format!(
                "input {} incompatible with geometry (C={}, H={}, W={})",
                input.shape(),
                g.in_c,
                g.in_h,
                g.in_w
            ),
        ));
    }
    if weights.shape() != Shape::of(&[g.out_c, g.patch_len()]) {
        return Err(ShapeError::new(
            "conv2d",
            format!(
                "weights {} != [{}, {}]",
                weights.shape(),
                g.out_c,
                g.patch_len()
            ),
        ));
    }
    if bias.shape() != Shape::of(&[g.out_c]) {
        return Err(ShapeError::new(
            "conv2d",
            format!("bias {} != [{}]", bias.shape(), g.out_c),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::ReduceOrder;

    /// Direct (quadruple-loop) reference convolution in f64.
    fn reference_conv(x: &Tensor, w: &Tensor, b: &Tensor, g: &ConvGeometry) -> Vec<f64> {
        let n = x.shape().dim(0);
        let (oh, ow) = (g.out_h(), g.out_w());
        let mut out = vec![0f64; n * g.out_c * oh * ow];
        for s in 0..n {
            for o in 0..g.out_c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = b.as_slice()[o] as f64;
                        for c in 0..g.in_c {
                            for ky in 0..g.k {
                                for kx in 0..g.k {
                                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                                    let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                                    if iy >= 0
                                        && ix >= 0
                                        && (iy as usize) < g.in_h
                                        && (ix as usize) < g.in_w
                                    {
                                        let xv = x.get4(s, c, iy as usize, ix as usize) as f64;
                                        let wv = w.as_slice()
                                            [o * g.patch_len() + c * g.k * g.k + ky * g.k + kx]
                                            as f64;
                                        acc += xv * wv;
                                    }
                                }
                            }
                        }
                        out[((s * g.out_c + o) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        out
    }

    fn setup(g: &ConvGeometry, n: usize) -> (Tensor, Tensor, Tensor) {
        let mut seed = 12345u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let x = Tensor::from_vec(
            Shape::of(&[n, g.in_c, g.in_h, g.in_w]),
            (0..n * g.in_c * g.in_h * g.in_w).map(|_| next()).collect(),
        )
        .unwrap();
        let w = Tensor::from_vec(
            Shape::of(&[g.out_c, g.patch_len()]),
            (0..g.out_c * g.patch_len()).map(|_| next()).collect(),
        )
        .unwrap();
        let b = Tensor::from_vec(
            Shape::of(&[g.out_c]),
            (0..g.out_c).map(|_| next()).collect(),
        )
        .unwrap();
        (x, w, b)
    }

    #[test]
    fn forward_matches_reference() {
        for (k, stride, pad) in [(3, 1, 1), (1, 1, 0), (3, 2, 1), (5, 1, 2)] {
            let g = ConvGeometry::new(2, 3, k, stride, pad, 6, 6);
            let (x, w, b) = setup(&g, 2);
            let y = conv2d_forward(&x, &w, &b, &g, &mut Reducer::sequential()).unwrap();
            let r = reference_conv(&x, &w, &b, &g);
            for (a, e) in y.as_slice().iter().zip(&r) {
                assert!((*a as f64 - e).abs() < 1e-4, "k={k}: {a} vs {e}");
            }
        }
    }

    #[test]
    // Bit-identity across workspaces/threads is the property under test.
    #[allow(clippy::float_cmp)]
    fn ws_variants_bit_identical_across_threads_and_reuse() {
        let g = ConvGeometry::new(2, 5, 3, 1, 1, 6, 6);
        let (x, w, b) = setup(&g, 3);
        for order in [
            ReduceOrder::Sequential,
            ReduceOrder::FixedTree,
            ReduceOrder::Permuted,
        ] {
            let base = Reducer::new(order, 40, 9).with_amplification(1e3);
            let y0 = conv2d_forward(&x, &w, &b, &g, &mut base.clone()).unwrap();
            let mut dy = y0.clone();
            dy.scale(0.5);
            let g0 = conv2d_backward(&x, &w, &dy, &g, &mut base.clone()).unwrap();
            let mut ws = Workspace::new();
            for threads in [1, 3] {
                // Reuse the same workspace across iterations: recycled
                // (dirty) buffers must not leak into results.
                let y =
                    conv2d_forward_ws(&x, &w, &b, &g, &mut base.clone(), threads, &mut ws).unwrap();
                assert_eq!(y.as_slice(), y0.as_slice(), "{order:?} fwd t={threads}");
                let gr = conv2d_backward_ws(&x, &w, &dy, &g, &mut base.clone(), threads, &mut ws)
                    .unwrap();
                assert_eq!(gr.dx.as_slice(), g0.dx.as_slice(), "{order:?} dx");
                assert_eq!(gr.dw.as_slice(), g0.dw.as_slice(), "{order:?} dw");
                assert_eq!(gr.db.as_slice(), g0.db.as_slice(), "{order:?} db");
            }
        }
    }

    #[test]
    fn geometry_dims() {
        let g = ConvGeometry::new(3, 8, 3, 2, 1, 8, 8);
        assert_eq!(g.out_h(), 4);
        assert_eq!(g.out_w(), 4);
        assert_eq!(g.out_pixels(), 16);
        assert!(g.flops(1) > 0);
    }

    #[test]
    #[should_panic(expected = "larger than padded input")]
    fn oversized_filter_panics() {
        ConvGeometry::new(1, 1, 9, 1, 0, 4, 4);
    }

    #[test]
    fn backward_gradients_match_finite_difference() {
        let g = ConvGeometry::new(2, 2, 3, 1, 1, 4, 4);
        let (x, w, b) = setup(&g, 2);
        let n = 2;
        // Scalar loss L = Σ y², so dL/dy = 2y.
        let y = conv2d_forward(&x, &w, &b, &g, &mut Reducer::sequential()).unwrap();
        let mut dy = y.clone();
        dy.scale(2.0);
        let grads = conv2d_backward(&x, &w, &dy, &g, &mut Reducer::sequential()).unwrap();

        let loss = |x: &Tensor, w: &Tensor, b: &Tensor| -> f64 {
            let y = conv2d_forward(x, w, b, &g, &mut Reducer::sequential()).unwrap();
            y.as_slice().iter().map(|&v| (v as f64) * (v as f64)).sum()
        };
        let eps = 1e-2f32;
        // Check a scattering of weight coordinates.
        for idx in [0usize, 3, 7, 11, 17] {
            let mut wp = w.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[idx] -= eps;
            let fd = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps as f64);
            let an = grads.dw.as_slice()[idx] as f64;
            assert!(
                (fd - an).abs() < 0.05 * fd.abs().max(1.0),
                "dw[{idx}]: fd {fd} vs analytic {an}"
            );
        }
        // And input coordinates.
        for idx in [0usize, 5, 13, 30] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fd = (loss(&xp, &w, &b) - loss(&xm, &w, &b)) / (2.0 * eps as f64);
            let an = grads.dx.as_slice()[idx] as f64;
            assert!(
                (fd - an).abs() < 0.05 * fd.abs().max(1.0),
                "dx[{idx}]: fd {fd} vs analytic {an}"
            );
        }
        // Bias gradient = Σ dy per channel.
        let pixels = g.out_pixels();
        for o in 0..g.out_c {
            let mut s = 0f64;
            for smp in 0..n {
                for p in 0..pixels {
                    s += dy.as_slice()[(smp * g.out_c + o) * pixels + p] as f64;
                }
            }
            let an = grads.db.as_slice()[o] as f64;
            assert!((s - an).abs() < 1e-3 * s.abs().max(1.0), "db[{o}]");
        }
    }

    #[test]
    fn shape_validation_errors() {
        let g = ConvGeometry::new(2, 3, 3, 1, 1, 4, 4);
        let (x, w, b) = setup(&g, 1);
        let bad_w = Tensor::zeros(Shape::of(&[3, 10]));
        assert!(conv2d_forward(&x, &bad_w, &b, &g, &mut Reducer::sequential()).is_err());
        let bad_b = Tensor::zeros(Shape::of(&[4]));
        assert!(conv2d_forward(&x, &w, &bad_b, &g, &mut Reducer::sequential()).is_err());
        let bad_x = Tensor::zeros(Shape::of(&[1, 1, 4, 4]));
        assert!(conv2d_forward(&bad_x, &w, &b, &g, &mut Reducer::sequential()).is_err());
        let bad_dy = Tensor::zeros(Shape::of(&[1, 3, 9, 9]));
        assert!(conv2d_backward(&x, &w, &bad_dy, &g, &mut Reducer::sequential()).is_err());
    }
}
