//! DL009 fixture: stale suppressions. Under `--audit`, an allow whose
//! rule no longer fires on the covered line is itself a finding — stale
//! allows rot into false documentation of hazards that do not exist.

use std::time::Instant;

// <explain:DL009:bad>
pub fn no_hazard_here(x: u64) -> u64 {
    x + 1 // detlint::allow(DL003, reason = "timing was removed in a refactor") // fires: stale under --audit
}
// </explain:DL009:bad>

// <explain:DL009:good>
pub fn real_hazard() -> f64 {
    let t0 = Instant::now(); // detlint::allow(DL003, reason = "diagnostic only, never serialized")
    t0.elapsed().as_secs_f64()
}
// </explain:DL009:good>
