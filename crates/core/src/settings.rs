//! Fleet-level experiment settings.

use detrand::SplitMix64;
use hwsim::ChaosConfig;
use serde::{Deserialize, Serialize};

/// Settings shared by every experiment in a reproduction run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSettings {
    /// Independently trained replicas per variant (the paper uses 10; 5
    /// for ImageNet).
    pub replicas: u32,
    /// Base algorithmic seed.
    pub base_seed: u64,
    /// Salt for the per-replica scheduler entropy. Runs are *replayable
    /// nondeterminism*: each replica's schedule is pinned so results can be
    /// attributed and reproduced; vary the salt to draw a fresh fleet
    /// (set it from OS entropy for genuinely unrepeatable runs).
    pub entropy_salt: u64,
    /// Amplified-noise tier in ulps (see
    /// [`nstensor::Reducer::with_amplification`]): models the longer
    /// accumulation chains of full-scale workloads so that scaled-down
    /// trainings reach the divergence regime within their epoch budget.
    /// Set to 0 for faithful order-only noise.
    pub amp_ulps: f32,
    /// Multiplier on every task's epoch budget (quick-mode knob).
    pub epochs_scale: f32,
    /// Host threads the blocked GEMM engine may use *within* one replica's
    /// tensor ops. Purely a wall-clock knob — the engine is bitwise
    /// invariant in the thread count — and orthogonal to the replica-level
    /// parallelism of `run_variant`, so the default stays 1 to leave the
    /// cores to the embarrassingly parallel replica fleet.
    pub exec_threads: usize,
    /// How many times the supervisor re-runs a failed replica before
    /// recording it as [`crate::runner::ReplicaStatus::Failed`]. Retries
    /// re-derive every seed from the replica index, so a retried replica
    /// is bit-identical to one that never failed.
    pub retry_budget: u32,
    /// Chaos-injection configuration for `hwsim` (fault schedules are
    /// derived per replica and attempt). `None` — the default — is the
    /// zero-cost path: no fault bookkeeping anywhere in the hot loop.
    pub chaos: Option<ChaosConfig>,
    /// Fleet-runner watchdog window in milliseconds: a worker process
    /// that emits no frame (heartbeat, result, or fault) for this long is
    /// killed and its attempt classified as timed out. Also the base of
    /// the per-replica wall-clock deadline. Supervision-only: it shapes
    /// *when* a worker is killed, never *what* a replica computes, so it
    /// stays out of the [`crate::resume::CheckpointStore`] fingerprint.
    pub worker_timeout_ms: u64,
    /// Fleet workers emit a heartbeat frame every this many optimizer
    /// steps (via the trainer progress hook). Supervision-only, like
    /// `worker_timeout_ms`.
    pub heartbeat_every_steps: u32,
}

impl Default for ExperimentSettings {
    fn default() -> Self {
        Self {
            replicas: 4,
            base_seed: 42,
            entropy_salt: 0x5EED_0015_EF00_D5ED,
            amp_ulps: 512.0,
            epochs_scale: 1.0,
            exec_threads: 1,
            retry_budget: 2,
            chaos: None,
            worker_timeout_ms: 120_000,
            heartbeat_every_steps: 4,
        }
    }
}

/// A rejected [`ExperimentSettings`] (or task) configuration.
///
/// Every entry point validates up front so a bad knob surfaces as one
/// typed, printable error instead of silent nonsense (0 replicas → empty
/// statistics) or a panic deep inside a training loop.
#[derive(Debug, Clone, PartialEq)]
pub enum SettingsError {
    /// `replicas == 0`: there is no fleet to run.
    ZeroReplicas,
    /// A task's `TrainConfig::batch_size` is 0.
    ZeroBatchSize {
        /// Name of the offending task.
        task: String,
    },
    /// `epochs_scale` is non-finite or not strictly positive, so every
    /// epoch budget would collapse or go NaN.
    BadEpochsScale {
        /// The offending value.
        value: f32,
    },
    /// `amp_ulps` is negative or non-finite.
    BadAmpUlps {
        /// The offending value.
        value: f32,
    },
    /// `retry_budget == u32::MAX`: the supervisor runs `retry_budget + 1`
    /// attempts, which would overflow.
    RetryBudgetOverflow,
    /// `heartbeat_every_steps == 0`: a fleet worker would never emit a
    /// heartbeat, so the watchdog would kill every healthy worker.
    ZeroHeartbeatInterval,
    /// The heartbeat interval cannot fit inside the watchdog window:
    /// either `worker_timeout_ms == 0`, or `heartbeat_every_steps` (at
    /// the optimistic floor of one step per millisecond) is at or above
    /// `worker_timeout_ms`, so even a fast worker could never prove
    /// liveness in time.
    HeartbeatExceedsTimeout {
        /// Configured heartbeat interval in steps.
        heartbeat_every_steps: u32,
        /// Configured watchdog window in milliseconds.
        worker_timeout_ms: u64,
    },
}

impl std::fmt::Display for SettingsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SettingsError::ZeroReplicas => write!(f, "replicas must be >= 1 (NS_REPLICAS)"),
            SettingsError::ZeroBatchSize { task } => {
                write!(f, "task {task:?} has batch_size 0")
            }
            SettingsError::BadEpochsScale { value } => {
                write!(
                    f,
                    "epochs_scale must be finite and > 0, got {value} (NS_EPOCHS_SCALE)"
                )
            }
            SettingsError::BadAmpUlps { value } => {
                write!(
                    f,
                    "amp_ulps must be finite and >= 0, got {value} (NS_AMP_ULPS)"
                )
            }
            SettingsError::RetryBudgetOverflow => {
                write!(
                    f,
                    "retry_budget {} leaves no room for the initial attempt (NS_RETRIES)",
                    u32::MAX
                )
            }
            SettingsError::ZeroHeartbeatInterval => {
                write!(
                    f,
                    "heartbeat interval must be >= 1 step (NS_HEARTBEAT_EVERY)"
                )
            }
            SettingsError::HeartbeatExceedsTimeout {
                heartbeat_every_steps,
                worker_timeout_ms,
            } => write!(
                f,
                "heartbeat interval ({heartbeat_every_steps} steps) cannot fit in the \
                 watchdog window ({worker_timeout_ms} ms); raise NS_WORKER_TIMEOUT or \
                 lower NS_HEARTBEAT_EVERY"
            ),
        }
    }
}

impl std::error::Error for SettingsError {}

impl ExperimentSettings {
    /// Reads overrides from the environment:
    /// `NS_REPLICAS`, `NS_SEED`, `NS_AMP_ULPS`, `NS_EPOCHS_SCALE`,
    /// `NS_EXEC_THREADS`, `NS_QUICK` (=1 → 3 replicas, half epochs),
    /// `NS_RETRIES` (supervisor retry budget), `NS_CHAOS`
    /// (chaos-injection schedule, see [`hwsim::ChaosConfig::parse`]),
    /// `NS_WORKER_TIMEOUT` (fleet watchdog window, in seconds), and
    /// `NS_HEARTBEAT_EVERY` (fleet heartbeat interval, in steps).
    pub fn from_env() -> Self {
        let mut s = Self::default();
        if let Ok(v) = std::env::var("NS_REPLICAS") {
            if let Ok(n) = v.parse() {
                s.replicas = n;
            }
        }
        if let Ok(v) = std::env::var("NS_SEED") {
            if let Ok(n) = v.parse() {
                s.base_seed = n;
            }
        }
        if let Ok(v) = std::env::var("NS_AMP_ULPS") {
            if let Ok(n) = v.parse() {
                s.amp_ulps = n;
            }
        }
        if let Ok(v) = std::env::var("NS_EPOCHS_SCALE") {
            if let Ok(n) = v.parse() {
                s.epochs_scale = n;
            }
        }
        if let Ok(v) = std::env::var("NS_EXEC_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                s.exec_threads = n.max(1);
            }
        }
        if let Ok(v) = std::env::var("NS_RETRIES") {
            if let Ok(n) = v.parse() {
                s.retry_budget = n;
            }
        }
        if let Some(cfg) = ChaosConfig::from_env() {
            s.chaos = Some(cfg);
        }
        if let Ok(v) = std::env::var("NS_WORKER_TIMEOUT") {
            if let Ok(secs) = v.parse::<u64>() {
                s.worker_timeout_ms = secs.saturating_mul(1000);
            }
        }
        if let Ok(v) = std::env::var("NS_HEARTBEAT_EVERY") {
            if let Ok(n) = v.parse() {
                s.heartbeat_every_steps = n;
            }
        }
        if std::env::var("NS_QUICK").map(|v| v == "1").unwrap_or(false) {
            s.replicas = s.replicas.min(3);
            s.epochs_scale *= 0.5;
        }
        s
    }

    /// Checks the settings for configurations that cannot run: zero
    /// replicas, a collapsed epoch scale, a negative amplification tier,
    /// a retry budget with no room for the initial attempt, and fleet
    /// heartbeat/timeout knobs that can never prove worker liveness.
    ///
    /// Called at every entry point (`run_variant`,
    /// `run_variant_resumable`, fleet dispatch, and `repro` argument
    /// parsing); task-dependent checks live in
    /// [`ExperimentSettings::validate_for`].
    pub fn validate(&self) -> Result<(), SettingsError> {
        if self.replicas == 0 {
            return Err(SettingsError::ZeroReplicas);
        }
        if !self.epochs_scale.is_finite() || self.epochs_scale <= 0.0 {
            return Err(SettingsError::BadEpochsScale {
                value: self.epochs_scale,
            });
        }
        if !self.amp_ulps.is_finite() || self.amp_ulps < 0.0 {
            return Err(SettingsError::BadAmpUlps {
                value: self.amp_ulps,
            });
        }
        if self.retry_budget == u32::MAX {
            return Err(SettingsError::RetryBudgetOverflow);
        }
        if self.heartbeat_every_steps == 0 {
            return Err(SettingsError::ZeroHeartbeatInterval);
        }
        // One step per millisecond is an optimistic floor for these
        // workloads, so an interval of K steps needs a window comfortably
        // above K ms; at or below it, even a fast healthy worker cannot
        // heartbeat in time and the watchdog kills the whole fleet.
        if self.worker_timeout_ms <= self.heartbeat_every_steps as u64 {
            return Err(SettingsError::HeartbeatExceedsTimeout {
                heartbeat_every_steps: self.heartbeat_every_steps,
                worker_timeout_ms: self.worker_timeout_ms,
            });
        }
        Ok(())
    }

    /// [`ExperimentSettings::validate`] plus the task-dependent checks
    /// for one task spec (currently: a zero batch size, which the trainer
    /// would otherwise reject with a deep panic).
    pub fn validate_for(&self, task: &crate::task::TaskSpec) -> Result<(), SettingsError> {
        self.validate()?;
        if task.train.batch_size == 0 {
            return Err(SettingsError::ZeroBatchSize {
                task: task.name.clone(),
            });
        }
        Ok(())
    }

    /// The scheduler-entropy value for a replica.
    pub fn entropy_for(&self, replica: u32) -> u64 {
        SplitMix64::new(self.entropy_salt ^ ((replica as u64) << 32)).next_u64()
    }

    /// Scales an epoch budget by `epochs_scale` (minimum 1).
    pub fn scale_epochs(&self, epochs: u32) -> u32 {
        ((epochs as f32 * self.epochs_scale).round() as u32).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let s = ExperimentSettings::default();
        assert!(s.replicas >= 2);
        assert!(s.amp_ulps >= 0.0);
        assert_eq!(s.scale_epochs(10), 10);
    }

    #[test]
    fn entropy_differs_per_replica_but_is_stable() {
        let s = ExperimentSettings::default();
        assert_ne!(s.entropy_for(0), s.entropy_for(1));
        assert_eq!(s.entropy_for(3), s.entropy_for(3));
    }

    #[test]
    fn scaling_clamps_to_one() {
        let s = ExperimentSettings {
            epochs_scale: 0.01,
            ..ExperimentSettings::default()
        };
        assert_eq!(s.scale_epochs(10), 1);
    }

    #[test]
    fn default_settings_validate() {
        ExperimentSettings::default().validate().unwrap();
    }

    #[test]
    fn validate_rejects_each_bad_knob() {
        let ok = ExperimentSettings::default();
        let cases = [
            (
                ExperimentSettings { replicas: 0, ..ok },
                SettingsError::ZeroReplicas,
            ),
            (
                ExperimentSettings {
                    epochs_scale: 0.0,
                    ..ok
                },
                SettingsError::BadEpochsScale { value: 0.0 },
            ),
            (
                ExperimentSettings {
                    amp_ulps: -1.0,
                    ..ok
                },
                SettingsError::BadAmpUlps { value: -1.0 },
            ),
            (
                ExperimentSettings {
                    retry_budget: u32::MAX,
                    ..ok
                },
                SettingsError::RetryBudgetOverflow,
            ),
            (
                ExperimentSettings {
                    heartbeat_every_steps: 0,
                    ..ok
                },
                SettingsError::ZeroHeartbeatInterval,
            ),
            (
                ExperimentSettings {
                    worker_timeout_ms: 0,
                    ..ok
                },
                SettingsError::HeartbeatExceedsTimeout {
                    heartbeat_every_steps: ok.heartbeat_every_steps,
                    worker_timeout_ms: 0,
                },
            ),
        ];
        for (bad, want) in cases {
            assert_eq!(bad.validate().unwrap_err(), want);
            // Errors must render (they reach end users via repro stderr).
            assert!(!want.to_string().is_empty());
        }
        assert!(ExperimentSettings {
            epochs_scale: f32::NAN,
            ..ok
        }
        .validate()
        .is_err());
    }

    #[test]
    fn validate_for_rejects_zero_batch_size() {
        let mut task = crate::task::TaskSpec::small_cnn_cifar10();
        task.train.batch_size = 0;
        let err = ExperimentSettings::default()
            .validate_for(&task)
            .unwrap_err();
        assert!(matches!(err, SettingsError::ZeroBatchSize { .. }));
    }
}
