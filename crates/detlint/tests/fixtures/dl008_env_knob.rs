//! DL008 fixture: `std::env::var` feeding a numeric path without being
//! registered in Settings. Registered names (`NS_REPLICAS` here, via the
//! test's config) are the sanctioned pattern: every knob that can change
//! results must appear in the experiment fingerprint.

// <explain:DL008:bad>
pub fn sneaky_scale() -> f64 {
    let raw = std::env::var("NS_SNEAKY_SCALE").unwrap_or_default();
    raw.parse::<f64>().unwrap_or(1.0) // fires: unregistered knob parsed into a float
}
// </explain:DL008:bad>

pub fn inline_knob(s: &mut Settings) {
    if let Ok(v) = std::env::var("NS_HIDDEN_GAIN") {
        s.gain = v.parse::<f64>().unwrap_or(1.0); // fires: unregistered knob reaches a numeric field
    }
}

// --- negative: registered knobs are fingerprinted ---------------------

// <explain:DL008:good>
pub fn registered_knob() -> usize {
    let raw = std::env::var("NS_REPLICAS").unwrap_or_default();
    raw.parse::<usize>().unwrap_or(4)
}
// </explain:DL008:good>

// --- negative: non-numeric reads cannot move results ------------------

pub fn label_knob() -> String {
    std::env::var("NS_RUN_LABEL").unwrap_or_default()
}
