//! The determinism cost experiments: Figures 7 and 8.

use crate::report::render_table;
use hwsim::{profile_workload, Device, ExecutionMode, KernelProfile};
use nnet::arch::{self, ArchDescriptor};
use serde::{Deserialize, Serialize};

/// One overhead measurement: deterministic relative to default GPU time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadPoint {
    /// Workload name (network, or `MediumCNN k=N`).
    pub workload: String,
    /// Device name.
    pub device: String,
    /// Simulated GPU time of default (nondeterministic) training, seconds.
    pub default_time_s: f64,
    /// Simulated GPU time of deterministic training, seconds.
    pub deterministic_time_s: f64,
    /// `100 × deterministic / default` (the paper's "relative GPU time").
    pub overhead_pct: f64,
}

fn measure(desc: &ArchDescriptor, device: &Device, steps: u64) -> OverheadPoint {
    let nd = profile_workload(&desc.ops, device, ExecutionMode::Default, steps);
    let det = profile_workload(&desc.ops, device, ExecutionMode::Deterministic, steps);
    OverheadPoint {
        workload: desc.name.to_string(),
        device: device.name().to_string(),
        default_time_s: nd.total_time_s(),
        deterministic_time_s: det.total_time_s(),
        overhead_pct: 100.0 * det.total_time_s() / nd.total_time_s(),
    }
}

/// Figure 8 (left): deterministic overhead of the ten profiled networks on
/// P100, V100 and T4 (ImageNet shapes, batch 64, as in the paper).
pub fn fig8a(batch: usize) -> Vec<OverheadPoint> {
    let mut out = Vec::new();
    for desc in arch::profiled_networks(batch) {
        for device in Device::overhead_gpus() {
            out.push(measure(&desc, &device, 1));
        }
    }
    out
}

/// Figure 8 (right): deterministic overhead of the six-layer medium CNN
/// as its filter size sweeps over {1, 3, 5, 7}.
pub fn fig8b(batch: usize) -> Vec<OverheadPoint> {
    let mut out = Vec::new();
    for k in [1usize, 3, 5, 7] {
        let mut desc = arch::medium_cnn(k, batch);
        desc.name = "MediumCNN";
        let named = ArchDescriptor {
            name: desc.name,
            ops: desc.ops,
        };
        for device in Device::overhead_gpus() {
            let mut p = measure(&named, &device, 1);
            p.workload = format!("MediumCNN k={k}");
            out.push(p);
        }
    }
    out
}

/// Figure 7: the top-20 kernel cumulative-runtime profiles of 100 training
/// steps of ResNet-50 on V100, default vs deterministic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7 {
    /// Profile under default execution.
    pub default_profile: KernelProfile,
    /// Profile under deterministic execution.
    pub deterministic_profile: KernelProfile,
}

/// Runs the Figure-7 profiling experiment.
pub fn fig7(steps: u64) -> Fig7 {
    let desc = arch::resnet50(64);
    let device = Device::v100();
    Fig7 {
        default_profile: profile_workload(&desc.ops, &device, ExecutionMode::Default, steps),
        deterministic_profile: profile_workload(
            &desc.ops,
            &device,
            ExecutionMode::Deterministic,
            steps,
        ),
    }
}

/// Renders a Figure-8-style overhead table.
pub fn render_overheads(title: &str, points: &[OverheadPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.workload.clone(),
                p.device.clone(),
                format!("{:.1}%", p.overhead_pct),
                format!("{:.3}s", p.default_time_s),
                format!("{:.3}s", p.deterministic_time_s),
            ]
        })
        .collect();
    render_table(
        title,
        &[
            "Workload",
            "GPU",
            "Relative time",
            "Default",
            "Deterministic",
        ],
        &rows,
    )
}

/// Renders the Figure-7 top-20 kernel comparison.
pub fn render_fig7(fig: &Fig7) -> String {
    let mut out = String::new();
    for (label, profile) in [
        ("Default mode", &fig.default_profile),
        ("TF-deterministic mode", &fig.deterministic_profile),
    ] {
        let rows: Vec<Vec<String>> = profile
            .top_k(20)
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.invocations.to_string(),
                    format!("{:.4}s", r.total_time_s),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &format!(
                "Figure 7 [{label}]: top-20 kernels, {} distinct kernels, total {:.3}s",
                profile.distinct_kernels(),
                profile.total_time_s()
            ),
            &["Kernel", "Calls", "Cumulative time"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8b_overheads_grow_with_filter_size() {
        let points = fig8b(8);
        assert_eq!(points.len(), 12);
        for device in ["P100", "V100", "T4"] {
            let series: Vec<f64> = points
                .iter()
                .filter(|p| p.device == device)
                .map(|p| p.overhead_pct)
                .collect();
            assert_eq!(series.len(), 4);
            for w in series.windows(2) {
                assert!(w[1] >= w[0] * 0.999, "{device}: {series:?} not monotone");
            }
            assert!(series[0] >= 100.0, "{device}: overhead below parity");
        }
    }

    #[test]
    fn fig8a_covers_ten_networks_times_three_gpus() {
        let points = fig8a(4);
        assert_eq!(points.len(), 30);
        assert!(points.iter().all(|p| p.overhead_pct >= 99.9));
    }

    #[test]
    fn fig7_deterministic_profile_is_slower_and_narrower() {
        let fig = fig7(10);
        assert!(fig.deterministic_profile.total_time_s() > fig.default_profile.total_time_s());
        // Deterministic mode schedules a narrower kernel set and never a
        // nondeterministic algorithm.
        assert!(
            fig.deterministic_profile.distinct_kernels() < fig.default_profile.distinct_kernels()
        );
        assert!(fig
            .deterministic_profile
            .records()
            .iter()
            .all(|r| !r.name.contains("atomic")
                && !r.name.contains("winograd")
                && !r.name.contains("fft")));
        assert!(fig
            .default_profile
            .records()
            .iter()
            .any(|r| r.name.contains("winograd")));
        assert!(!render_fig7(&fig).is_empty());
    }

    #[test]
    fn renderers_are_nonempty() {
        let pts = fig8b(2);
        let s = render_overheads("Figure 8 (right)", &pts);
        assert!(s.contains("MediumCNN k=7"));
    }
}
