//! The paper's four experimental arms (§2.2).

use detrand::SeedPolicy;
use hwsim::ExecutionMode;
use serde::{Deserialize, Serialize};

/// A noise variant: which families of randomness are left free.
///
/// | Variant    | Algorithmic seed | Execution        |
/// |------------|------------------|------------------|
/// | `AlgoImpl` | per replica      | nondeterministic |
/// | `Algo`     | per replica      | deterministic    |
/// | `Impl`     | fixed            | nondeterministic |
/// | `Control`  | fixed            | deterministic    |
///
/// `Control` must produce bitwise-identical replicas — asserted by the
/// integration tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NoiseVariant {
    /// Both noise families free (the default training setting).
    AlgoImpl,
    /// Only algorithmic noise (deterministic execution).
    Algo,
    /// Only implementation noise (fixed algorithmic seed).
    Impl,
    /// Neither (fixed seed + deterministic execution).
    Control,
}

impl NoiseVariant {
    /// The three measured arms of every figure (Control is a check, not a
    /// measurement — its variance is zero by construction).
    pub const MEASURED: [NoiseVariant; 3] = [
        NoiseVariant::AlgoImpl,
        NoiseVariant::Algo,
        NoiseVariant::Impl,
    ];

    /// All four arms.
    pub const ALL: [NoiseVariant; 4] = [
        NoiseVariant::AlgoImpl,
        NoiseVariant::Algo,
        NoiseVariant::Impl,
        NoiseVariant::Control,
    ];

    /// How algorithmic seeds are assigned to replicas under this variant.
    pub fn seed_policy(self) -> SeedPolicy {
        match self {
            NoiseVariant::AlgoImpl | NoiseVariant::Algo => SeedPolicy::PerReplica,
            NoiseVariant::Impl | NoiseVariant::Control => SeedPolicy::Fixed,
        }
    }

    /// The execution mode under this variant.
    pub fn exec_mode(self) -> ExecutionMode {
        match self {
            NoiseVariant::AlgoImpl | NoiseVariant::Impl => ExecutionMode::Default,
            NoiseVariant::Algo | NoiseVariant::Control => ExecutionMode::Deterministic,
        }
    }

    /// The paper's label for the variant.
    pub fn label(self) -> &'static str {
        match self {
            NoiseVariant::AlgoImpl => "ALGO+IMPL",
            NoiseVariant::Algo => "ALGO",
            NoiseVariant::Impl => "IMPL",
            NoiseVariant::Control => "CONTROL",
        }
    }
}

impl std::fmt::Display for NoiseVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_matrix_matches_paper() {
        assert_eq!(NoiseVariant::AlgoImpl.seed_policy(), SeedPolicy::PerReplica);
        assert_eq!(NoiseVariant::AlgoImpl.exec_mode(), ExecutionMode::Default);
        assert_eq!(NoiseVariant::Algo.seed_policy(), SeedPolicy::PerReplica);
        assert_eq!(NoiseVariant::Algo.exec_mode(), ExecutionMode::Deterministic);
        assert_eq!(NoiseVariant::Impl.seed_policy(), SeedPolicy::Fixed);
        assert_eq!(NoiseVariant::Impl.exec_mode(), ExecutionMode::Default);
        assert_eq!(NoiseVariant::Control.seed_policy(), SeedPolicy::Fixed);
        assert_eq!(
            NoiseVariant::Control.exec_mode(),
            ExecutionMode::Deterministic
        );
    }

    #[test]
    fn labels_match_paper_nomenclature() {
        assert_eq!(NoiseVariant::AlgoImpl.to_string(), "ALGO+IMPL");
        assert_eq!(NoiseVariant::Impl.to_string(), "IMPL");
    }

    #[test]
    fn measured_excludes_control() {
        assert!(!NoiseVariant::MEASURED.contains(&NoiseVariant::Control));
        assert_eq!(NoiseVariant::ALL.len(), 4);
    }
}
