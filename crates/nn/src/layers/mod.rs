//! Network layers with hand-written forward/backward passes.
//!
//! Every accumulating operation inside a layer routes through the
//! [`hwsim::ExecutionContext`]'s reducer for the appropriate
//! [`hwsim::OpClass`], so that the executing device's accumulation-order
//! semantics (deterministic or not) apply to exactly the reductions real
//! hardware reorders: forward inner products, weight-gradient sums across
//! the batch, and batch-statistics.

mod activation;
mod conv;
mod dense;
mod norm;
mod pool;
mod residual;

pub use activation::{Dropout, Relu};
pub use conv::Conv2d;
pub use dense::Dense;
pub use norm::BatchNorm2d;
pub use pool::{Flatten, GlobalAvgPool, MaxPool2d};
pub use residual::{BottleneckBlock, ResidualBlock};

use detrand::Philox;
use hwsim::ExecutionContext;
use nstensor::Tensor;

/// A trainable network layer.
///
/// `forward` consumes the input and caches whatever the backward pass
/// needs; `backward` consumes the upstream gradient and returns the
/// downstream one, storing parameter gradients internally until the
/// optimizer collects them through [`Layer::visit_params`].
pub trait Layer: std::fmt::Debug {
    /// Forward pass.
    ///
    /// `algo` is the run's algorithmic-randomness root (consumed only by
    /// stochastic layers such as [`Dropout`]); `step` is the global
    /// training step (used to address per-step random streams); `training`
    /// selects train vs. inference behaviour (dropout, batch-norm stats).
    fn forward(
        &mut self,
        x: Tensor,
        exec: &mut ExecutionContext,
        algo: &Philox,
        step: u64,
        training: bool,
    ) -> Tensor;

    /// Backward pass: upstream gradient in, downstream gradient out.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward`.
    fn backward(&mut self, dy: Tensor, exec: &mut ExecutionContext) -> Tensor;

    /// Visits `(parameter, gradient)` pairs for the optimizer.
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}

    /// Total number of trainable scalars.
    fn param_count(&self) -> usize {
        0
    }

    /// Human-readable layer kind.
    fn kind(&self) -> &'static str;
}
