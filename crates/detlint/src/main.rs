//! The `detlint` binary: scans the workspace and reports hazards.
//!
//! ```text
//! detlint [--json] [--root <dir>] [--config <file>] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean, `1` findings or malformed suppressions,
//! `2` usage / IO / config error.

use std::path::PathBuf;
use std::process::ExitCode;

use detlint::{config::Config, find_workspace_root, report, RuleId};

struct Args {
    json: bool,
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        root: None,
        config: None,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--list-rules" => args.list_rules = true,
            "--root" => {
                args.root = Some(it.next().ok_or("--root requires a directory")?.into());
            }
            "--config" => {
                args.config = Some(it.next().ok_or("--config requires a file")?.into());
            }
            "--help" | "-h" => {
                println!(
                    "detlint — determinism static analysis\n\n\
                     USAGE: detlint [--json] [--root <dir>] [--config <file>] \
                     [--list-rules]\n\n\
                     Scans every .rs file under the workspace root for \
                     determinism hazards\n(DL001..DL005) and exits nonzero if \
                     any unsuppressed finding remains."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    if args.list_rules {
        for rule in RuleId::ALL {
            println!(
                "{} [{}] {}",
                rule.as_str(),
                rule.taxonomy().as_str(),
                rule.summary()
            );
        }
        return Ok(true);
    }
    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
            find_workspace_root(&cwd)
                .ok_or("no detlint.toml or workspace Cargo.toml found; use --root")?
        }
    };
    let config_path = args.config.unwrap_or_else(|| root.join("detlint.toml"));
    let config = Config::load(&config_path)?;
    let report_data =
        detlint::scan_workspace(&root, &config).map_err(|e| format!("scan failed: {e}"))?;
    if args.json {
        let doc = serde_json::to_string_pretty(&report::json(&report_data))
            .map_err(|e| format!("JSON encoding failed: {e}"))?;
        println!("{doc}");
    } else {
        print!("{}", report::human(&report_data));
    }
    Ok(report_data.clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("detlint: error: {e}");
            ExitCode::from(2)
        }
    }
}
