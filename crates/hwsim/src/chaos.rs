//! Deterministic chaos injection for the simulated accelerator.
//!
//! Fault tolerance cannot be tested against faults that never occur, and a
//! reproduction whose headline property is *replayability* cannot afford
//! faults that occur unreproducibly. This module resolves the tension the
//! same way the rest of the stack does: faults are drawn from a seeded
//! counter-based plan, so a chaos schedule is a pure function of
//! `(seed, replica)` — every recovery path is exercisable in CI with a
//! pinned schedule, and a failing run can be replayed bit-for-bit.
//!
//! Five fault kinds exercise the recovery paths of the supervision
//! layer:
//!
//! - [`FaultKind::LaunchFailure`] — a kernel launch reports failure. The
//!   [`crate::ExecutionContext`] records it; the training loop polls
//!   [`crate::ExecutionContext::take_fault`] and surfaces a structured
//!   error (graceful, error-return path).
//! - [`FaultKind::KernelPanic`] — the simulated driver aborts the host
//!   thread, i.e. `panic!`. Exercises the supervisor's `catch_unwind`
//!   isolation (crash path).
//! - [`FaultKind::NanPoison`] — a reduction silently produces NaN
//!   ([`nstensor::Reducer::inject_nan`]), which propagates through
//!   training until a divergence guard trips (silent-corruption path).
//! - [`FaultKind::Hang`] — the simulated kernel stalls: a real
//!   `thread::sleep` of [`ChaosConfig::hang_ms`] milliseconds at the
//!   planned `(step, op)`. In-process this is merely a slow step (results
//!   are unaffected — sleeping changes no arithmetic); under the
//!   process-isolated fleet runner it starves the heartbeat watchdog,
//!   which kills and re-dispatches the worker (timeout path).
//! - [`FaultKind::Abort`] — the simulated driver takes down the whole
//!   process via `std::process::abort`. Uncatchable in-process by design;
//!   only the fleet supervisor's process isolation recovers from it
//!   (signal-exit path).
//!
//! Faults are **transient** by default: only attempt 0 of a replica is
//! faulted, so a retried replica re-executes cleanly and — because replicas
//! are pure functions of their index — produces results bit-identical to a
//! never-faulted run. Set [`ChaosConfig::persistent`] to fault every
//! attempt (used to test retry-budget exhaustion).

use detrand::SplitMix64;
use serde::{Deserialize, Serialize};

/// Configuration of the chaos-injection layer. Off unless explicitly
/// attached to an execution context; see [`ChaosConfig::from_env`] for the
/// `NS_CHAOS` environment knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Seed of the fault schedule.
    pub seed: u64,
    /// Launch failures to plan per faulted attempt.
    pub launch_failures: u32,
    /// Kernel panics to plan per faulted attempt.
    pub kernel_panics: u32,
    /// NaN poisonings to plan per faulted attempt.
    pub nan_poisons: u32,
    /// Kernel hangs (real stalls of [`ChaosConfig::hang_ms`]) to plan per
    /// faulted attempt.
    pub hangs: u32,
    /// Process aborts (`std::process::abort`) to plan per faulted attempt.
    /// Only survivable under process isolation — arming aborts without the
    /// fleet runner takes the whole experiment down, which is the point.
    pub aborts: u32,
    /// Stall duration of one [`FaultKind::Hang`], in milliseconds.
    pub hang_ms: u32,
    /// When set, every attempt is faulted (not just attempt 0) — retries
    /// can never succeed, which is how retry-budget exhaustion is tested.
    pub persistent: bool,
}

/// Default [`ChaosConfig::hang_ms`]: short enough that an in-process run
/// (where a hang is just a slow step) stays quick, long enough that a
/// test-scale watchdog window can sit well below it.
pub const DEFAULT_HANG_MS: u32 = 500;

impl ChaosConfig {
    /// A single transient fault of each of the three classic kinds (no
    /// hangs or aborts — those only make sense under a supervisor that
    /// can kill and re-dispatch workers).
    pub fn standard(seed: u64) -> Self {
        Self {
            seed,
            launch_failures: 1,
            kernel_panics: 1,
            nan_poisons: 1,
            hangs: 0,
            aborts: 0,
            hang_ms: DEFAULT_HANG_MS,
            persistent: false,
        }
    }

    /// Parses the `NS_CHAOS` syntax:
    /// `"<seed>[:<launch>,<panic>,<nan>[,<hang>[,<abort>]]][@<hang_ms>][!]"`.
    ///
    /// - `"<seed>"` alone plans one fault of each classic kind.
    /// - The 4th and 5th counts (hangs, aborts) are optional and default
    ///   to 0, so every pre-hang schedule string parses unchanged.
    /// - `@<hang_ms>` overrides the per-hang stall duration.
    /// - A trailing `!` makes faults persistent across attempts.
    ///
    /// Returns `None` on malformed input.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        let (s, persistent) = match s.strip_suffix('!') {
            Some(rest) => (rest, true),
            None => (s, false),
        };
        let (s, hang_ms) = match s.split_once('@') {
            Some((a, ms)) => (a, Some(ms.trim().parse::<u32>().ok()?)),
            None => (s, None),
        };
        let (seed_str, counts) = match s.split_once(':') {
            Some((a, b)) => (a, Some(b)),
            None => (s, None),
        };
        let seed: u64 = seed_str.trim().parse().ok()?;
        let mut cfg = Self::standard(seed);
        cfg.persistent = persistent;
        if let Some(ms) = hang_ms {
            cfg.hang_ms = ms;
        }
        if let Some(counts) = counts {
            let mut it = counts.split(',');
            cfg.launch_failures = it.next()?.trim().parse().ok()?;
            cfg.kernel_panics = it.next()?.trim().parse().ok()?;
            cfg.nan_poisons = it.next()?.trim().parse().ok()?;
            if let Some(h) = it.next() {
                cfg.hangs = h.trim().parse().ok()?;
            }
            if let Some(a) = it.next() {
                cfg.aborts = a.trim().parse().ok()?;
            }
            if it.next().is_some() {
                return None;
            }
        }
        Some(cfg)
    }

    /// Reads `NS_CHAOS` from the environment; `None` when unset or
    /// malformed (malformed values are reported on stderr rather than
    /// silently arming no faults... and then also disarmed, because a
    /// typo'd chaos schedule must not abort an experiment).
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("NS_CHAOS").ok()?;
        let parsed = Self::parse(&raw);
        if parsed.is_none() {
            eprintln!("hwsim: ignoring malformed NS_CHAOS value {raw:?}");
        }
        parsed
    }

    /// Total faults planned per faulted attempt.
    pub fn total_faults(&self) -> u32 {
        self.launch_failures + self.kernel_panics + self.nan_poisons + self.hangs + self.aborts
    }
}

/// The kind of an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A kernel launch reports failure; recorded on the context for the
    /// caller to poll.
    LaunchFailure,
    /// The simulated driver panics the host thread.
    KernelPanic,
    /// A reduction silently returns NaN.
    NanPoison,
    /// The simulated kernel stalls for [`ChaosConfig::hang_ms`]
    /// milliseconds (a real `thread::sleep`). Results are unaffected;
    /// under the fleet runner the stall starves the heartbeat watchdog.
    Hang,
    /// The simulated driver aborts the whole process
    /// (`std::process::abort`) — uncatchable except by process isolation.
    Abort,
}

/// One planned fault: fires at the `op`-th reducer borrow of training
/// step `step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedFault {
    /// The training step (as announced via
    /// [`crate::ExecutionContext::begin_step`]).
    pub step: u64,
    /// The op index within the step (reducer borrows since `begin_step`).
    pub op: u32,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic fault schedule for one `(replica, attempt)` execution.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Planned faults, sorted by (step, op).
    faults: Vec<PlannedFault>,
    /// Stall duration of each planned [`FaultKind::Hang`], in ms.
    hang_ms: u32,
}

/// Upper bound on the op index faults are planned at. A training step of
/// the simulated models borrows a reducer a handful of times; planning
/// within the first few borrows guarantees every planned fault actually
/// fires.
const OPS_PER_STEP: u32 = 4;

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds the schedule for one `(replica, attempt)` execution over a
    /// training horizon of `horizon_steps` optimizer steps.
    ///
    /// Transient configs plan faults only for attempt 0; persistent
    /// configs fault every attempt identically. The schedule is a pure
    /// function of `(config, replica)` — it never depends on the attempt
    /// beyond the transient gate — so a replay of the same attempt sees
    /// the same faults.
    pub fn build(cfg: &ChaosConfig, replica: u32, attempt: u32, horizon_steps: u64) -> Self {
        if (attempt > 0 && !cfg.persistent) || horizon_steps == 0 || cfg.total_faults() == 0 {
            return Self::none();
        }
        let mut rng = SplitMix64::new(
            cfg.seed ^ (replica as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC4A0_5FA1,
        );
        let horizon = horizon_steps.min(u32::MAX as u64) as u32;
        let mut faults = Vec::with_capacity(cfg.total_faults() as usize);
        let mut push = |kind: FaultKind, count: u32, rng: &mut SplitMix64| {
            for _ in 0..count {
                faults.push(PlannedFault {
                    step: rng.next_below(horizon) as u64,
                    op: rng.next_below(OPS_PER_STEP),
                    kind,
                });
            }
        };
        push(FaultKind::LaunchFailure, cfg.launch_failures, &mut rng);
        push(FaultKind::KernelPanic, cfg.kernel_panics, &mut rng);
        push(FaultKind::NanPoison, cfg.nan_poisons, &mut rng);
        push(FaultKind::Hang, cfg.hangs, &mut rng);
        push(FaultKind::Abort, cfg.aborts, &mut rng);
        faults.sort_by_key(|f| (f.step, f.op));
        // Two faults landing on the same (step, op) slot: keep the first.
        faults.dedup_by_key(|f| (f.step, f.op));
        Self {
            faults,
            hang_ms: cfg.hang_ms,
        }
    }

    /// Whether the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The fault planned at `(step, op)`, if any.
    pub fn at(&self, step: u64, op: u32) -> Option<FaultKind> {
        self.faults
            .binary_search_by_key(&(step, op), |f| (f.step, f.op))
            .ok()
            .map(|i| self.faults[i].kind)
    }

    /// The planned faults, sorted by (step, op).
    pub fn faults(&self) -> &[PlannedFault] {
        &self.faults
    }

    /// Stall duration of each planned [`FaultKind::Hang`], in ms.
    pub fn hang_ms(&self) -> u32 {
        self.hang_ms
    }
}

/// An injected fault, recorded on the execution context for the training
/// loop to poll (see [`crate::ExecutionContext::take_fault`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosEvent {
    /// Training step the fault fired at.
    pub step: u64,
    /// Op index within the step.
    pub op: u32,
    /// The fault kind.
    pub kind: FaultKind,
}

impl std::fmt::Display for ChaosEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "injected {:?} at step {} op {}",
            self.kind, self.step, self.op
        )
    }
}

/// Mutable chaos bookkeeping carried by an armed execution context.
#[derive(Debug, Clone)]
pub(crate) struct ChaosState {
    /// The fault schedule.
    pub plan: FaultPlan,
    /// Current training step (set by `begin_step`).
    pub step: u64,
    /// Reducer borrows since `begin_step`.
    pub op_in_step: u32,
    /// A NaN poison fired on a matmul-class borrow and is waiting for the
    /// next direct-reduction class to materialize on.
    pub nan_pending: bool,
    /// A recorded launch failure awaiting `take_fault`.
    pub fault: Option<ChaosEvent>,
}

impl ChaosState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            step: 0,
            op_in_step: 0,
            nan_pending: false,
            fault: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_seed_only() {
        let c = ChaosConfig::parse("42").unwrap();
        assert_eq!(c.seed, 42);
        assert_eq!(
            (c.launch_failures, c.kernel_panics, c.nan_poisons),
            (1, 1, 1)
        );
        assert!(!c.persistent);
    }

    #[test]
    fn parse_full_form_and_persistent() {
        let c = ChaosConfig::parse("7:2,0,3!").unwrap();
        assert_eq!(c.seed, 7);
        assert_eq!(
            (c.launch_failures, c.kernel_panics, c.nan_poisons),
            (2, 0, 3)
        );
        assert!(c.persistent);
        assert_eq!(c.total_faults(), 5);
    }

    #[test]
    fn parse_hang_and_abort_counts() {
        let c = ChaosConfig::parse("9:0,1,0,2").unwrap();
        assert_eq!((c.hangs, c.aborts), (2, 0));
        assert_eq!(c.hang_ms, DEFAULT_HANG_MS);
        let c = ChaosConfig::parse("9:0,1,0,2,1@1500!").unwrap();
        assert_eq!((c.hangs, c.aborts), (2, 1));
        assert_eq!(c.hang_ms, 1500);
        assert!(c.persistent);
        assert_eq!(c.total_faults(), 4);
        // Seed-only form still plans no hangs/aborts and keeps the
        // default stall duration overridable.
        let c = ChaosConfig::parse("9@250").unwrap();
        assert_eq!((c.hangs, c.aborts), (0, 0));
        assert_eq!(c.hang_ms, 250);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ChaosConfig::parse("").is_none());
        assert!(ChaosConfig::parse("x").is_none());
        assert!(ChaosConfig::parse("1:2").is_none());
        assert!(ChaosConfig::parse("1:2,3").is_none());
        assert!(ChaosConfig::parse("1:2,3,4,5,6,7").is_none());
        assert!(ChaosConfig::parse("1@").is_none());
        assert!(ChaosConfig::parse("1@ms").is_none());
    }

    #[test]
    fn plan_is_deterministic_per_replica() {
        let cfg = ChaosConfig::standard(99);
        let a = FaultPlan::build(&cfg, 3, 0, 100);
        let b = FaultPlan::build(&cfg, 3, 0, 100);
        assert_eq!(a.faults(), b.faults());
        let other = FaultPlan::build(&cfg, 4, 0, 100);
        assert_ne!(a.faults(), other.faults());
    }

    #[test]
    fn transient_plans_fault_only_attempt_zero() {
        let cfg = ChaosConfig::standard(1);
        assert!(!FaultPlan::build(&cfg, 0, 0, 50).is_empty());
        assert!(FaultPlan::build(&cfg, 0, 1, 50).is_empty());
        let persistent = ChaosConfig {
            persistent: true,
            ..cfg
        };
        assert!(!FaultPlan::build(&persistent, 0, 1, 50).is_empty());
        assert_eq!(
            FaultPlan::build(&persistent, 0, 0, 50).faults(),
            FaultPlan::build(&persistent, 0, 7, 50).faults(),
        );
    }

    #[test]
    fn plan_lookup_matches_schedule() {
        let cfg = ChaosConfig::parse("5:3,2,4").unwrap();
        let plan = FaultPlan::build(&cfg, 1, 0, 1000);
        assert!(!plan.is_empty());
        for f in plan.faults() {
            assert!(f.step < 1000);
            assert!(f.op < OPS_PER_STEP);
            assert_eq!(plan.at(f.step, f.op), Some(f.kind));
        }
        assert_eq!(plan.at(u64::MAX, 0), None);
    }

    #[test]
    fn empty_horizon_or_counts_plan_nothing() {
        let cfg = ChaosConfig::standard(1);
        assert!(FaultPlan::build(&cfg, 0, 0, 0).is_empty());
        let none = ChaosConfig {
            launch_failures: 0,
            kernel_panics: 0,
            nan_poisons: 0,
            ..cfg
        };
        assert!(FaultPlan::build(&none, 0, 0, 100).is_empty());
    }

    #[test]
    fn hang_and_abort_faults_are_planned_and_carry_duration() {
        let cfg = ChaosConfig::parse("11:0,0,0,2,1@75").unwrap();
        let plan = FaultPlan::build(&cfg, 2, 0, 500);
        assert_eq!(plan.hang_ms(), 75);
        let hangs = plan
            .faults()
            .iter()
            .filter(|f| f.kind == FaultKind::Hang)
            .count();
        let aborts = plan
            .faults()
            .iter()
            .filter(|f| f.kind == FaultKind::Abort)
            .count();
        // dedup_by_key can only shrink counts on (step, op) collisions;
        // with a 500-step horizon these three draws land apart.
        assert_eq!((hangs, aborts), (2, 1));
        for f in plan.faults() {
            assert_eq!(plan.at(f.step, f.op), Some(f.kind));
        }
    }

    #[test]
    fn new_fault_kinds_do_not_shift_classic_schedules() {
        // Hang/abort draws happen after the classic three, so arming them
        // leaves the classic kinds' (step, op) placements untouched —
        // pinned chaos seeds in CI stay stable when a schedule adds hangs.
        let classic = ChaosConfig::standard(20);
        let extended = ChaosConfig {
            hangs: 2,
            aborts: 1,
            ..classic
        };
        let classic_plan = FaultPlan::build(&classic, 1, 0, 100);
        let extended_plan = FaultPlan::build(&extended, 1, 0, 100);
        let classic_subset: Vec<_> = extended_plan
            .faults()
            .iter()
            .filter(|f| {
                matches!(
                    f.kind,
                    FaultKind::LaunchFailure | FaultKind::KernelPanic | FaultKind::NanPoison
                )
            })
            .copied()
            .collect();
        assert_eq!(classic_plan.faults(), classic_subset.as_slice());
    }
}
