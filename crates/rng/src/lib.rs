//! Deterministic, counter-based random number generation for reproducible
//! machine-learning experiments.
//!
//! The central design constraint of the NoiseScope study is that *algorithmic*
//! randomness (weight initialization, data shuffling, augmentation, dropout)
//! must be fully replayable from a single seed, independently of how many
//! random numbers any other component consumes. Sequential generators cannot
//! provide that: inserting one extra draw anywhere perturbs every draw after
//! it. Counter-based generators solve the problem — every value is a pure
//! function of `(key, counter)` — and allow cheap, collision-free *stream
//! splitting* so each consumer (init, shuffle, augmentation, dropout layer 3,
//! replica 7, ...) owns an independent substream.
//!
//! The implementation is Philox 4x32-10 (Salmon et al., SC'11), the same
//! generator used by JAX, TensorFlow, and cuRAND, so the semantics mirror the
//! tooling the paper studies.
//!
//! # Example
//!
//! ```
//! use detrand::{Philox, StreamId};
//!
//! let root = Philox::from_seed(42);
//! // Independent substreams: one per purpose, one per replica.
//! let mut init = root.stream(StreamId::INIT.child(0));
//! let mut shuffle = root.stream(StreamId::SHUFFLE.child(0));
//! let a = init.next_f32();
//! let b = shuffle.next_f32();
//! assert_ne!(a, b);
//! // Replayable: the same stream id always yields the same sequence.
//! assert_eq!(root.stream(StreamId::INIT.child(0)).next_f32(), a);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod distributions;
pub mod entropy;
pub mod philox;
pub mod seed;
pub mod shuffle;
pub mod splitmix;
pub mod stream;

pub use distributions::{Bernoulli, Normal, Uniform};
pub use entropy::EntropySource;
pub use philox::{Philox, PhiloxSnapshot, PhiloxState};
pub use seed::{SeedPolicy, SeedSequence};
pub use shuffle::{permutation, shuffle_in_place};
pub use splitmix::SplitMix64;
pub use stream::{StreamId, StreamRng, StreamSnapshot};
