//! The convolution kernel registry.
//!
//! Mirrors cuDNN's algorithm menu: for each pass of a convolution there are
//! several implementations, the fastest of which trade determinism for
//! speed (atomic split-K accumulation, Winograd/FFT transforms with
//! nondeterministic reduction stages).

use nstensor::ConvGeometry;
use serde::{Deserialize, Serialize};

/// A convolution pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConvPass {
    /// Forward convolution.
    Forward,
    /// Gradient w.r.t. the input (dgrad).
    InputGrad,
    /// Gradient w.r.t. the weights (wgrad) — the cross-batch reduction.
    WeightGrad,
}

impl ConvPass {
    /// All passes of one training step.
    pub const ALL: [ConvPass; 3] = [ConvPass::Forward, ConvPass::InputGrad, ConvPass::WeightGrad];

    /// Short name used in kernel identifiers.
    pub fn tag(self) -> &'static str {
        match self {
            ConvPass::Forward => "fprop",
            ConvPass::InputGrad => "dgrad",
            ConvPass::WeightGrad => "wgrad",
        }
    }
}

/// A convolution algorithm, with cuDNN-like availability and determinism
/// properties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConvAlgorithm {
    /// Winograd transform: fastest for 3×3 stride-1 filters; its reduction
    /// stage uses atomics → nondeterministic.
    WinogradNonfused,
    /// FFT tiling: fastest for large filters; nondeterministic.
    FftTiling,
    /// Implicit GEMM with atomic split-K accumulation: fast general-purpose
    /// baseline; nondeterministic.
    ImplicitGemmAtomic,
    /// Implicit GEMM with fixed-order (serialized split-K) accumulation:
    /// deterministic, moderate penalty.
    ImplicitGemmDet,
    /// Direct convolution with fully serialized reductions: deterministic
    /// fallback, heavy penalty. Always available.
    DirectDeterministic,
}

impl ConvAlgorithm {
    /// All algorithms, in registry order.
    pub const ALL: [ConvAlgorithm; 5] = [
        ConvAlgorithm::WinogradNonfused,
        ConvAlgorithm::FftTiling,
        ConvAlgorithm::ImplicitGemmAtomic,
        ConvAlgorithm::ImplicitGemmDet,
        ConvAlgorithm::DirectDeterministic,
    ];

    /// Whether the algorithm produces bitwise-identical results across runs.
    pub fn is_deterministic(self) -> bool {
        matches!(
            self,
            ConvAlgorithm::ImplicitGemmDet | ConvAlgorithm::DirectDeterministic
        )
    }

    /// Whether the algorithm supports the given pass and geometry
    /// (availability constraints mirror cuDNN's).
    pub fn supports(self, pass: ConvPass, geom: &ConvGeometry) -> bool {
        match self {
            // Winograd: 3×3, stride 1, dense (non-depthwise), fwd/dgrad only.
            ConvAlgorithm::WinogradNonfused => {
                geom.k == 3 && geom.stride == 1 && geom.in_c > 1 && pass != ConvPass::WeightGrad
            }
            // FFT: pays off for dense filters ≥ 4, stride 1, fwd/dgrad only.
            ConvAlgorithm::FftTiling => {
                geom.k >= 4 && geom.stride == 1 && geom.in_c > 1 && pass != ConvPass::WeightGrad
            }
            ConvAlgorithm::ImplicitGemmAtomic
            | ConvAlgorithm::ImplicitGemmDet
            | ConvAlgorithm::DirectDeterministic => true,
        }
    }

    /// Short name used in kernel identifiers.
    pub fn tag(self) -> &'static str {
        match self {
            ConvAlgorithm::WinogradNonfused => "winograd_nonfused",
            ConvAlgorithm::FftTiling => "fft_tiling",
            ConvAlgorithm::ImplicitGemmAtomic => "implicit_gemm_splitk_atomic",
            ConvAlgorithm::ImplicitGemmDet => "implicit_gemm_seq",
            ConvAlgorithm::DirectDeterministic => "direct_serial",
        }
    }
}

/// A selected kernel: algorithm, pass, simulated execution time, and a
/// cuDNN-style display name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelChoice {
    /// The algorithm selected.
    pub algorithm: ConvAlgorithm,
    /// The pass it implements.
    pub pass: ConvPass,
    /// Simulated execution time per invocation, in seconds.
    pub time_s: f64,
    /// cuDNN-style kernel name, stable per (arch, algorithm, pass, tile).
    pub name: String,
}

/// Builds a cuDNN-style kernel name.
pub fn kernel_name(
    arch_tag: &str,
    alg: ConvAlgorithm,
    pass: ConvPass,
    geom: &ConvGeometry,
) -> String {
    // Tile size bucketed by output channels, like cuDNN's *_128x64 suffixes.
    let tile = match geom.out_c {
        0..=32 => "64x32",
        33..=96 => "128x64",
        97..=256 => "128x128",
        _ => "256x128",
    };
    format!(
        "{arch_tag}_scudnn_{}_{}_{}_k{}",
        alg.tag(),
        pass.tag(),
        tile,
        geom.k
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(k: usize, stride: usize) -> ConvGeometry {
        ConvGeometry::new(16, 32, k, stride, k / 2, 16, 16)
    }

    #[test]
    fn winograd_only_for_3x3_stride1_non_wgrad() {
        let a = ConvAlgorithm::WinogradNonfused;
        assert!(a.supports(ConvPass::Forward, &g(3, 1)));
        assert!(!a.supports(ConvPass::WeightGrad, &g(3, 1)));
        assert!(!a.supports(ConvPass::Forward, &g(5, 1)));
        assert!(!a.supports(ConvPass::Forward, &g(3, 2)));
    }

    #[test]
    fn fft_only_for_large_filters() {
        let a = ConvAlgorithm::FftTiling;
        assert!(!a.supports(ConvPass::Forward, &g(3, 1)));
        assert!(a.supports(ConvPass::Forward, &g(5, 1)));
        assert!(a.supports(ConvPass::InputGrad, &g(7, 1)));
        assert!(!a.supports(ConvPass::WeightGrad, &g(7, 1)));
    }

    #[test]
    fn deterministic_fallback_always_available() {
        for pass in ConvPass::ALL {
            for k in [1, 3, 5, 7] {
                assert!(ConvAlgorithm::DirectDeterministic.supports(pass, &g(k, 1)));
                assert!(ConvAlgorithm::ImplicitGemmDet.supports(pass, &g(k, 1)));
            }
        }
    }

    #[test]
    fn every_pass_has_a_deterministic_and_a_nondeterministic_option() {
        for pass in ConvPass::ALL {
            for k in [1, 2, 3, 5, 7] {
                let geom = g(k, 1);
                let det = ConvAlgorithm::ALL
                    .iter()
                    .any(|a| a.is_deterministic() && a.supports(pass, &geom));
                let nondet = ConvAlgorithm::ALL
                    .iter()
                    .any(|a| !a.is_deterministic() && a.supports(pass, &geom));
                assert!(det && nondet, "pass {pass:?} k {k}");
            }
        }
    }

    #[test]
    fn kernel_names_are_stable_and_distinct_by_tile() {
        let small = ConvGeometry::new(3, 16, 3, 1, 1, 8, 8);
        let large = ConvGeometry::new(3, 512, 3, 1, 1, 8, 8);
        let a = kernel_name(
            "volta",
            ConvAlgorithm::WinogradNonfused,
            ConvPass::Forward,
            &small,
        );
        let b = kernel_name(
            "volta",
            ConvAlgorithm::WinogradNonfused,
            ConvPass::Forward,
            &large,
        );
        assert_ne!(a, b);
        assert_eq!(
            a,
            kernel_name(
                "volta",
                ConvAlgorithm::WinogradNonfused,
                ConvPass::Forward,
                &small
            )
        );
        assert!(a.contains("winograd"));
        assert!(a.contains("fprop"));
    }
}
