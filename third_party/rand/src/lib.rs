//! Offline stand-in for the `rand` crate (see `third_party/README.md`).
//!
//! Provides exactly the surface the workspace uses: [`random`], drawing
//! fresh OS entropy per call. This crate is the *only* sanctioned door to
//! ambient entropy — everything else must go through
//! `detrand::EntropySource` (enforced by `detlint` rule DL002).

use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

static CALL_COUNTER: AtomicU64 = AtomicU64::new(0);

fn os_entropy_u64() -> u64 {
    // /dev/urandom is the real source; the hasher path is a fallback that
    // still mixes process-level randomness (RandomState keys are seeded
    // from OS entropy at first use) with a per-call counter.
    use std::io::Read;
    if let Ok(mut f) = std::fs::File::open("/dev/urandom") {
        let mut buf = [0u8; 8];
        if f.read_exact(&mut buf).is_ok() {
            return u64::from_le_bytes(buf);
        }
    }
    let mut h = RandomState::new().build_hasher();
    h.write_u64(CALL_COUNTER.fetch_add(1, Ordering::Relaxed));
    h.finish()
}

/// Types that can be produced by [`random`].
pub trait Standard: Sized {
    /// Draws one value from OS entropy.
    fn draw() -> Self;
}

impl Standard for u64 {
    fn draw() -> Self {
        os_entropy_u64()
    }
}

impl Standard for u32 {
    fn draw() -> Self {
        os_entropy_u64() as u32
    }
}

/// Returns a fresh random value from OS entropy, like `rand::random`.
pub fn random<T: Standard>() -> T {
    T::draw()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_differ() {
        let a: u64 = random();
        let b: u64 = random();
        let c: u64 = random();
        assert!(a != b || b != c, "three identical 64-bit draws");
    }
}
