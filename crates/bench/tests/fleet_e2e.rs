//! End-to-end resilience tests for the fleet supervisor driving the real
//! `repro --worker` binary (via `CARGO_BIN_EXE_repro`).
//!
//! The properties under test are the fleet contract:
//!
//! - process-isolated replicas are **bit-identical** to in-process
//!   [`run_variant`] runs, including after watchdog kills and
//!   checkpoint-resumed retries;
//! - hung workers (chaos [`FaultKind::Hang`]) are killed by the heartbeat
//!   watchdog and re-dispatched;
//! - aborting workers (chaos [`FaultKind::Abort`], a real
//!   `std::process::abort`) are classified as signal deaths and
//!   re-dispatched;
//! - an exhausted retry budget degrades into failed [`ReplicaStatus`]
//!   entries and an `[INCOMPLETE ...]` report — never a supervisor error.

use hwsim::chaos::ChaosConfig;
use noisescope::prelude::*;
use std::path::PathBuf;

fn tiny_task() -> TaskSpec {
    let mut t = TaskSpec::small_cnn_cifar10();
    t.data = DataSource::Gaussian(nsdata::GaussianSpec {
        classes: 2,
        train_per_class: 4,
        test_per_class: 2,
        ..nsdata::GaussianSpec::cifar10_sim()
    });
    t.train.epochs = 1;
    t.augment = false;
    t
}

/// Fleet options pointing at the real worker binary.
fn repro_fleet() -> FleetOptions {
    FleetOptions {
        procs: 2,
        worker_exe: Some(PathBuf::from(env!("CARGO_BIN_EXE_repro"))),
        ..FleetOptions::default()
    }
}

/// A chaos schedule with `hangs`/`aborts` faults per replica and nothing
/// else. Transient (non-persistent) unless stated otherwise: faults fire
/// on attempt 0 only, so retries run clean.
fn chaos(hangs: u32, aborts: u32, hang_ms: u32, persistent: bool) -> ChaosConfig {
    ChaosConfig {
        seed: 1234,
        launch_failures: 0,
        kernel_panics: 0,
        nan_poisons: 0,
        hangs,
        aborts,
        hang_ms,
        persistent,
    }
}

struct Scratch(CheckpointStore);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("noisescope-fleet-e2e-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        Scratch(CheckpointStore::new(dir))
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(self.0.root()).ok();
    }
}

/// Asserts two fleets produced bit-for-bit identical replica results
/// (float fields compared via `to_bits`, never `==`).
fn assert_bit_identical(fleet: &VariantRuns, golden: &VariantRuns) {
    assert_eq!(fleet.results.len(), golden.results.len(), "replica count");
    for (f, g) in fleet.results.iter().zip(&golden.results) {
        assert_eq!(f.replica, g.replica);
        assert_eq!(
            f.accuracy.to_bits(),
            g.accuracy.to_bits(),
            "accuracy of replica {}",
            f.replica
        );
        assert_eq!(
            f.final_train_loss.to_bits(),
            g.final_train_loss.to_bits(),
            "final loss of replica {}",
            f.replica
        );
        assert_eq!(f.weights.len(), g.weights.len());
        assert!(
            f.weights
                .iter()
                .zip(&g.weights)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "weights of replica {} diverge",
            f.replica
        );
        assert_eq!(f.preds, g.preds, "predictions of replica {}", f.replica);
    }
}

#[test]
fn fleet_run_is_bit_identical_to_in_process() {
    let scratch = Scratch::new("plain");
    let prepared = PreparedTask::prepare(&tiny_task());
    let settings = ExperimentSettings {
        replicas: 2,
        worker_timeout_ms: 60_000,
        ..ExperimentSettings::default()
    };
    let fleet = run_variant_fleet(
        &prepared,
        &Device::cpu(),
        NoiseVariant::AlgoImpl,
        &settings,
        &scratch.0,
        1,
        &repro_fleet(),
    )
    .expect("fleet run");
    assert!(fleet.statuses.iter().all(|s| *s == ReplicaStatus::Ok));

    let golden = run_variant(&prepared, &Device::cpu(), NoiseVariant::AlgoImpl, &settings);
    assert_bit_identical(&fleet, &golden);
}

#[test]
fn hung_worker_is_watchdog_killed_retried_and_bit_identical() {
    let scratch = Scratch::new("hang");
    let prepared = PreparedTask::prepare(&tiny_task());
    // Every replica hangs 120 s mid-step on attempt 0 — far beyond the
    // 8 s heartbeat timeout — so the watchdog must kill and re-dispatch.
    let settings = ExperimentSettings {
        replicas: 2,
        retry_budget: 2,
        worker_timeout_ms: 8_000,
        chaos: Some(chaos(1, 0, 120_000, false)),
        ..ExperimentSettings::default()
    };
    let fleet = run_variant_fleet(
        &prepared,
        &Device::cpu(),
        NoiseVariant::AlgoImpl,
        &settings,
        &scratch.0,
        1,
        &repro_fleet(),
    )
    .expect("fleet run survives hung workers");
    for s in &fleet.statuses {
        assert!(
            matches!(s, ReplicaStatus::Retried { attempts } if *attempts >= 2),
            "hung replicas must be retried, got {s:?}"
        );
    }

    // Golden: the same experiment in-process with no chaos at all.
    let clean = ExperimentSettings {
        chaos: None,
        ..settings
    };
    let golden = run_variant(&prepared, &Device::cpu(), NoiseVariant::AlgoImpl, &clean);
    assert_bit_identical(&fleet, &golden);
}

#[test]
fn aborting_worker_is_classified_as_signal_retried_and_bit_identical() {
    let scratch = Scratch::new("abort");
    let prepared = PreparedTask::prepare(&tiny_task());
    // Every replica calls std::process::abort() mid-step on attempt 0.
    let settings = ExperimentSettings {
        replicas: 2,
        retry_budget: 2,
        worker_timeout_ms: 60_000,
        chaos: Some(chaos(0, 1, 0, false)),
        ..ExperimentSettings::default()
    };
    let fleet = run_variant_fleet(
        &prepared,
        &Device::cpu(),
        NoiseVariant::AlgoImpl,
        &settings,
        &scratch.0,
        1,
        &repro_fleet(),
    )
    .expect("fleet run survives aborting workers");
    for s in &fleet.statuses {
        assert!(
            matches!(s, ReplicaStatus::Retried { attempts } if *attempts >= 2),
            "aborted replicas must be retried, got {s:?}"
        );
    }

    let clean = ExperimentSettings {
        chaos: None,
        ..settings
    };
    let golden = run_variant(&prepared, &Device::cpu(), NoiseVariant::AlgoImpl, &clean);
    assert_bit_identical(&fleet, &golden);
}

#[test]
fn exhausted_retry_budget_degrades_into_incomplete_report() {
    let scratch = Scratch::new("exhaust");
    let prepared = PreparedTask::prepare(&tiny_task());
    // Persistent aborts: every attempt of every replica dies, so the
    // budget must exhaust. The supervisor must degrade, not error.
    let settings = ExperimentSettings {
        replicas: 2,
        retry_budget: 1,
        worker_timeout_ms: 60_000,
        chaos: Some(chaos(0, 1, 0, true)),
        ..ExperimentSettings::default()
    };
    let fleet = run_variant_fleet(
        &prepared,
        &Device::cpu(),
        NoiseVariant::AlgoImpl,
        &settings,
        &scratch.0,
        1,
        &repro_fleet(),
    )
    .expect("an exhausted budget is a degraded result, not an error");
    assert!(fleet.results.is_empty(), "no replica can finish");
    assert_eq!(fleet.statuses.len(), 2);
    for s in &fleet.statuses {
        assert!(
            matches!(s, ReplicaStatus::Crashed { reason } if reason.contains("2 attempts")),
            "persistent aborts must exhaust into Crashed, got {s:?}"
        );
    }

    let report = stability_report(&prepared, &Device::cpu(), NoiseVariant::AlgoImpl, &fleet);
    let line = report.summary_line();
    assert!(
        line.contains("[INCOMPLETE"),
        "summary must flag the incomplete fleet: {line}"
    );
}
