//! The convolution layer.

use super::Layer;
use crate::init::Init;
use detrand::{Philox, StreamRng};
use hwsim::{ExecutionContext, OpClass};
use nstensor::{conv2d_backward_ws, conv2d_forward_ws, ConvGeometry, Shape, Tensor, Workspace};

/// A 2-D convolution layer (`[N, C, H, W]` input).
///
/// Forward inner products use the device's `MatmulForward` reducer; the
/// backward pass's weight-gradient reduction (which spans the whole batch)
/// uses the `WeightGrad` reducer — on Tensor-Core devices the former is
/// systolic (fixed order) while the latter falls back to nondeterministic
/// CUDA-core accumulation, reproducing the paper's finding.
#[derive(Debug)]
pub struct Conv2d {
    geom: ConvGeometry,
    w: Tensor,
    b: Tensor,
    dw: Tensor,
    db: Tensor,
    cached_x: Option<Tensor>,
    /// Recycled scratch (im2col columns, packed GEMM panels) reused across
    /// training steps instead of re-allocated per call.
    ws: Workspace,
}

impl Conv2d {
    /// Creates the layer with He-normal weights drawn from `rng`.
    pub fn new(geom: ConvGeometry, rng: &mut StreamRng) -> Self {
        let fan_in = geom.patch_len();
        let fan_out = geom.out_c * geom.k * geom.k;
        let w = Init::HeNormal.tensor(
            Shape::of(&[geom.out_c, geom.patch_len()]),
            fan_in,
            fan_out,
            rng,
        );
        let b = Init::SmallPositive.tensor(Shape::of(&[geom.out_c]), 1, 1, rng);
        Self {
            dw: Tensor::zeros(w.shape()),
            db: Tensor::zeros(b.shape()),
            w,
            b,
            geom,
            cached_x: None,
            ws: Workspace::new(),
        }
    }

    /// The convolution geometry.
    pub fn geometry(&self) -> ConvGeometry {
        self.geom
    }

    /// Immutable view of the weights (for divergence measurements).
    pub fn weights(&self) -> &Tensor {
        &self.w
    }
}

impl Layer for Conv2d {
    fn forward(
        &mut self,
        x: Tensor,
        exec: &mut ExecutionContext,
        _algo: &Philox,
        _step: u64,
        training: bool,
    ) -> Tensor {
        let threads = exec.threads();
        let y = conv2d_forward_ws(
            &x,
            &self.w,
            &self.b,
            &self.geom,
            exec.reducer(OpClass::MatmulForward),
            threads,
            &mut self.ws,
        )
        .expect("conv2d forward shape");
        if training {
            self.cached_x = Some(x);
        }
        y
    }

    fn backward(&mut self, dy: Tensor, exec: &mut ExecutionContext) -> Tensor {
        let x = self.cached_x.take().expect("backward before forward");
        let threads = exec.threads();
        let grads = conv2d_backward_ws(
            &x,
            &self.w,
            &dy,
            &self.geom,
            exec.reducer(OpClass::WeightGrad),
            threads,
            &mut self.ws,
        )
        .expect("conv2d backward shape");
        self.dw = grads.dw;
        self.db = grads.db;
        grads.dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.w, &mut self.dw);
        f(&mut self.b, &mut self.db);
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn kind(&self) -> &'static str {
        "conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detrand::StreamId;
    use hwsim::{Device, ExecutionMode};

    fn make() -> (Conv2d, ExecutionContext, Philox) {
        let root = Philox::from_seed(9);
        let mut rng = root.stream(StreamId::INIT.child(0));
        let geom = ConvGeometry::new(3, 4, 3, 1, 1, 6, 6);
        (
            Conv2d::new(geom, &mut rng),
            ExecutionContext::new(Device::cpu(), ExecutionMode::Default, 0),
            root,
        )
    }

    #[test]
    fn forward_shape() {
        let (mut l, mut exec, root) = make();
        let x = Tensor::zeros(Shape::of(&[2, 3, 6, 6]));
        let y = l.forward(x, &mut exec, &root, 0, true);
        assert_eq!(y.shape().dims(), &[2, 4, 6, 6]);
    }

    #[test]
    fn backward_returns_input_shaped_grad() {
        let (mut l, mut exec, root) = make();
        let x = Tensor::full(Shape::of(&[1, 3, 6, 6]), 0.5);
        let y = l.forward(x, &mut exec, &root, 0, true);
        let dx = l.backward(Tensor::full(y.shape(), 1.0), &mut exec);
        assert_eq!(dx.shape().dims(), &[1, 3, 6, 6]);
        // Gradients populated.
        let mut n = 0;
        l.visit_params(&mut |_, g| {
            n += 1;
            assert!(g.as_slice().iter().any(|&v| v != 0.0) || g.is_empty());
        });
        assert_eq!(n, 2);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_without_forward_panics() {
        let (mut l, mut exec, _) = make();
        l.backward(Tensor::zeros(Shape::of(&[1, 4, 6, 6])), &mut exec);
    }

    #[test]
    fn param_count_matches() {
        let (l, _, _) = make();
        assert_eq!(l.param_count(), 4 * 27 + 4);
        assert_eq!(l.kind(), "conv2d");
    }

    #[test]
    fn init_is_seed_deterministic() {
        let (a, _, _) = make();
        let (b, _, _) = make();
        assert_eq!(a.weights().as_slice(), b.weights().as_slice());
    }
}
