//! Error types.

use crate::shape::Shape;
use std::error::Error;
use std::fmt;

/// Error returned when tensor shapes are incompatible with an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    op: &'static str,
    detail: String,
}

impl ShapeError {
    /// Creates a shape error for operation `op` with a human-readable detail.
    pub fn new(op: &'static str, detail: impl Into<String>) -> Self {
        Self {
            op,
            detail: detail.into(),
        }
    }

    /// Convenience constructor for a two-operand mismatch.
    pub fn mismatch(op: &'static str, a: &Shape, b: &Shape) -> Self {
        Self::new(op, format!("incompatible shapes {a} and {b}"))
    }

    /// The operation that rejected the shapes.
    pub fn op(&self) -> &'static str {
        self.op
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error in {}: {}", self.op, self.detail)
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_op_and_detail() {
        let e = ShapeError::new("matmul", "inner dims 3 vs 4");
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("inner dims"));
    }

    #[test]
    fn mismatch_formats_shapes() {
        let a = Shape::of(&[2, 3]);
        let b = Shape::of(&[4, 5]);
        let e = ShapeError::mismatch("add", &a, &b);
        assert!(e.to_string().contains("[2, 3]"));
        assert_eq!(e.op(), "add");
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ShapeError>();
    }
}
