//! Learning-rate schedules matching the paper's training methodology
//! (Appendix B): step decay for CIFAR/CelebA, warmup + cosine for ImageNet.

use serde::{Deserialize, Serialize};

/// A learning-rate schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant {
        /// The rate.
        lr: f32,
    },
    /// `base_lr × factor^(epoch / every)` — "decays by a factor of ten
    /// every 50 epochs" style.
    StepDecay {
        /// Initial rate.
        base_lr: f32,
        /// Multiplicative factor applied at each boundary.
        factor: f32,
        /// Epochs between boundaries.
        every: u32,
    },
    /// Linear warmup over the first `warmup_epochs`, then cosine decay to
    /// zero at `total_epochs` (the paper's ImageNet recipe).
    WarmupCosine {
        /// Peak rate after warmup.
        base_lr: f32,
        /// Warmup length in epochs.
        warmup_epochs: u32,
        /// Total training length in epochs.
        total_epochs: u32,
    },
}

impl LrSchedule {
    /// The learning rate at the given (0-based) epoch.
    pub fn lr_at(&self, epoch: u32) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::StepDecay {
                base_lr,
                factor,
                every,
            } => base_lr * factor.powi((epoch / every.max(1)) as i32),
            LrSchedule::WarmupCosine {
                base_lr,
                warmup_epochs,
                total_epochs,
            } => {
                if epoch < warmup_epochs {
                    base_lr * (epoch + 1) as f32 / warmup_epochs.max(1) as f32
                } else {
                    let t = (epoch - warmup_epochs) as f32
                        / (total_epochs.saturating_sub(warmup_epochs)).max(1) as f32;
                    base_lr * 0.5 * (1.0 + (core::f32::consts::PI * t.min(1.0)).cos())
                }
            }
        }
    }
}

#[cfg(test)]
// Tests assert exact float values: bit-identical replay is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 0.1 };
        assert_eq!(s.lr_at(0), 0.1);
        assert_eq!(s.lr_at(1000), 0.1);
    }

    #[test]
    fn step_decay_boundaries() {
        // The paper's CIFAR recipe: decays by 10× every 50 epochs.
        let s = LrSchedule::StepDecay {
            base_lr: 4e-4,
            factor: 0.1,
            every: 50,
        };
        assert!((s.lr_at(0) - 4e-4).abs() < 1e-10);
        assert!((s.lr_at(49) - 4e-4).abs() < 1e-10);
        assert!((s.lr_at(50) - 4e-5).abs() < 1e-10);
        assert!((s.lr_at(150) - 4e-7).abs() < 1e-12);
    }

    #[test]
    fn warmup_then_cosine() {
        let s = LrSchedule::WarmupCosine {
            base_lr: 0.1,
            warmup_epochs: 1,
            total_epochs: 90,
        };
        // Warmup reaches base by the end of epoch 0.
        assert!((s.lr_at(0) - 0.1).abs() < 1e-7);
        // Cosine: monotone decreasing afterwards.
        let mut prev = s.lr_at(1);
        for e in 2..90 {
            let lr = s.lr_at(e);
            assert!(lr <= prev + 1e-9, "not decreasing at {e}");
            prev = lr;
        }
        assert!(s.lr_at(89) < 0.001);
    }

    #[test]
    fn warmup_is_linear() {
        let s = LrSchedule::WarmupCosine {
            base_lr: 0.4,
            warmup_epochs: 4,
            total_epochs: 10,
        };
        assert!((s.lr_at(0) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(1) - 0.2).abs() < 1e-7);
        assert!((s.lr_at(3) - 0.4).abs() < 1e-7);
    }
}
