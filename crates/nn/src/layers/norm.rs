//! Batch normalization.
//!
//! Batch-norm is load-bearing in the paper twice over: its batch statistics
//! are cross-sample reductions (so they are order-sensitive on
//! nondeterministic hardware), yet the normalization *suppresses* the
//! amplification of perturbations through the network — which is why the
//! paper's small CNN (the only benchmarked model without BN) shows by far
//! the highest instability (Fig. 2).

use super::Layer;
use crate::init::Init;
use detrand::{Philox, StreamRng};
use hwsim::{ExecutionContext, OpClass};
use nstensor::{ops, Shape, Tensor};

const EPS: f32 = 1e-5;

/// Batch normalization over the channel axis of `[N, C, H, W]` inputs.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Tensor,
    beta: Tensor,
    dgamma: Tensor,
    dbeta: Tensor,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    // Backward cache.
    cached_xhat: Option<Tensor>,
    cached_inv_std: Vec<f32>,
}

impl BatchNorm2d {
    /// Creates the layer for `channels` feature maps.
    pub fn new(channels: usize, rng: &mut StreamRng) -> Self {
        Self {
            gamma: Init::Ones.tensor(Shape::of(&[channels]), 1, 1, rng),
            beta: Init::Zeros.tensor(Shape::of(&[channels]), 1, 1, rng),
            dgamma: Tensor::zeros(Shape::of(&[channels])),
            dbeta: Tensor::zeros(Shape::of(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.9,
            cached_xhat: None,
            cached_inv_std: Vec::new(),
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.gamma.len()
    }

    /// The running mean (inference statistics).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }
}

impl Layer for BatchNorm2d {
    fn forward(
        &mut self,
        mut x: Tensor,
        exec: &mut ExecutionContext,
        _algo: &Philox,
        _step: u64,
        training: bool,
    ) -> Tensor {
        let (n, c, h, w) = (
            x.shape().dim(0),
            x.shape().dim(1),
            x.shape().dim(2),
            x.shape().dim(3),
        );
        assert_eq!(c, self.channels(), "channel mismatch");
        let hw = h * w;
        let (mean, var) = if training {
            let (m, v) =
                ops::channel_mean_var(&x, exec.reducer(OpClass::Statistics)).expect("bn stats");
            for ch in 0..c {
                self.running_mean[ch] =
                    self.momentum * self.running_mean[ch] + (1.0 - self.momentum) * m[ch];
                self.running_var[ch] =
                    self.momentum * self.running_var[ch] + (1.0 - self.momentum) * v[ch];
            }
            (m, v)
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + EPS).sqrt()).collect();
        let gv = self.gamma.as_slice().to_vec();
        let bv = self.beta.as_slice().to_vec();
        let xv = x.as_mut_slice();
        let mut xhat = vec![0f32; n * c * hw];
        for s in 0..n {
            for ch in 0..c {
                let base = (s * c + ch) * hw;
                for i in 0..hw {
                    let xh = (xv[base + i] - mean[ch]) * inv_std[ch];
                    xhat[base + i] = xh;
                    xv[base + i] = gv[ch] * xh + bv[ch];
                }
            }
        }
        if training {
            self.cached_xhat = Some(Tensor::from_vec(x.shape(), xhat).expect("xhat shape"));
            self.cached_inv_std = inv_std;
        }
        x
    }

    fn backward(&mut self, dy: Tensor, exec: &mut ExecutionContext) -> Tensor {
        let xhat = self.cached_xhat.take().expect("backward before forward");
        let (n, c, h, w) = (
            dy.shape().dim(0),
            dy.shape().dim(1),
            dy.shape().dim(2),
            dy.shape().dim(3),
        );
        let hw = h * w;
        let m = (n * hw) as f32;
        let dyv = dy.as_slice();
        let xhv = xhat.as_slice();
        let gv = self.gamma.as_slice().to_vec();

        // Per-channel reductions over (batch × spatial) — order-sensitive.
        let red = exec.reducer(OpClass::Statistics);
        let mut scratch = vec![0f32; n * hw];
        let mut sum_dy = vec![0f32; c];
        let mut sum_dy_xhat = vec![0f32; c];
        for ch in 0..c {
            for s in 0..n {
                let base = (s * c + ch) * hw;
                scratch[s * hw..(s + 1) * hw].copy_from_slice(&dyv[base..base + hw]);
            }
            sum_dy[ch] = red.sum(&scratch);
            for s in 0..n {
                let base = (s * c + ch) * hw;
                for i in 0..hw {
                    scratch[s * hw + i] = dyv[base + i] * xhv[base + i];
                }
            }
            sum_dy_xhat[ch] = red.sum(&scratch);
        }

        self.dgamma = Tensor::from_vec(Shape::of(&[c]), sum_dy_xhat.clone()).expect("dgamma");
        self.dbeta = Tensor::from_vec(Shape::of(&[c]), sum_dy.clone()).expect("dbeta");

        // dx = (γ·inv_std/m) · (m·dy − Σdy − x̂·Σ(dy·x̂))
        let mut dx = Tensor::zeros(dy.shape());
        let dxv = dx.as_mut_slice();
        for s in 0..n {
            for ch in 0..c {
                let base = (s * c + ch) * hw;
                let k = gv[ch] * self.cached_inv_std[ch] / m;
                for i in 0..hw {
                    dxv[base + i] =
                        k * (m * dyv[base + i] - sum_dy[ch] - xhv[base + i] * sum_dy_xhat[ch]);
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.gamma, &mut self.dgamma);
        f(&mut self.beta, &mut self.dbeta);
    }

    fn param_count(&self) -> usize {
        self.gamma.len() + self.beta.len()
    }

    fn kind(&self) -> &'static str {
        "batchnorm2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detrand::StreamId;
    use hwsim::{Device, ExecutionMode};

    fn setup(c: usize) -> (BatchNorm2d, ExecutionContext, Philox) {
        let root = Philox::from_seed(5);
        let mut rng = root.stream(StreamId::INIT.child(0));
        (
            BatchNorm2d::new(c, &mut rng),
            ExecutionContext::new(Device::cpu(), ExecutionMode::Default, 0),
            root,
        )
    }

    fn random_input(n: usize, c: usize, h: usize, w: usize, seed: u64) -> Tensor {
        let root = Philox::from_seed(seed);
        let mut rng = root.stream(StreamId::TEST);
        let mut t = Tensor::zeros(Shape::of(&[n, c, h, w]));
        for v in t.as_mut_slice() {
            *v = rng.normal_with(3.0, 2.0);
        }
        t
    }

    #[test]
    fn training_output_is_normalized() {
        let (mut bn, mut exec, root) = setup(2);
        let x = random_input(8, 2, 4, 4, 11);
        let y = bn.forward(x, &mut exec, &root, 0, true);
        // Per-channel mean ≈ 0, var ≈ 1 (γ=1, β=0).
        for ch in 0..2 {
            let mut vals = Vec::new();
            for s in 0..8 {
                for i in 0..16 {
                    vals.push(y.as_slice()[(s * 2 + ch) * 16 + i] as f64);
                }
            }
            let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
            let var: f64 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let (mut bn, mut exec, root) = setup(1);
        // Train a few batches to move the running stats.
        for seed in 0..20 {
            let x = random_input(8, 1, 4, 4, 100 + seed);
            bn.forward(x, &mut exec, &root, seed, true);
        }
        assert!(
            bn.running_mean()[0].abs() > 0.5,
            "running mean barely moved"
        );
        // Eval on a constant input: output must be a deterministic function
        // of the running stats, not the batch.
        let x = Tensor::full(Shape::of(&[2, 1, 4, 4]), 3.0);
        let y1 = bn.forward(x.clone(), &mut exec, &root, 0, false);
        let y2 = bn.forward(x, &mut exec, &root, 0, false);
        assert_eq!(y1.as_slice(), y2.as_slice());
    }

    #[test]
    fn gradient_check() {
        let (mut bn, mut exec, root) = setup(2);
        let x = random_input(4, 2, 2, 2, 17);
        // L = Σ y² with fresh stats each forward; use the same batch so
        // finite differences see the same normalization function.
        let y = bn.forward(x.clone(), &mut exec, &root, 0, true);
        let mut dy = y.clone();
        dy.scale(2.0);
        let dx = bn.backward(dy, &mut exec);
        let mut loss = |x: &Tensor| -> f64 {
            let y = bn.forward(x.clone(), &mut exec, &root, 0, true);
            bn.cached_xhat = None; // discard cache from probe forwards
            y.as_slice().iter().map(|&v| (v as f64).powi(2)).sum()
        };
        let eps = 1e-2f32;
        for i in [0usize, 3, 9, 20, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fd = (loss(&xp) - loss(&xm)) / (2.0 * eps as f64);
            let an = dx.as_slice()[i] as f64;
            assert!(
                (fd - an).abs() < 0.05 * fd.abs().max(0.5),
                "dx[{i}]: fd {fd} vs an {an}"
            );
        }
    }

    #[test]
    fn param_count_and_kind() {
        let (bn, _, _) = setup(8);
        assert_eq!(bn.param_count(), 16);
        assert_eq!(bn.kind(), "batchnorm2d");
        assert_eq!(bn.channels(), 8);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn channel_mismatch_panics() {
        let (mut bn, mut exec, root) = setup(3);
        bn.forward(
            Tensor::zeros(Shape::of(&[1, 2, 2, 2])),
            &mut exec,
            &root,
            0,
            true,
        );
    }
}
