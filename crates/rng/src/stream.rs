//! Named random streams.
//!
//! Every source of algorithmic randomness in a training run owns a
//! [`StreamRng`] derived from the experiment's root key and a hierarchical
//! [`StreamId`]. Streams are independent by construction: consuming any
//! amount from one stream never shifts another, which is the property that
//! makes the ALGO / IMPL noise decomposition of the paper well-defined.

use crate::philox::{Philox, PhiloxSnapshot, PhiloxState};
use serde::{Deserialize, Serialize};

/// A hierarchical identifier for a random stream.
///
/// Composed of a purpose tag and up to three levels of indices (e.g.
/// `DROPOUT.child(layer).child(step)`), packed into a single salt.
///
/// # Example
///
/// ```
/// use detrand::StreamId;
/// let a = StreamId::DROPOUT.child(3);
/// let b = StreamId::DROPOUT.child(4);
/// assert_ne!(a.salt(), b.salt());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StreamId {
    purpose: u16,
    path: [u16; 3],
    depth: u8,
}

impl StreamId {
    /// Weight initialization draws.
    pub const INIT: StreamId = StreamId::new(1);
    /// Epoch shuffling of the training set.
    pub const SHUFFLE: StreamId = StreamId::new(2);
    /// Stochastic data augmentation.
    pub const AUGMENT: StreamId = StreamId::new(3);
    /// Dropout masks.
    pub const DROPOUT: StreamId = StreamId::new(4);
    /// Synthetic dataset generation.
    pub const DATASET: StreamId = StreamId::new(5);
    /// Anything test-local.
    pub const TEST: StreamId = StreamId::new(6);

    /// Creates a stream id with a custom purpose tag.
    pub const fn new(purpose: u16) -> Self {
        Self {
            purpose,
            path: [0; 3],
            depth: 0,
        }
    }

    /// Appends one level to the path (e.g. layer index, replica index).
    ///
    /// # Panics
    ///
    /// Panics if the id already has three levels.
    pub fn child(mut self, index: u16) -> Self {
        assert!(self.depth < 3, "StreamId supports at most three levels");
        self.path[self.depth as usize] = index;
        self.depth += 1;
        self
    }

    /// Packs the id into a 64-bit salt for key derivation.
    pub fn salt(&self) -> u64 {
        // depth participates so that `X.child(0)` != `X`.
        (self.purpose as u64)
            | ((self.path[0] as u64) << 16)
            | ((self.path[1] as u64) << 32)
            | ((self.path[2] as u64) << 48) ^ ((self.depth as u64) << 61)
    }
}

/// A mutable random stream with convenience distributions.
///
/// Obtained from [`Philox::stream`].
#[derive(Debug, Clone)]
pub struct StreamRng {
    state: PhiloxState,
    /// Cached second Box-Muller variate.
    gauss_spare: Option<f32>,
}

impl Philox {
    /// Opens the named stream at counter zero.
    pub fn stream(&self, id: StreamId) -> StreamRng {
        StreamRng {
            state: self.derive(id.salt()).rng_at(0),
            gauss_spare: None,
        }
    }
}

/// A plain-data snapshot of a [`StreamRng`]: the underlying Philox
/// position plus the cached Box-Muller spare, so normal-variate streams
/// resume byte-exactly even between the two halves of a Box-Muller draw.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamSnapshot {
    /// The Philox generator position.
    pub state: PhiloxSnapshot,
    /// The cached second Box-Muller variate, if any.
    pub gauss_spare: Option<f32>,
}

impl StreamRng {
    /// Captures the complete stream position (see [`StreamSnapshot`]).
    pub fn snapshot(&self) -> StreamSnapshot {
        StreamSnapshot {
            state: self.state.snapshot(),
            gauss_spare: self.gauss_spare,
        }
    }

    /// Rebuilds a stream at the exact position captured by
    /// [`StreamRng::snapshot`].
    pub fn from_snapshot(s: StreamSnapshot) -> Self {
        Self {
            state: PhiloxState::from_snapshot(s.state),
            gauss_spare: s.gauss_spare,
        }
    }

    /// Returns 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        self.state.next_u32()
    }

    /// Returns 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state.next_u64()
    }

    /// Returns a uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        self.state.next_f32()
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        self.state.next_f64()
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u32) -> u32 {
        self.state.next_below(bound)
    }

    /// Returns a uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Returns a standard normal variate (Box-Muller).
    #[inline]
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        loop {
            let u1 = self.next_f32();
            if u1 <= f32::MIN_POSITIVE {
                continue;
            }
            let u2 = self.next_f32();
            let r = (-2.0 * u1.ln()).sqrt();
            let (s, c) = (2.0 * core::f32::consts::PI * u2).sin_cos();
            self.gauss_spare = Some(r * s);
            return r * c;
        }
    }

    /// Returns a normal variate with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Returns `true` with probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.next_f32() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_independent_of_consumption() {
        let root = Philox::from_seed(5);
        // Consume a lot from one stream; another stream is unaffected.
        let mut noisy = root.stream(StreamId::SHUFFLE);
        for _ in 0..1_000 {
            noisy.next_u32();
        }
        let a = root.stream(StreamId::INIT).next_u32();
        let fresh_root = Philox::from_seed(5);
        let b = fresh_root.stream(StreamId::INIT).next_u32();
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_preserves_gauss_spare() {
        let root = Philox::from_seed(31);
        let mut a = root.stream(StreamId::TEST);
        // One normal() caches the spare Box-Muller variate.
        a.normal();
        let mut b = StreamRng::from_snapshot(a.snapshot());
        for _ in 0..32 {
            assert_eq!(a.normal().to_bits(), b.normal().to_bits());
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn sibling_streams_differ() {
        let root = Philox::from_seed(5);
        let a: Vec<u32> = {
            let mut s = root.stream(StreamId::DROPOUT.child(0));
            (0..8).map(|_| s.next_u32()).collect()
        };
        let b: Vec<u32> = {
            let mut s = root.stream(StreamId::DROPOUT.child(1));
            (0..8).map(|_| s.next_u32()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn child_zero_differs_from_parent() {
        assert_ne!(
            StreamId::INIT.salt(),
            StreamId::INIT.child(0).salt(),
            "depth must participate in the salt"
        );
    }

    #[test]
    #[should_panic(expected = "at most three levels")]
    fn four_levels_panics() {
        StreamId::TEST.child(0).child(0).child(0).child(0);
    }

    #[test]
    fn normal_moments() {
        let root = Philox::from_seed(17);
        let mut s = root.stream(StreamId::TEST);
        let n = 200_000;
        let xs: Vec<f32> = (0..n).map(|_| s.normal()).collect();
        let mean: f64 = xs.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let var: f64 = xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn bernoulli_rate() {
        let root = Philox::from_seed(23);
        let mut s = root.stream(StreamId::TEST);
        let hits = (0..100_000).filter(|_| s.bernoulli(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits {hits}");
    }
}
