//! Offline stand-in for the `proptest` crate (see `third_party/README.md`).
//!
//! Provides the macro + strategy surface this workspace's property tests
//! use. Unlike upstream proptest there is no shrinking and no persisted
//! failure file: every generated value is a pure function of the test's
//! module path and the case index (SplitMix64 over that seed), so failures
//! replay exactly — run-to-run determinism is the point of this repo.

use std::ops::Range;

// ---------------------------------------------------------------------------
// Deterministic generation source
// ---------------------------------------------------------------------------

/// A SplitMix64 stream; the sole source of generated test data.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from a raw seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value uniform in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Per-test deterministic seeding: hashes the test's identity once, then
/// derives an independent stream per case index.
#[derive(Debug)]
pub struct TestRunnerRng {
    test_hash: u64,
}

impl TestRunnerRng {
    /// Builds the runner for a test, keyed by its fully qualified name.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test path.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRunnerRng { test_hash: h }
    }

    /// The generation stream for one case.
    pub fn case_rng(&self, case: u64) -> TestRng {
        TestRng::new(self.test_hash ^ case.wrapping_mul(0xA076_1D64_78BD_642F))
    }
}

// ---------------------------------------------------------------------------
// Config and case outcome
// ---------------------------------------------------------------------------

/// Subset of proptest's run configuration: the number of passing cases.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; it does not count.
    Reject,
    /// An assertion failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the deterministic stream.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % width;
                ((self.start as i128) + off as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Full-domain strategy returned by [`any`].
#[derive(Debug, Default, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`, like `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Generates `Vec`s with length drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(width) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Mirrors `proptest::prelude::prop`: module-style access to strategies.
pub mod prop {
    pub use crate::collection;
}

/// The common import surface, like `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        Arbitrary, ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs != rhs {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs,
                rhs
            )));
        }
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if lhs == rhs {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs
            )));
        }
    }};
}

/// Rejects the current case (it is regenerated, not failed) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares deterministic property tests; see module docs for semantics.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg); $($rest)*);
    };
    (@with ($cfg:expr); $($(#[$meta:meta])* fn $name:ident(
        $($parm:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let runner = $crate::TestRunnerRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut passed: u32 = 0;
                let mut rejected: u64 = 0;
                let mut case: u64 = 0;
                while passed < config.cases {
                    case += 1;
                    assert!(
                        rejected < 16 * (config.cases as u64) + 256,
                        "proptest stand-in: too many rejected cases in {}",
                        stringify!($name)
                    );
                    let mut rng = runner.case_rng(case);
                    $(let $parm = $crate::Strategy::new_value(&($strat), &mut rng);)+
                    // `mut` is needed only when $body mutates its captures.
                    #[allow(unused_mut)]
                    let mut one_case = move || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    match one_case() {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => rejected += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {} of {} failed: {}",
                                case,
                                stringify!($name),
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let runner = crate::TestRunnerRng::for_test("x::y");
        let s = crate::collection::vec(0u32..100, 1..16);
        let a = s.new_value(&mut runner.case_rng(3));
        let b = s.new_value(&mut runner.case_rng(3));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -50i32..50, n in 1usize..9) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_range(xs in prop::collection::vec(any::<u64>(), 2..7)) {
            prop_assert!((2..7).contains(&xs.len()));
        }

        #[test]
        fn assume_rejects_without_failing(a in any::<u32>(), b in any::<u32>()) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn prop_map_applies(x in (0i32..1000).prop_map(|v| v * 2)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert!(x < 2000, "x = {}", x);
        }

        #[test]
        fn tuples_generate_pairs(p in (0u32..10, 10u32..20)) {
            prop_assert!(p.0 < 10 && p.1 >= 10);
        }
    }
}
