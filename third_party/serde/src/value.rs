//! The JSON value model shared by the `serde` and `serde_json` stand-ins.

use std::collections::BTreeMap;

/// A JSON number: unsigned, signed, or floating point.
///
/// Integers are kept exact (up to 128 bits — `detrand` serializes `u128`
/// Philox counters) and only collapse to `f64` when a value actually has a
/// fractional part.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    UInt(u128),
    /// A negative integer.
    Int(i128),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The value as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::UInt(u) => u as f64,
            Number::Int(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// The value as `u128`, if it is a non-negative integer.
    pub fn as_u128(&self) -> Option<u128> {
        match *self {
            Number::UInt(u) => Some(u),
            Number::Int(i) => u128::try_from(i).ok(),
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u128)
            }
            Number::Float(_) => None,
        }
    }

    /// The value as `i128`, if it is an integer.
    pub fn as_i128(&self) -> Option<i128> {
        match *self {
            Number::UInt(u) => i128::try_from(u).ok(),
            Number::Int(i) => Some(i),
            Number::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i128),
            Number::Float(_) => None,
        }
    }
}

/// A JSON value tree. Objects are ordered maps (`BTreeMap`), so rendering
/// the same data always yields the same bytes.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with canonically ordered keys.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// `true` if the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The underlying number, if the value is numeric.
    pub fn as_number(&self) -> Option<&Number> {
        match self {
            Value::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        self.as_number().map(Number::as_f64)
    }

    /// The value as `u64`, if it is a non-negative integer that fits.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_number()
            .and_then(Number::as_u128)
            .and_then(|u| u64::try_from(u).ok())
    }

    /// The value as `i64`, if it is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        self.as_number()
            .and_then(Number::as_i128)
            .and_then(|i| i64::try_from(i).ok())
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

macro_rules! impl_eq_num {
    ($($t:ty => $conv:ident),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self.as_number() {
                    // Float comparison is intentional: JSON numbers are exact
                    // decimal renderings, equality is the contract under test.
                    Some(n) => n.as_f64() == *other as f64,
                    None => false,
                }
            }
        }
    )*};
}
impl_eq_num!(u64 => as_u64, i64 => as_i64, i32 => as_i64, u32 => as_u64, usize => as_u64, f64 => as_f64);

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
