//! The training loop.
//!
//! Wires together the four algorithmic noise sources (initialization is the
//! model's job; the trainer owns shuffling, augmentation and the step
//! counter that addresses dropout streams) and the implementation noise
//! carried by the [`hwsim::ExecutionContext`].

use crate::loss::{argmax_predictions, binary_predictions, sigmoid_bce, softmax_cross_entropy};
use crate::model::Network;
use crate::optim::{Sgd, SgdConfig};
use crate::schedule::LrSchedule;
use detrand::{shuffle_in_place, Philox, StreamId, StreamRng};
use hwsim::ExecutionContext;
use nstensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};

/// Supervision targets.
#[derive(Debug, Clone)]
pub enum Targets {
    /// One class index per sample (softmax cross-entropy).
    Classes(Vec<u32>),
    /// `[N, A]` binary attribute matrix (sigmoid BCE, CelebA-style).
    Binary(Tensor),
}

impl Targets {
    /// Number of samples covered.
    pub fn len(&self) -> usize {
        match self {
            Targets::Classes(v) => v.len(),
            Targets::Binary(t) => t.shape().dim(0),
        }
    }

    /// Whether there are no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn gather(&self, idx: &[usize]) -> Targets {
        match self {
            Targets::Classes(v) => Targets::Classes(idx.iter().map(|&i| v[i]).collect()),
            Targets::Binary(t) => {
                let a = t.shape().dim(1);
                let mut data = Vec::with_capacity(idx.len() * a);
                for &i in idx {
                    data.extend_from_slice(&t.as_slice()[i * a..(i + 1) * a]);
                }
                Targets::Binary(
                    Tensor::from_vec(Shape::of(&[idx.len(), a]), data).expect("target gather"),
                )
            }
        }
    }
}

/// An in-memory supervised dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Features: `[N, C, H, W]` images or `[N, D]` vectors.
    pub x: Tensor,
    /// Targets aligned with the first axis of `x`.
    pub targets: Targets,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if the sample counts disagree.
    pub fn new(x: Tensor, targets: Targets) -> Self {
        assert_eq!(x.shape().dim(0), targets.len(), "sample count mismatch");
        Self { x, targets }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.shape().dim(0)
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of one sample in scalars.
    pub fn sample_len(&self) -> usize {
        self.x.len() / self.len().max(1)
    }

    /// Gathers the samples at `idx` into a batch.
    pub fn gather(&self, idx: &[usize]) -> Batch {
        let sl = self.sample_len();
        let mut data = Vec::with_capacity(idx.len() * sl);
        for &i in idx {
            data.extend_from_slice(&self.x.as_slice()[i * sl..(i + 1) * sl]);
        }
        let mut dims = vec![idx.len()];
        dims.extend_from_slice(&self.x.shape().dims()[1..]);
        Batch {
            x: Tensor::from_vec(Shape::of(&dims), data).expect("batch gather"),
            targets: self.targets.gather(idx),
        }
    }
}

/// One minibatch.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Features.
    pub x: Tensor,
    /// Targets.
    pub targets: Targets,
}

/// Stochastic data augmentation applied per sample during training.
pub trait Augment: std::fmt::Debug {
    /// Mutates one sample in place. `dims` are the sample's dimensions
    /// (e.g. `[C, H, W]`); `rng` is the run's augmentation stream.
    fn apply(&self, sample: &mut [f32], dims: &[usize], rng: &mut StreamRng);
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: u32,
    /// Minibatch size.
    pub batch_size: usize,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
    /// Optimizer configuration.
    pub sgd: SgdConfig,
    /// Whether to reshuffle the training set every epoch (an algorithmic
    /// noise source; disabled for the paper's Fig. 6 ordering experiment).
    pub shuffle: bool,
    /// When set, the shuffle stream is drawn from this seed instead of the
    /// run's algorithmic root — lets an experiment vary *only* the data
    /// order while every other algorithmic factor stays fixed (the paper's
    /// Fig. 6 design).
    pub shuffle_seed_override: Option<u64>,
    /// Simulated data-parallel workers (1 = single device). Each batch is
    /// sharded across workers; shard gradients are combined through the
    /// device's `Misc` reducer, so a nondeterministic interconnect
    /// (arrival-order all-reduce) injects additional implementation noise —
    /// the distributed-training extension of the paper's §6.
    pub data_parallel_workers: usize,
    /// When set, the augmentation stream derives from this seed instead of
    /// the run's algorithmic root (vary *only* augmentation).
    pub augment_seed_override: Option<u64>,
    /// When set, stochastic layers (dropout) derive their streams from
    /// this seed instead of the run's algorithmic root (vary *only* the
    /// stochastic layers).
    pub dropout_seed_override: Option<u64>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 32,
            schedule: LrSchedule::Constant { lr: 0.05 },
            sgd: SgdConfig::default(),
            shuffle: true,
            shuffle_seed_override: None,
            data_parallel_workers: 1,
            augment_seed_override: None,
            dropout_seed_override: None,
        }
    }
}

/// Per-epoch training telemetry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Total optimizer steps taken.
    pub steps: u64,
}

/// The training loop driver.
#[derive(Debug)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(config: TrainConfig) -> Self {
        assert!(config.batch_size > 0, "batch size must be positive");
        assert!(
            config.data_parallel_workers > 0,
            "worker count must be positive"
        );
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> TrainConfig {
        self.config
    }

    /// Trains `net` on `data`.
    ///
    /// `algo` is the run's algorithmic root: shuffling uses its `SHUFFLE`
    /// stream, augmentation its `AUGMENT` stream, dropout layers their own
    /// streams. `exec` carries the device's accumulation-order semantics.
    pub fn fit(
        &self,
        net: &mut Network,
        data: &Dataset,
        exec: &mut ExecutionContext,
        algo: &Philox,
        augment: Option<&dyn Augment>,
    ) -> TrainReport {
        let cfg = self.config;
        let mut opt = Sgd::new(cfg.sgd);
        let mut shuffle_rng = match cfg.shuffle_seed_override {
            Some(seed) => Philox::from_seed(seed).stream(StreamId::SHUFFLE),
            None => algo.stream(StreamId::SHUFFLE),
        };
        let mut augment_rng = match cfg.augment_seed_override {
            Some(seed) => Philox::from_seed(seed).stream(StreamId::AUGMENT),
            None => algo.stream(StreamId::AUGMENT),
        };
        // Stochastic layers read their streams from the root handed to
        // `forward`; substituting it isolates dropout as a noise source.
        let forward_root = cfg
            .dropout_seed_override
            .map(Philox::from_seed)
            .unwrap_or(*algo);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut step: u64 = 0;
        let mut epoch_losses = Vec::with_capacity(cfg.epochs as usize);
        let sample_dims: Vec<usize> = data.x.shape().dims()[1..].to_vec();

        for epoch in 0..cfg.epochs {
            if cfg.shuffle {
                shuffle_in_place(&mut shuffle_rng, &mut order);
            }
            let lr = cfg.schedule.lr_at(epoch);
            let mut loss_sum = 0f64;
            let mut batches = 0u32;
            for chunk in order.chunks(cfg.batch_size) {
                let mut batch = data.gather(chunk);
                if let Some(aug) = augment {
                    let sl = data.sample_len();
                    for s in 0..chunk.len() {
                        aug.apply(
                            &mut batch.x.as_mut_slice()[s * sl..(s + 1) * sl],
                            &sample_dims,
                            &mut augment_rng,
                        );
                    }
                }
                let loss = if cfg.data_parallel_workers > 1 {
                    train_step_data_parallel(
                        net,
                        &batch,
                        chunk.len(),
                        cfg.data_parallel_workers,
                        exec,
                        &forward_root,
                        step,
                    )
                } else {
                    let logits = net.forward(batch.x, exec, &forward_root, step, true);
                    let (loss, dlogits) = match &batch.targets {
                        Targets::Classes(labels) => softmax_cross_entropy(&logits, labels),
                        Targets::Binary(t) => sigmoid_bce(&logits, t),
                    };
                    net.backward(dlogits, exec);
                    loss
                };
                opt.step(net, lr);
                loss_sum += loss as f64;
                batches += 1;
                step += 1;
            }
            epoch_losses.push((loss_sum / batches.max(1) as f64) as f32);
        }
        TrainReport {
            epoch_losses,
            steps: step,
        }
    }
}

/// One simulated data-parallel training step: shard the batch, compute
/// per-worker gradients, and all-reduce them through the device's `Misc`
/// reducer (arrival-order combination on nondeterministic interconnects).
///
/// Returns the mean loss across shards; parameter gradients are left in
/// the network for the optimizer, exactly like the single-device path.
fn train_step_data_parallel(
    net: &mut Network,
    batch: &Batch,
    batch_len: usize,
    workers: usize,
    exec: &mut ExecutionContext,
    algo: &Philox,
    step: u64,
) -> f32 {
    let shard_size = batch_len.div_ceil(workers);
    let idx: Vec<usize> = (0..batch_len).collect();
    let sl = batch.x.len() / batch_len.max(1);
    let mut shard_grads: Vec<Vec<f32>> = Vec::new();
    let mut shard_weights: Vec<f32> = Vec::new();
    let mut loss_sum = 0f64;
    let mut shards = 0u32;

    for shard_idx in idx.chunks(shard_size) {
        // Materialize the shard.
        let mut data = Vec::with_capacity(shard_idx.len() * sl);
        for &i in shard_idx {
            data.extend_from_slice(&batch.x.as_slice()[i * sl..(i + 1) * sl]);
        }
        let mut dims = vec![shard_idx.len()];
        dims.extend_from_slice(&batch.x.shape().dims()[1..]);
        let x = Tensor::from_vec(Shape::of(&dims), data).expect("shard gather");
        let targets = batch.targets.gather(shard_idx);

        let logits = net.forward(x, exec, algo, step, true);
        let (loss, dlogits) = match &targets {
            Targets::Classes(labels) => softmax_cross_entropy(&logits, labels),
            Targets::Binary(t) => sigmoid_bce(&logits, t),
        };
        net.backward(dlogits, exec);
        loss_sum += loss as f64;
        shards += 1;

        // Snapshot this worker's gradients.
        let mut flat = Vec::new();
        net.visit_params(&mut |_, g| flat.extend_from_slice(g.as_slice()));
        shard_grads.push(flat);
        shard_weights.push(shard_idx.len() as f32 / batch_len as f32);
    }

    // All-reduce: combine per-worker gradients element-wise through the
    // device's reducer — the combination order is where interconnect
    // nondeterminism enters.
    let red = exec.reducer(hwsim::OpClass::Misc);
    let n_params = shard_grads[0].len();
    let mut combined = vec![0f32; n_params];
    let mut scratch = vec![0f32; shard_grads.len()];
    for i in 0..n_params {
        for (s, g) in shard_grads.iter().enumerate() {
            scratch[s] = g[i] * shard_weights[s];
        }
        combined[i] = red.sum(&scratch);
    }
    // Write the reduced gradients back for the optimizer.
    let mut offset = 0usize;
    net.visit_params(&mut |_, g| {
        let len = g.len();
        g.as_mut_slice()
            .copy_from_slice(&combined[offset..offset + len]);
        offset += len;
    });
    (loss_sum / shards.max(1) as f64) as f32
}

/// Runs inference over a dataset in batches; returns class predictions.
pub fn predict_classes(
    net: &mut Network,
    data: &Dataset,
    exec: &mut ExecutionContext,
    algo: &Philox,
    batch_size: usize,
) -> Vec<u32> {
    let idx: Vec<usize> = (0..data.len()).collect();
    let mut preds = Vec::with_capacity(data.len());
    for chunk in idx.chunks(batch_size.max(1)) {
        let batch = data.gather(chunk);
        let logits = net.forward(batch.x, exec, algo, u64::MAX, false);
        preds.extend(argmax_predictions(&logits));
    }
    preds
}

/// Runs inference; returns flat `[N × A]` binary attribute predictions.
pub fn predict_binary(
    net: &mut Network,
    data: &Dataset,
    exec: &mut ExecutionContext,
    algo: &Philox,
    batch_size: usize,
) -> Vec<u8> {
    let idx: Vec<usize> = (0..data.len()).collect();
    let mut preds = Vec::new();
    for chunk in idx.chunks(batch_size.max(1)) {
        let batch = data.gather(chunk);
        let logits = net.forward(batch.x, exec, algo, u64::MAX, false);
        preds.extend(binary_predictions(&logits));
    }
    preds
}

/// Classification accuracy of predictions against a dataset's labels.
///
/// # Panics
///
/// Panics if the dataset is not class-labelled or lengths mismatch.
pub fn accuracy(preds: &[u32], data: &Dataset) -> f64 {
    match &data.targets {
        Targets::Classes(labels) => {
            assert_eq!(preds.len(), labels.len());
            if labels.is_empty() {
                return 0.0;
            }
            preds.iter().zip(labels).filter(|(p, l)| p == l).count() as f64 / labels.len() as f64
        }
        Targets::Binary(_) => panic!("accuracy() expects class targets"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use hwsim::{Device, ExecutionMode};

    /// A linearly separable 2-class problem the MLP must learn.
    fn toy_dataset(n: usize, seed: u64) -> Dataset {
        let root = Philox::from_seed(seed);
        let mut rng = root.stream(StreamId::DATASET);
        let mut x = Tensor::zeros(Shape::of(&[n, 4]));
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = (i % 2) as u32;
            labels.push(c);
            for j in 0..4 {
                let mean = if c == 1 { 1.0 } else { -1.0 };
                x.as_mut_slice()[i * 4 + j] = rng.normal_with(mean, 0.5);
            }
        }
        Dataset::new(x, Targets::Classes(labels))
    }

    fn mlp(seed: u64) -> (Network, Philox) {
        let root = Philox::from_seed(seed);
        let mut rng = root.stream(StreamId::INIT.child(0));
        let mut net = Network::new();
        net.push(Dense::new(4, 16, &mut rng));
        net.push(Relu::new());
        net.push(Dense::new(16, 2, &mut rng));
        (net, root)
    }

    #[test]
    fn training_reduces_loss_and_learns() {
        let data = toy_dataset(128, 1);
        let (mut net, root) = mlp(2);
        let mut exec = ExecutionContext::new(Device::cpu(), ExecutionMode::Default, 0);
        let trainer = Trainer::new(TrainConfig {
            epochs: 20,
            batch_size: 16,
            schedule: LrSchedule::Constant { lr: 0.1 },
            sgd: SgdConfig::default(),
            shuffle: true,
            shuffle_seed_override: None,
            data_parallel_workers: 1,
            augment_seed_override: None,
            dropout_seed_override: None,
        });
        let report = trainer.fit(&mut net, &data, &mut exec, &root, None);
        assert_eq!(report.steps, 20 * 8);
        assert!(
            report.epoch_losses.last().unwrap() < &(report.epoch_losses[0] * 0.5),
            "loss did not drop: {:?}",
            report.epoch_losses
        );
        let preds = predict_classes(&mut net, &data, &mut exec, &root, 32);
        assert!(accuracy(&preds, &data) > 0.95);
    }

    #[test]
    fn identical_seeds_identical_training_on_cpu() {
        let data = toy_dataset(64, 3);
        let run = || {
            let (mut net, root) = mlp(7);
            let mut exec = ExecutionContext::new(Device::cpu(), ExecutionMode::Default, 0);
            let trainer = Trainer::new(TrainConfig {
                epochs: 5,
                ..TrainConfig::default()
            });
            trainer.fit(&mut net, &data, &mut exec, &root, None);
            net.flat_weights()
        };
        assert_eq!(run(), run(), "CPU training must be bitwise replayable");
    }

    #[test]
    fn shuffle_order_changes_training() {
        let data = toy_dataset(64, 3);
        let run = |algo_seed: u64| {
            let (mut net, _) = mlp(7); // same init
            let root = Philox::from_seed(algo_seed); // different shuffle
            let mut exec = ExecutionContext::new(Device::cpu(), ExecutionMode::Default, 0);
            let trainer = Trainer::new(TrainConfig {
                epochs: 3,
                ..TrainConfig::default()
            });
            trainer.fit(&mut net, &data, &mut exec, &root, None);
            net.flat_weights()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn gather_preserves_rows() {
        let data = toy_dataset(8, 5);
        let batch = data.gather(&[3, 1]);
        assert_eq!(batch.x.shape().dims(), &[2, 4]);
        assert_eq!(
            &batch.x.as_slice()[0..4],
            &data.x.as_slice()[12..16],
            "row 3 first"
        );
        match batch.targets {
            Targets::Classes(ref l) => assert_eq!(l, &[1, 1]),
            _ => panic!(),
        }
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_rejected() {
        Trainer::new(TrainConfig {
            batch_size: 0,
            ..TrainConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "sample count mismatch")]
    fn dataset_validates_lengths() {
        Dataset::new(
            Tensor::zeros(Shape::of(&[3, 2])),
            Targets::Classes(vec![0, 1]),
        );
    }
}
