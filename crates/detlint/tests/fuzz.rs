//! Parser robustness: `lex` + `parse` + `scan_file` must terminate
//! without panicking on arbitrarily mangled input.
//!
//! detlint scans every workspace file on every CI run, so a source file
//! mid-edit (unbalanced braces, truncated strings, stray bytes) must
//! never take the gate down with a panic — it should just produce a
//! best-effort scan. There is no fuzzing crate in the tree, so this is a
//! deterministic property test: a fixed-seed SplitMix64 drives byte-level
//! mangles (flip, delete, duplicate, truncate, punct injection) over
//! real workspace sources, which exercise far more parser states than
//! synthetic strings.

use detlint::{parser, Config};

/// Real workspace sources as fuzz seeds — the heaviest users of the
/// constructs the parser special-cases (closures, nested blocks,
/// generics, `if let` chains, attribute soup).
const SEEDS: &[&str] = &[
    include_str!("../../core/src/fleet.rs"),
    include_str!("../../core/src/runner.rs"),
    include_str!("../../core/src/settings.rs"),
    include_str!("../../tensor/src/reduce.rs"),
    include_str!("../../tensor/src/gemm.rs"),
    include_str!("fixtures/dl006_taint_flow.rs"),
    include_str!("fixtures/suppressed.rs"),
];

/// SplitMix64: deterministic, no external dep, good enough to spray
/// mangle positions around.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Punctuation the parser keys its structure on — injecting these hits
/// the brace/paren heuristics hardest.
const HOT_BYTES: &[u8] = b"{}()[];,=<>!&|.:\"'/#";

fn mangle(src: &str, rng: &mut Rng) -> String {
    let mut bytes = src.as_bytes().to_vec();
    let edits = 1 + rng.below(8);
    for _ in 0..edits {
        if bytes.is_empty() {
            break;
        }
        let at = rng.below(bytes.len());
        match rng.below(5) {
            0 => bytes[at] = HOT_BYTES[rng.below(HOT_BYTES.len())],
            1 => {
                bytes.truncate(at);
            }
            2 => {
                let len = rng.below(64).min(bytes.len() - at);
                bytes.drain(at..at + len);
            }
            3 => {
                let len = rng.below(32).min(bytes.len() - at);
                let dup: Vec<u8> = bytes[at..at + len].to_vec();
                let insert_at = rng.below(bytes.len() + 1);
                for (k, b) in dup.into_iter().enumerate() {
                    bytes.insert(insert_at + k, b);
                }
            }
            _ => bytes[at] = (rng.next() & 0x7f) as u8,
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// The actual property: every stage terminates, and the parse result is
/// internally consistent (ranges in bounds, first_line <= last_line).
fn scan_terminates(src: &str) {
    let lexed = detlint::lexer::lex(src);
    let parsed = parser::parse(&lexed.tokens);
    for stmt in &parsed.stmts {
        assert!(stmt.range.0 <= stmt.range.1);
        assert!(stmt.range.1 < lexed.tokens.len());
        assert!(stmt.first_line <= stmt.last_line);
        if let Some(fi) = stmt.fn_idx {
            assert!(fi < parsed.functions.len());
        }
    }
    for func in &parsed.functions {
        for &si in &func.stmt_indices {
            assert!(si < parsed.stmts.len());
        }
    }
    // Full pipeline: rules + dataflow + suppression matching.
    let _ = detlint::scan_file("crates/x/src/lib.rs", src, &Config::default());
}

#[test]
fn parser_never_panics_on_mangled_workspace_sources() {
    let mut rng = Rng(0x5eed_cafe_f00d_0001);
    for (i, seed) in SEEDS.iter().enumerate() {
        // Unmangled first: the seeds themselves must scan.
        scan_terminates(seed);
        for round in 0..60 {
            let mangled = mangle(seed, &mut rng);
            // A panic here fails the test with (seed, round) context via
            // the panic message line numbers; keep the inputs cheap to
            // reproduce by re-running with the same constants.
            let _ = (i, round);
            scan_terminates(&mangled);
        }
    }
}

#[test]
fn parser_survives_pathological_minimal_inputs() {
    for src in [
        "",
        "{",
        "}",
        "{{{{{{",
        "}}}}}}",
        "fn",
        "fn f(",
        "fn f() {",
        "let",
        "let x = ",
        "if let = {",
        "for in in in {",
        "match { match { match {",
        "\"unterminated",
        "// comment only",
        "/* unterminated block",
        "#![attr",
        "fn f() { a.b.c.d.e.f.g.h.i.j(((((((((( }",
        "::::::::",
        "..=..=..=",
    ] {
        scan_terminates(src);
    }
}

#[test]
fn deep_nesting_is_cut_off_not_overflowed() {
    // MAX_DEPTH guards recursion; 4096 nested blocks must terminate.
    let mut src = String::from("fn f() { ");
    for _ in 0..4096 {
        src.push('{');
    }
    src.push_str(" let x = 1; ");
    for _ in 0..4096 {
        src.push('}');
    }
    src.push('}');
    scan_terminates(&src);
}
