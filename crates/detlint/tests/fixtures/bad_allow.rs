//! Malformed-suppression fixture: every annotation here is a gate-failing
//! problem (missing reason, empty reason, unknown rule).

pub fn missing_reason(xs: &[f32]) -> f32 {
    xs.iter().sum() // detlint::allow(DL004)
}

pub fn empty_reason(xs: &[f64]) -> f64 {
    xs.iter().sum() // detlint::allow(DL004, reason = "")
}

pub fn unknown_rule(xs: &[f32]) -> f32 {
    xs.iter().sum() // detlint::allow(DL999, reason = "no such rule")
}
