//! 2-D convolution (im2col formulation) with explicit accumulation order.
//!
//! Convolutions are where cuDNN's determinism trade-offs live, so they get
//! first-class treatment here: the forward inner products, and crucially the
//! *weight-gradient reduction across the whole batch* (the reduction the
//! paper singles out as an overlooked source of implementation noise), all
//! flow through the [`Reducer`].

use crate::error::ShapeError;
use crate::linalg::matmul;
use crate::reduce::Reducer;
use crate::shape::Shape;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Geometry of a 2-D convolution.
///
/// # Example
///
/// ```
/// use nstensor::ConvGeometry;
/// let g = ConvGeometry::new(3, 16, 3, 1, 1, 8, 8);
/// assert_eq!(g.out_h(), 8);
/// assert_eq!(g.patch_len(), 27);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvGeometry {
    /// Input channels.
    pub in_c: usize,
    /// Output channels.
    pub out_c: usize,
    /// Square filter size.
    pub k: usize,
    /// Stride (both axes).
    pub stride: usize,
    /// Zero padding (both axes).
    pub pad: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
}

impl ConvGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero (except `pad`) or the filter does not
    /// fit the padded input.
    pub fn new(
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        in_h: usize,
        in_w: usize,
    ) -> Self {
        assert!(in_c > 0 && out_c > 0 && k > 0 && stride > 0 && in_h > 0 && in_w > 0);
        assert!(
            in_h + 2 * pad >= k && in_w + 2 * pad >= k,
            "filter {k} larger than padded input {}x{}",
            in_h + 2 * pad,
            in_w + 2 * pad
        );
        Self {
            in_c,
            out_c,
            k,
            stride,
            pad,
            in_h,
            in_w,
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Receptive-field (patch) length: `in_c * k * k`.
    pub fn patch_len(&self) -> usize {
        self.in_c * self.k * self.k
    }

    /// Number of output pixels per channel.
    pub fn out_pixels(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Multiply-accumulate count for one forward pass over a batch of `n`.
    pub fn flops(&self, n: usize) -> u64 {
        2 * (n * self.out_c * self.out_pixels() * self.patch_len()) as u64
    }
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient w.r.t. the input, `[N, C, H, W]`.
    pub dx: Tensor,
    /// Gradient w.r.t. the weights, `[out_c, patch_len]`.
    pub dw: Tensor,
    /// Gradient w.r.t. the bias, `[out_c]`.
    pub db: Tensor,
}

/// Lowers one sample into patch-major (`[out_pixels, patch_len]`) layout.
fn im2col(x: &[f32], g: &ConvGeometry, out: &mut [f32]) {
    let (oh, ow, pl) = (g.out_h(), g.out_w(), g.patch_len());
    debug_assert_eq!(out.len(), oh * ow * pl);
    let kk = g.k * g.k;
    for oy in 0..oh {
        for ox in 0..ow {
            let row = (oy * ow + ox) * pl;
            for c in 0..g.in_c {
                let chan = &x[c * g.in_h * g.in_w..(c + 1) * g.in_h * g.in_w];
                for ky in 0..g.k {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    for kx in 0..g.k {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        let v = if iy >= 0
                            && ix >= 0
                            && (iy as usize) < g.in_h
                            && (ix as usize) < g.in_w
                        {
                            chan[iy as usize * g.in_w + ix as usize]
                        } else {
                            0.0
                        };
                        out[row + c * kk + ky * g.k + kx] = v;
                    }
                }
            }
        }
    }
}

/// Scatters patch-major gradients back into an input-shaped buffer.
fn col2im(dcol: &[f32], g: &ConvGeometry, out: &mut [f32]) {
    let (oh, ow, pl) = (g.out_h(), g.out_w(), g.patch_len());
    let kk = g.k * g.k;
    for oy in 0..oh {
        for ox in 0..ow {
            let row = (oy * ow + ox) * pl;
            for c in 0..g.in_c {
                for ky in 0..g.k {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    for kx in 0..g.k {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        if iy >= 0 && ix >= 0 && (iy as usize) < g.in_h && (ix as usize) < g.in_w {
                            out[c * g.in_h * g.in_w + iy as usize * g.in_w + ix as usize] +=
                                dcol[row + c * kk + ky * g.k + kx];
                        }
                    }
                }
            }
        }
    }
}

/// Forward 2-D convolution.
///
/// `input` is `[N, in_c, in_h, in_w]`, `weights` is `[out_c, patch_len]`
/// (flattened `[out_c, in_c, k, k]`), `bias` is `[out_c]`. Returns
/// `[N, out_c, out_h, out_w]`.
///
/// # Errors
///
/// Returns [`ShapeError`] if any operand disagrees with `geom`.
pub fn conv2d_forward(
    input: &Tensor,
    weights: &Tensor,
    bias: &Tensor,
    geom: &ConvGeometry,
    red: &mut Reducer,
) -> Result<Tensor, ShapeError> {
    validate(input, weights, bias, geom)?;
    let n = input.shape().dim(0);
    let (oh, ow, oc, pl) = (geom.out_h(), geom.out_w(), geom.out_c, geom.patch_len());
    let pixels = oh * ow;
    let mut out = Tensor::zeros(Shape::of(&[n, oc, oh, ow]));
    let mut col = vec![0f32; pixels * pl];
    let xin = input.as_slice();
    let wv = weights.as_slice();
    let bv = bias.as_slice();
    let ov = out.as_mut_slice();
    let sample = geom.in_c * geom.in_h * geom.in_w;
    for s in 0..n {
        im2col(&xin[s * sample..(s + 1) * sample], geom, &mut col);
        let obase = s * oc * pixels;
        for o in 0..oc {
            let wrow = &wv[o * pl..(o + 1) * pl];
            for p in 0..pixels {
                let patch = &col[p * pl..(p + 1) * pl];
                ov[obase + o * pixels + p] = red.dot(wrow, patch) + bv[o];
            }
        }
    }
    Ok(out)
}

/// Backward 2-D convolution: gradients w.r.t. input, weights and bias.
///
/// The weight gradient is computed as a *single* matmul whose inner
/// dimension spans every (sample, pixel) pair in the batch — the exact
/// cross-data-point reduction whose accumulation order the paper identifies
/// as a latent implementation-noise source.
///
/// # Errors
///
/// Returns [`ShapeError`] if any operand disagrees with `geom`.
pub fn conv2d_backward(
    input: &Tensor,
    weights: &Tensor,
    dy: &Tensor,
    geom: &ConvGeometry,
    red: &mut Reducer,
) -> Result<Conv2dGrads, ShapeError> {
    let bias = Tensor::zeros(Shape::of(&[geom.out_c]));
    validate(input, weights, &bias, geom)?;
    let n = input.shape().dim(0);
    let (oh, ow, oc, pl) = (geom.out_h(), geom.out_w(), geom.out_c, geom.patch_len());
    let pixels = oh * ow;
    if dy.shape() != Shape::of(&[n, oc, oh, ow]) {
        return Err(ShapeError::new(
            "conv2d_backward",
            format!("dy shape {} != [{n}, {oc}, {oh}, {ow}]", dy.shape()),
        ));
    }

    let xin = input.as_slice();
    let dyv = dy.as_slice();
    let wv = weights.as_slice();
    let sample = geom.in_c * geom.in_h * geom.in_w;
    let np = n * pixels;

    // --- all-batch im2col: [N*pixels, patch_len] ---
    let mut col_all = vec![0f32; np * pl];
    for s in 0..n {
        im2col(
            &xin[s * sample..(s + 1) * sample],
            geom,
            &mut col_all[s * pixels * pl..(s + 1) * pixels * pl],
        );
    }

    // --- dW = dYr [oc, N*pixels] × col_all [N*pixels, pl] ---
    // Rearrange dy from [N, oc, pixels] to [oc, N*pixels].
    let mut dy_r = vec![0f32; oc * np];
    for s in 0..n {
        for o in 0..oc {
            let src = &dyv[(s * oc + o) * pixels..(s * oc + o + 1) * pixels];
            dy_r[o * np + s * pixels..o * np + (s + 1) * pixels].copy_from_slice(src);
        }
    }
    let dy_rt = Tensor::from_vec(Shape::of(&[oc, np]), dy_r).expect("internal shape");
    let col_t = Tensor::from_vec(Shape::of(&[np, pl]), col_all).expect("internal shape");
    let dw = matmul(&dy_rt, &col_t, red)?;

    // --- db[o] = Σ_{s,p} dy[s,o,p] (cross-batch reduction) ---
    let mut db = Tensor::zeros(Shape::of(&[oc]));
    {
        let dbv = db.as_mut_slice();
        let dyr = dy_rt.as_slice();
        for o in 0..oc {
            dbv[o] = red.sum(&dyr[o * np..(o + 1) * np]);
        }
    }

    // --- dX: per-sample dcolT = dY_sᵀ [pixels, oc] × W [oc, pl], then col2im ---
    let mut dx = Tensor::zeros(input.shape());
    let dxv = dx.as_mut_slice();
    let mut dyt = vec![0f32; pixels * oc];
    let mut dcol = vec![0f32; pixels * pl];
    for s in 0..n {
        for o in 0..oc {
            for p in 0..pixels {
                dyt[p * oc + o] = dyv[(s * oc + o) * pixels + p];
            }
        }
        for p in 0..pixels {
            let dyrow = &dyt[p * oc..(p + 1) * oc];
            for j in 0..pl {
                // dcol[p, j] = Σ_o dy[p, o] * w[o, j] — strided over w.
                let mut lane = [0f32; crate::reduce::MAX_LANES];
                let lc = red.lanes().min(oc.max(1));
                for o in 0..oc {
                    lane[o % lc] += dyrow[o] * wv[o * pl + j];
                }
                dcol[p * pl + j] = crate::reduce::sum_ordered_f32(lane[..lc].iter().copied());
            }
        }
        col2im(&dcol, geom, &mut dxv[s * sample..(s + 1) * sample]);
    }

    Ok(Conv2dGrads { dx, dw, db })
}

fn validate(
    input: &Tensor,
    weights: &Tensor,
    bias: &Tensor,
    g: &ConvGeometry,
) -> Result<(), ShapeError> {
    if input.shape().rank() != 4
        || input.shape().dim(1) != g.in_c
        || input.shape().dim(2) != g.in_h
        || input.shape().dim(3) != g.in_w
    {
        return Err(ShapeError::new(
            "conv2d",
            format!(
                "input {} incompatible with geometry (C={}, H={}, W={})",
                input.shape(),
                g.in_c,
                g.in_h,
                g.in_w
            ),
        ));
    }
    if weights.shape() != Shape::of(&[g.out_c, g.patch_len()]) {
        return Err(ShapeError::new(
            "conv2d",
            format!(
                "weights {} != [{}, {}]",
                weights.shape(),
                g.out_c,
                g.patch_len()
            ),
        ));
    }
    if bias.shape() != Shape::of(&[g.out_c]) {
        return Err(ShapeError::new(
            "conv2d",
            format!("bias {} != [{}]", bias.shape(), g.out_c),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct (quadruple-loop) reference convolution in f64.
    fn reference_conv(x: &Tensor, w: &Tensor, b: &Tensor, g: &ConvGeometry) -> Vec<f64> {
        let n = x.shape().dim(0);
        let (oh, ow) = (g.out_h(), g.out_w());
        let mut out = vec![0f64; n * g.out_c * oh * ow];
        for s in 0..n {
            for o in 0..g.out_c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = b.as_slice()[o] as f64;
                        for c in 0..g.in_c {
                            for ky in 0..g.k {
                                for kx in 0..g.k {
                                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                                    let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                                    if iy >= 0
                                        && ix >= 0
                                        && (iy as usize) < g.in_h
                                        && (ix as usize) < g.in_w
                                    {
                                        let xv = x.get4(s, c, iy as usize, ix as usize) as f64;
                                        let wv = w.as_slice()
                                            [o * g.patch_len() + c * g.k * g.k + ky * g.k + kx]
                                            as f64;
                                        acc += xv * wv;
                                    }
                                }
                            }
                        }
                        out[((s * g.out_c + o) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        out
    }

    fn setup(g: &ConvGeometry, n: usize) -> (Tensor, Tensor, Tensor) {
        let mut seed = 12345u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let x = Tensor::from_vec(
            Shape::of(&[n, g.in_c, g.in_h, g.in_w]),
            (0..n * g.in_c * g.in_h * g.in_w).map(|_| next()).collect(),
        )
        .unwrap();
        let w = Tensor::from_vec(
            Shape::of(&[g.out_c, g.patch_len()]),
            (0..g.out_c * g.patch_len()).map(|_| next()).collect(),
        )
        .unwrap();
        let b = Tensor::from_vec(
            Shape::of(&[g.out_c]),
            (0..g.out_c).map(|_| next()).collect(),
        )
        .unwrap();
        (x, w, b)
    }

    #[test]
    fn forward_matches_reference() {
        for (k, stride, pad) in [(3, 1, 1), (1, 1, 0), (3, 2, 1), (5, 1, 2)] {
            let g = ConvGeometry::new(2, 3, k, stride, pad, 6, 6);
            let (x, w, b) = setup(&g, 2);
            let y = conv2d_forward(&x, &w, &b, &g, &mut Reducer::sequential()).unwrap();
            let r = reference_conv(&x, &w, &b, &g);
            for (a, e) in y.as_slice().iter().zip(&r) {
                assert!((*a as f64 - e).abs() < 1e-4, "k={k}: {a} vs {e}");
            }
        }
    }

    #[test]
    fn geometry_dims() {
        let g = ConvGeometry::new(3, 8, 3, 2, 1, 8, 8);
        assert_eq!(g.out_h(), 4);
        assert_eq!(g.out_w(), 4);
        assert_eq!(g.out_pixels(), 16);
        assert!(g.flops(1) > 0);
    }

    #[test]
    #[should_panic(expected = "larger than padded input")]
    fn oversized_filter_panics() {
        ConvGeometry::new(1, 1, 9, 1, 0, 4, 4);
    }

    #[test]
    fn backward_gradients_match_finite_difference() {
        let g = ConvGeometry::new(2, 2, 3, 1, 1, 4, 4);
        let (x, w, b) = setup(&g, 2);
        let n = 2;
        // Scalar loss L = Σ y², so dL/dy = 2y.
        let y = conv2d_forward(&x, &w, &b, &g, &mut Reducer::sequential()).unwrap();
        let mut dy = y.clone();
        dy.scale(2.0);
        let grads = conv2d_backward(&x, &w, &dy, &g, &mut Reducer::sequential()).unwrap();

        let loss = |x: &Tensor, w: &Tensor, b: &Tensor| -> f64 {
            let y = conv2d_forward(x, w, b, &g, &mut Reducer::sequential()).unwrap();
            y.as_slice().iter().map(|&v| (v as f64) * (v as f64)).sum()
        };
        let eps = 1e-2f32;
        // Check a scattering of weight coordinates.
        for idx in [0usize, 3, 7, 11, 17] {
            let mut wp = w.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[idx] -= eps;
            let fd = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps as f64);
            let an = grads.dw.as_slice()[idx] as f64;
            assert!(
                (fd - an).abs() < 0.05 * fd.abs().max(1.0),
                "dw[{idx}]: fd {fd} vs analytic {an}"
            );
        }
        // And input coordinates.
        for idx in [0usize, 5, 13, 30] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fd = (loss(&xp, &w, &b) - loss(&xm, &w, &b)) / (2.0 * eps as f64);
            let an = grads.dx.as_slice()[idx] as f64;
            assert!(
                (fd - an).abs() < 0.05 * fd.abs().max(1.0),
                "dx[{idx}]: fd {fd} vs analytic {an}"
            );
        }
        // Bias gradient = Σ dy per channel.
        let pixels = g.out_pixels();
        for o in 0..g.out_c {
            let mut s = 0f64;
            for smp in 0..n {
                for p in 0..pixels {
                    s += dy.as_slice()[(smp * g.out_c + o) * pixels + p] as f64;
                }
            }
            let an = grads.db.as_slice()[o] as f64;
            assert!((s - an).abs() < 1e-3 * s.abs().max(1.0), "db[{o}]");
        }
    }

    #[test]
    fn shape_validation_errors() {
        let g = ConvGeometry::new(2, 3, 3, 1, 1, 4, 4);
        let (x, w, b) = setup(&g, 1);
        let bad_w = Tensor::zeros(Shape::of(&[3, 10]));
        assert!(conv2d_forward(&x, &bad_w, &b, &g, &mut Reducer::sequential()).is_err());
        let bad_b = Tensor::zeros(Shape::of(&[4]));
        assert!(conv2d_forward(&x, &w, &bad_b, &g, &mut Reducer::sequential()).is_err());
        let bad_x = Tensor::zeros(Shape::of(&[1, 1, 4, 4]));
        assert!(conv2d_forward(&bad_x, &w, &b, &g, &mut Reducer::sequential()).is_err());
        let bad_dy = Tensor::zeros(Shape::of(&[1, 3, 9, 9]));
        assert!(conv2d_backward(&x, &w, &bad_dy, &g, &mut Reducer::sequential()).is_err());
    }
}
