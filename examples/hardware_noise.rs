//! Hardware comparison: how much noise does each accelerator inject?
//!
//! Trains the same task with the same algorithmic seed on every simulated
//! accelerator — CUDA-core GPUs of three generations, a Tensor-Core
//! configuration, and a TPU — and compares the implementation noise each
//! one contributes (paper Figure 5), plus the data-ordering effect that
//! reaches even deterministic hardware (paper Figure 6).
//!
//! ```text
//! cargo run --release -p ns-examples --bin hardware_noise
//! ```

use noisescope::experiments::ordering;
use noisescope::prelude::*;
use ns_examples::{demo_settings, demo_task};

fn main() {
    let task = demo_task();
    let settings = demo_settings();
    let prepared = PreparedTask::prepare(&task);

    println!(
        "IMPL-only noise (fixed algorithmic seed), task '{}':\n",
        task.name
    );
    println!(
        "{:<12} {:>6} {:>10} {:>10} {:>10}",
        "device", "lanes", "churn", "l2", "acc"
    );
    for device in [
        Device::p100(),
        Device::v100(),
        Device::rtx5000(),
        Device::rtx5000_tensor_cores(),
        Device::tpu_v2(),
    ] {
        let runs = run_variant(&prepared, &device, NoiseVariant::Impl, &settings);
        let report = stability_report(&prepared, &device, NoiseVariant::Impl, &runs);
        println!(
            "{:<12} {:>6} {:>10.4} {:>10.4} {:>9.1}%",
            device.name(),
            device.lanes(),
            report.churn,
            report.l2,
            100.0 * report.mean_accuracy
        );
    }
    println!(
        "\nThe TPU's fixed-order systolic execution contributes zero implementation\n\
         noise; Tensor Cores remain noisy because unsupported ops fall back to\n\
         CUDA cores.\n"
    );

    println!("...but even the TPU is sensitive to *data order* (Figure 6):");
    let quick = ExperimentSettings {
        replicas: settings.replicas,
        epochs_scale: 0.5,
        ..settings
    };
    let points = ordering::fig6(&quick);
    println!("{}", ordering::render_fig6(&points));
    println!(
        "A different shuffle changes the floating-point accumulation order of the\n\
         gradient reductions — nonzero divergence even at full batch, where every\n\
         replica sees mathematically identical gradients."
    );
}
