//! The dense `f32` tensor container.

use crate::error::ShapeError;
use crate::shape::Shape;
use serde::{Deserialize, Serialize};

/// A dense, row-major `f32` tensor.
///
/// `Tensor` is a plain data container; all numerically interesting
/// operations (matmul, conv, pooling, reductions) live in free functions
/// that take a [`crate::Reducer`], so that *every* reduction's accumulation
/// order is explicit.
///
/// # Example
///
/// ```
/// use nstensor::{Shape, Tensor};
/// let t = Tensor::zeros(Shape::of(&[2, 3]));
/// assert_eq!(t.len(), 6);
/// assert_eq!(t.get2(1, 2), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    pub fn zeros(shape: Shape) -> Self {
        Self {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: Shape, value: f32) -> Self {
        Self {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != shape.len()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != shape.len() {
            return Err(ShapeError::new(
                "from_vec",
                format!("data length {} != shape volume {}", data.len(), shape.len()),
            ));
        }
        Ok(Self { shape, data })
    }

    /// The shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// The number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying storage (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying storage (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access for rank-2 tensors.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the tensor is not rank 2 or the index is
    /// out of bounds.
    #[inline]
    pub fn get2(&self, i: usize, j: usize) -> f32 {
        self.data[self.shape.offset2(i, j)]
    }

    /// Mutable element access for rank-2 tensors.
    #[inline]
    pub fn set2(&mut self, i: usize, j: usize, v: f32) {
        let o = self.shape.offset2(i, j);
        self.data[o] = v;
    }

    /// Element access for rank-4 tensors (`[N, C, H, W]`).
    #[inline]
    pub fn get4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.shape.offset4(n, c, h, w)]
    }

    /// Mutable element access for rank-4 tensors.
    #[inline]
    pub fn set4(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        let o = self.shape.offset4(n, c, h, w);
        self.data[o] = v;
    }

    /// Reinterprets the tensor with a new shape of identical volume.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the volumes differ.
    pub fn reshape(mut self, shape: Shape) -> Result<Self, ShapeError> {
        if shape.len() != self.data.len() {
            return Err(ShapeError::new(
                "reshape",
                format!("cannot reshape {} elements into {shape}", self.data.len()),
            ));
        }
        self.shape = shape;
        Ok(self)
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Adds `other` element-wise in place.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<(), ShapeError> {
        if self.shape != other.shape {
            return Err(ShapeError::mismatch(
                "add_assign",
                &self.shape,
                &other.shape,
            ));
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// Scales every element in place.
    pub fn scale(&mut self, k: f32) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// The Euclidean norm of the flattened tensor (accumulated in f64 for
    /// metric stability; this is *measurement*, not simulated computation).
    pub fn norm(&self) -> f64 {
        crate::reduce::sum_ordered_f64(self.data.iter().map(|&x| (x as f64) * (x as f64))).sqrt()
    }
}

#[cfg(test)]
// Tests assert exact float values: bit-identical replay is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(Shape::of(&[4]));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let f = Tensor::full(Shape::of(&[4]), 2.5);
        assert!(f.as_slice().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(Shape::of(&[2, 2]), vec![1.0; 4]).is_ok());
        assert!(Tensor::from_vec(Shape::of(&[2, 2]), vec![1.0; 5]).is_err());
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros(Shape::of(&[3, 4]));
        t.set2(2, 1, 7.0);
        assert_eq!(t.get2(2, 1), 7.0);
        let mut u = Tensor::zeros(Shape::of(&[2, 2, 3, 3]));
        u.set4(1, 0, 2, 2, -1.0);
        assert_eq!(u.get4(1, 0, 2, 2), -1.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(Shape::of(&[2, 3]), (0..6).map(|i| i as f32).collect()).unwrap();
        let r = t.reshape(Shape::of(&[3, 2])).unwrap();
        assert_eq!(r.get2(2, 1), 5.0);
        assert!(r.clone().reshape(Shape::of(&[7])).is_err());
    }

    #[test]
    fn add_assign_checks_shape() {
        let mut a = Tensor::full(Shape::of(&[2]), 1.0);
        let b = Tensor::full(Shape::of(&[2]), 2.0);
        a.add_assign(&b).unwrap();
        assert_eq!(a.as_slice(), &[3.0, 3.0]);
        let c = Tensor::zeros(Shape::of(&[3]));
        assert!(a.add_assign(&c).is_err());
    }

    #[test]
    fn norm_matches_hand_value() {
        let t = Tensor::from_vec(Shape::of(&[2]), vec![3.0, 4.0]).unwrap();
        assert!((t.norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn map_and_scale() {
        let mut t = Tensor::from_vec(Shape::of(&[3]), vec![1.0, -2.0, 3.0]).unwrap();
        t.map_inplace(|x| x.max(0.0));
        assert_eq!(t.as_slice(), &[1.0, 0.0, 3.0]);
        t.scale(2.0);
        assert_eq!(t.as_slice(), &[2.0, 0.0, 6.0]);
    }
}
