//! Fisher-Yates shuffling and permutation generation.
//!
//! Data-shuffling order is one of the four algorithmic noise sources the
//! paper isolates (Table 1), and *also* the source of the "latent
//! implementation noise" in Figure 6: a different visit order changes the
//! floating-point accumulation order of gradient reductions even on
//! hardware that is otherwise deterministic.

use crate::stream::StreamRng;

/// Shuffles a slice in place with the Fisher-Yates algorithm.
///
/// # Example
///
/// ```
/// use detrand::{shuffle_in_place, Philox, StreamId};
/// let mut rng = Philox::from_seed(2).stream(StreamId::SHUFFLE);
/// let mut xs = vec![1, 2, 3, 4, 5];
/// shuffle_in_place(&mut rng, &mut xs);
/// xs.sort_unstable();
/// assert_eq!(xs, vec![1, 2, 3, 4, 5]);
/// ```
pub fn shuffle_in_place<T>(rng: &mut StreamRng, xs: &mut [T]) {
    let n = xs.len();
    if n < 2 {
        return;
    }
    for i in (1..n).rev() {
        let j = rng.next_below((i + 1) as u32) as usize;
        xs.swap(i, j);
    }
}

/// Returns a uniformly random permutation of `0..n`.
pub fn permutation(rng: &mut StreamRng, n: usize) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    shuffle_in_place(rng, &mut p);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Philox, StreamId};

    fn rng(seed: u64) -> StreamRng {
        Philox::from_seed(seed).stream(StreamId::SHUFFLE)
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = rng(1);
        let p = permutation(&mut r, 1000);
        let mut seen = vec![false; 1000];
        for &i in &p {
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
    }

    #[test]
    fn same_seed_same_permutation() {
        let a = permutation(&mut rng(9), 100);
        let b = permutation(&mut rng(9), 100);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_permutation() {
        let a = permutation(&mut rng(9), 100);
        let b = permutation(&mut rng(10), 100);
        assert_ne!(a, b);
    }

    #[test]
    fn degenerate_sizes() {
        let mut r = rng(2);
        assert!(permutation(&mut r, 0).is_empty());
        assert_eq!(permutation(&mut r, 1), vec![0]);
    }

    #[test]
    fn positions_are_roughly_uniform() {
        // Element 0 should land in each position about equally often.
        let mut counts = vec![0u32; 8];
        for seed in 0..4000 {
            let p = permutation(&mut rng(seed), 8);
            let pos = p.iter().position(|&x| x == 0).unwrap();
            counts[pos] += 1;
        }
        for &c in &counts {
            assert!((350..650).contains(&c), "position count {c}");
        }
    }
}
