//! The trainable model zoo.
//!
//! Scaled-down counterparts of the architectures the paper *trains*
//! (Appendix B/C), sized so that replica fleets run on a CPU-backed
//! simulator in seconds. The scaling preserves what matters for the study:
//! the small CNN has no batch-norm (the paper's highest-instability model),
//! its BN variant differs only by normalization, and the Micro-ResNets keep
//! the residual/BN topology that curbs noise amplification.

use crate::layers::{
    BatchNorm2d, BottleneckBlock, Conv2d, Dense, Dropout, Flatten, GlobalAvgPool, MaxPool2d, Relu,
    ResidualBlock,
};
use crate::model::Network;
use detrand::{Philox, StreamId};
use nstensor::ConvGeometry;

/// The paper's three-layer small CNN (Appendix C), scaled.
///
/// `conv3×3 → [bn] → relu → pool2` twice, a final `conv3×3 → [bn] → relu`,
/// then `flatten → dense(32) → relu → dense(classes)`. `with_bn` selects
/// the Fig. 2 batch-norm ablation arm. `input_hw` must be divisible by 4.
///
/// # Example
///
/// ```
/// use detrand::Philox;
/// let net = nnet::zoo::small_cnn(12, 3, 10, false, &Philox::from_seed(1));
/// assert!(net.param_count() > 1000);
/// ```
///
/// # Panics
///
/// Panics if `input_hw` is not divisible by 4.
pub fn small_cnn(
    input_hw: usize,
    in_c: usize,
    classes: usize,
    with_bn: bool,
    root: &Philox,
) -> Network {
    assert_eq!(input_hw % 4, 0, "input size must be divisible by 4");
    let mut rng = root.stream(StreamId::INIT.child(0));
    let mut net = Network::new();
    let channels = [16usize, 16, 16];
    let mut c_in = in_c;
    let mut hw = input_hw;
    for (i, &c_out) in channels.iter().enumerate() {
        let geom = ConvGeometry::new(c_in, c_out, 3, 1, 1, hw, hw);
        net.push(Conv2d::new(geom, &mut rng));
        if with_bn {
            net.push(BatchNorm2d::new(c_out, &mut rng));
        }
        net.push(Relu::new());
        if i < 2 {
            net.push(MaxPool2d::new(2));
            hw /= 2;
        }
        c_in = c_out;
    }
    net.push(Flatten::new());
    net.push(Dense::new(c_in * hw * hw, 32, &mut rng));
    net.push(Relu::new());
    net.push(Dense::new(32, classes, &mut rng));
    net
}

/// A small CNN with a dropout layer before the classifier — exercises the
/// "stochastic layers" algorithmic noise source.
pub fn small_cnn_dropout(
    input_hw: usize,
    in_c: usize,
    classes: usize,
    rate: f32,
    root: &Philox,
) -> Network {
    assert_eq!(input_hw % 4, 0, "input size must be divisible by 4");
    let mut rng = root.stream(StreamId::INIT.child(0));
    let mut net = Network::new();
    let geom1 = ConvGeometry::new(in_c, 8, 3, 1, 1, input_hw, input_hw);
    net.push(Conv2d::new(geom1, &mut rng));
    net.push(Relu::new());
    net.push(MaxPool2d::new(2));
    let geom2 = ConvGeometry::new(8, 16, 3, 1, 1, input_hw / 2, input_hw / 2);
    net.push(Conv2d::new(geom2, &mut rng));
    net.push(Relu::new());
    net.push(MaxPool2d::new(2));
    net.push(Flatten::new());
    net.push(Dropout::new(rate, 0));
    net.push(Dense::new(
        16 * (input_hw / 4) * (input_hw / 4),
        32,
        &mut rng,
    ));
    net.push(Relu::new());
    net.push(Dense::new(32, classes, &mut rng));
    net
}

/// A scaled ResNet-18 stand-in: stem conv + BN, three basic residual
/// stages (16 → 32 → 64 channels, downsampling twice), global average
/// pooling and a linear classifier.
///
/// # Panics
///
/// Panics if `input_hw` is not divisible by 4.
pub fn micro_resnet18(input_hw: usize, in_c: usize, classes: usize, root: &Philox) -> Network {
    assert_eq!(input_hw % 4, 0, "input size must be divisible by 4");
    let mut rng = root.stream(StreamId::INIT.child(0));
    let mut net = Network::new();
    let stem = ConvGeometry::new(in_c, 8, 3, 1, 1, input_hw, input_hw);
    net.push(Conv2d::new(stem, &mut rng));
    net.push(BatchNorm2d::new(8, &mut rng));
    net.push(Relu::new());
    net.push(ResidualBlock::new(8, 8, 1, input_hw, input_hw, &mut rng));
    net.push(ResidualBlock::new(8, 16, 2, input_hw, input_hw, &mut rng));
    let hw2 = input_hw / 2;
    net.push(ResidualBlock::new(16, 32, 2, hw2, hw2, &mut rng));
    net.push(GlobalAvgPool::new());
    net.push(Dense::new(32, classes, &mut rng));
    net
}

/// A scaled ResNet-50 stand-in: the same residual topology with doubled
/// depth per stage (used for the ImageNet-sim rows of Table 2 / Fig. 1).
///
/// # Panics
///
/// Panics if `input_hw` is not divisible by 4.
pub fn micro_resnet50(input_hw: usize, in_c: usize, classes: usize, root: &Philox) -> Network {
    assert_eq!(input_hw % 4, 0, "input size must be divisible by 4");
    let mut rng = root.stream(StreamId::INIT.child(0));
    let mut net = Network::new();
    let stem = ConvGeometry::new(in_c, 8, 3, 1, 1, input_hw, input_hw);
    net.push(Conv2d::new(stem, &mut rng));
    net.push(BatchNorm2d::new(8, &mut rng));
    net.push(Relu::new());
    net.push(ResidualBlock::new(8, 8, 1, input_hw, input_hw, &mut rng));
    net.push(ResidualBlock::new(8, 8, 1, input_hw, input_hw, &mut rng));
    net.push(ResidualBlock::new(8, 16, 2, input_hw, input_hw, &mut rng));
    let hw2 = input_hw / 2;
    net.push(ResidualBlock::new(16, 16, 1, hw2, hw2, &mut rng));
    net.push(ResidualBlock::new(16, 32, 2, hw2, hw2, &mut rng));
    let hw4 = input_hw / 4;
    net.push(ResidualBlock::new(32, 32, 1, hw4, hw4, &mut rng));
    net.push(GlobalAvgPool::new());
    net.push(Dense::new(32, classes, &mut rng));
    net
}

/// A scaled bottleneck ResNet (true ResNet-50 block topology at micro
/// scale): stem, three bottleneck stages with 4× expansion, GAP and a
/// linear classifier.
///
/// # Panics
///
/// Panics if `input_hw` is not divisible by 4.
pub fn micro_resnet_bottleneck(
    input_hw: usize,
    in_c: usize,
    classes: usize,
    root: &Philox,
) -> Network {
    assert_eq!(input_hw % 4, 0, "input size must be divisible by 4");
    let mut rng = root.stream(StreamId::INIT.child(0));
    let mut net = Network::new();
    let stem = ConvGeometry::new(in_c, 8, 3, 1, 1, input_hw, input_hw);
    net.push(Conv2d::new(stem, &mut rng));
    net.push(BatchNorm2d::new(8, &mut rng));
    net.push(Relu::new());
    net.push(BottleneckBlock::new(
        8, 4, 16, 1, input_hw, input_hw, &mut rng,
    ));
    net.push(BottleneckBlock::new(
        16, 8, 32, 2, input_hw, input_hw, &mut rng,
    ));
    let hw2 = input_hw / 2;
    net.push(BottleneckBlock::new(32, 16, 64, 2, hw2, hw2, &mut rng));
    net.push(GlobalAvgPool::new());
    net.push(Dense::new(64, classes, &mut rng));
    net
}

/// A trainable counterpart of the paper's six-layer medium CNN
/// (Appendix C) with configurable filter size `k`, scaled to a small
/// canvas: three `conv(k)+BN+ReLU+pool` blocks and a linear head.
///
/// # Panics
///
/// Panics if `input_hw` is not divisible by 8 or `k` is even/zero.
pub fn medium_cnn_trainable(
    input_hw: usize,
    in_c: usize,
    classes: usize,
    k: usize,
    root: &Philox,
) -> Network {
    assert_eq!(input_hw % 8, 0, "input size must be divisible by 8");
    assert!(k % 2 == 1 && k > 0, "filter size must be odd");
    let mut rng = root.stream(StreamId::INIT.child(0));
    let mut net = Network::new();
    let mut c_in = in_c;
    let mut hw = input_hw;
    for &c_out in &[8usize, 16, 32] {
        let geom = ConvGeometry::new(c_in, c_out, k, 1, k / 2, hw, hw);
        net.push(Conv2d::new(geom, &mut rng));
        net.push(BatchNorm2d::new(c_out, &mut rng));
        net.push(Relu::new());
        net.push(MaxPool2d::new(2));
        hw /= 2;
        c_in = c_out;
    }
    net.push(GlobalAvgPool::new());
    net.push(Dense::new(c_in, classes, &mut rng));
    net
}

/// LeNet-5-style network (conv 5×5 ×2 + dense ×2): the architecture
/// Pham et al. (ASE'20) found most variance-prone across DL libraries —
/// included so that related-work comparisons can be replayed here.
///
/// # Panics
///
/// Panics if `input_hw` is not divisible by 4.
pub fn lenet5(input_hw: usize, in_c: usize, classes: usize, root: &Philox) -> Network {
    assert_eq!(input_hw % 4, 0, "input size must be divisible by 4");
    let mut rng = root.stream(StreamId::INIT.child(0));
    let mut net = Network::new();
    let g1 = ConvGeometry::new(in_c, 6, 5, 1, 2, input_hw, input_hw);
    net.push(Conv2d::new(g1, &mut rng));
    net.push(Relu::new());
    net.push(MaxPool2d::new(2));
    let hw2 = input_hw / 2;
    let g2 = ConvGeometry::new(6, 16, 5, 1, 2, hw2, hw2);
    net.push(Conv2d::new(g2, &mut rng));
    net.push(Relu::new());
    net.push(MaxPool2d::new(2));
    let hw4 = input_hw / 4;
    net.push(Flatten::new());
    net.push(Dense::new(16 * hw4 * hw4, 32, &mut rng));
    net.push(Relu::new());
    net.push(Dense::new(32, classes, &mut rng));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwsim::{Device, ExecutionContext, ExecutionMode};
    use nstensor::{Shape, Tensor};

    fn forward_shape(net: &mut Network, in_c: usize, hw: usize, root: &Philox) -> Vec<usize> {
        let mut exec = ExecutionContext::new(Device::cpu(), ExecutionMode::Default, 0);
        let x = Tensor::zeros(Shape::of(&[2, in_c, hw, hw]));
        net.forward(x, &mut exec, root, 0, false)
            .shape()
            .dims()
            .to_vec()
    }

    #[test]
    fn small_cnn_output_shape() {
        let root = Philox::from_seed(1);
        let mut net = small_cnn(12, 3, 10, false, &root);
        assert_eq!(forward_shape(&mut net, 3, 12, &root), vec![2, 10]);
        assert!(!net.layer_kinds().contains(&"batchnorm2d"));
    }

    #[test]
    fn small_cnn_bn_variant_has_batchnorm() {
        let root = Philox::from_seed(1);
        let net = small_cnn(12, 3, 10, true, &root);
        assert_eq!(
            net.layer_kinds()
                .iter()
                .filter(|k| **k == "batchnorm2d")
                .count(),
            3
        );
    }

    #[test]
    fn dropout_variant_has_dropout() {
        let root = Philox::from_seed(2);
        let mut net = small_cnn_dropout(12, 3, 10, 0.25, &root);
        assert!(net.layer_kinds().contains(&"dropout"));
        assert_eq!(forward_shape(&mut net, 3, 12, &root), vec![2, 10]);
    }

    #[test]
    fn micro_resnet18_output_shape() {
        let root = Philox::from_seed(3);
        let mut net = micro_resnet18(8, 3, 100, &root);
        assert_eq!(forward_shape(&mut net, 3, 8, &root), vec![2, 100]);
    }

    #[test]
    fn micro_resnet50_is_deeper_than_18() {
        let root = Philox::from_seed(4);
        let r18 = micro_resnet18(8, 3, 10, &root);
        let r50 = micro_resnet50(8, 3, 10, &root);
        assert!(r50.param_count() > r18.param_count());
        let mut net = micro_resnet50(8, 3, 10, &root);
        assert_eq!(forward_shape(&mut net, 3, 8, &root), vec![2, 10]);
    }

    #[test]
    fn same_seed_same_model() {
        let root = Philox::from_seed(5);
        let mut a = micro_resnet18(8, 3, 10, &root);
        let mut b = micro_resnet18(8, 3, 10, &root);
        assert_eq!(a.flat_weights(), b.flat_weights());
    }

    #[test]
    fn bottleneck_resnet_output_shape() {
        let root = Philox::from_seed(6);
        let mut net = micro_resnet_bottleneck(8, 3, 10, &root);
        assert_eq!(forward_shape(&mut net, 3, 8, &root), vec![2, 10]);
        assert!(net.layer_kinds().contains(&"bottleneck_block"));
    }

    #[test]
    fn medium_cnn_trainable_filter_sweep() {
        let root = Philox::from_seed(7);
        for k in [1usize, 3, 5, 7] {
            let mut net = medium_cnn_trainable(8, 3, 10, k, &root);
            assert_eq!(forward_shape(&mut net, 3, 8, &root), vec![2, 10], "k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn medium_cnn_rejects_even_filters() {
        medium_cnn_trainable(8, 3, 10, 4, &Philox::from_seed(0));
    }

    #[test]
    fn lenet_shape_and_structure() {
        let root = Philox::from_seed(8);
        let mut net = lenet5(8, 1, 10, &root);
        let mut exec = ExecutionContext::new(Device::cpu(), ExecutionMode::Default, 0);
        let x = Tensor::zeros(Shape::of(&[2, 1, 8, 8]));
        let y = net.forward(x, &mut exec, &root, 0, false);
        assert_eq!(y.shape().dims(), &[2, 10]);
        assert_eq!(
            net.layer_kinds().iter().filter(|k| **k == "conv2d").count(),
            2
        );
    }

    #[test]
    #[should_panic(expected = "divisible by 4")]
    fn odd_input_rejected() {
        small_cnn(10, 3, 10, false, &Philox::from_seed(0));
    }
}
