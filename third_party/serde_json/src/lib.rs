//! Offline stand-in for the `serde_json` crate (see `third_party/README.md`).
//!
//! Works against the simplified serde data model in the sibling `serde`
//! stand-in: [`to_value`]/[`to_string`] walk `serde::Serialize::to_value`,
//! [`from_str`] parses into a [`Value`] tree and hands it to
//! `serde::Deserialize::from_value`. Objects are `BTreeMap`s, so all output
//! is canonically key-ordered and byte-stable — results files produced by
//! this workspace diff cleanly across runs.

pub use serde::{Number, Value};

mod parse;
mod write;

pub use parse::parse_value;

/// Error type for serialization/deserialization failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::msg(e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(write::write_compact(&value.to_value()))
}

/// Serializes a value to a 2-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(write::write_pretty(&value.to_value()))
}

/// Parses a JSON string into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse::parse_value(s)?;
    Ok(T::from_value(&v)?)
}

/// Support for [`json!`]: a fresh element buffer the tt-muncher pushes into.
#[doc(hidden)]
pub fn __new_arr() -> Vec<Value> {
    Vec::new()
}

/// Builds a [`Value`] from JSON-ish syntax, like `serde_json::json!`.
///
/// Supports literals, `null`, nested `{...}`/`[...]`, string-literal keys,
/// and arbitrary expressions in value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        // Built by incremental push from the tt-muncher; vec![] can't apply.
        let mut arr = $crate::__new_arr();
        $crate::json_internal!(@arr arr () ($($tt)*));
        $crate::Value::Arr(arr)
    }};
    ({ $($tt:tt)* }) => {{
        let mut obj = ::std::collections::BTreeMap::new();
        $crate::json_internal!(@obj obj ($($tt)*));
        $crate::Value::Obj(obj)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).unwrap()
    };
}

/// Implementation details of [`json!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- objects: munch `"key": value, ...` ----------------------------
    (@obj $obj:ident ()) => {};
    (@obj $obj:ident (, $($rest:tt)*)) => {
        $crate::json_internal!(@obj $obj ($($rest)*));
    };
    // Nested object / array / null in value position.
    (@obj $obj:ident ($key:literal : { $($inner:tt)* } $($rest:tt)*)) => {
        $obj.insert(::std::string::String::from($key), $crate::json!({ $($inner)* }));
        $crate::json_internal!(@obj $obj ($($rest)*));
    };
    (@obj $obj:ident ($key:literal : [ $($inner:tt)* ] $($rest:tt)*)) => {
        $obj.insert(::std::string::String::from($key), $crate::json!([ $($inner)* ]));
        $crate::json_internal!(@obj $obj ($($rest)*));
    };
    (@obj $obj:ident ($key:literal : null $($rest:tt)*)) => {
        $obj.insert(::std::string::String::from($key), $crate::Value::Null);
        $crate::json_internal!(@obj $obj ($($rest)*));
    };
    // General expression: accumulate tokens up to a top-level comma.
    (@obj $obj:ident ($key:literal : $($rest:tt)*)) => {
        $crate::json_internal!(@objval $obj $key () ($($rest)*));
    };
    (@objval $obj:ident $key:literal ($($acc:tt)*) (, $($rest:tt)*)) => {
        $obj.insert(::std::string::String::from($key), $crate::to_value(&($($acc)*)).unwrap());
        $crate::json_internal!(@obj $obj ($($rest)*));
    };
    (@objval $obj:ident $key:literal ($($acc:tt)*) ()) => {
        $obj.insert(::std::string::String::from($key), $crate::to_value(&($($acc)*)).unwrap());
    };
    (@objval $obj:ident $key:literal ($($acc:tt)*) ($next:tt $($rest:tt)*)) => {
        $crate::json_internal!(@objval $obj $key ($($acc)* $next) ($($rest)*));
    };
    // ---- arrays: munch `value, ...` ------------------------------------
    (@arr $arr:ident () ()) => {};
    (@arr $arr:ident () (, $($rest:tt)*)) => {
        $crate::json_internal!(@arr $arr () ($($rest)*));
    };
    (@arr $arr:ident () ({ $($inner:tt)* } $($rest:tt)*)) => {
        $arr.push($crate::json!({ $($inner)* }));
        $crate::json_internal!(@arr $arr () ($($rest)*));
    };
    (@arr $arr:ident () ([ $($inner:tt)* ] $($rest:tt)*)) => {
        $arr.push($crate::json!([ $($inner)* ]));
        $crate::json_internal!(@arr $arr () ($($rest)*));
    };
    (@arr $arr:ident () (null $(, $($rest:tt)*)?)) => {
        $arr.push($crate::Value::Null);
        $crate::json_internal!(@arr $arr () ($($($rest)*)?));
    };
    (@arr $arr:ident ($($acc:tt)+) (, $($rest:tt)*)) => {
        $arr.push($crate::to_value(&($($acc)+)).unwrap());
        $crate::json_internal!(@arr $arr () ($($rest)*));
    };
    (@arr $arr:ident ($($acc:tt)+) ()) => {
        $arr.push($crate::to_value(&($($acc)+)).unwrap());
    };
    (@arr $arr:ident ($($acc:tt)*) ($next:tt $($rest:tt)*)) => {
        $crate::json_internal!(@arr $arr ($($acc)* $next) ($($rest)*));
    };
}

#[cfg(test)]
// Tests assert exact float values: bit-identical replay is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_values() {
        let xs = vec![1u32, 2, 3];
        let v = json!({
            "list": xs,
            "label": format!("run-{}", 7),
            "meta": { "ok": true, "missing": null },
            "raw": [1, 2, [3, 4]],
        });
        assert_eq!(v["label"], "run-7");
        assert_eq!(v["list"].as_array().unwrap().len(), 3);
        assert_eq!(v["meta"]["ok"], true);
        assert!(v["meta"]["missing"].is_null());
        assert_eq!(v["raw"][2][1], 4u64);
    }

    #[test]
    fn round_trip_via_strings() {
        let v = json!({"a": 1, "b": [true, "x"], "c": {"d": 2.5}});
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn output_is_canonically_ordered() {
        let v = json!({"zeta": 1, "alpha": 2});
        assert_eq!(to_string(&v).unwrap(), "{\"alpha\":2,\"zeta\":1}");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1f64, 1e-9, 123456.789, -2.5, 3.0] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x, "round-trip of {x} via {s}");
        }
    }

    #[test]
    fn escapes_survive() {
        let s = "line\n\"quoted\"\tand\\slash \u{1F600}";
        let j = to_string(&s).unwrap();
        let back: String = from_str(&j).unwrap();
        assert_eq!(back, s);
    }
}
