//! Activation and stochastic-regularization layers.

use super::Layer;
use detrand::{Philox, StreamId};
use hwsim::ExecutionContext;
use nstensor::{ops, Tensor};

/// Rectified linear unit.
#[derive(Debug, Default)]
pub struct Relu {
    mask: Vec<f32>,
}

impl Relu {
    /// Creates the layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(
        &mut self,
        mut x: Tensor,
        _exec: &mut ExecutionContext,
        _algo: &Philox,
        _step: u64,
        training: bool,
    ) -> Tensor {
        let mask = ops::relu_forward(&mut x);
        if training {
            self.mask = mask;
        }
        x
    }

    fn backward(&mut self, mut dy: Tensor, _exec: &mut ExecutionContext) -> Tensor {
        assert!(!self.mask.is_empty(), "backward before forward");
        ops::relu_backward(&mut dy, &self.mask);
        dy
    }

    fn kind(&self) -> &'static str {
        "relu"
    }
}

/// Inverted dropout: one of the paper's four algorithmic noise sources
/// ("stochastic layers", Table 1).
///
/// Masks are drawn from the run's *algorithmic* root via a dedicated
/// stream addressed by `(layer_id, step)` — so a fixed algorithmic seed
/// replays identical masks regardless of the executing hardware, which is
/// exactly what the paper's `IMPL` variant requires.
#[derive(Debug)]
pub struct Dropout {
    rate: f32,
    layer_id: u16,
    mask: Vec<f32>,
}

impl Dropout {
    /// Creates the layer.
    ///
    /// `layer_id` must be unique among the network's dropout layers (it
    /// addresses the layer's random stream).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1)`.
    pub fn new(rate: f32, layer_id: u16) -> Self {
        assert!(
            (0.0..1.0).contains(&rate),
            "dropout rate {rate} outside [0, 1)"
        );
        Self {
            rate,
            layer_id,
            mask: Vec::new(),
        }
    }

    /// The drop probability.
    pub fn rate(&self) -> f32 {
        self.rate
    }
}

impl Layer for Dropout {
    fn forward(
        &mut self,
        mut x: Tensor,
        _exec: &mut ExecutionContext,
        algo: &Philox,
        step: u64,
        training: bool,
    ) -> Tensor {
        if !training || self.rate == 0.0 {
            return x;
        }
        // Per-(layer, step) random access: each step owns a disjoint
        // counter range of the layer's stream.
        let stream_key = algo.derive(StreamId::DROPOUT.child(self.layer_id).salt());
        let mut rng = stream_key.rng_at((step as u128) << 64);
        let keep = 1.0 - self.rate;
        let scale = 1.0 / keep;
        self.mask = (0..x.len())
            .map(|_| if rng.next_f32() < keep { scale } else { 0.0 })
            .collect();
        for (v, m) in x.as_mut_slice().iter_mut().zip(&self.mask) {
            *v *= m;
        }
        x
    }

    fn backward(&mut self, mut dy: Tensor, _exec: &mut ExecutionContext) -> Tensor {
        if self.mask.is_empty() {
            return dy; // was a no-op forward (eval or rate 0)
        }
        for (g, m) in dy.as_mut_slice().iter_mut().zip(&self.mask) {
            *g *= m;
        }
        dy
    }

    fn kind(&self) -> &'static str {
        "dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwsim::{Device, ExecutionMode};
    use nstensor::Shape;

    fn exec() -> ExecutionContext {
        ExecutionContext::new(Device::cpu(), ExecutionMode::Default, 0)
    }

    #[test]
    fn relu_masks_negative_paths() {
        let root = Philox::from_seed(1);
        let mut l = Relu::new();
        let x = Tensor::from_vec(Shape::of(&[4]), vec![-1.0, 2.0, -3.0, 4.0]).unwrap();
        let y = l.forward(x, &mut exec(), &root, 0, true);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
        let dx = l.backward(Tensor::full(Shape::of(&[4]), 1.0), &mut exec());
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn dropout_keeps_expectation() {
        let root = Philox::from_seed(2);
        let mut l = Dropout::new(0.5, 0);
        let x = Tensor::full(Shape::of(&[10_000]), 1.0);
        let y = l.forward(x, &mut exec(), &root, 0, true);
        let mean: f64 = y.as_slice().iter().map(|&v| v as f64).sum::<f64>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // Values are either 0 or 1/keep.
        assert!(y
            .as_slice()
            .iter()
            .all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn dropout_inactive_at_eval() {
        let root = Philox::from_seed(2);
        let mut l = Dropout::new(0.5, 0);
        let x = Tensor::full(Shape::of(&[64]), 3.0);
        let y = l.forward(x.clone(), &mut exec(), &root, 0, false);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn dropout_masks_replay_with_seed() {
        let root = Philox::from_seed(7);
        let x = Tensor::full(Shape::of(&[256]), 1.0);
        let mut a = Dropout::new(0.3, 4);
        let mut b = Dropout::new(0.3, 4);
        let ya = a.forward(x.clone(), &mut exec(), &root, 9, true);
        let yb = b.forward(x.clone(), &mut exec(), &root, 9, true);
        assert_eq!(ya.as_slice(), yb.as_slice());
        // Different step → different mask.
        let yc = b.forward(x, &mut exec(), &root, 10, true);
        assert_ne!(ya.as_slice(), yc.as_slice());
    }

    #[test]
    fn dropout_masks_differ_across_layers() {
        let root = Philox::from_seed(7);
        let x = Tensor::full(Shape::of(&[256]), 1.0);
        let ya = Dropout::new(0.3, 0).forward(x.clone(), &mut exec(), &root, 0, true);
        let yb = Dropout::new(0.3, 1).forward(x, &mut exec(), &root, 0, true);
        assert_ne!(ya.as_slice(), yb.as_slice());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn dropout_rejects_rate_one() {
        Dropout::new(1.0, 0);
    }
}
