//! Fixture-driven proof that every rule fires and suppressions behave.
//!
//! Each fixture under `tests/fixtures/` is scanned as if it were workspace
//! source (the real workspace scan excludes the directory). Hazard lines
//! are marked with a `// fires:` comment, so the expectations below stay
//! readable next to the fixtures themselves.

use detlint::{Config, RuleId, ScanReport};

fn scan_fixture(name: &str, source: &str) -> ScanReport {
    detlint::scan_file(name, source, &Config::default())
}

fn lines_for(report: &ScanReport, rule: RuleId) -> Vec<u32> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

/// Lines in a fixture marked with a `// fires:` comment.
fn marked_lines(source: &str) -> Vec<u32> {
    source
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains("// fires:"))
        .map(|(i, _)| i as u32 + 1)
        .collect()
}

#[test]
fn dl001_fires_on_every_marked_line() {
    let src = include_str!("fixtures/dl001_hashmap_iter.rs");
    let report = scan_fixture("fixtures/dl001_hashmap_iter.rs", src);
    assert_eq!(lines_for(&report, RuleId::Dl001), marked_lines(src));
    assert!(report.problems.is_empty());
}

#[test]
fn dl002_fires_on_every_marked_line() {
    let src = include_str!("fixtures/dl002_entropy.rs");
    let report = scan_fixture("fixtures/dl002_entropy.rs", src);
    assert_eq!(lines_for(&report, RuleId::Dl002), marked_lines(src));
}

#[test]
fn dl003_fires_on_every_marked_line() {
    let src = include_str!("fixtures/dl003_wallclock.rs");
    let report = scan_fixture("fixtures/dl003_wallclock.rs", src);
    assert_eq!(lines_for(&report, RuleId::Dl003), marked_lines(src));
}

#[test]
fn dl004_fires_on_every_marked_line() {
    let src = include_str!("fixtures/dl004_float_sum.rs");
    let report = scan_fixture("fixtures/dl004_float_sum.rs", src);
    assert_eq!(lines_for(&report, RuleId::Dl004), marked_lines(src));
}

#[test]
fn dl005_fires_on_every_marked_line() {
    let src = include_str!("fixtures/dl005_parallel.rs");
    let report = scan_fixture("fixtures/dl005_parallel.rs", src);
    assert_eq!(lines_for(&report, RuleId::Dl005), marked_lines(src));
}

#[test]
fn dl006_fires_on_every_marked_line() {
    let src = include_str!("fixtures/dl006_taint_flow.rs");
    let report = scan_fixture("fixtures/dl006_taint_flow.rs", src);
    assert_eq!(lines_for(&report, RuleId::Dl006), marked_lines(src));
    assert!(report.problems.is_empty());
}

#[test]
fn dl007_fires_on_every_marked_line() {
    let src = include_str!("fixtures/dl007_entropy_boundary.rs");
    let report = scan_fixture("fixtures/dl007_entropy_boundary.rs", src);
    assert_eq!(lines_for(&report, RuleId::Dl007), marked_lines(src));
}

#[test]
fn dl008_fires_on_every_marked_line() {
    // Scanned with the registry the workspace uses: NS_REPLICAS is a
    // registered Settings knob, the fixture's other names are not.
    let config = Config::parse("[rules.DL008]\nregistered = [\"NS_REPLICAS\"]\n").unwrap();
    let src = include_str!("fixtures/dl008_env_knob.rs");
    let report = detlint::scan_file("fixtures/dl008_env_knob.rs", src, &config);
    assert_eq!(lines_for(&report, RuleId::Dl008), marked_lines(src));
}

#[test]
fn dl009_fires_on_stale_allows_under_audit() {
    let src = include_str!("fixtures/dl009_stale_allow.rs");
    let audit = Config {
        audit: true,
        ..Config::default()
    };
    let report = detlint::scan_file("fixtures/dl009_stale_allow.rs", src, &audit);
    assert_eq!(lines_for(&report, RuleId::Dl009), marked_lines(src));
    // The load-bearing allow stays a suppression, not a finding.
    assert_eq!(report.suppressed.len(), 1);
    assert!(!report.clean());

    // Without --audit the same allow is only a warning.
    let report = scan_fixture("fixtures/dl009_stale_allow.rs", src);
    assert!(lines_for(&report, RuleId::Dl009).is_empty());
    assert_eq!(report.unused_allows.len(), 1);
    assert!(report.clean());
}

/// Regression: a suppression on a statement's first line covers findings
/// reported on continuation lines of the same multi-line expression.
#[test]
fn suppressions_cover_multiline_statements() {
    let src = include_str!("fixtures/multiline_suppress.rs");
    let report = scan_fixture("fixtures/multiline_suppress.rs", src);
    assert!(
        report.findings.is_empty(),
        "continuation-line findings escaped their allows: {:?}",
        report.findings
    );
    assert_eq!(report.suppressed.len(), 2);
    assert!(
        report.unused_allows.is_empty(),
        "{:?}",
        report.unused_allows
    );
    assert!(report.problems.is_empty());
}

#[test]
fn every_rule_has_fixture_coverage() {
    // Guards against a rule existing with no fixture proving it fires.
    let all = [
        include_str!("fixtures/dl001_hashmap_iter.rs"),
        include_str!("fixtures/dl002_entropy.rs"),
        include_str!("fixtures/dl003_wallclock.rs"),
        include_str!("fixtures/dl004_float_sum.rs"),
        include_str!("fixtures/dl005_parallel.rs"),
        include_str!("fixtures/dl006_taint_flow.rs"),
        include_str!("fixtures/dl007_entropy_boundary.rs"),
        include_str!("fixtures/dl008_env_knob.rs"),
    ];
    let mut fired: Vec<RuleId> = Vec::new();
    for (i, src) in all.iter().enumerate() {
        let report = scan_fixture(&format!("fixtures/f{i}.rs"), src);
        fired.extend(report.findings.iter().map(|f| f.rule));
    }
    // DL009 only exists under --audit.
    let audit = Config {
        audit: true,
        ..Config::default()
    };
    let report = detlint::scan_file(
        "fixtures/dl009_stale_allow.rs",
        include_str!("fixtures/dl009_stale_allow.rs"),
        &audit,
    );
    fired.extend(report.findings.iter().map(|f| f.rule));
    for rule in RuleId::ALL {
        assert!(
            fired.contains(&rule),
            "{} has no firing fixture",
            rule.as_str()
        );
    }
}

#[test]
fn valid_suppressions_silence_every_hazard() {
    let src = include_str!("fixtures/suppressed.rs");
    let report = scan_fixture("fixtures/suppressed.rs", src);
    assert!(
        report.findings.is_empty(),
        "unsuppressed: {:?}",
        report.findings
    );
    assert!(
        report.problems.is_empty(),
        "problems: {:?}",
        report.problems
    );
    assert!(
        report.unused_allows.is_empty(),
        "unused: {:?}",
        report.unused_allows
    );
    assert_eq!(report.suppressed.len(), RuleId::SUPPRESSIBLE.len());
    // One suppression per suppressible rule (DL009 polices allows and
    // cannot itself be suppressed), each with its reason preserved.
    let mut rules: Vec<RuleId> = report.suppressed.iter().map(|(f, _)| f.rule).collect();
    rules.sort();
    assert_eq!(rules, RuleId::SUPPRESSIBLE);
    assert!(report
        .suppressed
        .iter()
        .all(|(_, reason)| !reason.is_empty()));
    assert!(report.clean());
}

#[test]
fn clean_fixture_has_no_findings() {
    let src = include_str!("fixtures/clean.rs");
    let report = scan_fixture("fixtures/clean.rs", src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert!(report.problems.is_empty());
    assert!(report.clean());
}

#[test]
fn malformed_allows_fail_the_gate() {
    let src = include_str!("fixtures/bad_allow.rs");
    let report = scan_fixture("fixtures/bad_allow.rs", src);
    // Three malformed annotations, and none of them silences its finding.
    assert_eq!(report.problems.len(), 3);
    assert_eq!(lines_for(&report, RuleId::Dl004).len(), 3);
    assert!(!report.clean());
    let messages: String = report
        .problems
        .iter()
        .map(|p| p.message.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(messages.contains("missing a reason"));
    assert!(messages.contains("unknown rule"));
}

#[test]
fn per_rule_exemptions_disable_only_that_rule() {
    let mut config = Config::default();
    config
        .exempt
        .insert(RuleId::Dl004, vec!["crates/special".to_string()]);
    let src =
        "fn f(xs: &[f32]) -> f32 {\n let t = std::time::Instant::now();\n xs.iter().sum()\n}\n";
    let exempted = detlint::scan_file("crates/special/src/lib.rs", src, &config);
    assert!(lines_for(&exempted, RuleId::Dl004).is_empty());
    assert_eq!(lines_for(&exempted, RuleId::Dl003).len(), 1);
    let normal = detlint::scan_file("crates/other/src/lib.rs", src, &config);
    assert_eq!(lines_for(&normal, RuleId::Dl004).len(), 1);
}

/// The fleet supervisor's `clock` shim is the one sanctioned wall-clock
/// read in `noisescope::fleet` — scanned here as real workspace source,
/// not a synthetic fixture.
#[test]
fn fleet_clock_shim_is_the_only_sanctioned_wallclock_read() {
    let src = include_str!("../../core/src/fleet.rs");
    let report = detlint::scan_file("crates/core/src/fleet.rs", src, &Config::default());
    assert!(
        lines_for(&report, RuleId::Dl003).is_empty(),
        "fleet.rs must have no unsuppressed wall-clock reads: {:?}",
        report.findings
    );
    assert!(report.problems.is_empty(), "{:?}", report.problems);
    let dl003: Vec<&(detlint::Finding, String)> = report
        .suppressed
        .iter()
        .filter(|(f, _)| f.rule == RuleId::Dl003)
        .collect();
    assert_eq!(
        dl003.len(),
        1,
        "exactly one sanctioned clock read (the shim), got {dl003:?}"
    );
    assert!(
        dl003[0].1.contains("watchdog"),
        "the shim's reason must name its purpose: {:?}",
        dl003[0].1
    );

    // Neutralize the allow (preserving line numbers): the shim's
    // `Instant::now()` must then fire DL003 on its own line — proof the
    // suppression is load-bearing and covers nothing else.
    let shim_line = dl003[0].0.line;
    let stripped = src.replace("// detlint::allow(DL003", "// allow-was-here(DL003");
    assert_ne!(src, stripped, "the shim's allow comment must exist");
    let report = detlint::scan_file("crates/core/src/fleet.rs", &stripped, &Config::default());
    assert_eq!(
        lines_for(&report, RuleId::Dl003),
        vec![shim_line],
        "without the allow, the shim itself must trip DL003"
    );

    // And a raw Instant::now() added anywhere else in the supervisor
    // still fires: the shim does not whitelist the file.
    let patched = format!(
        "{src}\nfn rogue_deadline() -> std::time::Instant {{ std::time::Instant::now() }}\n"
    );
    let report = detlint::scan_file("crates/core/src/fleet.rs", &patched, &Config::default());
    assert_eq!(
        lines_for(&report, RuleId::Dl003).len(),
        1,
        "a raw wall-clock read outside the shim must fire DL003"
    );
}

#[test]
fn test_code_is_skipped_unless_configured() {
    let src = "#[cfg(test)]\nmod tests {\n #[test]\n fn t() { let x: f64 = v.iter().sum(); }\n}\n";
    let default_scan = detlint::scan_file("crates/x/src/lib.rs", src, &Config::default());
    assert!(default_scan.findings.is_empty());
    let config = Config {
        scan_test_code: true,
        ..Config::default()
    };
    let full_scan = detlint::scan_file("crates/x/src/lib.rs", src, &config);
    assert_eq!(lines_for(&full_scan, RuleId::Dl004).len(), 1);
}
