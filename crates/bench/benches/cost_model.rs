//! The determinism cost pipeline (Figures 7 and 8): kernel selection and
//! workload profiling over the full ten-network suite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hwsim::{profile_workload, select_conv_kernels, Device, ExecutionMode};
use nnet::arch;
use nstensor::ConvGeometry;

fn bench_cost_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_model");
    group.bench_function("autotune_one_conv", |b| {
        let geom = ConvGeometry::new(64, 128, 3, 1, 1, 56, 56);
        b.iter(|| {
            std::hint::black_box(select_conv_kernels(
                &geom,
                64,
                &Device::v100(),
                ExecutionMode::Default,
            ))
        });
    });
    for name in ["resnet50", "vgg19", "mobilenet_v2"] {
        group.bench_with_input(
            BenchmarkId::new("profile_100_steps", name),
            &name,
            |b, name| {
                let desc = match *name {
                    "resnet50" => arch::resnet50(64),
                    "vgg19" => arch::vgg19(64),
                    _ => arch::mobilenet_v2(64),
                };
                b.iter(|| {
                    std::hint::black_box(profile_workload(
                        &desc.ops,
                        &Device::p100(),
                        ExecutionMode::Deterministic,
                        100,
                    ))
                });
            },
        );
    }
    group.bench_function("fig8a_full_sweep", |b| {
        b.iter(|| std::hint::black_box(noisescope::experiments::cost::fig8a(64)));
    });
    group.bench_function("fig8b_full_sweep", |b| {
        b.iter(|| std::hint::black_box(noisescope::experiments::cost::fig8b(64)));
    });
    group.finish();
}

criterion_group!(benches, bench_cost_model);
criterion_main!(benches);
