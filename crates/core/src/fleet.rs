//! Process-isolated fleet execution: a supervised worker pool that runs
//! each replica in its own OS process, bit-for-bit identical to the
//! in-process [`crate::runner::run_variant`].
//!
//! The in-process supervisor recovers from everything `catch_unwind` can
//! catch — but a wedged kernel ([`hwsim::FaultKind::Hang`]) stalls the
//! thread forever, and a driver-level `abort`
//! ([`hwsim::FaultKind::Abort`]) takes the whole experiment down. Real
//! training fleets face both, so this module adds the missing isolation
//! boundary:
//!
//! - **Workers** are re-executions of the `repro` binary in a hidden
//!   `--worker` mode ([`worker_main`]). Each worker runs exactly one
//!   `(replica, attempt)`, reads its [`ReplicaSpec`] from stdin and
//!   writes [`Heartbeat`] / result / [`WorkerFault`] frames to stdout.
//! - **The supervisor** ([`run_variant_fleet`]) dispatches pending
//!   replicas to a bounded pool of worker processes, watches each with a
//!   heartbeat watchdog plus an absolute wall-clock deadline, kills
//!   stalled or crashed workers, classifies how they died (clean exit /
//!   panic exit code / signal / timeout), and re-dispatches under the
//!   same bounded retry budget as the in-process supervisor, with a
//!   deterministic capped-exponential backoff between attempts.
//! - **Durability** reuses [`crate::resume::CheckpointStore`] cells
//!   verbatim: workers sink epoch checkpoints to the cell directory, so
//!   a killed worker's retry resumes from the last durable checkpoint
//!   instead of retraining from scratch; completed results/statuses are
//!   written by the supervisor (single writer) in the exact format
//!   `run_variant_resumable` reads.
//!
//! **Bit-identity.** A replica is a pure function of `(task, device,
//! variant, settings, replica)`; the IPC layer ships results with the
//! byte-exact codec of [`crate::resume`] (floats as `to_bits`), and
//! supervision knobs (`worker_timeout_ms`, `heartbeat_every_steps`,
//! process count) shape only *when* workers are killed, never *what* a
//! replica computes. A fleet run — even one whose workers were killed
//! and re-dispatched — therefore reproduces the in-process fleet
//! bit-for-bit. The fleet end-to-end tests and the CI golden comparison
//! assert exactly this.
//!
//! Wire format (all integers little-endian):
//!
//! ```text
//! frame  := magic:u32 version:u32 len:u32 payload[len]
//! payload:= tag:u8 body
//! tags   : 1 spec, 2 heartbeat, 3 result, 4 fault
//! ```
//!
//! The decoder treats anything malformed — bad magic, unknown version,
//! oversized length, undecodable payload — as corruption and resynchronizes
//! by scanning forward one byte at a time, so a torn or garbled stream
//! degrades into skipped bytes, never a wedged supervisor.

use crate::resume::{self, CheckpointStore};
use crate::runner::{
    run_replica_with, PreparedTask, ReplicaOptions, ReplicaResult, ReplicaStatus, VariantRuns,
};
use crate::settings::ExperimentSettings;
use crate::task::{DataSource, ModelKind, TaskSpec};
use crate::variant::NoiseVariant;
use hwsim::{ChaosConfig, Device};
use nnet::checkpoint::Checkpoint;
use nnet::schedule::LrSchedule;
use nnet::trainer::TrainConfig;
use std::ffi::OsString;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Magic prefix of every IPC frame ("NSFL").
pub const FRAME_MAGIC: u32 = 0x4E53_464C;
/// Wire-protocol version; a mismatch is treated as corruption.
pub const PROTOCOL_VERSION: u32 = 1;
/// Upper bound on a frame payload. A length above this is corruption
/// (a real result frame is a few hundred KiB), and capping it keeps a
/// garbled length field from triggering a giant allocation.
pub const MAX_FRAME_LEN: u32 = 256 << 20;

const TAG_SPEC: u8 = 1;
const TAG_HEARTBEAT: u8 = 2;
const TAG_RESULT: u8 = 3;
const TAG_FAULT: u8 = 4;

/// Supervisor event-loop poll interval.
const POLL: Duration = Duration::from_millis(25);
/// After a worker exits, how long the supervisor waits for in-flight
/// frames when the pipe has not reached EOF (an orphaned grandchild can
/// hold it open indefinitely).
const DRAIN_GRACE: Duration = Duration::from_millis(500);
/// The absolute per-attempt deadline is the watchdog window times this
/// factor — a backstop against a worker that heartbeats forever without
/// ever finishing.
const HARD_DEADLINE_FACTOR: u32 = 60;
/// First retry backoff; doubles per retry up to [`BACKOFF_CAP_MS`].
const BACKOFF_BASE_MS: u64 = 50;
/// Retry backoff ceiling.
const BACKOFF_CAP_MS: u64 = 2000;

/// Monotonic-clock shim for supervision deadlines.
///
/// Reading the wall clock in result-producing code is exactly what
/// detlint's DL003 exists to catch, but a watchdog cannot exist without
/// a clock. This module is the one sanctioned source of time in the
/// fleet layer: deadlines and stall detection only — nothing read here
/// ever feeds a replica result, a report, or any other experiment
/// artifact. Raw `Instant::now()` anywhere else in this file still
/// trips DL003 (asserted by a fixture test).
pub mod clock {
    use std::time::Instant;

    /// The current monotonic instant, for supervision deadlines only.
    pub fn now() -> Instant {
        // detlint::allow(DL003, reason = "watchdog deadlines only; never feeds replica results or reports")
        Instant::now()
    }
}

// ---------------------------------------------------------------------------
// Frame types
// ---------------------------------------------------------------------------

/// Everything a worker process needs to run one `(replica, attempt)`,
/// shipped supervisor → worker as the first (and only) stdin frame.
#[derive(Debug, Clone)]
pub struct ReplicaSpec {
    /// The task to train.
    pub task: TaskSpec,
    /// Preset device name (see [`device_by_name`]); fleet mode does not
    /// support custom devices because [`Device`] holds a `&'static str`.
    pub device_name: String,
    /// The noise variant.
    pub variant: NoiseVariant,
    /// Full experiment settings (the worker derives every seed from
    /// these plus the replica index, exactly like the in-process path).
    pub settings: ExperimentSettings,
    /// Replica index.
    pub replica: u32,
    /// Which retry this is (0 = first execution); selects the chaos
    /// fault schedule.
    pub attempt: u32,
    /// The [`CheckpointStore`] cell directory: the worker loads/saves
    /// its durable epoch checkpoints here. Must be valid UTF-8 (checked
    /// by the supervisor before dispatch).
    pub cell_dir: PathBuf,
    /// Sink an epoch checkpoint every N completed epochs (0 disables).
    pub checkpoint_every_epochs: u32,
}

impl ReplicaSpec {
    /// Resolves the spec's device preset.
    pub fn device(&self) -> Option<Device> {
        device_by_name(&self.device_name)
    }
}

/// Worker liveness proof, emitted every
/// [`ExperimentSettings::heartbeat_every_steps`] optimizer steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Heartbeat {
    /// Replica index.
    pub replica: u32,
    /// Attempt number.
    pub attempt: u32,
    /// Global optimizer step reached.
    pub step: u64,
}

/// A structured training failure the worker survived long enough to
/// report (launch failure, divergence, ...). The graceful sibling of a
/// crash: the worker still exits 0 after delivering this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFault {
    /// Replica index.
    pub replica: u32,
    /// Attempt number.
    pub attempt: u32,
    /// Rendered [`nnet::trainer::TrainError`].
    pub reason: String,
}

/// One IPC frame.
#[derive(Debug, Clone)]
pub enum Frame {
    /// Supervisor → worker: the work order.
    Spec(Box<ReplicaSpec>),
    /// Worker → supervisor: liveness.
    Heartbeat(Heartbeat),
    /// Worker → supervisor: the finished replica (byte-exact floats, the
    /// same codec [`crate::resume`] persists).
    Result(Box<ReplicaResult>),
    /// Worker → supervisor: a graceful training failure.
    Fault(WorkerFault),
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

/// Little-endian payload writer. Field order *is* the codec: encode and
/// decode below must visit fields identically, which the round-trip
/// tests (unit + property) pin down.
#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn size(&mut self, v: usize) {
        self.u64(v as u64);
    }
    /// Bit-exact float (`to_bits`): text formatting cannot promise
    /// bit-identity, so no float ever crosses the wire as text.
    fn f32b(&mut self, v: f32) {
        self.u32(v.to_bits());
    }
    fn flag(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn str(&mut self, s: &str) {
        self.size(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }
}

fn bad(detail: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("fleet frame: {detail}"))
}

/// Bounds-checked little-endian payload reader; truncated or foreign
/// bytes surface as [`io::ErrorKind::InvalidData`], never a panic.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Dec<'_> {
    fn take(&mut self, n: usize) -> io::Result<&[u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| bad("overflow"))?;
        if end > self.buf.len() {
            return Err(bad("truncated"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn size(&mut self) -> io::Result<usize> {
        Ok(self.u64()? as usize)
    }
    fn f32b(&mut self) -> io::Result<f32> {
        Ok(f32::from_bits(self.u32()?))
    }
    fn flag(&mut self) -> io::Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(bad(&format!("bad flag byte {b}"))),
        }
    }
    /// A declared byte length, sanity-checked against the bytes that
    /// remain so a corrupt length cannot trigger a huge allocation.
    fn len(&mut self) -> io::Result<usize> {
        let n = self.u64()? as usize;
        if n > self.buf.len() - self.pos {
            return Err(bad("length exceeds payload"));
        }
        Ok(n)
    }
    fn str(&mut self) -> io::Result<String> {
        let n = self.len()?;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| bad("non-UTF-8 string"))
    }
    fn opt_u64(&mut self) -> io::Result<Option<u64>> {
        Ok(if self.flag()? {
            Some(self.u64()?)
        } else {
            None
        })
    }
}

fn enc_model(e: &mut Enc, m: &ModelKind) {
    match *m {
        ModelKind::SmallCnn { with_bn } => {
            e.u8(0);
            e.flag(with_bn);
        }
        ModelKind::SmallCnnDropout { rate } => {
            e.u8(1);
            e.f32b(rate);
        }
        ModelKind::MicroResNet18 => e.u8(2),
        ModelKind::MicroResNet50 => e.u8(3),
        ModelKind::MicroResNetBottleneck => e.u8(4),
        ModelKind::LeNet5 => e.u8(5),
        ModelKind::MediumCnn { k } => {
            e.u8(6);
            e.size(k);
        }
    }
}

fn dec_model(d: &mut Dec<'_>) -> io::Result<ModelKind> {
    Ok(match d.u8()? {
        0 => ModelKind::SmallCnn { with_bn: d.flag()? },
        1 => ModelKind::SmallCnnDropout { rate: d.f32b()? },
        2 => ModelKind::MicroResNet18,
        3 => ModelKind::MicroResNet50,
        4 => ModelKind::MicroResNetBottleneck,
        5 => ModelKind::LeNet5,
        6 => ModelKind::MediumCnn { k: d.size()? },
        t => return Err(bad(&format!("unknown model tag {t}"))),
    })
}

fn enc_data(e: &mut Enc, data: &DataSource) {
    match data {
        DataSource::Gaussian(g) => {
            e.u8(0);
            e.size(g.classes);
            e.size(g.superclasses);
            e.size(g.hw);
            e.size(g.channels);
            e.size(g.train_per_class);
            e.size(g.test_per_class);
            e.f32b(g.class_sep);
            e.f32b(g.super_sep);
            e.f32b(g.noise_std);
            e.f32b(g.label_noise);
            e.u64(g.seed);
        }
        DataSource::Celeba(c) => {
            e.u8(1);
            e.size(c.train_len);
            e.size(c.test_len);
            e.size(c.hw);
            e.size(c.channels);
            e.f32b(c.signal);
            e.f32b(c.noise_std);
            e.u64(c.seed);
        }
    }
}

fn dec_data(d: &mut Dec<'_>) -> io::Result<DataSource> {
    Ok(match d.u8()? {
        0 => DataSource::Gaussian(nsdata::GaussianSpec {
            classes: d.size()?,
            superclasses: d.size()?,
            hw: d.size()?,
            channels: d.size()?,
            train_per_class: d.size()?,
            test_per_class: d.size()?,
            class_sep: d.f32b()?,
            super_sep: d.f32b()?,
            noise_std: d.f32b()?,
            label_noise: d.f32b()?,
            seed: d.u64()?,
        }),
        1 => DataSource::Celeba(nsdata::CelebaSpec {
            train_len: d.size()?,
            test_len: d.size()?,
            hw: d.size()?,
            channels: d.size()?,
            signal: d.f32b()?,
            noise_std: d.f32b()?,
            seed: d.u64()?,
        }),
        t => return Err(bad(&format!("unknown data tag {t}"))),
    })
}

fn enc_schedule(e: &mut Enc, s: &LrSchedule) {
    match *s {
        LrSchedule::Constant { lr } => {
            e.u8(0);
            e.f32b(lr);
        }
        LrSchedule::StepDecay {
            base_lr,
            factor,
            every,
        } => {
            e.u8(1);
            e.f32b(base_lr);
            e.f32b(factor);
            e.u32(every);
        }
        LrSchedule::WarmupCosine {
            base_lr,
            warmup_epochs,
            total_epochs,
        } => {
            e.u8(2);
            e.f32b(base_lr);
            e.u32(warmup_epochs);
            e.u32(total_epochs);
        }
    }
}

fn dec_schedule(d: &mut Dec<'_>) -> io::Result<LrSchedule> {
    Ok(match d.u8()? {
        0 => LrSchedule::Constant { lr: d.f32b()? },
        1 => LrSchedule::StepDecay {
            base_lr: d.f32b()?,
            factor: d.f32b()?,
            every: d.u32()?,
        },
        2 => LrSchedule::WarmupCosine {
            base_lr: d.f32b()?,
            warmup_epochs: d.u32()?,
            total_epochs: d.u32()?,
        },
        t => return Err(bad(&format!("unknown schedule tag {t}"))),
    })
}

fn enc_train(e: &mut Enc, t: &TrainConfig) {
    e.u32(t.epochs);
    e.size(t.batch_size);
    enc_schedule(e, &t.schedule);
    e.f32b(t.sgd.momentum);
    e.f32b(t.sgd.weight_decay);
    e.flag(t.shuffle);
    e.opt_u64(t.shuffle_seed_override);
    e.size(t.data_parallel_workers);
    e.opt_u64(t.augment_seed_override);
    e.opt_u64(t.dropout_seed_override);
}

fn dec_train(d: &mut Dec<'_>) -> io::Result<TrainConfig> {
    Ok(TrainConfig {
        epochs: d.u32()?,
        batch_size: d.size()?,
        schedule: dec_schedule(d)?,
        sgd: nnet::optim::SgdConfig {
            momentum: d.f32b()?,
            weight_decay: d.f32b()?,
        },
        shuffle: d.flag()?,
        shuffle_seed_override: d.opt_u64()?,
        data_parallel_workers: d.size()?,
        augment_seed_override: d.opt_u64()?,
        dropout_seed_override: d.opt_u64()?,
    })
}

fn enc_settings(e: &mut Enc, s: &ExperimentSettings) {
    e.u32(s.replicas);
    e.u64(s.base_seed);
    e.u64(s.entropy_salt);
    e.f32b(s.amp_ulps);
    e.f32b(s.epochs_scale);
    e.size(s.exec_threads);
    e.u32(s.retry_budget);
    match &s.chaos {
        Some(c) => {
            e.u8(1);
            e.u64(c.seed);
            e.u32(c.launch_failures);
            e.u32(c.kernel_panics);
            e.u32(c.nan_poisons);
            e.u32(c.hangs);
            e.u32(c.aborts);
            e.u32(c.hang_ms);
            e.flag(c.persistent);
        }
        None => e.u8(0),
    }
    e.u64(s.worker_timeout_ms);
    e.u32(s.heartbeat_every_steps);
}

fn dec_settings(d: &mut Dec<'_>) -> io::Result<ExperimentSettings> {
    Ok(ExperimentSettings {
        replicas: d.u32()?,
        base_seed: d.u64()?,
        entropy_salt: d.u64()?,
        amp_ulps: d.f32b()?,
        epochs_scale: d.f32b()?,
        exec_threads: d.size()?,
        retry_budget: d.u32()?,
        chaos: if d.flag()? {
            Some(ChaosConfig {
                seed: d.u64()?,
                launch_failures: d.u32()?,
                kernel_panics: d.u32()?,
                nan_poisons: d.u32()?,
                hangs: d.u32()?,
                aborts: d.u32()?,
                hang_ms: d.u32()?,
                persistent: d.flag()?,
            })
        } else {
            None
        },
        worker_timeout_ms: d.u64()?,
        heartbeat_every_steps: d.u32()?,
    })
}

fn enc_variant(e: &mut Enc, v: NoiseVariant) {
    e.u8(match v {
        NoiseVariant::AlgoImpl => 0,
        NoiseVariant::Algo => 1,
        NoiseVariant::Impl => 2,
        NoiseVariant::Control => 3,
    });
}

fn dec_variant(d: &mut Dec<'_>) -> io::Result<NoiseVariant> {
    Ok(match d.u8()? {
        0 => NoiseVariant::AlgoImpl,
        1 => NoiseVariant::Algo,
        2 => NoiseVariant::Impl,
        3 => NoiseVariant::Control,
        t => return Err(bad(&format!("unknown variant tag {t}"))),
    })
}

fn enc_spec(e: &mut Enc, s: &ReplicaSpec) {
    e.str(&s.task.name);
    enc_model(e, &s.task.model);
    enc_data(e, &s.task.data);
    enc_train(e, &s.task.train);
    e.flag(s.task.augment);
    e.str(&s.device_name);
    enc_variant(e, s.variant);
    enc_settings(e, &s.settings);
    e.u32(s.replica);
    e.u32(s.attempt);
    // Checked UTF-8 before dispatch; a lossy fallback here can only hit
    // paths the supervisor already rejected.
    e.str(&s.cell_dir.to_string_lossy());
    e.u32(s.checkpoint_every_epochs);
}

fn dec_spec(d: &mut Dec<'_>) -> io::Result<ReplicaSpec> {
    Ok(ReplicaSpec {
        task: TaskSpec {
            name: d.str()?,
            model: dec_model(d)?,
            data: dec_data(d)?,
            train: dec_train(d)?,
            augment: d.flag()?,
        },
        device_name: d.str()?,
        variant: dec_variant(d)?,
        settings: dec_settings(d)?,
        replica: d.u32()?,
        attempt: d.u32()?,
        cell_dir: PathBuf::from(d.str()?),
        checkpoint_every_epochs: d.u32()?,
    })
}

fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut e = Enc::default();
    match frame {
        Frame::Spec(s) => {
            e.u8(TAG_SPEC);
            enc_spec(&mut e, s);
        }
        Frame::Heartbeat(h) => {
            e.u8(TAG_HEARTBEAT);
            e.u32(h.replica);
            e.u32(h.attempt);
            e.u64(h.step);
        }
        Frame::Result(r) => {
            e.u8(TAG_RESULT);
            // The byte-exact result codec shared with the checkpoint
            // store: what crosses the pipe is what lands on disk.
            e.buf.extend_from_slice(&resume::encode_result(r));
        }
        Frame::Fault(f) => {
            e.u8(TAG_FAULT);
            e.u32(f.replica);
            e.u32(f.attempt);
            e.str(&f.reason);
        }
    }
    e.buf
}

fn decode_payload(payload: &[u8]) -> io::Result<Frame> {
    let mut d = Dec {
        buf: payload,
        pos: 0,
    };
    let frame = match d.u8()? {
        TAG_SPEC => Frame::Spec(Box::new(dec_spec(&mut d)?)),
        TAG_HEARTBEAT => Frame::Heartbeat(Heartbeat {
            replica: d.u32()?,
            attempt: d.u32()?,
            step: d.u64()?,
        }),
        TAG_RESULT => {
            // `decode_result` enforces its own trailing-bytes check.
            return Ok(Frame::Result(Box::new(resume::decode_result(
                &payload[1..],
            )?)));
        }
        TAG_FAULT => Frame::Fault(WorkerFault {
            replica: d.u32()?,
            attempt: d.u32()?,
            reason: d.str()?,
        }),
        t => return Err(bad(&format!("unknown frame tag {t}"))),
    };
    if d.pos != payload.len() {
        return Err(bad("trailing bytes"));
    }
    Ok(frame)
}

/// Encodes one length-prefixed frame (header + payload).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let payload = encode_payload(frame);
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode_frame(frame))?;
    w.flush()
}

/// Incremental frame decoder over an arbitrarily-chunked byte stream.
///
/// Feed bytes with [`FrameDecoder::push`]; drain complete frames with
/// [`FrameDecoder::next_frame`]. Corruption — bad magic, wrong version,
/// an oversized length, an undecodable payload — is never fatal: the
/// decoder advances one byte and rescans for the next plausible header,
/// counting what it discarded in [`FrameDecoder::skipped`]. A partial
/// frame simply waits for more bytes.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
    skipped: u64,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes discarded while resynchronizing past corruption.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// The next complete frame, or `None` until more bytes arrive.
    pub fn next_frame(&mut self) -> Option<Frame> {
        loop {
            let rem = &self.buf[self.pos..];
            if rem.len() < 12 {
                self.compact();
                return None;
            }
            let magic = u32::from_le_bytes(rem[0..4].try_into().expect("4 bytes"));
            let version = u32::from_le_bytes(rem[4..8].try_into().expect("4 bytes"));
            let len = u32::from_le_bytes(rem[8..12].try_into().expect("4 bytes"));
            if magic != FRAME_MAGIC || version != PROTOCOL_VERSION || len > MAX_FRAME_LEN {
                self.pos += 1;
                self.skipped += 1;
                continue;
            }
            let total = 12 + len as usize;
            if rem.len() < total {
                self.compact();
                return None;
            }
            match decode_payload(&rem[12..total]) {
                Ok(frame) => {
                    self.pos += total;
                    self.compact();
                    return Some(frame);
                }
                Err(_) => {
                    // A header-shaped prefix over garbage; a true frame
                    // may start inside it, so advance one byte, not
                    // `total`.
                    self.pos += 1;
                    self.skipped += 1;
                }
            }
        }
    }

    fn compact(&mut self) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// Resolves a [`Device`] preset by its display name. Fleet IPC encodes
/// devices by name because [`Device`] holds a `&'static str`; custom
/// devices are therefore unsupported in fleet mode (the supervisor
/// rejects them before dispatch).
pub fn device_by_name(name: &str) -> Option<Device> {
    Some(match name {
        "P100" => Device::p100(),
        "V100" => Device::v100(),
        "RTX5000" => Device::rtx5000(),
        "RTX5000-TC" => Device::rtx5000_tensor_cores(),
        "T4" => Device::t4(),
        "TPUv2" => Device::tpu_v2(),
        "CPU" => Device::cpu(),
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

/// Entry point of the hidden `--worker` mode of the `repro` binary: runs
/// exactly one `(replica, attempt)` from a [`ReplicaSpec`] frame on
/// stdin and reports over stdout. Returns the process exit code.
///
/// Exit codes: `0` — protocol complete (a result *or* a graceful
/// [`WorkerFault`] was delivered); `2` — the worker could not even start
/// (no spec, invalid spec, unknown device). Training panics are *not*
/// caught: the process dies with the standard panic exit code (101) or a
/// signal, and the supervisor classifies that from the outside — that
/// asymmetry is the entire point of process isolation.
pub fn worker_main() -> i32 {
    match worker_run() {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("fleet worker: {e}");
            2
        }
    }
}

fn worker_run() -> io::Result<()> {
    let spec = read_spec_from_stdin()?;
    spec.settings
        .validate_for(&spec.task)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    let device = spec
        .device()
        .ok_or_else(|| bad(&format!("unknown device preset {:?}", spec.device_name)))?;
    let prepared = PreparedTask::prepare(&spec.task);

    // Resume from the cell's durable checkpoint if one survived a prior
    // (killed) attempt; anything unreadable degrades to a fresh start.
    let ckpt = resume::ckpt_path(&spec.cell_dir, spec.replica);
    let resume_from = match Checkpoint::load(&ckpt) {
        Ok(c) => Some(c),
        Err(e) if e.kind() == io::ErrorKind::NotFound => None,
        Err(_) => {
            std::fs::remove_file(&ckpt).ok();
            None
        }
    };

    let stdout = io::stdout();
    let (replica, attempt) = (spec.replica, spec.attempt);
    // If the supervisor disappears mid-run its pipe breaks; stop
    // emitting instead of erroring out — the watchdog (or init) reaps us.
    let mut pipe_dead = false;
    let mut heartbeat = |step: u64| {
        if !pipe_dead {
            let hb = Frame::Heartbeat(Heartbeat {
                replica,
                attempt,
                step,
            });
            pipe_dead = write_frame(&mut stdout.lock(), &hb).is_err();
        }
    };
    // Checkpoint saves are best-effort: a failed save costs a retry its
    // resume point, never the attempt itself.
    let mut sink = |c: &Checkpoint| {
        c.save(&ckpt).ok();
    };

    let outcome = run_replica_with(
        &prepared,
        &device,
        spec.variant,
        &spec.settings,
        replica,
        ReplicaOptions {
            attempt,
            resume: resume_from.as_ref(),
            checkpoint_every_epochs: spec.checkpoint_every_epochs,
            sink: Some(&mut sink),
            progress_every_steps: spec.settings.heartbeat_every_steps,
            progress: Some(&mut heartbeat),
        },
    );
    let frame = match outcome {
        Ok(result) => Frame::Result(Box::new(result)),
        Err(err) => Frame::Fault(WorkerFault {
            replica,
            attempt,
            reason: err.to_string(),
        }),
    };
    write_frame(&mut stdout.lock(), &frame)
}

fn read_spec_from_stdin() -> io::Result<ReplicaSpec> {
    let mut stdin = io::stdin().lock();
    let mut dec = FrameDecoder::new();
    let mut buf = [0u8; 8192];
    loop {
        if let Some(frame) = dec.next_frame() {
            match frame {
                Frame::Spec(s) => return Ok(*s),
                other => return Err(bad(&format!("expected a spec frame first, got {other:?}"))),
            }
        }
        let n = stdin.read(&mut buf)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "fleet worker: stdin closed before a spec frame arrived",
            ));
        }
        dec.push(&buf[..n]);
    }
}

// ---------------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------------

/// Fleet-dispatch knobs.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Maximum concurrent worker processes (0 = host parallelism).
    pub procs: usize,
    /// Worker executable; `None` re-executes the current binary
    /// (`std::env::current_exe`), which is how the `repro` binary
    /// self-dispatches.
    pub worker_exe: Option<PathBuf>,
    /// Arguments handed to the worker executable.
    pub worker_args: Vec<OsString>,
}

impl Default for FleetOptions {
    fn default() -> Self {
        Self {
            procs: 0,
            worker_exe: None,
            worker_args: vec![OsString::from("--worker")],
        }
    }
}

/// How one worker process attempt ended, from the supervisor's seat.
#[derive(Debug)]
enum AttemptOutcome {
    /// Exit 0 with a result frame delivered.
    Clean(Box<ReplicaResult>),
    /// Exit 0 with a graceful [`WorkerFault`] frame (structured training
    /// error — launch failure, divergence, ...).
    Faulted(String),
    /// Abnormal death: panic exit code, signal, or a clean exit that
    /// never delivered a result.
    Crashed(String),
    /// Killed by the heartbeat watchdog or the absolute deadline.
    TimedOut,
}

/// Kills and reaps the child on every exit path — early `?` returns and
/// panics included — so the supervisor can never leak a zombie or leave
/// an orphan training replica burning CPU.
struct Reaper(std::process::Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Deterministic capped exponential backoff before retry `attempt` (≥ 1):
/// 50 ms, 100 ms, 200 ms, ... capped at 2 s. Deterministic because
/// retries must be as replayable as everything else here.
fn backoff_ms(attempt: u32) -> u64 {
    (BACKOFF_BASE_MS << (attempt - 1).min(16)).min(BACKOFF_CAP_MS)
}

/// Everything fixed across one cell's replicas during fleet dispatch.
struct FleetCell<'a> {
    task: &'a TaskSpec,
    device_name: &'a str,
    variant: NoiseVariant,
    settings: &'a ExperimentSettings,
    dir: &'a Path,
    checkpoint_every_epochs: u32,
    worker_exe: &'a Path,
    worker_args: &'a [OsString],
}

/// Spawns one worker process for `spec`, feeds it the spec frame, and
/// supervises it to an [`AttemptOutcome`]: frames reset the watchdog, a
/// silent worker or one past the absolute deadline is killed, and an
/// exited worker is classified from its frames and exit status.
fn run_attempt(cell: &FleetCell<'_>, spec: &ReplicaSpec) -> io::Result<AttemptOutcome> {
    use std::process::{Command, Stdio};
    use std::sync::mpsc;

    let child = Command::new(cell.worker_exe)
        .args(cell.worker_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    let mut child = Reaper(child);

    // Feed the work order and close stdin. A write failure means the
    // child died on arrival; the event loop classifies that.
    if let Some(mut stdin) = child.0.stdin.take() {
        let _ = stdin.write_all(&encode_frame(&Frame::Spec(Box::new(spec.clone()))));
        let _ = stdin.flush();
    }

    // The reader thread is *detached*, never joined: a misbehaving worker
    // can leave a grandchild holding the stdout pipe open long after the
    // worker itself is dead, and a join would block on that stranger's
    // lifetime. The thread exits on its own at pipe EOF or on the first
    // send after `rx` is dropped.
    let mut child_out = child.0.stdout.take().expect("stdout piped");
    let (tx, rx) = mpsc::channel::<Frame>();
    let _reader = std::thread::spawn(move || {
        let mut dec = FrameDecoder::new();
        let mut buf = [0u8; 8192];
        loop {
            match child_out.read(&mut buf) {
                Ok(0) | Err(_) => return,
                Ok(n) => {
                    dec.push(&buf[..n]);
                    while let Some(frame) = dec.next_frame() {
                        if tx.send(frame).is_err() {
                            return;
                        }
                    }
                }
            }
        }
    });

    let timeout = Duration::from_millis(spec.settings.worker_timeout_ms);
    let deadline = timeout.saturating_mul(HARD_DEADLINE_FACTOR);
    let start = clock::now();
    let mut last_frame = start;
    let mut result: Option<ReplicaResult> = None;
    let mut fault: Option<String> = None;
    let note = |frame: Frame, result: &mut Option<ReplicaResult>, fault: &mut Option<String>| {
        match frame {
            Frame::Heartbeat(_) => {}
            Frame::Result(r) => *result = Some(*r),
            Frame::Fault(f) => *fault = Some(f.reason),
            // A worker has no business sending a spec; ignore.
            Frame::Spec(_) => {}
        }
    };

    let exited = loop {
        match rx.recv_timeout(POLL) {
            Ok(frame) => {
                last_frame = clock::now();
                note(frame, &mut result, &mut fault);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            // Reader hit EOF: the child closed stdout and is exiting (or
            // dead). recv returns instantly now, so pace the loop.
            Err(mpsc::RecvTimeoutError::Disconnected) => std::thread::sleep(POLL),
        }
        if let Some(status) = child.0.try_wait()? {
            break Some(status);
        }
        let now = clock::now();
        if now.duration_since(last_frame) >= timeout || now.duration_since(start) >= deadline {
            break None;
        }
    };

    let Some(status) = exited else {
        // Watchdog fired: kill and reap the worker.
        drop(child);
        return Ok(AttemptOutcome::TimedOut);
    };
    // The pipe may still hold frames the event loop never saw (e.g. the
    // result of a worker that finished between polls). The worker flushed
    // before exiting, so they arrive promptly; the grace window only
    // matters when an orphaned grandchild keeps the pipe from EOF.
    let grace = clock::now();
    loop {
        match rx.recv_timeout(POLL) {
            Ok(frame) => note(frame, &mut result, &mut fault),
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if clock::now().duration_since(grace) >= DRAIN_GRACE {
                    break;
                }
            }
        }
    }
    drop(child);

    Ok(if let Some(reason) = fault {
        AttemptOutcome::Faulted(reason)
    } else if status.success() {
        match result {
            Some(r) if r.replica == spec.replica => AttemptOutcome::Clean(Box::new(r)),
            Some(r) => AttemptOutcome::Crashed(format!(
                "protocol violation: result for replica {} on replica {}'s pipe",
                r.replica, spec.replica
            )),
            None => AttemptOutcome::Crashed("exited cleanly without a result frame".into()),
        }
    } else if let Some(code) = status.code() {
        AttemptOutcome::Crashed(format!("exit code {code}"))
    } else {
        classify_signal(&status)
    })
}

#[cfg(unix)]
fn classify_signal(status: &std::process::ExitStatus) -> AttemptOutcome {
    use std::os::unix::process::ExitStatusExt;
    match status.signal() {
        Some(sig) => AttemptOutcome::Crashed(format!("signal {sig}")),
        None => AttemptOutcome::Crashed("killed by unknown cause".into()),
    }
}

#[cfg(not(unix))]
fn classify_signal(_status: &std::process::ExitStatus) -> AttemptOutcome {
    AttemptOutcome::Crashed("killed by unknown cause".into())
}

/// One replica under process-isolated supervision: dispatch, watch,
/// classify, and re-dispatch within the retry budget (resuming from the
/// cell's durable checkpoint). Persists the result/status exactly like
/// the in-process resumable supervisor — the supervisor is the single
/// writer of result and status files; workers only touch checkpoints.
fn supervise_fleet(
    cell: &FleetCell<'_>,
    replica: u32,
) -> io::Result<(Option<ReplicaResult>, ReplicaStatus)> {
    let ckpt = resume::ckpt_path(cell.dir, replica);
    let mut last = AttemptOutcome::Crashed("never dispatched".into());
    for attempt in 0..=cell.settings.retry_budget {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(backoff_ms(attempt)));
        }
        let spec = ReplicaSpec {
            task: cell.task.clone(),
            device_name: cell.device_name.to_string(),
            variant: cell.variant,
            settings: *cell.settings,
            replica,
            attempt,
            cell_dir: cell.dir.to_path_buf(),
            checkpoint_every_epochs: cell.checkpoint_every_epochs,
        };
        match run_attempt(cell, &spec)? {
            AttemptOutcome::Clean(result) => {
                let status = if attempt == 0 {
                    ReplicaStatus::Ok
                } else {
                    ReplicaStatus::Retried {
                        attempts: attempt + 1,
                    }
                };
                resume::write_atomic(
                    &resume::result_path(cell.dir, replica),
                    &resume::encode_result(&result),
                )?;
                resume::write_atomic(
                    &resume::status_path(cell.dir, replica),
                    resume::status_line(&status).as_bytes(),
                )?;
                std::fs::remove_file(&ckpt).ok();
                return Ok((Some(*result), status));
            }
            other => last = other,
        }
    }
    let attempts = cell.settings.retry_budget + 1;
    let status = match last {
        AttemptOutcome::TimedOut => ReplicaStatus::TimedOut { attempts },
        AttemptOutcome::Crashed(reason) => ReplicaStatus::Crashed {
            reason: format!("{attempts} attempts; last: {reason}"),
        },
        AttemptOutcome::Faulted(reason) => ReplicaStatus::Failed {
            reason: format!("{attempts} attempts exhausted; last: {reason}"),
        },
        AttemptOutcome::Clean(_) => unreachable!("clean attempts return early"),
    };
    resume::write_atomic(
        &resume::status_path(cell.dir, replica),
        resume::status_line(&status).as_bytes(),
    )?;
    Ok((None, status))
}

/// [`crate::resume::run_variant_resumable`] with process isolation: each
/// pending replica runs in its own worker process under a heartbeat
/// watchdog, so hangs and process-fatal faults (aborts, signals) degrade
/// into supervised retries instead of a wedged or dead experiment.
///
/// Durable progress lives in the same [`CheckpointStore`] cells with the
/// same formats — fleet runs, resumable runs, and in-process runs are
/// interchangeable and bit-identical.
///
/// # Errors
///
/// Store/spawn IO failures, a custom (non-preset) device, a non-UTF-8
/// store path, or settings that fail
/// [`ExperimentSettings::validate_for`]. Worker deaths are *not* errors:
/// they degrade into [`ReplicaStatus`] entries.
pub fn run_variant_fleet(
    prepared: &PreparedTask,
    device: &Device,
    variant: NoiseVariant,
    settings: &ExperimentSettings,
    store: &CheckpointStore,
    checkpoint_every_epochs: u32,
    opts: &FleetOptions,
) -> io::Result<VariantRuns> {
    settings
        .validate_for(&prepared.spec)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    if device_by_name(device.name()).is_none() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "device {:?} is not a preset; fleet mode ships devices by name",
                device.name()
            ),
        ));
    }
    let dir = store.cell_dir(&prepared.spec.name, device.name(), variant);
    std::fs::create_dir_all(&dir)?;
    if dir.to_str().is_none() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "fleet mode requires a UTF-8 checkpoint-store path",
        ));
    }
    let worker_exe = match &opts.worker_exe {
        Some(p) => p.clone(),
        None => std::env::current_exe()?,
    };
    let n = settings.replicas;

    type Supervised = (Option<ReplicaResult>, ReplicaStatus);
    let mut harvested: Vec<Option<io::Result<Supervised>>> = (0..n).map(|_| None).collect();
    let mut pending: Vec<u32> = Vec::new();
    for r in 0..n {
        match std::fs::read(resume::result_path(&dir, r)).map(|b| resume::decode_result(&b)) {
            Ok(Ok(result)) => {
                let status = std::fs::read_to_string(resume::status_path(&dir, r))
                    .ok()
                    .and_then(|s| resume::parse_status(&s))
                    .unwrap_or(ReplicaStatus::Ok);
                harvested[r as usize] = Some(Ok((Some(result), status)));
            }
            _ => pending.push(r),
        }
    }

    let cell = FleetCell {
        task: &prepared.spec,
        device_name: device.name(),
        variant,
        settings,
        dir: &dir,
        checkpoint_every_epochs,
        worker_exe: &worker_exe,
        worker_args: &opts.worker_args,
    };
    let procs = if opts.procs == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        opts.procs
    }
    .min(pending.len().max(1));

    if procs <= 1 {
        for &r in &pending {
            harvested[r as usize] = Some(supervise_fleet(&cell, r));
        }
    } else {
        // Dispatcher threads pull replica indices from a shared counter;
        // each thread blocks on its own worker *process*, so `procs` is
        // the process-level parallelism cap.
        let next = std::sync::atomic::AtomicUsize::new(0);
        let pending = &pending;
        let cell = &cell;
        let collected = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..procs)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(u32, io::Result<Supervised>)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(&r) = pending.get(i) else {
                                return local;
                            };
                            local.push((r, supervise_fleet(cell, r)));
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("fleet dispatcher thread panicked"))
                .collect::<Vec<_>>()
        });
        for (r, out) in collected {
            harvested[r as usize] = Some(out);
        }
    }

    let mut results = Vec::with_capacity(n as usize);
    let mut statuses = Vec::with_capacity(n as usize);
    let mut manifest = Vec::with_capacity(n as usize);
    for (r, slot) in harvested.into_iter().enumerate() {
        let (result, status) = slot.expect("replica not supervised")?;
        manifest.push((r as u32, resume::status_line(&status)));
        results.extend(result);
        statuses.push(status);
    }
    resume::write_manifest(
        &dir,
        &prepared.spec.name,
        device.name(),
        variant,
        &manifest,
        n,
    )?;
    Ok(VariantRuns {
        variant,
        results,
        statuses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Preds;
    use proptest::prelude::*;

    fn sample_spec() -> ReplicaSpec {
        ReplicaSpec {
            task: TaskSpec::small_cnn_cifar10(),
            device_name: "V100".into(),
            variant: NoiseVariant::Impl,
            settings: ExperimentSettings {
                chaos: Some(ChaosConfig::parse("7:1,0,2,1,1@250!").expect("chaos parses")),
                ..ExperimentSettings::default()
            },
            replica: 3,
            attempt: 1,
            cell_dir: PathBuf::from("/tmp/ns-cell"),
            checkpoint_every_epochs: 2,
        }
    }

    fn assert_spec_round_trips(spec: &ReplicaSpec) {
        let bytes = encode_frame(&Frame::Spec(Box::new(spec.clone())));
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let Some(Frame::Spec(back)) = dec.next_frame() else {
            panic!("spec frame did not decode");
        };
        assert_eq!(back.task.name, spec.task.name);
        assert_eq!(back.task.model, spec.task.model);
        assert_eq!(back.task.data, spec.task.data);
        assert_eq!(back.task.train, spec.task.train);
        assert_eq!(back.task.augment, spec.task.augment);
        assert_eq!(back.device_name, spec.device_name);
        assert_eq!(back.variant, spec.variant);
        assert_eq!(back.settings, spec.settings);
        assert_eq!(back.replica, spec.replica);
        assert_eq!(back.attempt, spec.attempt);
        assert_eq!(back.cell_dir, spec.cell_dir);
        assert_eq!(back.checkpoint_every_epochs, spec.checkpoint_every_epochs);
        assert_eq!(dec.skipped(), 0);
    }

    #[test]
    fn spec_frames_round_trip() {
        assert_spec_round_trips(&sample_spec());
        // Every preset task exercises a different codec path (models,
        // schedules, data sources, override options).
        for task in [
            TaskSpec::small_cnn_bn_cifar10(),
            TaskSpec::resnet18_cifar100(),
            TaskSpec::resnet50_imagenet(),
            TaskSpec::celeba(),
        ] {
            let mut spec = sample_spec();
            spec.task = task;
            spec.task.train.shuffle_seed_override = Some(99);
            spec.task.train.dropout_seed_override = Some(0);
            spec.settings.chaos = None;
            assert_spec_round_trips(&spec);
        }
    }

    #[test]
    fn heartbeat_fault_and_result_frames_round_trip() {
        let mut dec = FrameDecoder::new();
        let hb = Heartbeat {
            replica: 5,
            attempt: 2,
            step: 1 << 40,
        };
        dec.push(&encode_frame(&Frame::Heartbeat(hb)));
        assert!(matches!(dec.next_frame(), Some(Frame::Heartbeat(h)) if h == hb));

        let fault = WorkerFault {
            replica: 1,
            attempt: 0,
            reason: "kernel launch failure at step 12".into(),
        };
        dec.push(&encode_frame(&Frame::Fault(fault.clone())));
        assert!(matches!(dec.next_frame(), Some(Frame::Fault(f)) if f == fault));

        let result = ReplicaResult {
            replica: 9,
            accuracy: 0.71,
            preds: Preds::Classes(vec![1, 2, 0]),
            weights: vec![0.5, -1.25e-30, f32::MIN_POSITIVE],
            final_train_loss: 0.03,
        };
        dec.push(&encode_frame(&Frame::Result(Box::new(result.clone()))));
        let Some(Frame::Result(back)) = dec.next_frame() else {
            panic!("result frame did not decode");
        };
        assert_eq!(back.replica, result.replica);
        assert_eq!(back.accuracy.to_bits(), result.accuracy.to_bits());
        assert_eq!(back.preds, result.preds);
        let bits = |ws: &[f32]| ws.iter().map(|w| w.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back.weights), bits(&result.weights));
        assert_eq!(dec.skipped(), 0);
    }

    #[test]
    fn decoder_reassembles_byte_by_byte() {
        let frames = [
            encode_frame(&Frame::Heartbeat(Heartbeat {
                replica: 0,
                attempt: 0,
                step: 4,
            })),
            encode_frame(&Frame::Fault(WorkerFault {
                replica: 0,
                attempt: 0,
                reason: "x".into(),
            })),
        ];
        let mut dec = FrameDecoder::new();
        let mut got = 0;
        for byte in frames.iter().flatten() {
            dec.push(&[*byte]);
            while dec.next_frame().is_some() {
                got += 1;
            }
        }
        assert_eq!(got, 2);
        assert_eq!(dec.skipped(), 0);
    }

    #[test]
    fn decoder_resyncs_past_garbage_and_corrupt_headers() {
        let hb = encode_frame(&Frame::Heartbeat(Heartbeat {
            replica: 7,
            attempt: 1,
            step: 99,
        }));
        let mut stream = b"not a frame at all".to_vec();
        // A plausible header whose length field is absurd: must be
        // skipped, not allocated or waited for.
        stream.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        stream.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        stream.extend_from_slice(&u32::MAX.to_le_bytes());
        // A real header over a garbage payload (bad tag).
        stream.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        stream.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        stream.extend_from_slice(&2u32.to_le_bytes());
        stream.extend_from_slice(&[0xEE, 0xEE]);
        // A wrong-version frame.
        stream.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        stream.extend_from_slice(&99u32.to_le_bytes());
        stream.extend_from_slice(&0u32.to_le_bytes());
        stream.extend_from_slice(&hb);
        let mut dec = FrameDecoder::new();
        dec.push(&stream);
        let Some(Frame::Heartbeat(h)) = dec.next_frame() else {
            panic!("heartbeat not recovered after garbage");
        };
        assert_eq!(h.step, 99);
        assert!(dec.skipped() > 0, "corruption must be counted");
        assert!(dec.next_frame().is_none());
    }

    proptest! {
        #[test]
        fn frame_stream_survives_torn_buffers(
            beats in proptest::collection::vec((any::<u32>(), any::<u32>(), any::<u64>()), 1..6),
            garbage in proptest::collection::vec(any::<u8>(), 0..40),
            chunk in 1usize..17,
        ) {
            // Garbage may not contain a frame-magic prefix byte sequence;
            // with 40 arbitrary bytes the odds of a full valid frame are
            // nil, but scrub magic bytes anyway to keep the property exact.
            let mut garbage = garbage;
            for b in &mut garbage {
                if *b == (FRAME_MAGIC & 0xFF) as u8 {
                    *b = 0;
                }
            }
            let mut stream = garbage.clone();
            let mut want = Vec::new();
            for (replica, attempt, step) in beats {
                let hb = Heartbeat { replica, attempt, step };
                want.push(hb);
                stream.extend_from_slice(&encode_frame(&Frame::Heartbeat(hb)));
            }
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for piece in stream.chunks(chunk) {
                dec.push(piece);
                while let Some(frame) = dec.next_frame() {
                    match frame {
                        Frame::Heartbeat(h) => got.push(h),
                        other => prop_assert!(false, "unexpected frame {other:?}"),
                    }
                }
            }
            prop_assert_eq!(got, want);
            prop_assert_eq!(dec.skipped(), garbage.len() as u64);
        }
    }

    #[test]
    fn device_names_cover_every_preset() {
        for d in [
            Device::p100(),
            Device::v100(),
            Device::rtx5000(),
            Device::rtx5000_tensor_cores(),
            Device::t4(),
            Device::tpu_v2(),
            Device::cpu(),
        ] {
            let back = device_by_name(d.name())
                .unwrap_or_else(|| panic!("preset {:?} must resolve", d.name()));
            assert_eq!(back.name(), d.name());
        }
        assert!(device_by_name("H100").is_none());
    }

    #[test]
    fn backoff_is_deterministic_and_capped() {
        assert_eq!(backoff_ms(1), 50);
        assert_eq!(backoff_ms(2), 100);
        assert_eq!(backoff_ms(3), 200);
        assert_eq!(backoff_ms(10), BACKOFF_CAP_MS);
        assert_eq!(backoff_ms(u32::MAX), BACKOFF_CAP_MS);
    }

    // -- supervision paths that need no real worker binary: fake workers
    //    built from /bin/sh exercise classification and the watchdog. --

    fn tiny_task() -> TaskSpec {
        let mut t = TaskSpec::small_cnn_cifar10();
        t.data = DataSource::Gaussian(nsdata::GaussianSpec {
            classes: 2,
            train_per_class: 4,
            test_per_class: 2,
            ..nsdata::GaussianSpec::cifar10_sim()
        });
        t.train.epochs = 1;
        t.augment = false;
        t
    }

    struct Scratch(CheckpointStore);

    impl Scratch {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("noisescope-fleet-{tag}-{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            Scratch(CheckpointStore::new(dir))
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            std::fs::remove_dir_all(self.0.root()).ok();
        }
    }

    #[cfg(unix)]
    fn sh_fleet(script: &str) -> FleetOptions {
        FleetOptions {
            procs: 2,
            worker_exe: Some(PathBuf::from("/bin/sh")),
            worker_args: vec![OsString::from("-c"), OsString::from(script)],
        }
    }

    #[cfg(unix)]
    fn fast_settings() -> ExperimentSettings {
        ExperimentSettings {
            replicas: 2,
            retry_budget: 1,
            worker_timeout_ms: 400,
            ..ExperimentSettings::default()
        }
    }

    #[test]
    fn fleet_rejects_invalid_settings_and_custom_devices() {
        let scratch = Scratch::new("reject");
        let prepared = PreparedTask::prepare(&tiny_task());
        let bad = ExperimentSettings {
            replicas: 0,
            ..ExperimentSettings::default()
        };
        let err = run_variant_fleet(
            &prepared,
            &Device::cpu(),
            NoiseVariant::Control,
            &bad,
            &scratch.0,
            0,
            &FleetOptions::default(),
        )
        .expect_err("zero replicas must be rejected");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);

        let custom = Device::custom(
            "FPGA-9000",
            hwsim::Architecture::Turing,
            512,
            false,
            false,
            1.0,
        );
        let err = run_variant_fleet(
            &prepared,
            &custom,
            NoiseVariant::Control,
            &ExperimentSettings::default(),
            &scratch.0,
            0,
            &FleetOptions::default(),
        )
        .expect_err("custom devices are not shippable by name");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    #[cfg(unix)]
    fn crashing_workers_are_classified_and_exhaust_into_crashed() {
        let scratch = Scratch::new("crash");
        let prepared = PreparedTask::prepare(&tiny_task());
        let settings = fast_settings();
        let runs = run_variant_fleet(
            &prepared,
            &Device::v100(),
            NoiseVariant::Impl,
            &settings,
            &scratch.0,
            0,
            &sh_fleet("exit 7"),
        )
        .expect("a crashing fleet degrades, never errors");
        assert!(runs.results.is_empty());
        assert_eq!(runs.failed_replicas(), vec![0, 1]);
        for s in &runs.statuses {
            match s {
                ReplicaStatus::Crashed { reason } => {
                    assert!(reason.contains("exit code 7"), "{reason}");
                    assert!(reason.contains("2 attempts"), "{reason}");
                }
                other => panic!("expected Crashed, got {other:?}"),
            }
        }
        // The cell stays resumable: statuses on disk, flagged incomplete.
        let dir = scratch
            .0
            .cell_dir(&prepared.spec.name, "V100", NoiseVariant::Impl);
        let manifest = std::fs::read_to_string(dir.join("manifest.txt")).expect("manifest");
        assert!(manifest.contains("crashed"), "{manifest}");
    }

    #[test]
    #[cfg(unix)]
    fn signal_killed_workers_are_classified_as_signals() {
        let scratch = Scratch::new("signal");
        let prepared = PreparedTask::prepare(&tiny_task());
        let settings = ExperimentSettings {
            replicas: 1,
            retry_budget: 0,
            ..fast_settings()
        };
        let runs = run_variant_fleet(
            &prepared,
            &Device::v100(),
            NoiseVariant::Impl,
            &settings,
            &scratch.0,
            0,
            &sh_fleet("kill -ABRT $$"),
        )
        .expect("an aborting fleet degrades, never errors");
        match &runs.statuses[0] {
            ReplicaStatus::Crashed { reason } => {
                assert!(reason.contains("signal 6"), "{reason}");
            }
            other => panic!("expected Crashed(signal 6), got {other:?}"),
        }
    }

    #[test]
    #[cfg(unix)]
    fn silent_workers_are_killed_by_the_watchdog() {
        let scratch = Scratch::new("watchdog");
        let prepared = PreparedTask::prepare(&tiny_task());
        let settings = ExperimentSettings {
            replicas: 1,
            retry_budget: 1,
            worker_timeout_ms: 300,
            ..ExperimentSettings::default()
        };
        let start = clock::now();
        let runs = run_variant_fleet(
            &prepared,
            &Device::v100(),
            NoiseVariant::Impl,
            &settings,
            &scratch.0,
            0,
            // Sleeps far beyond the watchdog window; emits nothing.
            &sh_fleet("sleep 30"),
        )
        .expect("a hung fleet degrades, never errors");
        assert_eq!(
            runs.statuses[0],
            ReplicaStatus::TimedOut { attempts: 2 },
            "both attempts must be killed by the watchdog"
        );
        // Two 300 ms windows plus backoff — if this took anywhere near a
        // sleep(30), the watchdog never fired.
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "watchdog must kill silent workers promptly"
        );
    }

    #[test]
    #[cfg(unix)]
    fn graceful_fault_frames_classify_as_failed_not_crashed() {
        let scratch = Scratch::new("fault");
        let prepared = PreparedTask::prepare(&tiny_task());
        let settings = ExperimentSettings {
            replicas: 1,
            retry_budget: 0,
            ..fast_settings()
        };
        // A fake worker that delivers a well-formed fault frame and exits
        // cleanly, like a real worker reporting a TrainError.
        let fault = encode_frame(&Frame::Fault(WorkerFault {
            replica: 0,
            attempt: 0,
            reason: "injected kernel launch failure".into(),
        }));
        let hex: String = fault.iter().map(|b| format!("\\{:03o}", b)).collect();
        let runs = run_variant_fleet(
            &prepared,
            &Device::v100(),
            NoiseVariant::Impl,
            &settings,
            &scratch.0,
            0,
            &sh_fleet(&format!("printf '{hex}'")),
        )
        .expect("a faulting fleet degrades, never errors");
        match &runs.statuses[0] {
            ReplicaStatus::Failed { reason } => {
                assert!(
                    reason.contains("injected kernel launch failure"),
                    "{reason}"
                );
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }
}
