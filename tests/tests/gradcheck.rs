//! Finite-difference gradient checks at network scale.
//!
//! The per-layer unit tests check each backward pass in isolation; these
//! tests verify the *composition* — residual wiring, BN-in-block, the loss
//! gradient — against numerical derivatives of the true training loss.

use detrand::{Philox, StreamId};
use hwsim::{Device, ExecutionContext, ExecutionMode};
use nnet::layers::ResidualBlock;
use nnet::loss::softmax_cross_entropy;
use nnet::model::Network;
use nnet::zoo;
use nnet::Layer;
use nstensor::{Shape, Tensor};

fn exec() -> ExecutionContext {
    ExecutionContext::new(Device::cpu(), ExecutionMode::Default, 0)
}

/// Perturbs the `target`-th scalar parameter of the network by `delta`.
fn nudge_param(net: &mut Network, target: usize, delta: f32) {
    let mut seen = 0usize;
    net.visit_params(&mut |p, _| {
        if target >= seen && target < seen + p.len() {
            p.as_mut_slice()[target - seen] += delta;
        }
        seen += p.len();
    });
}

/// Reads the `target`-th scalar gradient.
fn read_grad(net: &mut Network, target: usize) -> f32 {
    let mut seen = 0usize;
    let mut out = 0f32;
    net.visit_params(&mut |_, g| {
        if target >= seen && target < seen + g.len() {
            out = g.as_slice()[target - seen];
        }
        seen += g.len();
    });
    out
}

#[test]
fn whole_network_parameter_gradients_match_finite_differences() {
    let root = Philox::from_seed(11);
    let mut net = zoo::small_cnn(8, 3, 4, false, &root);
    let mut rng = root.stream(StreamId::TEST);
    let mut x = Tensor::zeros(Shape::of(&[4, 3, 8, 8]));
    for v in x.as_mut_slice() {
        *v = rng.normal();
    }
    let labels = [0u32, 1, 2, 3];

    // Analytic gradients.
    let mut e = exec();
    let logits = net.forward(x.clone(), &mut e, &root, 0, true);
    let (_, dlogits) = softmax_cross_entropy(&logits, &labels);
    net.backward(dlogits, &mut e);

    let n_params = net.param_count();
    let eps = 2e-2f32;
    // A spread of parameter coordinates across all layers.
    for frac in [0.01f64, 0.23, 0.47, 0.71, 0.93] {
        let target = ((n_params as f64) * frac) as usize;
        let analytic = read_grad(&mut net, target) as f64;
        let loss_at = |delta: f32, net: &mut Network| -> f64 {
            nudge_param(net, target, delta);
            let mut e = exec();
            let logits = net.forward(x.clone(), &mut e, &root, 0, false);
            nudge_param(net, target, -delta);
            softmax_cross_entropy(&logits, &labels).0 as f64
        };
        let fd = (loss_at(eps, &mut net) - loss_at(-eps, &mut net)) / (2.0 * eps as f64);
        assert!(
            (fd - analytic).abs() < 2e-2 * fd.abs().max(0.5),
            "param {target}: fd {fd} vs analytic {analytic}"
        );
    }
}

#[test]
fn residual_block_input_gradient_matches_finite_differences() {
    let root = Philox::from_seed(13);
    let mut rng = root.stream(StreamId::INIT.child(0));
    let mut block = ResidualBlock::new(4, 4, 1, 6, 6, &mut rng);
    let mut data_rng = root.stream(StreamId::TEST);
    let mut x = Tensor::zeros(Shape::of(&[3, 4, 6, 6]));
    for v in x.as_mut_slice() {
        *v = data_rng.normal();
    }

    // L = Σ y²; BN recomputes batch stats on every forward, so finite
    // differences see the same (input-dependent) function.
    let mut e = exec();
    let y = block.forward(x.clone(), &mut e, &root, 0, true);
    let mut dy = y.clone();
    dy.scale(2.0);
    let dx = block.backward(dy, &mut e);

    let mut loss = |x: &Tensor| -> f64 {
        let mut e = exec();
        let y = block.forward(x.clone(), &mut e, &root, 0, true);
        // Discard the caches from the probe forward.
        let _ = block.backward(Tensor::zeros(y.shape()), &mut e);
        y.as_slice().iter().map(|&v| (v as f64).powi(2)).sum()
    };
    let eps = 1e-2f32;
    for idx in [0usize, 17, 101, 250, 431] {
        let mut xp = x.clone();
        xp.as_mut_slice()[idx] += eps;
        let mut xm = x.clone();
        xm.as_mut_slice()[idx] -= eps;
        let fd = (loss(&xp) - loss(&xm)) / (2.0 * eps as f64);
        let an = dx.as_slice()[idx] as f64;
        assert!(
            (fd - an).abs() < 5e-2 * fd.abs().max(1.0),
            "dx[{idx}]: fd {fd} vs analytic {an}"
        );
    }
}

#[test]
fn training_decreases_the_true_loss_everywhere_it_claims_to() {
    // Energy test: a gradient step with a small lr must not increase the
    // batch loss (descent direction sanity across the whole stack).
    let root = Philox::from_seed(17);
    let mut net = zoo::micro_resnet18(8, 3, 4, &root);
    let mut rng = root.stream(StreamId::TEST);
    let mut x = Tensor::zeros(Shape::of(&[8, 3, 8, 8]));
    for v in x.as_mut_slice() {
        *v = rng.normal();
    }
    let labels: Vec<u32> = (0..8).map(|i| (i % 4) as u32).collect();

    let mut e = exec();
    let mut opt = nnet::optim::Sgd::new(nnet::optim::SgdConfig {
        momentum: 0.0,
        weight_decay: 0.0,
    });
    let mut losses = Vec::new();
    for step in 0..6 {
        let logits = net.forward(x.clone(), &mut e, &root, step, true);
        let (loss, dlogits) = softmax_cross_entropy(&logits, &labels);
        losses.push(loss);
        net.backward(dlogits, &mut e);
        opt.step(&mut net, 0.01);
    }
    assert!(
        losses.last().unwrap() < losses.first().unwrap(),
        "loss did not decrease: {losses:?}"
    );
}
