//! Mid-training checkpoints with a byte-exact binary codec.
//!
//! A [`Checkpoint`] captures everything `Trainer::fit_with` needs to resume
//! a run so that the continuation is *bitwise identical* to the
//! uninterrupted run: model weights, optimizer momentum, the shuffle and
//! augmentation RNG cursors, the execution context's reducer-scheduler
//! states, and the (shuffled) sample order. Replicas are pure functions of
//! their seeds, so byte-exact state capture is both necessary and
//! sufficient for byte-exact resume.
//!
//! # Why not JSON
//!
//! The workspace's `serde_json` stand-in is not trusted to round-trip
//! `f32` payloads bit-exactly (shortest-representation printing plus
//! re-parse). Checkpoints therefore use a hand-rolled little-endian binary
//! codec: every `f32` travels as its `to_bits()` pattern, so NaN payloads,
//! signed zeros and subnormals all survive unchanged.

use detrand::{PhiloxSnapshot, StreamSnapshot};
use hwsim::ExecSnapshot;
use nstensor::ReducerSnapshot;
use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// Magic prefix of the checkpoint container ("NSCK").
const MAGIC: u32 = 0x4E53_434B;
/// Codec version; bump on any layout change.
const VERSION: u32 = 1;

/// A resumable snapshot of training state at an epoch boundary.
///
/// Produced by `Trainer::fit_with` through its checkpoint sink and
/// consumed through `FitOptions::resume`. All fields are public so
/// supervisors can inspect progress without decoding heuristics.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Epochs fully completed when the snapshot was taken.
    pub epochs_done: u32,
    /// Optimizer steps taken so far.
    pub steps: u64,
    /// Mean training loss of each completed epoch.
    pub epoch_losses: Vec<f32>,
    /// Flattened model parameters (`Network::flat_weights` order).
    pub weights: Vec<f32>,
    /// SGD momentum buffers, one per parameter tensor.
    pub velocity: Vec<Vec<f32>>,
    /// Shuffle-stream RNG cursor.
    pub shuffle_rng: StreamSnapshot,
    /// Augmentation-stream RNG cursor.
    pub augment_rng: StreamSnapshot,
    /// Reducer-scheduler states of the execution context.
    pub exec: ExecSnapshot,
    /// Current sample visitation order (epoch shuffles compose, so the
    /// permutation itself is state).
    pub order: Vec<u32>,
}

/// Why a checkpoint byte stream could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer ended before the structure was complete.
    Truncated,
    /// The magic prefix did not match.
    BadMagic,
    /// A known container with an unknown version.
    BadVersion(u32),
    /// Decoding succeeded but bytes were left over.
    TrailingBytes(usize),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after checkpoint")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

// --- encoder -------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    put_u32(out, v.to_bits());
}

fn put_f32s(out: &mut Vec<u8>, xs: &[f32]) {
    put_u64(out, xs.len() as u64);
    for &x in xs {
        put_f32(out, x);
    }
}

fn put_stream(out: &mut Vec<u8>, s: &StreamSnapshot) {
    put_u32(out, s.state.key[0]);
    put_u32(out, s.state.key[1]);
    put_u64(out, s.state.counter_lo);
    put_u64(out, s.state.counter_hi);
    for b in s.state.buf {
        put_u32(out, b);
    }
    out.push(s.state.buf_pos);
    match s.gauss_spare {
        Some(v) => {
            out.push(1);
            put_f32(out, v);
        }
        None => out.push(0),
    }
}

// --- decoder -------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(CheckpointError::Truncated)?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f32(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads a length prefix, rejecting lengths the remaining buffer
    /// cannot possibly hold (corrupt files must not trigger huge
    /// allocations).
    fn len(&mut self, elem_size: usize) -> Result<usize, CheckpointError> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n.saturating_mul(elem_size.max(1) as u64) > remaining {
            return Err(CheckpointError::Truncated);
        }
        Ok(n as usize)
    }

    fn f32s(&mut self) -> Result<Vec<f32>, CheckpointError> {
        let n = self.len(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f32()?);
        }
        Ok(out)
    }

    fn stream(&mut self) -> Result<StreamSnapshot, CheckpointError> {
        let key = [self.u32()?, self.u32()?];
        let counter_lo = self.u64()?;
        let counter_hi = self.u64()?;
        let buf = [self.u32()?, self.u32()?, self.u32()?, self.u32()?];
        let buf_pos = self.u8()?;
        let gauss_spare = match self.u8()? {
            0 => None,
            _ => Some(self.f32()?),
        };
        Ok(StreamSnapshot {
            state: PhiloxSnapshot {
                key,
                counter_lo,
                counter_hi,
                buf,
                buf_pos,
            },
            gauss_spare,
        })
    }
}

impl Checkpoint {
    /// Serializes to the versioned binary container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + 4 * (self.weights.len() + self.order.len()));
        put_u32(&mut out, MAGIC);
        put_u32(&mut out, VERSION);
        put_u32(&mut out, self.epochs_done);
        put_u64(&mut out, self.steps);
        put_f32s(&mut out, &self.epoch_losses);
        put_f32s(&mut out, &self.weights);
        put_u64(&mut out, self.velocity.len() as u64);
        for v in &self.velocity {
            put_f32s(&mut out, v);
        }
        put_stream(&mut out, &self.shuffle_rng);
        put_stream(&mut out, &self.augment_rng);
        put_u64(&mut out, self.exec.reducers.len() as u64);
        for r in &self.exec.reducers {
            put_u64(&mut out, r.sched_state);
            put_u64(&mut out, r.invocations);
        }
        put_u64(&mut out, self.order.len() as u64);
        for &i in &self.order {
            put_u32(&mut out, i);
        }
        out
    }

    /// Decodes a checkpoint previously produced by [`Checkpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] on truncation, wrong magic/version, or
    /// trailing garbage. Never panics on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.u32()? != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        let epochs_done = r.u32()?;
        let steps = r.u64()?;
        let epoch_losses = r.f32s()?;
        let weights = r.f32s()?;
        let n_vel = r.len(8)?;
        let mut velocity = Vec::with_capacity(n_vel);
        for _ in 0..n_vel {
            velocity.push(r.f32s()?);
        }
        let shuffle_rng = r.stream()?;
        let augment_rng = r.stream()?;
        let n_red = r.len(16)?;
        let mut reducers = Vec::with_capacity(n_red);
        for _ in 0..n_red {
            reducers.push(ReducerSnapshot {
                sched_state: r.u64()?,
                invocations: r.u64()?,
            });
        }
        let n_order = r.len(4)?;
        let mut order = Vec::with_capacity(n_order);
        for _ in 0..n_order {
            order.push(r.u32()?);
        }
        if r.pos != bytes.len() {
            return Err(CheckpointError::TrailingBytes(bytes.len() - r.pos));
        }
        Ok(Self {
            epochs_done,
            steps,
            epoch_losses,
            weights,
            velocity,
            shuffle_rng,
            augment_rng,
            exec: ExecSnapshot { reducers },
            order,
        })
    }

    /// Writes the checkpoint atomically (temp file + rename), so a crash
    /// mid-write never leaves a torn checkpoint for resume to trip over.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Loads a checkpoint written by [`Checkpoint::save`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; decode failures surface as
    /// `InvalidData`.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detrand::{Philox, StreamId};

    fn sample() -> Checkpoint {
        let mut s = Philox::from_seed(7).stream(StreamId::SHUFFLE);
        let mut a = Philox::from_seed(9).stream(StreamId::AUGMENT);
        for _ in 0..5 {
            s.next_f32();
            a.normal(); // leaves a gauss spare half the time
        }
        Checkpoint {
            epochs_done: 3,
            steps: 42,
            epoch_losses: vec![1.5, 0.75, f32::MIN_POSITIVE],
            weights: vec![0.1, -0.0, f32::NAN, 2.5e-41],
            velocity: vec![vec![0.5, -0.5], vec![], vec![1.0]],
            shuffle_rng: s.snapshot(),
            augment_rng: a.snapshot(),
            exec: ExecSnapshot {
                reducers: vec![
                    ReducerSnapshot {
                        sched_state: 0xDEAD_BEEF,
                        invocations: 17,
                    };
                    5
                ],
            },
            order: vec![3, 0, 2, 1],
        }
    }

    #[test]
    fn round_trip_is_byte_exact() {
        let ck = sample();
        let bytes = ck.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).expect("decode");
        // PartialEq would treat NaN != NaN; compare the re-encoding.
        assert_eq!(bytes, back.to_bytes());
        assert_eq!(back.weights[2].to_bits(), f32::NAN.to_bits());
        assert_eq!(back.weights[1].to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn rejects_malformed_input() {
        let bytes = sample().to_bytes();
        assert_eq!(
            Checkpoint::from_bytes(&bytes[..bytes.len() - 1]),
            Err(CheckpointError::Truncated)
        );
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert_eq!(Checkpoint::from_bytes(&bad), Err(CheckpointError::BadMagic));
        let mut vers = bytes.clone();
        vers[4] = 99;
        assert_eq!(
            Checkpoint::from_bytes(&vers),
            Err(CheckpointError::BadVersion(99))
        );
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(
            Checkpoint::from_bytes(&long),
            Err(CheckpointError::TrailingBytes(1))
        );
        // A corrupt length prefix must not allocate terabytes.
        assert!(Checkpoint::from_bytes(&bytes[..16]).is_err());
    }

    #[test]
    fn save_load_round_trips_on_disk() {
        let dir = std::env::temp_dir().join("nnet-ckpt-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("ck.bin");
        let ck = sample();
        ck.save(&path).expect("save");
        let back = Checkpoint::load(&path).expect("load");
        assert_eq!(ck.to_bytes(), back.to_bytes());
        std::fs::remove_file(&path).ok();
    }
}
