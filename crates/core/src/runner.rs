//! Replica fleets: train N independent models under a noise variant and
//! collect everything the stability metrics need.

use crate::settings::ExperimentSettings;
use crate::task::{DataSource, TaskSpec};
use crate::variant::NoiseVariant;
use hwsim::{Device, ExecutionContext};
use nnet::trainer::{predict_binary, predict_classes, Dataset, Targets, Trainer};
use nsdata::{CelebaData, ShiftFlip, SplitDataset};
use serde::{Deserialize, Serialize};

/// A task with its dataset materialized (generation happens once; the
/// dataset is a fixed artifact shared by every replica, like CIFAR on
/// disk).
#[derive(Debug, Clone)]
pub struct PreparedTask {
    /// The task specification.
    pub spec: TaskSpec,
    /// The materialized data.
    pub data: PreparedData,
}

/// The materialized dataset of a prepared task.
#[derive(Debug, Clone)]
pub enum PreparedData {
    /// Gaussian-cluster classification splits.
    Gaussian(Box<SplitDataset>),
    /// The CelebA stand-in (with subgroup metadata).
    Celeba(Box<CelebaData>),
}

impl PreparedTask {
    /// Generates the task's dataset.
    pub fn prepare(spec: &TaskSpec) -> Self {
        let data = match spec.data {
            DataSource::Gaussian(g) => PreparedData::Gaussian(Box::new(g.generate())),
            DataSource::Celeba(c) => PreparedData::Celeba(Box::new(c.generate())),
        };
        Self {
            spec: spec.clone(),
            data,
        }
    }

    /// The training split.
    pub fn train_set(&self) -> &Dataset {
        match &self.data {
            PreparedData::Gaussian(s) => &s.train,
            PreparedData::Celeba(c) => &c.train,
        }
    }

    /// The test split.
    pub fn test_set(&self) -> &Dataset {
        match &self.data {
            PreparedData::Gaussian(s) => &s.test,
            PreparedData::Celeba(c) => &c.test,
        }
    }

    /// Number of classes (1 for binary attribute tasks).
    pub fn classes(&self) -> usize {
        match &self.data {
            PreparedData::Gaussian(s) => s.classes,
            PreparedData::Celeba(_) => 1,
        }
    }
}

/// Test-set predictions of one replica.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Preds {
    /// Class predictions.
    Classes(Vec<u32>),
    /// Flat binary attribute predictions.
    Binary(Vec<u8>),
}

/// Everything a stability metric needs from one trained replica.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicaResult {
    /// Replica index.
    pub replica: u32,
    /// Test accuracy.
    pub accuracy: f64,
    /// Test predictions.
    pub preds: Preds,
    /// Flattened final weights.
    pub weights: Vec<f32>,
    /// Final-epoch mean training loss.
    pub final_train_loss: f32,
}

/// All replicas of one (task, device, variant) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariantRuns {
    /// The variant trained under.
    pub variant: NoiseVariant,
    /// Replica outcomes, in replica order.
    pub results: Vec<ReplicaResult>,
}

/// A [`VariantRuns`] accessor was asked for one kind of predictions but a
/// replica holds the other (e.g. class predictions requested from a binary
/// attribute task).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredsKindError {
    /// What the accessor expected.
    pub expected: &'static str,
    /// What the replica actually holds.
    pub found: &'static str,
    /// The offending replica index.
    pub replica: u32,
}

impl std::fmt::Display for PredsKindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "expected {} predictions but replica {} holds {} predictions",
            self.expected, self.replica, self.found
        )
    }
}

impl std::error::Error for PredsKindError {}

impl Preds {
    fn kind(&self) -> &'static str {
        match self {
            Preds::Classes(_) => "class",
            Preds::Binary(_) => "binary",
        }
    }
}

impl VariantRuns {
    /// Replica accuracies.
    pub fn accuracies(&self) -> Vec<f64> {
        self.results.iter().map(|r| r.accuracy).collect()
    }

    /// Replica weight vectors.
    pub fn weight_sets(&self) -> Vec<Vec<f32>> {
        self.results.iter().map(|r| r.weights.clone()).collect()
    }

    /// Replica class predictions.
    ///
    /// # Errors
    ///
    /// Returns [`PredsKindError`] if any replica holds binary predictions.
    pub fn class_pred_sets(&self) -> Result<Vec<Vec<u32>>, PredsKindError> {
        self.results
            .iter()
            .map(|r| match &r.preds {
                Preds::Classes(p) => Ok(p.clone()),
                other => Err(PredsKindError {
                    expected: "class",
                    found: other.kind(),
                    replica: r.replica,
                }),
            })
            .collect()
    }

    /// Replica binary predictions.
    ///
    /// # Errors
    ///
    /// Returns [`PredsKindError`] if any replica holds class predictions.
    pub fn binary_pred_sets(&self) -> Result<Vec<Vec<u8>>, PredsKindError> {
        self.results
            .iter()
            .map(|r| match &r.preds {
                Preds::Binary(p) => Ok(p.clone()),
                other => Err(PredsKindError {
                    expected: "binary",
                    found: other.kind(),
                    replica: r.replica,
                }),
            })
            .collect()
    }
}

/// Trains one replica of a task on a device under a variant.
pub fn run_replica(
    prepared: &PreparedTask,
    device: &Device,
    variant: NoiseVariant,
    settings: &ExperimentSettings,
    replica: u32,
) -> ReplicaResult {
    let spec = &prepared.spec;
    let algo = variant.seed_policy().root_for(settings.base_seed, replica);
    let mut exec = ExecutionContext::builder(*device)
        .mode(variant.exec_mode())
        .entropy(settings.entropy_for(replica))
        .amp_ulps(settings.amp_ulps)
        .threads(settings.exec_threads)
        .build();
    let mut net = spec.build_model(&algo);
    let trainer = Trainer::new(spec.train_config(settings));
    let augment = ShiftFlip::standard();
    let report = trainer.fit(
        &mut net,
        prepared.train_set(),
        &mut exec,
        &algo,
        if spec.augment { Some(&augment) } else { None },
    );

    let test = prepared.test_set();
    let (preds, accuracy) = match &test.targets {
        Targets::Classes(labels) => {
            let p = predict_classes(&mut net, test, &mut exec, &algo, 64);
            let acc = nsmetrics::accuracy(&p, labels);
            (Preds::Classes(p), acc)
        }
        Targets::Binary(t) => {
            let p = predict_binary(&mut net, test, &mut exec, &algo, 64);
            let labels: Vec<u8> = t.as_slice().iter().map(|&v| (v > 0.5) as u8).collect();
            let acc = nsmetrics::accuracy(&p, &labels);
            (Preds::Binary(p), acc)
        }
    };

    ReplicaResult {
        replica,
        accuracy,
        preds,
        weights: net.flat_weights(),
        final_train_loss: report.epoch_losses.last().copied().unwrap_or(f32::NAN),
    }
}

/// Trains the whole replica fleet for a variant, parallelized over the
/// host's cores (replicas are embarrassingly parallel).
pub fn run_variant(
    prepared: &PreparedTask,
    device: &Device,
    variant: NoiseVariant,
    settings: &ExperimentSettings,
) -> VariantRuns {
    let n = settings.replicas;
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n as usize)
        .max(1);
    let mut results: Vec<Option<ReplicaResult>> = (0..n).map(|_| None).collect();
    if workers <= 1 {
        for r in 0..n {
            results[r as usize] = Some(run_replica(prepared, device, variant, settings, r));
        }
    } else {
        // Workers pull replica indices from a shared counter and return
        // their (index, result) pairs through the join handle; the harvest
        // scatters by index, so fleet results are in replica order no
        // matter which worker trained what. Replica *contents* never depend
        // on scheduling anyway — each replica derives its seeds and entropy
        // from its index alone.
        let next = std::sync::atomic::AtomicU32::new(0);
        let harvested = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(u32, ReplicaResult)> = Vec::new();
                        loop {
                            let r = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if r >= n {
                                return local;
                            }
                            local.push((r, run_replica(prepared, device, variant, settings, r)));
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("replica worker panicked"))
                .collect::<Vec<_>>()
        });
        for (r, out) in harvested {
            results[r as usize] = Some(out);
        }
    }
    VariantRuns {
        variant,
        results: results
            .into_iter()
            .map(|r| r.expect("replica missing"))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskSpec;
    use nsdata::GaussianSpec;

    /// A deliberately tiny task for unit tests.
    fn tiny_task() -> TaskSpec {
        let mut t = TaskSpec::small_cnn_cifar10();
        t.data = crate::task::DataSource::Gaussian(GaussianSpec {
            classes: 4,
            train_per_class: 12,
            test_per_class: 8,
            ..GaussianSpec::cifar10_sim()
        });
        t.train.epochs = 2;
        t.augment = false;
        t
    }

    fn tiny_settings() -> ExperimentSettings {
        ExperimentSettings {
            replicas: 2,
            ..ExperimentSettings::default()
        }
    }

    #[test]
    fn replica_produces_complete_result() {
        let prepared = PreparedTask::prepare(&tiny_task());
        let r = run_replica(
            &prepared,
            &Device::cpu(),
            NoiseVariant::Control,
            &tiny_settings(),
            0,
        );
        assert_eq!(r.preds, r.preds);
        assert!(!r.weights.is_empty());
        assert!((0.0..=1.0).contains(&r.accuracy));
        assert!(r.final_train_loss.is_finite());
    }

    #[test]
    fn control_variant_is_bitwise_reproducible() {
        let prepared = PreparedTask::prepare(&tiny_task());
        let settings = tiny_settings();
        let runs = run_variant(&prepared, &Device::v100(), NoiseVariant::Control, &settings);
        assert_eq!(runs.results.len(), 2);
        assert_eq!(runs.results[0].weights, runs.results[1].weights);
        assert_eq!(runs.results[0].preds, runs.results[1].preds);
    }

    #[test]
    fn algo_variant_diverges() {
        let prepared = PreparedTask::prepare(&tiny_task());
        let settings = tiny_settings();
        let runs = run_variant(&prepared, &Device::v100(), NoiseVariant::Algo, &settings);
        assert_ne!(runs.results[0].weights, runs.results[1].weights);
    }

    #[test]
    fn impl_variant_diverges_on_gpu_but_not_tpu() {
        let prepared = PreparedTask::prepare(&tiny_task());
        let settings = tiny_settings();
        let gpu = run_variant(&prepared, &Device::v100(), NoiseVariant::Impl, &settings);
        assert_ne!(
            gpu.results[0].weights, gpu.results[1].weights,
            "GPU IMPL runs must diverge"
        );
        let tpu = run_variant(&prepared, &Device::tpu_v2(), NoiseVariant::Impl, &settings);
        assert_eq!(
            tpu.results[0].weights, tpu.results[1].weights,
            "TPU is deterministic by design"
        );
    }
}
