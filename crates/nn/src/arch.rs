//! Full-fidelity architecture descriptors for the determinism cost study.
//!
//! The paper's Figure 8 profiles ten ImageNet-scale networks (batch 64,
//! 224×224 input). Training them is out of scope for a simulator, but the
//! cost study only needs their layer *geometry* — filter sizes, channel
//! counts, spatial extents — which these descriptors preserve at full
//! fidelity (Inception-v3's factorized 1×7/7×1 convolutions are folded
//! into FLOP-equivalent square filters; squeeze-excite blocks are folded
//! into their dense ops).
//!
//! Each builder returns the op trace of one training step's forward graph;
//! the profiler adds the backward kernels.

use hwsim::WorkloadOp;
use nstensor::ConvGeometry;

/// A named profiling workload.
#[derive(Debug, Clone)]
pub struct ArchDescriptor {
    /// Network name as used in the paper's Figure 8.
    pub name: &'static str,
    /// One training step's forward op trace.
    pub ops: Vec<WorkloadOp>,
}

/// Incremental builder tracking spatial size and channel count.
#[derive(Debug)]
struct NetBuilder {
    ops: Vec<WorkloadOp>,
    batch: usize,
    hw: usize,
    c: usize,
}

impl NetBuilder {
    fn new(batch: usize, input_hw: usize, in_c: usize) -> Self {
        Self {
            ops: Vec::new(),
            batch,
            hw: input_hw,
            c: in_c,
        }
    }

    /// Standard convolution + optional BN + ReLU.
    fn conv(&mut self, out_c: usize, k: usize, stride: usize, bn: bool) -> &mut Self {
        let geom = ConvGeometry::new(self.c, out_c, k, stride, k / 2, self.hw, self.hw);
        self.hw = geom.out_h();
        self.c = out_c;
        self.ops.push(WorkloadOp::Conv {
            geom,
            batch: self.batch,
        });
        let elems = self.batch * self.c * self.hw * self.hw;
        if bn {
            self.ops.push(WorkloadOp::BatchNorm { elems });
        }
        self.ops.push(WorkloadOp::Activation { elems });
        self
    }

    /// Depthwise convolution (modeled as `in_c = 1` per-channel filters).
    fn depthwise(&mut self, k: usize, stride: usize) -> &mut Self {
        let geom = ConvGeometry::new(1, self.c, k, stride, k / 2, self.hw, self.hw);
        self.hw = geom.out_h();
        self.ops.push(WorkloadOp::Conv {
            geom,
            batch: self.batch,
        });
        let elems = self.batch * self.c * self.hw * self.hw;
        self.ops.push(WorkloadOp::BatchNorm { elems });
        self.ops.push(WorkloadOp::Activation { elems });
        self
    }

    /// 2× max/avg pool.
    fn pool(&mut self) -> &mut Self {
        let elems = self.batch * self.c * self.hw * self.hw;
        self.ops.push(WorkloadOp::Pool { elems });
        self.hw /= 2;
        self
    }

    /// Dense layer from the current feature volume (flattened).
    fn dense_from_volume(&mut self, out: usize) -> &mut Self {
        let in_features = self.c * self.hw * self.hw;
        self.ops.push(WorkloadOp::Dense {
            batch: self.batch,
            in_features,
            out_features: out,
        });
        self.c = out;
        self.hw = 1;
        self
    }

    /// Dense layer on already-flat features.
    fn dense(&mut self, in_features: usize, out: usize) -> &mut Self {
        self.ops.push(WorkloadOp::Dense {
            batch: self.batch,
            in_features,
            out_features: out,
        });
        self
    }

    fn finish(&mut self) -> Vec<WorkloadOp> {
        std::mem::take(&mut self.ops)
    }
}

/// The paper's six-layer medium CNN (Appendix C) with filter size `k`:
/// six `conv(k) → BN → ReLU → pool` blocks (16→512 channels, 224² input)
/// and a 1000-way classifier.
///
/// # Panics
///
/// Panics if `k == 0` or `k > 11`.
pub fn medium_cnn(k: usize, batch: usize) -> ArchDescriptor {
    assert!((1..=11).contains(&k), "unsupported filter size {k}");
    let mut b = NetBuilder::new(batch, 224, 3);
    for &c in &[16usize, 32, 64, 128, 256, 512] {
        b.conv(c, k, 1, true).pool();
    }
    b.dense_from_volume(1000);
    ArchDescriptor {
        name: "MediumCNN",
        ops: b.finish(),
    }
}

/// VGG-16 (configuration D).
pub fn vgg16(batch: usize) -> ArchDescriptor {
    ArchDescriptor {
        name: "VGG16",
        ops: vgg(batch, &[2, 2, 3, 3, 3]),
    }
}

/// VGG-19 (configuration E) — the paper's highest-overhead model.
pub fn vgg19(batch: usize) -> ArchDescriptor {
    ArchDescriptor {
        name: "VGG19",
        ops: vgg(batch, &[2, 2, 4, 4, 4]),
    }
}

fn vgg(batch: usize, convs_per_stage: &[usize]) -> Vec<WorkloadOp> {
    let mut b = NetBuilder::new(batch, 224, 3);
    let widths = [64usize, 128, 256, 512, 512];
    for (stage, &n) in convs_per_stage.iter().enumerate() {
        for _ in 0..n {
            b.conv(widths[stage], 3, 1, false);
        }
        b.pool();
    }
    b.dense_from_volume(4096)
        .dense(4096, 4096)
        .dense(4096, 1000);
    b.finish()
}

/// ResNet-50 (bottleneck blocks ×[3, 4, 6, 3]).
pub fn resnet50(batch: usize) -> ArchDescriptor {
    ArchDescriptor {
        name: "ResNet50",
        ops: resnet_bottleneck(batch, &[3, 4, 6, 3]),
    }
}

/// ResNet-152 (bottleneck blocks ×[3, 8, 36, 3]).
pub fn resnet152(batch: usize) -> ArchDescriptor {
    ArchDescriptor {
        name: "ResNet152",
        ops: resnet_bottleneck(batch, &[3, 8, 36, 3]),
    }
}

fn resnet_bottleneck(batch: usize, blocks: &[usize; 4]) -> Vec<WorkloadOp> {
    let mut b = NetBuilder::new(batch, 224, 3);
    b.conv(64, 7, 2, true).pool(); // stem: 224 → 112 → 56
    let stage_mid = [64usize, 128, 256, 512];
    for (stage, &n) in blocks.iter().enumerate() {
        let mid = stage_mid[stage];
        let out = mid * 4;
        for block in 0..n {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            // 1×1 reduce, 3×3 (strided on the first block), 1×1 expand.
            b.conv(mid, 1, 1, true);
            b.conv(mid, 3, stride, true);
            b.conv(out, 1, 1, true);
            if block == 0 {
                // Projection shortcut 1×1 at the stage's input channels —
                // approximated at the post-expand width for brevity.
                let geom = ConvGeometry::new(b.c, out, 1, 1, 0, b.hw, b.hw);
                b.ops.push(WorkloadOp::Conv { geom, batch });
            }
        }
    }
    let mut b2 = b;
    b2.ops.push(WorkloadOp::Pool {
        elems: batch * b2.c * b2.hw * b2.hw,
    });
    b2.dense(2048, 1000);
    b2.finish()
}

/// DenseNet-121 (growth 32, blocks ×[6, 12, 24, 16]).
pub fn densenet121(batch: usize) -> ArchDescriptor {
    ArchDescriptor {
        name: "DenseNet121",
        ops: densenet(batch, &[6, 12, 24, 16]),
    }
}

/// DenseNet-201 (growth 32, blocks ×[6, 12, 48, 32]).
pub fn densenet201(batch: usize) -> ArchDescriptor {
    ArchDescriptor {
        name: "DenseNet201",
        ops: densenet(batch, &[6, 12, 48, 32]),
    }
}

fn densenet(batch: usize, blocks: &[usize; 4]) -> Vec<WorkloadOp> {
    const GROWTH: usize = 32;
    let mut b = NetBuilder::new(batch, 224, 3);
    b.conv(64, 7, 2, true).pool(); // 224 → 112 → 56
    let mut channels = 64usize;
    for (stage, &n) in blocks.iter().enumerate() {
        for _ in 0..n {
            // Dense layer: BN-ReLU-1×1(4·growth) then BN-ReLU-3×3(growth).
            let g1 = ConvGeometry::new(channels, 4 * GROWTH, 1, 1, 0, b.hw, b.hw);
            b.ops.push(WorkloadOp::Conv { geom: g1, batch });
            let g2 = ConvGeometry::new(4 * GROWTH, GROWTH, 3, 1, 1, b.hw, b.hw);
            b.ops.push(WorkloadOp::Conv { geom: g2, batch });
            let elems = batch * GROWTH * b.hw * b.hw;
            b.ops.push(WorkloadOp::BatchNorm { elems });
            b.ops.push(WorkloadOp::Activation { elems });
            channels += GROWTH;
        }
        if stage < 3 {
            // Transition: 1×1 halving + 2× pool.
            let gt = ConvGeometry::new(channels, channels / 2, 1, 1, 0, b.hw, b.hw);
            b.ops.push(WorkloadOp::Conv { geom: gt, batch });
            channels /= 2;
            b.ops.push(WorkloadOp::Pool {
                elems: batch * channels * b.hw * b.hw,
            });
            b.hw /= 2;
        }
    }
    b.c = channels;
    b.ops.push(WorkloadOp::Pool {
        elems: batch * channels * b.hw * b.hw,
    });
    b.dense(channels, 1000);
    b.finish()
}

/// MobileNetV2 (inverted residual bottlenecks; depthwise-separable).
pub fn mobilenet_v2(batch: usize) -> ArchDescriptor {
    let mut b = NetBuilder::new(batch, 224, 3);
    b.conv(32, 3, 2, true);
    // (expansion t, out channels, repeats, first stride)
    let table: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    for &(t, c_out, n, s) in &table {
        for i in 0..n {
            let stride = if i == 0 { s } else { 1 };
            let expanded = b.c * t;
            if t != 1 {
                b.conv(expanded, 1, 1, true); // expand 1×1
            }
            b.depthwise(3, stride);
            // Project 1×1 (linear — no activation op).
            let gp = ConvGeometry::new(b.c.max(expanded), c_out, 1, 1, 0, b.hw, b.hw);
            b.ops.push(WorkloadOp::Conv { geom: gp, batch });
            b.c = c_out;
        }
    }
    b.conv(1280, 1, 1, true);
    b.ops.push(WorkloadOp::Pool {
        elems: batch * 1280 * b.hw * b.hw,
    });
    b.dense(1280, 1000);
    ArchDescriptor {
        name: "MobileNetV2",
        ops: b.finish(),
    }
}

/// EfficientNet-B0 (MBConv blocks with 3×3 and 5×5 depthwise stages).
pub fn efficientnet_b0(batch: usize) -> ArchDescriptor {
    let mut b = NetBuilder::new(batch, 224, 3);
    b.conv(32, 3, 2, true);
    // (expansion, out, repeats, first stride, depthwise k)
    let table: [(usize, usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1, 3),
        (6, 24, 2, 2, 3),
        (6, 40, 2, 2, 5),
        (6, 80, 3, 2, 3),
        (6, 112, 3, 1, 5),
        (6, 192, 4, 2, 5),
        (6, 320, 1, 1, 3),
    ];
    for &(t, c_out, n, s, k) in &table {
        for i in 0..n {
            let stride = if i == 0 { s } else { 1 };
            let expanded = b.c * t;
            if t != 1 {
                b.conv(expanded, 1, 1, true);
            }
            b.depthwise(k, stride);
            // Squeeze-excite folded into two tiny dense ops.
            let c = b.c;
            b.dense(c, c / 4);
            b.dense(c / 4, c);
            let gp = ConvGeometry::new(b.c.max(expanded), c_out, 1, 1, 0, b.hw, b.hw);
            b.ops.push(WorkloadOp::Conv { geom: gp, batch });
            b.c = c_out;
        }
    }
    b.conv(1280, 1, 1, true);
    b.ops.push(WorkloadOp::Pool {
        elems: batch * 1280 * b.hw * b.hw,
    });
    b.dense(1280, 1000);
    ArchDescriptor {
        name: "EfficientNetB0",
        ops: b.finish(),
    }
}

/// Inception-v3 (299² input; factorized 1×7/7×1 stacks folded into
/// FLOP-equivalent square filters).
pub fn inception_v3(batch: usize) -> ArchDescriptor {
    let mut b = NetBuilder::new(batch, 299, 3);
    // Stem.
    b.conv(32, 3, 2, true)
        .conv(32, 3, 1, true)
        .conv(64, 3, 1, true)
        .pool()
        .conv(80, 1, 1, true)
        .conv(192, 3, 1, true)
        .pool(); // → ~37
                 // Inception-A ×3 at 35-ish resolution (1×1, 5×5, double-3×3, pool-proj).
    for _ in 0..3 {
        let hw = b.hw;
        let c_in = b.c;
        for geom in [
            ConvGeometry::new(c_in, 64, 1, 1, 0, hw, hw),
            ConvGeometry::new(c_in, 48, 1, 1, 0, hw, hw),
            ConvGeometry::new(48, 64, 5, 1, 2, hw, hw),
            ConvGeometry::new(c_in, 64, 1, 1, 0, hw, hw),
            ConvGeometry::new(64, 96, 3, 1, 1, hw, hw),
            ConvGeometry::new(96, 96, 3, 1, 1, hw, hw),
            ConvGeometry::new(c_in, 32, 1, 1, 0, hw, hw),
        ] {
            b.ops.push(WorkloadOp::Conv { geom, batch });
        }
        b.c = 64 + 64 + 96 + 32;
    }
    // Reduction-A.
    {
        let (hw, c_in) = (b.hw, b.c);
        b.ops.push(WorkloadOp::Conv {
            geom: ConvGeometry::new(c_in, 384, 3, 2, 1, hw, hw),
            batch,
        });
        b.hw = hw.div_ceil(2);
        b.c = 768;
    }
    // Inception-B ×4 at 17-ish resolution (factorized 7×7 stacks).
    for _ in 0..4 {
        let (hw, c_in) = (b.hw, b.c);
        for geom in [
            ConvGeometry::new(c_in, 192, 1, 1, 0, hw, hw),
            ConvGeometry::new(c_in, 128, 1, 1, 0, hw, hw),
            ConvGeometry::new(128, 192, 7, 1, 3, hw, hw),
            ConvGeometry::new(c_in, 128, 1, 1, 0, hw, hw),
            ConvGeometry::new(128, 192, 7, 1, 3, hw, hw),
            ConvGeometry::new(c_in, 192, 1, 1, 0, hw, hw),
        ] {
            b.ops.push(WorkloadOp::Conv { geom, batch });
        }
        b.c = 768;
    }
    // Reduction-B + Inception-C ×2 at 8-ish resolution.
    {
        let (hw, c_in) = (b.hw, b.c);
        b.ops.push(WorkloadOp::Conv {
            geom: ConvGeometry::new(c_in, 320, 3, 2, 1, hw, hw),
            batch,
        });
        b.hw = hw.div_ceil(2);
        b.c = 1280;
    }
    for _ in 0..2 {
        let (hw, c_in) = (b.hw, b.c);
        for geom in [
            ConvGeometry::new(c_in, 320, 1, 1, 0, hw, hw),
            ConvGeometry::new(c_in, 384, 1, 1, 0, hw, hw),
            ConvGeometry::new(384, 384, 3, 1, 1, hw, hw),
            ConvGeometry::new(c_in, 448, 1, 1, 0, hw, hw),
            ConvGeometry::new(448, 384, 3, 1, 1, hw, hw),
            ConvGeometry::new(c_in, 192, 1, 1, 0, hw, hw),
        ] {
            b.ops.push(WorkloadOp::Conv { geom, batch });
        }
        b.c = 2048;
    }
    b.ops.push(WorkloadOp::Pool {
        elems: batch * b.c * b.hw * b.hw,
    });
    b.dense(2048, 1000);
    ArchDescriptor {
        name: "InceptionV3",
        ops: b.finish(),
    }
}

/// The ten networks of the paper's Figure 8 (left), batch 64 unless
/// overridden.
pub fn profiled_networks(batch: usize) -> Vec<ArchDescriptor> {
    vec![
        mobilenet_v2(batch),
        efficientnet_b0(batch),
        densenet121(batch),
        densenet201(batch),
        inception_v3(batch),
        resnet50(batch),
        resnet152(batch),
        vgg16(batch),
        vgg19(batch),
        medium_cnn(3, batch),
    ]
}

/// Total forward FLOPs of a descriptor.
pub fn total_flops(desc: &ArchDescriptor) -> u64 {
    desc.ops.iter().map(WorkloadOp::forward_flops).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_networks_build() {
        let nets = profiled_networks(64);
        assert_eq!(nets.len(), 10);
        for n in &nets {
            assert!(!n.ops.is_empty(), "{} has no ops", n.name);
            assert!(total_flops(n) > 0, "{} has zero flops", n.name);
        }
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<&str> = profiled_networks(1).iter().map(|n| n.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn relative_flop_ordering_is_sane() {
        // VGG-19 > VGG-16; ResNet-152 > ResNet-50; DenseNet-201 > 121;
        // MobileNetV2 is the lightest full-scale network.
        let f = |d: ArchDescriptor| total_flops(&d);
        assert!(f(vgg19(64)) > f(vgg16(64)));
        assert!(f(resnet152(64)) > f(resnet50(64)));
        assert!(f(densenet201(64)) > f(densenet121(64)));
        assert!(f(mobilenet_v2(64)) < f(resnet50(64)));
        assert!(f(mobilenet_v2(64)) < f(vgg16(64)) / 10);
    }

    #[test]
    fn vgg16_flops_match_published_scale() {
        // VGG-16 forward ≈ 15.5 G-MACs/image at 224² = ~31 GFLOPs.
        let per_image = total_flops(&vgg16(1)) as f64;
        assert!(
            (2.5e10..4.0e10).contains(&per_image),
            "VGG-16 flops/image {per_image:e}"
        );
    }

    #[test]
    fn resnet50_flops_match_published_scale() {
        // ResNet-50 forward ≈ 4.1 G-MACs/image = ~8 GFLOPs.
        let per_image = total_flops(&resnet50(1)) as f64;
        assert!(
            (6.0e9..1.2e10).contains(&per_image),
            "ResNet-50 flops/image {per_image:e}"
        );
    }

    #[test]
    fn medium_cnn_filter_sweep_builds() {
        for k in [1usize, 3, 5, 7] {
            let d = medium_cnn(k, 64);
            let convs = d
                .ops
                .iter()
                .filter(|o| matches!(o, WorkloadOp::Conv { .. }))
                .count();
            assert_eq!(convs, 6, "k={k}");
        }
    }

    #[test]
    fn flops_scale_linearly_with_batch() {
        let f1 = total_flops(&resnet50(1));
        let f64x = total_flops(&resnet50(64));
        let ratio = f64x as f64 / f1 as f64;
        assert!((ratio - 64.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "unsupported filter size")]
    fn medium_cnn_rejects_k0() {
        medium_cnn(0, 1);
    }
}
