//! End-to-end determinism guarantees: the Control variant must be bitwise
//! reproducible on every device, the TPU must contribute zero
//! implementation noise, and deterministic execution must be a pure
//! function of the algorithmic seed.

// Exact float assertions are deliberate: bit-identical replay is what these tests check.
#![allow(clippy::float_cmp)]

use noisescope::prelude::*;
use ns_integration::{tiny_resnet_task, tiny_settings, tiny_task};

#[test]
fn control_variant_bitwise_identical_on_every_device() {
    let prepared = PreparedTask::prepare(&tiny_task());
    let settings = tiny_settings();
    for device in [
        Device::p100(),
        Device::v100(),
        Device::rtx5000(),
        Device::rtx5000_tensor_cores(),
        Device::t4(),
        Device::tpu_v2(),
        Device::cpu(),
    ] {
        let runs = run_variant(&prepared, &device, NoiseVariant::Control, &settings);
        assert_eq!(
            runs.results[0].weights,
            runs.results[1].weights,
            "control weights differ on {}",
            device.name()
        );
        assert_eq!(
            runs.results[0].preds,
            runs.results[1].preds,
            "control predictions differ on {}",
            device.name()
        );
    }
}

#[test]
fn control_variant_holds_for_batchnorm_residual_models() {
    let prepared = PreparedTask::prepare(&tiny_resnet_task());
    let settings = tiny_settings();
    let runs = run_variant(&prepared, &Device::v100(), NoiseVariant::Control, &settings);
    assert_eq!(runs.results[0].weights, runs.results[1].weights);
}

#[test]
fn tpu_impl_noise_is_exactly_zero() {
    let prepared = PreparedTask::prepare(&tiny_task());
    let settings = tiny_settings();
    let runs = run_variant(&prepared, &Device::tpu_v2(), NoiseVariant::Impl, &settings);
    let report = stability_report(&prepared, &Device::tpu_v2(), NoiseVariant::Impl, &runs);
    assert_eq!(report.churn, 0.0, "TPU must not contribute IMPL churn");
    assert_eq!(
        report.l2, 0.0,
        "TPU must not contribute IMPL weight divergence"
    );
}

#[test]
fn deterministic_execution_is_entropy_invariant() {
    // Two fleets with totally different scheduler entropy must coincide
    // when execution is deterministic.
    let prepared = PreparedTask::prepare(&tiny_task());
    let a = ExperimentSettings {
        entropy_salt: 1,
        ..tiny_settings()
    };
    let b = ExperimentSettings {
        entropy_salt: 0xFFFF_0000,
        ..tiny_settings()
    };
    let ra = run_replica(&prepared, &Device::v100(), NoiseVariant::Algo, &a, 0).expect("trains");
    let rb = run_replica(&prepared, &Device::v100(), NoiseVariant::Algo, &b, 0).expect("trains");
    assert_eq!(ra.weights, rb.weights);
}

#[test]
fn deterministic_execution_depends_on_algorithmic_seed() {
    let prepared = PreparedTask::prepare(&tiny_task());
    let a = ExperimentSettings {
        base_seed: 7,
        ..tiny_settings()
    };
    let b = ExperimentSettings {
        base_seed: 8,
        ..tiny_settings()
    };
    let ra = run_replica(&prepared, &Device::v100(), NoiseVariant::Control, &a, 0).expect("trains");
    let rb = run_replica(&prepared, &Device::v100(), NoiseVariant::Control, &b, 0).expect("trains");
    assert_ne!(ra.weights, rb.weights, "different seeds must differ");
}

#[test]
fn replaying_a_pinned_nondeterministic_schedule_reproduces_the_run() {
    // Nondeterministic execution with *pinned* entropy is replayable —
    // the property that makes fleet results attributable.
    let prepared = PreparedTask::prepare(&tiny_task());
    let settings = tiny_settings();
    let a = run_replica(
        &prepared,
        &Device::v100(),
        NoiseVariant::AlgoImpl,
        &settings,
        1,
    )
    .expect("trains");
    let b = run_replica(
        &prepared,
        &Device::v100(),
        NoiseVariant::AlgoImpl,
        &settings,
        1,
    )
    .expect("trains");
    assert_eq!(a.weights, b.weights);
}
