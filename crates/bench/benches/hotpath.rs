//! The committed hot-path suite behind `BENCH_2.json`: GEMM, conv forward,
//! conv backward, one training step, and a whole replica fleet.
//!
//! Benchmark names are stable identifiers — `scripts/bench_compare.sh`
//! parses them out of `cargo bench` output and compares against the
//! committed `BENCH_2.json`, so renaming one is a breaking change for the
//! regression gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use detrand::Philox;
use hwsim::{Device, ExecutionContext, ExecutionMode};
use nnet::loss::softmax_cross_entropy;
use nnet::zoo;
use noisescope::prelude::*;
use nsdata::GaussianSpec;
use nstensor::{
    conv2d_backward_ws, conv2d_forward_ws, matmul_ws, ConvGeometry, ReduceOrder, Reducer, Shape,
    Tensor, Workspace,
};

/// Deterministic pseudo-random tensor fill (no RNG crates in benches).
fn filled(shape: Shape, seed: u64) -> Tensor {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let n = shape.len();
    let data = (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect();
    Tensor::from_vec(shape, data).expect("bench tensor")
}

fn bench_gemm(c: &mut Criterion) {
    let m = 96usize;
    let a = filled(Shape::of(&[m, m]), 1);
    let b = filled(Shape::of(&[m, m]), 2);
    let mut group = c.benchmark_group("gemm_96");
    group.sample_size(20);
    group.throughput(Throughput::Elements((m * m * m) as u64));
    for (name, order) in [
        ("sequential", ReduceOrder::Sequential),
        ("fixed_tree", ReduceOrder::FixedTree),
        ("permuted", ReduceOrder::Permuted),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &order, |bch, &order| {
            let mut red = Reducer::new(order, 40, 7);
            let mut ws = Workspace::new();
            bch.iter(|| std::hint::black_box(matmul_ws(&a, &b, &mut red, 1, &mut ws).unwrap()));
        });
    }
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let geom = ConvGeometry::new(8, 16, 3, 1, 1, 16, 16);
    let batch = 8usize;
    let x = filled(Shape::of(&[batch, geom.in_c, geom.in_h, geom.in_w]), 3);
    let w = filled(Shape::of(&[geom.out_c, geom.patch_len()]), 4);
    let b = filled(Shape::of(&[geom.out_c]), 5);

    let mut group = c.benchmark_group("conv_fwd");
    group.sample_size(10);
    group.throughput(Throughput::Elements(geom.flops(batch)));
    for (name, order) in [
        ("sequential", ReduceOrder::Sequential),
        ("fixed_tree", ReduceOrder::FixedTree),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &order, |bch, &order| {
            let mut red = Reducer::new(order, 40, 7);
            let mut ws = Workspace::new();
            bch.iter(|| {
                std::hint::black_box(
                    conv2d_forward_ws(&x, &w, &b, &geom, &mut red, 1, &mut ws).unwrap(),
                )
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("conv_bwd");
    group.sample_size(10);
    let mut red = Reducer::sequential();
    let mut ws = Workspace::new();
    let y = conv2d_forward_ws(&x, &w, &b, &geom, &mut red, 1, &mut ws).unwrap();
    group.bench_function("sequential", |bch| {
        let mut red = Reducer::sequential();
        let mut ws = Workspace::new();
        bch.iter(|| {
            std::hint::black_box(
                conv2d_backward_ws(&x, &w, &y, &geom, &mut red, 1, &mut ws).unwrap(),
            )
        });
    });
    group.finish();
}

fn bench_train_step(c: &mut Criterion) {
    let root = Philox::from_seed(7);
    let mut group = c.benchmark_group("train_step");
    group.sample_size(10);
    for (name, device, mode) in [
        ("small_cnn/cpu", Device::cpu(), ExecutionMode::Default),
        (
            "small_cnn/v100_det",
            Device::v100(),
            ExecutionMode::Deterministic,
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |bch, &mode| {
            let mut net = zoo::small_cnn(12, 3, 10, false, &root);
            let mut exec = ExecutionContext::new(device, mode, 3);
            let x = filled(Shape::of(&[16, 3, 12, 12]), 11);
            let labels: Vec<u32> = (0..16).map(|i| (i % 10) as u32).collect();
            let mut step = 0u64;
            bch.iter(|| {
                let logits = net.forward(x.clone(), &mut exec, &root, step, true);
                let (_, dl) = softmax_cross_entropy(&logits, &labels);
                net.backward(dl, &mut exec);
                step += 1;
            });
        });
    }
    group.finish();
}

fn bench_run_variant(c: &mut Criterion) {
    let mut task = TaskSpec::small_cnn_cifar10();
    task.data = DataSource::Gaussian(GaussianSpec {
        classes: 4,
        train_per_class: 8,
        test_per_class: 4,
        hw: 8,
        ..GaussianSpec::cifar10_sim()
    });
    task.train.epochs = 1;
    task.augment = false;
    let prepared = PreparedTask::prepare(&task);
    let settings = ExperimentSettings {
        replicas: 2,
        ..ExperimentSettings::default()
    };
    let mut group = c.benchmark_group("run_variant");
    group.sample_size(3);
    group.bench_function("control_v100_x2", |bch| {
        bch.iter(|| {
            std::hint::black_box(run_variant(
                &prepared,
                &Device::v100(),
                NoiseVariant::Control,
                &settings,
            ))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_conv,
    bench_train_step,
    bench_run_variant
);
criterion_main!(benches);
