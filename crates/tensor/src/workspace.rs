//! A recycling pool of scratch buffers for the GEMM/conv hot path.
//!
//! Training calls the same matmul/conv shapes thousands of times; without
//! reuse every call re-allocates its im2col columns, packed B panels and
//! transpose scratch. A [`Workspace`] hands those allocations back out
//! instead. It is deliberately dumb — a stack of `Vec<f32>` — because the
//! hot path borrows at most a handful of buffers at a time and the
//! largest-capacity match is always the right one to reuse.

/// A pool of reusable `f32` scratch buffers.
///
/// Buffers are handed out zero-filled at their requested length, so
/// callers see identical semantics to a fresh `vec![0.0; len]`.
///
/// # Example
///
/// ```
/// use nstensor::Workspace;
/// let mut ws = Workspace::new();
/// let buf = ws.take_zeroed(1024);
/// assert!(buf.iter().all(|&x| x == 0.0));
/// ws.recycle(buf);
/// // The next take of any size reuses the same allocation.
/// let again = ws.take_zeroed(512);
/// assert!(again.capacity() >= 1024);
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f32>>,
}

impl Workspace {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffers currently parked in the pool.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Hands out a buffer of exactly `len` zeros, reusing the pooled
    /// allocation with the largest capacity when one exists.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let best = self
            .pool
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        let mut buf = match best {
            Some(i) => self.pool.swap_remove(i),
            None => Vec::new(),
        };
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Hands out a buffer of exactly `len` elements with **arbitrary
    /// contents** — whatever a recycled allocation last held. Strictly for
    /// scratch the caller overwrites in full before reading (im2col
    /// columns, packed GEMM panels, transpose targets); it skips the
    /// zero-fill of [`Workspace::take_zeroed`], which is pure overhead for
    /// such buffers.
    pub fn take_scratch(&mut self, len: usize) -> Vec<f32> {
        let best = self
            .pool
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        let mut buf = match best {
            Some(i) => self.pool.swap_remove(i),
            None => Vec::new(),
        };
        // Keep whatever prefix the buffer already holds; only growth is
        // (necessarily) zero-filled.
        buf.truncate(len);
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the pool for reuse.
    pub fn recycle(&mut self, buf: Vec<f32>) {
        // Tiny buffers are cheaper to re-allocate than to track.
        if buf.capacity() >= 64 {
            self.pool.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_even_after_dirty_recycle() {
        let mut ws = Workspace::new();
        let mut buf = ws.take_zeroed(128);
        buf.iter_mut().for_each(|x| *x = 7.0);
        ws.recycle(buf);
        let buf = ws.take_zeroed(256);
        assert_eq!(buf.len(), 256);
        assert!(buf.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn largest_capacity_is_reused_first() {
        let mut ws = Workspace::new();
        let big = ws.take_zeroed(4096);
        let small = ws.take_zeroed(128);
        ws.recycle(small);
        ws.recycle(big);
        let buf = ws.take_zeroed(64);
        assert!(buf.capacity() >= 4096, "should reuse the big allocation");
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn tiny_buffers_are_dropped() {
        let mut ws = Workspace::new();
        ws.recycle(vec![0.0; 8]);
        assert_eq!(ws.pooled(), 0);
    }
}
