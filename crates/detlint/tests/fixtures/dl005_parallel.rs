//! DL005 fixture: unordered parallel combinators with float reductions.

// <explain:DL005:bad>
pub fn parallel_sum(xs: &[f32]) -> f32 {
    xs.par_iter().sum() // fires: parallel float sum
}
// </explain:DL005:bad>

pub fn parallel_reduce(xs: &[f64]) -> f64 {
    xs.into_par_iter().reduce(|| 0.0, |a, b| a + b) // fires: parallel reduce
}

pub fn parallel_chunked(xs: &[f32]) -> f32 {
    xs.par_chunks(64).map(|c| c.iter().sum::<f32>()).sum() // fires: chunked parallel sum
}
