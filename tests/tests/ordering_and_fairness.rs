//! Integration coverage for the data-ordering (Fig. 6) and subgroup
//! fairness (Fig. 3 / Tables 3, 5) pipelines.

use detrand::Philox;
use hwsim::{Device, ExecutionContext, ExecutionMode};
use nnet::trainer::Trainer;
use noisescope::experiments::fairness;
use noisescope::prelude::*;
use ns_integration::tiny_task;

#[test]
fn data_order_alone_diverges_weights_on_deterministic_hardware() {
    // The Figure-6 mechanism at test scale: same seed, deterministic TPU,
    // only the shuffle order differs → weights must differ (at least one
    // ulp) because gradient accumulation follows the visit order.
    let task = tiny_task();
    let prepared = PreparedTask::prepare(&task);
    let algo = Philox::from_seed(99);
    let run = |shuffle_seed: u64| {
        let mut cfg = task.train;
        cfg.epochs = 4;
        cfg.shuffle_seed_override = Some(shuffle_seed);
        let mut exec = ExecutionContext::new(Device::tpu_v2(), ExecutionMode::Default, 0);
        let mut net = task.build_model(&algo);
        Trainer::new(cfg)
            .fit(&mut net, prepared.train_set(), &mut exec, &algo, None)
            .expect("order-only run trains");
        net.flat_weights()
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(a, b, "different data order left weights bitwise identical");
    // And the same order replays exactly.
    assert_eq!(a, run(1));
}

#[test]
fn full_batch_training_is_still_order_sensitive() {
    let task = tiny_task();
    let prepared = PreparedTask::prepare(&task);
    let algo = Philox::from_seed(99);
    let full = prepared.train_set().len();
    let run = |shuffle_seed: u64| {
        let mut cfg = task.train;
        cfg.epochs = 6;
        cfg.batch_size = full; // one batch: identical gradient *terms*
        cfg.shuffle_seed_override = Some(shuffle_seed);
        let mut exec = ExecutionContext::new(Device::tpu_v2(), ExecutionMode::Default, 0);
        let mut net = task.build_model(&algo);
        Trainer::new(cfg)
            .fit(&mut net, prepared.train_set(), &mut exec, &algo, None)
            .expect("full-batch run trains");
        net.flat_weights()
    };
    assert_ne!(
        run(1),
        run(2),
        "mathematically identical full-batch gradients still depend on \
         accumulation order — the paper's latent implementation noise"
    );
}

#[test]
fn celeba_pipeline_produces_complete_table5() {
    let settings = ExperimentSettings {
        replicas: 2,
        epochs_scale: 0.34, // 2 epochs
        ..ExperimentSettings::default()
    };
    let tables = fairness::fig3_table5(&settings).expect("built-in subgroups always resolve");
    assert_eq!(tables.len(), 3, "one table per measured variant");
    for t in &tables {
        assert_eq!(t.rows.len(), 5);
        assert_eq!(t.rows[0].group, "All");
        // The "All" row is its own baseline.
        if t.rows[0].std_accuracy > 0.0 {
            assert!((t.rows[0].rel_accuracy - 1.0).abs() < 1e-9);
        }
        for row in &t.rows {
            assert!(row.std_accuracy >= 0.0 && row.std_fpr >= 0.0 && row.std_fnr >= 0.0);
        }
    }
}

#[test]
fn table3_proportions_track_the_paper() {
    let c = fairness::table3();
    let total = c.total() as f64;
    // Male ≈ 42 % of the population; positives rare among males.
    let male_frac = (c.male_pos + c.male_neg) as f64 / total;
    assert!(
        (0.36..0.48).contains(&male_frac),
        "male fraction {male_frac}"
    );
    let male_rate = c.male_pos as f64 / (c.male_pos + c.male_neg) as f64;
    let female_rate = c.female_pos as f64 / (c.female_pos + c.female_neg) as f64;
    assert!(male_rate < 0.07, "male positive rate {male_rate}");
    assert!(female_rate > 0.15, "female positive rate {female_rate}");
    // Old is the minority age group.
    assert!((c.old_pos + c.old_neg) < (c.young_pos + c.young_neg));
}
