//! Serialization round-trips: every result structure the `repro` binary
//! writes to `results/` must survive JSON round-tripping (downstream
//! plotting/analysis consumes these files).

// Exact float assertions are deliberate: bit-identical replay is what these tests check.
#![allow(clippy::float_cmp)]

use noisescope::experiments::cost::OverheadPoint;
use noisescope::experiments::ordering::OrderingPoint;
use noisescope::prelude::*;
use noisescope::report::StabilityReport;
use noisescope::runner::{Preds, ReplicaResult};

#[test]
fn stability_report_round_trips() {
    let report = StabilityReport {
        task: "SmallCNN CIFAR-10".into(),
        device: "V100".into(),
        variant: NoiseVariant::Impl,
        replicas: 4,
        mean_accuracy: 0.62,
        std_accuracy: 0.009,
        churn: 0.21,
        l2: 0.24,
        per_class_std: vec![0.01, 0.04],
        max_per_class_ratio: 4.2,
        failed_replicas: vec![2],
        retried_replicas: 1,
    };
    let json = serde_json::to_string(&report).unwrap();
    let back: StabilityReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.task, report.task);
    assert_eq!(back.variant, report.variant);
    assert_eq!(back.per_class_std, report.per_class_std);
    assert_eq!(back.failed_replicas, report.failed_replicas);
    assert_eq!(back.retried_replicas, report.retried_replicas);
}

#[test]
fn replica_result_round_trips_both_pred_kinds() {
    for preds in [Preds::Classes(vec![1, 2, 3]), Preds::Binary(vec![0, 1, 1])] {
        let r = ReplicaResult {
            replica: 7,
            accuracy: 0.5,
            preds: preds.clone(),
            weights: vec![1.0, -2.0],
            final_train_loss: 0.3,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: ReplicaResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.preds, preds);
        assert_eq!(back.weights, r.weights);
    }
}

#[test]
fn experiment_points_round_trip() {
    let o = OverheadPoint {
        workload: "VGG19".into(),
        device: "P100".into(),
        default_time_s: 1.0,
        deterministic_time_s: 2.0,
        overhead_pct: 200.0,
    };
    let back: OverheadPoint = serde_json::from_str(&serde_json::to_string(&o).unwrap()).unwrap();
    assert_eq!(back.workload, "VGG19");
    assert_eq!(back.overhead_pct, 200.0);

    let p = OrderingPoint {
        batch_size: 400,
        churn: 0.02,
        l2: 1e-4,
        mean_accuracy: 0.5,
    };
    let back: OrderingPoint = serde_json::from_str(&serde_json::to_string(&p).unwrap()).unwrap();
    assert_eq!(back.batch_size, 400);
}

#[test]
fn variant_serialization_is_stable() {
    // The JSON encoding of variants is part of the results-file contract.
    assert_eq!(
        serde_json::to_string(&NoiseVariant::AlgoImpl).unwrap(),
        "\"AlgoImpl\""
    );
    let back: NoiseVariant = serde_json::from_str("\"Impl\"").unwrap();
    assert_eq!(back, NoiseVariant::Impl);
}

#[test]
fn task_specs_round_trip() {
    for task in [
        TaskSpec::small_cnn_cifar10(),
        TaskSpec::resnet18_cifar100(),
        TaskSpec::celeba(),
    ] {
        let json = serde_json::to_string(&task).unwrap();
        let back: TaskSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name, task.name);
        assert_eq!(back.train.epochs, task.train.epochs);
        // The round-tripped spec must build the identical model.
        let root = detrand::Philox::from_seed(1);
        let mut a = task.build_model(&root);
        let mut b = back.build_model(&root);
        assert_eq!(a.flat_weights(), b.flat_weights());
    }
}
