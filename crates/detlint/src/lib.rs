//! detlint — workspace-wide determinism static analysis.
//!
//! NoiseScope's whole premise is that a training run, replayed with the same
//! seeds on the same simulated hardware, produces bit-identical numbers.
//! That property is easy to break with one careless line: iterate a
//! `HashMap` into a report, seed an RNG from the wall clock, or sum floats
//! in whatever order an iterator happens to yield. detlint scans every
//! Rust source file in the workspace for those hazard patterns and gates CI
//! on the result.
//!
//! # Rules
//!
//! | Rule  | Taxonomy  | Hazard |
//! |-------|-----------|--------|
//! | DL001 | REPORTING | `HashMap`/`HashSet` iteration feeding accumulation, serialization, or output |
//! | DL002 | ALGO      | RNG state from OS entropy or wall time (`thread_rng`, `from_entropy`, time-derived seeds) |
//! | DL003 | REPORTING | Wall-clock reads (`Instant::now`, `SystemTime::now`) in result-producing paths |
//! | DL004 | IMPL      | Float `sum`/`product`/additive `fold` where evaluation order changes the bit pattern |
//! | DL005 | IMPL      | Unordered parallel combinators combined with non-associative float ops |
//! | DL006 | IMPL      | Unordered-tainted value reaching a float accumulation sink (cross-statement dataflow) |
//! | DL007 | ALGO      | Sequential RNG value crossing a thread/process boundary without index re-derivation |
//! | DL008 | REPORTING | `std::env::var` feeding a numeric path without registration in `Settings` |
//! | DL009 | REPORTING | Stale `detlint::allow` whose rule no longer fires on the covered line (`--audit`) |
//!
//! DL001–DL005 are single-statement token-pattern rules; DL006–DL008 run
//! on an intra-procedural taint engine (see [`dataflow`]) over the
//! structural parse (see [`parser`]); DL009 is a suppression audit.
//!
//! The taxonomy follows the source paper's decomposition of run-to-run
//! noise: ALGO (algorithmic randomness — which random numbers are drawn),
//! IMPL (implementation-level numeric nondeterminism — how the same numbers
//! are combined), and REPORTING (noise introduced when results are
//! aggregated and emitted).
//!
//! # Suppressions
//!
//! A finding that is understood and acceptable is silenced in place:
//!
//! ```text
//! let t = total(); // detlint::allow(DL004, reason = "fixed 4-element array")
//! ```
//!
//! Reasons are mandatory and audited: an allow without a reason, or naming
//! an unknown rule, is itself a gate-failing problem. Unused allows are
//! reported as warnings so stale annotations get cleaned up.

pub mod baseline;
pub mod cache;
pub mod config;
pub mod dataflow;
pub mod explain;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod suppress;

use std::path::{Path, PathBuf};

pub use config::Config;

/// The nine determinism rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Hash-container iteration feeding an order-sensitive sink.
    Dl001,
    /// RNG state from ambient entropy (OS randomness, wall time).
    Dl002,
    /// Wall-clock reads in result-producing paths.
    Dl003,
    /// Order-sensitive float reductions.
    Dl004,
    /// Unordered parallel combinators with non-associative float ops.
    Dl005,
    /// Unordered-tainted value reaching a float accumulation sink.
    Dl006,
    /// Sequential RNG value crossing a thread/process boundary.
    Dl007,
    /// Unregistered env var influencing a numeric path.
    Dl008,
    /// Stale suppression: an allow whose rule no longer fires.
    Dl009,
}

/// Where a hazard injects noise, following the paper's decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Taxonomy {
    /// Algorithmic randomness: which random numbers are drawn.
    Algo,
    /// Implementation-level nondeterminism: how numbers are combined.
    Impl,
    /// Noise introduced while aggregating and emitting results.
    Reporting,
}

impl Taxonomy {
    /// Uppercase display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Taxonomy::Algo => "ALGO",
            Taxonomy::Impl => "IMPL",
            Taxonomy::Reporting => "REPORTING",
        }
    }
}

impl RuleId {
    /// Every rule, in ID order.
    pub const ALL: [RuleId; 9] = [
        RuleId::Dl001,
        RuleId::Dl002,
        RuleId::Dl003,
        RuleId::Dl004,
        RuleId::Dl005,
        RuleId::Dl006,
        RuleId::Dl007,
        RuleId::Dl008,
        RuleId::Dl009,
    ];

    /// The rules a `detlint::allow` may name. DL009 polices suppressions
    /// themselves, so it cannot be suppressed.
    pub const SUPPRESSIBLE: [RuleId; 8] = [
        RuleId::Dl001,
        RuleId::Dl002,
        RuleId::Dl003,
        RuleId::Dl004,
        RuleId::Dl005,
        RuleId::Dl006,
        RuleId::Dl007,
        RuleId::Dl008,
    ];

    /// Canonical `DLxxx` name.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::Dl001 => "DL001",
            RuleId::Dl002 => "DL002",
            RuleId::Dl003 => "DL003",
            RuleId::Dl004 => "DL004",
            RuleId::Dl005 => "DL005",
            RuleId::Dl006 => "DL006",
            RuleId::Dl007 => "DL007",
            RuleId::Dl008 => "DL008",
            RuleId::Dl009 => "DL009",
        }
    }

    /// Parses a `DLxxx` name.
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.as_str() == s)
    }

    /// Which noise source the rule polices.
    pub fn taxonomy(self) -> Taxonomy {
        match self {
            RuleId::Dl001 | RuleId::Dl003 | RuleId::Dl008 | RuleId::Dl009 => Taxonomy::Reporting,
            RuleId::Dl002 | RuleId::Dl007 => Taxonomy::Algo,
            RuleId::Dl004 | RuleId::Dl005 | RuleId::Dl006 => Taxonomy::Impl,
        }
    }

    /// One-line rule description.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::Dl001 => "HashMap/HashSet iteration feeding accumulation or output",
            RuleId::Dl002 => "RNG seeded from OS entropy or wall time",
            RuleId::Dl003 => "wall-clock read in a result-producing path",
            RuleId::Dl004 => "order-sensitive float reduction",
            RuleId::Dl005 => "unordered parallel float reduction",
            RuleId::Dl006 => "unordered-tainted value reaching a float accumulation",
            RuleId::Dl007 => "sequential RNG value crossing a thread/process boundary",
            RuleId::Dl008 => "unregistered env var influencing a numeric path",
            RuleId::Dl009 => "stale detlint::allow matching no finding",
        }
    }
}

/// One hazard found in the scanned source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: RuleId,
    /// Workspace-relative path (`/`-separated).
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// What is wrong and why it matters.
    pub message: String,
}

/// A malformed suppression — gate-failing, like a finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Problem {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the bad annotation.
    pub line: u32,
    /// What is malformed.
    pub message: String,
}

/// The result of scanning a workspace (or a single file).
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings silenced by a valid `detlint::allow`, with the reason.
    pub suppressed: Vec<(Finding, String)>,
    /// Known findings matched by a `--baseline` file: reported as
    /// warnings, not gate failures.
    pub grandfathered: Vec<Finding>,
    /// Malformed suppressions (missing reason, unknown rule).
    pub problems: Vec<Problem>,
    /// Valid suppressions that matched nothing: `(file, line, rule)`.
    pub unused_allows: Vec<(String, u32, RuleId)>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl ScanReport {
    /// `true` when the gate passes: no findings and no problems
    /// (grandfathered findings and unused allows only warn).
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.problems.is_empty()
    }

    pub(crate) fn merge_file(&mut self, other: ScanReport) {
        self.findings.extend(other.findings);
        self.suppressed.extend(other.suppressed);
        self.grandfathered.extend(other.grandfathered);
        self.problems.extend(other.problems);
        self.unused_allows.extend(other.unused_allows);
        self.files_scanned += other.files_scanned;
    }

    pub(crate) fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }
}

/// Scans one file's source text. `rel_path` decides rule exemptions and
/// test-path handling, so fixture tests can exercise rules directly.
pub fn scan_file(rel_path: &str, source: &str, config: &Config) -> ScanReport {
    let lexed = lexer::lex(source);
    let parsed = parser::parse(&lexed.tokens);
    let findings = rules::run_rules(rel_path, &lexed, &parsed, config);
    let suppressions = suppress::parse_suppressions(&lexed.comments, &lexed.tokens);

    let mut report = ScanReport {
        files_scanned: 1,
        ..ScanReport::default()
    };
    let mut used = vec![false; suppressions.len()];
    for s in &suppressions {
        match (&s.rule, &s.reason) {
            (Err(raw), _) => report.problems.push(Problem {
                file: rel_path.to_string(),
                line: s.line,
                message: format!(
                    "detlint::allow names unknown rule `{raw}` \
                     (expected DL001..DL008; DL009 polices allows and \
                     cannot be suppressed)"
                ),
            }),
            (Ok(RuleId::Dl009), _) => report.problems.push(Problem {
                file: rel_path.to_string(),
                line: s.line,
                message: "detlint::allow(DL009) is not allowed: DL009 audits \
                          suppressions and cannot itself be suppressed"
                    .to_string(),
            }),
            (Ok(rule), None) => report.problems.push(Problem {
                file: rel_path.to_string(),
                line: s.line,
                message: format!(
                    "detlint::allow({}) is missing a reason; write \
                     `detlint::allow({}, reason = \"...\")`",
                    rule.as_str(),
                    rule.as_str()
                ),
            }),
            (Ok(_), Some(_)) => {}
        }
    }
    for f in findings {
        // A finding on a continuation line of a multi-line statement is
        // covered by a suppression on the statement's *first* line — the
        // only line a human can reasonably annotate.
        let stmt_first = parsed.stmt_first_line(f.line).unwrap_or(f.line);
        let hit = suppressions.iter().enumerate().find(|(_, s)| {
            (s.covers == f.line || s.covers == stmt_first)
                && s.rule == Ok(f.rule)
                && s.reason.is_some()
        });
        match hit {
            Some((idx, s)) => {
                used[idx] = true;
                report
                    .suppressed
                    .push((f, s.reason.clone().unwrap_or_default()));
            }
            None => report.findings.push(f),
        }
    }
    // In `--audit` mode a stale allow in shipping code is a finding
    // (DL009); in normal mode it stays a warning. Test code keeps the
    // warning either way — its rules don't run, so every allow there
    // would look stale.
    let audit_here = config.audit
        && !config.rule_exempt(RuleId::Dl009, rel_path)
        && (config.scan_test_code || !Config::is_test_path(rel_path));
    let test_regions = if audit_here && !config.scan_test_code {
        lexer::test_regions(&lexed.tokens)
    } else {
        Vec::new()
    };
    for (s, used) in suppressions.iter().zip(used) {
        if let (Ok(rule), Some(_), false) = (&s.rule, &s.reason, used) {
            if *rule == RuleId::Dl009 {
                continue; // already a problem above
            }
            let in_test = test_regions.iter().any(|&(a, b)| (a..=b).contains(&s.line));
            if audit_here && !in_test {
                report.findings.push(Finding {
                    rule: RuleId::Dl009,
                    file: rel_path.to_string(),
                    line: s.line,
                    message: format!(
                        "stale allow: detlint::allow({}) matches no {} finding \
                         on the line it covers; delete it or re-justify it",
                        rule.as_str(),
                        rule.as_str()
                    ),
                });
            } else {
                report
                    .unused_allows
                    .push((rel_path.to_string(), s.line, *rule));
            }
        }
    }
    report
}

/// Scans every `.rs` file under `root`, honoring config excludes.
/// Files are visited in sorted order so output is deterministic — detlint
/// holds itself to the standard it enforces.
pub fn scan_workspace(root: &Path, config: &Config) -> std::io::Result<ScanReport> {
    let mut report = ScanReport::default();
    for rel in &workspace_files(root, config)? {
        let source = std::fs::read_to_string(root.join(rel))?;
        report.merge_file(scan_file(rel, &source, config));
    }
    report.sort();
    Ok(report)
}

/// The sorted list of workspace-relative `.rs` paths a scan covers.
pub(crate) fn workspace_files(root: &Path, config: &Config) -> std::io::Result<Vec<String>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, config, &mut files)?;
    files.sort();
    Ok(files)
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    config: &Config,
    out: &mut Vec<String>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if config.excluded(&rel) {
            continue;
        }
        let ty = entry.file_type()?;
        if ty.is_dir() {
            collect_rs_files(root, &path, config, out)?;
        } else if ty.is_file() && rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Walks up from `start` to the directory containing `detlint.toml`
/// (falling back to a workspace `Cargo.toml`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    let mut cargo_root = None;
    while let Some(d) = dir {
        if d.join("detlint.toml").is_file() {
            return Some(d);
        }
        if cargo_root.is_none() {
            let manifest = d.join("Cargo.toml");
            if manifest.is_file()
                && std::fs::read_to_string(&manifest).is_ok_and(|t| t.contains("[workspace]"))
            {
                cargo_root = Some(d.clone());
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    cargo_root
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip() {
        for rule in RuleId::ALL {
            assert_eq!(RuleId::parse(rule.as_str()), Some(rule));
        }
        assert_eq!(RuleId::parse("DL999"), None);
    }

    #[test]
    fn suppression_silences_finding_and_is_marked_used() {
        let src = "fn f() -> f64 {\n    // detlint::allow(DL004, reason = \"fixed-size input\")\n    self.xs.iter().sum()\n}\n";
        let report = scan_file("src/x.rs", src, &Config::default());
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.suppressed.len(), 1);
        assert!(report.unused_allows.is_empty());
        assert!(report.clean());
    }

    #[test]
    fn unused_allow_is_warned_not_failed() {
        let src = "// detlint::allow(DL001, reason = \"nothing here\")\nfn f() {}\n";
        let report = scan_file("src/x.rs", src, &Config::default());
        assert!(report.clean());
        assert_eq!(report.unused_allows.len(), 1);
    }

    #[test]
    fn bad_allows_fail_the_gate() {
        let src = "// detlint::allow(DL004)\nfn f() {}\n// detlint::allow(DL077, reason = \"?\")\nfn g() {}\n";
        let report = scan_file("src/x.rs", src, &Config::default());
        assert_eq!(report.problems.len(), 2);
        assert!(!report.clean());
    }
}
