//! The ALGO/IMPL decomposition: each noise family must be isolatable, and
//! the isolation must behave like the paper's variant matrix.

use noisescope::prelude::*;
use ns_integration::{tiny_settings, tiny_task};

#[test]
fn impl_noise_diverges_weights_on_every_nondeterministic_gpu() {
    let prepared = PreparedTask::prepare(&tiny_task());
    let settings = tiny_settings();
    for device in [
        Device::p100(),
        Device::v100(),
        Device::rtx5000(),
        Device::t4(),
    ] {
        let runs = run_variant(&prepared, &device, NoiseVariant::Impl, &settings);
        assert_ne!(
            runs.results[0].weights,
            runs.results[1].weights,
            "IMPL replicas identical on {} — accumulation-order noise missing",
            device.name()
        );
    }
}

#[test]
fn impl_variant_controls_every_algorithmic_factor() {
    // Under IMPL, both replicas share initialization: their weights must
    // start identical, so the *final* L2 distance reflects only
    // accumulated execution noise and is far smaller than ALGO divergence.
    let prepared = PreparedTask::prepare(&tiny_task());
    let settings = tiny_settings();
    let device = Device::v100();
    let impl_runs = run_variant(&prepared, &device, NoiseVariant::Impl, &settings);
    let algo_runs = run_variant(&prepared, &device, NoiseVariant::Algo, &settings);
    let impl_rep = stability_report(&prepared, &device, NoiseVariant::Impl, &impl_runs);
    let algo_rep = stability_report(&prepared, &device, NoiseVariant::Algo, &algo_runs);
    assert!(impl_rep.l2 > 0.0);
    assert!(
        algo_rep.l2 > 10.0 * impl_rep.l2,
        "ALGO (different inits) should dominate IMPL in weight space: {} vs {}",
        algo_rep.l2,
        impl_rep.l2
    );
}

#[test]
fn tensor_cores_remain_nondeterministic() {
    // The paper's Fig. 5 finding: systolic matmuls don't make training
    // deterministic, because gradient/statistics accumulations fall back
    // to CUDA cores.
    let prepared = PreparedTask::prepare(&tiny_task());
    let settings = tiny_settings();
    let runs = run_variant(
        &prepared,
        &Device::rtx5000_tensor_cores(),
        NoiseVariant::Impl,
        &settings,
    );
    assert_ne!(runs.results[0].weights, runs.results[1].weights);
}

#[test]
fn algo_noise_present_even_on_deterministic_hardware() {
    let prepared = PreparedTask::prepare(&tiny_task());
    let settings = tiny_settings();
    let runs = run_variant(&prepared, &Device::tpu_v2(), NoiseVariant::Algo, &settings);
    assert_ne!(runs.results[0].weights, runs.results[1].weights);
}

#[test]
fn faithful_order_only_noise_also_diverges() {
    // With amplification off, divergence comes purely from f32 rounding
    // under permuted accumulation order: slower, but it must be nonzero
    // after a few epochs (weights differ in at least one ulp).
    let prepared = PreparedTask::prepare(&tiny_task());
    let settings = ExperimentSettings {
        amp_ulps: 0.0,
        ..tiny_settings()
    };
    let runs = run_variant(&prepared, &Device::v100(), NoiseVariant::Impl, &settings);
    assert_ne!(
        runs.results[0].weights, runs.results[1].weights,
        "order-only f32 noise produced bitwise-identical trainings"
    );
}

#[test]
fn stability_reports_are_internally_consistent() {
    let prepared = PreparedTask::prepare(&tiny_task());
    let settings = ExperimentSettings {
        replicas: 3,
        ..tiny_settings()
    };
    let runs = run_variant(
        &prepared,
        &Device::v100(),
        NoiseVariant::AlgoImpl,
        &settings,
    );
    let r = stability_report(&prepared, &Device::v100(), NoiseVariant::AlgoImpl, &runs);
    assert_eq!(r.replicas, 3);
    assert!((0.0..=1.0).contains(&r.mean_accuracy));
    assert!(r.std_accuracy >= 0.0);
    assert!((0.0..=1.0).contains(&r.churn));
    assert!(r.l2 >= 0.0);
    assert_eq!(r.per_class_std.len(), prepared.classes());
}
