//! Accelerator execution-semantics simulator.
//!
//! Real accelerators differ from a reference CPU in two ways that matter for
//! the NoiseScope study:
//!
//! 1. **Scheduling nondeterminism.** GPUs combine partial floating-point
//!    sums in arrival order (atomics, split-K matmuls), so the numerical
//!    result of an op varies between runs. TPUs use fixed-order systolic
//!    reduction and are deterministic by design. This crate maps each
//!    device/mode to the [`nstensor::ReduceOrder`] its reductions use, via
//!    an [`ExecutionContext`].
//! 2. **Kernel selection under a determinism constraint.** cuDNN's fastest
//!    convolution kernels (Winograd, FFT, atomic implicit GEMM) are
//!    nondeterministic; forcing determinism restricts the autotuner to
//!    slower kernels, with a penalty that depends on GPU generation and
//!    layer geometry. The [`cost`] module provides a calibrated analytic
//!    time model, [`autotune`] performs the restricted selection, and
//!    [`profiler`] accumulates simulated per-kernel GPU time — regenerating
//!    the paper's determinism-overhead results (Figs. 7 and 8).
//!
//! # Example
//!
//! ```
//! use hwsim::{Device, ExecutionMode, ExecutionContext, OpClass};
//!
//! // A V100 in default (nondeterministic) mode:
//! let mut ctx = ExecutionContext::new(Device::v100(), ExecutionMode::Default, 1234);
//! let xs = vec![0.1f32; 1000];
//! let a = ctx.reducer(OpClass::WeightGrad).sum(&xs);
//!
//! // The same device in deterministic mode is bitwise stable across
//! // contexts regardless of entropy:
//! let mut d1 = ExecutionContext::new(Device::v100(), ExecutionMode::Deterministic, 1);
//! let mut d2 = ExecutionContext::new(Device::v100(), ExecutionMode::Deterministic, 2);
//! assert_eq!(
//!     d1.reducer(OpClass::WeightGrad).sum(&xs).to_bits(),
//!     d2.reducer(OpClass::WeightGrad).sum(&xs).to_bits(),
//! );
//! # let _ = a;
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod autotune;
pub mod chaos;
pub mod cost;
pub mod device;
pub mod exec;
pub mod kernels;
pub mod profiler;
pub mod trace;
pub mod workload;

pub use autotune::{select_conv_kernels, ConvKernelPlan};
pub use chaos::{ChaosConfig, ChaosEvent, FaultKind, FaultPlan, PlannedFault};
pub use cost::CostModel;
pub use device::{Architecture, Device};
pub use exec::{ExecSnapshot, ExecutionContext, ExecutionContextBuilder, ExecutionMode, OpClass};
pub use kernels::{ConvAlgorithm, ConvPass, KernelChoice};
pub use profiler::{profile_workload, KernelProfile, KernelRecord};
pub use workload::WorkloadOp;
