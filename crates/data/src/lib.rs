//! Synthetic dataset generators for the NoiseScope study.
//!
//! The original experiments use CIFAR-10/100, ImageNet and CelebA. The
//! stability metrics the paper reports (churn, per-class variance,
//! subgroup variance) depend on three dataset properties — class structure,
//! class overlap (ambiguous boundary examples), and subgroup
//! representation — all of which these generators control *explicitly*:
//!
//! - [`gaussian`] builds image-shaped hierarchical Gaussian-cluster
//!   datasets: each class has a prototype image, samples are noisy
//!   perturbations, and (for the CIFAR-100 stand-in) classes cluster into
//!   superclasses whose members overlap heavily.
//! - [`celeba`] builds an attribute-prediction dataset with two protected
//!   binary dimensions (Male/Female, Young/Old) whose positive/negative
//!   imbalance matches the paper's Table 3 proportions.
//! - [`augment`] provides the stochastic shift-crop / horizontal-flip
//!   augmentation of the paper's training methodology (Appendix B).
//!
//! Generation is driven by a dedicated seed (independent of any training
//! run's algorithmic seed), so the dataset is a fixed artifact shared by
//! every replica — like the real CIFAR on disk.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod augment;
pub mod celeba;
pub mod gaussian;

pub use augment::ShiftFlip;
pub use celeba::{CelebaData, CelebaMeta, CelebaSpec, SubgroupCounts};
pub use gaussian::{GaussianSpec, SplitDataset};
