//! Optimizers.
//!
//! Parameter updates are element-wise (no reductions), so the optimizer
//! itself introduces no implementation noise; all order sensitivity enters
//! through the gradients it is handed.

use crate::model::Network;
use nstensor::Tensor;
use serde::{Deserialize, Serialize};

/// Configuration of stochastic gradient descent with momentum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// Decoupled L2 weight decay.
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            momentum: 0.9,
            weight_decay: 0.0,
        }
    }
}

/// SGD with momentum.
#[derive(Debug)]
pub struct Sgd {
    config: SgdConfig,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates the optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `momentum` is outside `[0, 1)` or `weight_decay` negative.
    pub fn new(config: SgdConfig) -> Self {
        assert!(
            (0.0..1.0).contains(&config.momentum),
            "momentum {} outside [0, 1)",
            config.momentum
        );
        assert!(config.weight_decay >= 0.0, "negative weight decay");
        Self {
            config,
            velocity: Vec::new(),
        }
    }

    /// Applies one update step with learning rate `lr` to every parameter
    /// of `net`, consuming the gradients stored by the last backward pass.
    ///
    /// Returns `true` when every updated velocity entry was finite — the
    /// trainer's gradient-divergence guard, detected inside the update
    /// loop where the values are already in registers.
    pub fn step(&mut self, net: &mut Network, lr: f32) -> bool {
        let cfg = self.config;
        let velocity = &mut self.velocity;
        let mut idx = 0usize;
        let mut finite = true;
        net.visit_params(&mut |param: &mut Tensor, grad: &mut Tensor| {
            if velocity.len() <= idx {
                velocity.push(vec![0.0; param.len()]);
            }
            let vel = &mut velocity[idx];
            assert_eq!(vel.len(), param.len(), "parameter shape changed");
            let pv = param.as_mut_slice();
            let gv = grad.as_slice();
            for i in 0..pv.len() {
                let g = gv[i] + cfg.weight_decay * pv[i];
                vel[i] = cfg.momentum * vel[i] + g;
                pv[i] -= lr * vel[i];
                finite &= vel[i].is_finite();
            }
            idx += 1;
        });
        finite
    }

    /// The configuration.
    pub fn config(&self) -> SgdConfig {
        self.config
    }

    /// The per-parameter momentum buffers (empty entries not yet touched
    /// by [`Sgd::step`] are simply absent).
    pub fn velocity(&self) -> &[Vec<f32>] {
        &self.velocity
    }

    /// Restores momentum buffers captured from [`Sgd::velocity`]. Shapes
    /// are validated lazily by the next [`Sgd::step`].
    pub fn set_velocity(&mut self, velocity: Vec<Vec<f32>>) {
        self.velocity = velocity;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use crate::model::Network;
    use detrand::{Philox, StreamId};
    use hwsim::{Device, ExecutionContext, ExecutionMode};
    use nstensor::{Shape, Tensor};

    fn tiny_net(seed: u64) -> Network {
        let root = Philox::from_seed(seed);
        let mut rng = root.stream(StreamId::INIT.child(0));
        let mut net = Network::new();
        net.push(Dense::new(2, 1, &mut rng));
        net
    }

    #[test]
    fn plain_sgd_moves_against_gradient() {
        let mut net = tiny_net(1);
        let mut exec = ExecutionContext::new(Device::cpu(), ExecutionMode::Default, 0);
        let root = Philox::from_seed(1);
        let x = Tensor::from_vec(Shape::of(&[1, 2]), vec![1.0, 1.0]).unwrap();
        let y = net.forward(x, &mut exec, &root, 0, true);
        let before = y.as_slice()[0];
        // dL/dy = 1 → weights should decrease the output.
        net.backward(Tensor::full(Shape::of(&[1, 1]), 1.0), &mut exec);
        let mut opt = Sgd::new(SgdConfig {
            momentum: 0.0,
            weight_decay: 0.0,
        });
        opt.step(&mut net, 0.1);
        let x = Tensor::from_vec(Shape::of(&[1, 2]), vec![1.0, 1.0]).unwrap();
        let after = net.forward(x, &mut exec, &root, 1, false).as_slice()[0];
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn momentum_accumulates() {
        // Two identical gradient steps: with momentum the second update is
        // larger than the first.
        let run = |momentum: f32| -> f32 {
            let mut net = tiny_net(2);
            let mut exec = ExecutionContext::new(Device::cpu(), ExecutionMode::Default, 0);
            let root = Philox::from_seed(2);
            let mut opt = Sgd::new(SgdConfig {
                momentum,
                weight_decay: 0.0,
            });
            let probe = |net: &mut Network, exec: &mut ExecutionContext| {
                let x = Tensor::from_vec(Shape::of(&[1, 2]), vec![1.0, 1.0]).unwrap();
                net.forward(x, exec, &root, 0, false).as_slice()[0]
            };
            let start = probe(&mut net, &mut exec);
            for step in 0..2 {
                let x = Tensor::from_vec(Shape::of(&[1, 2]), vec![1.0, 1.0]).unwrap();
                net.forward(x, &mut exec, &root, step, true);
                net.backward(Tensor::full(Shape::of(&[1, 1]), 1.0), &mut exec);
                opt.step(&mut net, 0.1);
            }
            start - probe(&mut net, &mut exec)
        };
        assert!(run(0.9) > run(0.0));
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut net = tiny_net(3);
        let norm_before = net.weight_norm();
        let mut exec = ExecutionContext::new(Device::cpu(), ExecutionMode::Default, 0);
        let root = Philox::from_seed(3);
        let mut opt = Sgd::new(SgdConfig {
            momentum: 0.0,
            weight_decay: 0.5,
        });
        // Zero gradients: only decay acts.
        let x = Tensor::zeros(Shape::of(&[1, 2]));
        net.forward(x, &mut exec, &root, 0, true);
        net.backward(Tensor::zeros(Shape::of(&[1, 1])), &mut exec);
        opt.step(&mut net, 0.1);
        assert!(net.weight_norm() < norm_before);
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn rejects_momentum_one() {
        Sgd::new(SgdConfig {
            momentum: 1.0,
            weight_decay: 0.0,
        });
    }
}
