//! Execution contexts: the bridge from a (device, mode) pair to the
//! accumulation order of every reduction class in a training run.

use crate::device::{Architecture, Device};
use detrand::SplitMix64;
use nstensor::{ReduceOrder, Reducer};
use serde::{Deserialize, Serialize};

/// Framework-level execution mode — the paper's "TF deterministic ops"
/// switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Fastest available kernels; nondeterministic on GPUs.
    Default,
    /// Only deterministic kernels (the software patches the paper measures
    /// the cost of).
    Deterministic,
}

/// Classes of reduction in a training step, distinguished because hardware
/// routes them differently (e.g. Tensor Cores run matmuls on systolic units
/// but fall back to CUDA cores for gradient and statistics accumulations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Forward matmul/conv inner products.
    MatmulForward,
    /// Input-gradient (dgrad) accumulations.
    InputGrad,
    /// Weight-gradient (wgrad) accumulations — reductions across the batch.
    WeightGrad,
    /// Batch statistics (batch-norm mean/variance).
    Statistics,
    /// Bias sums and other miscellaneous accumulations.
    Misc,
}

impl OpClass {
    /// All classes, in a stable order.
    pub const ALL: [OpClass; 5] = [
        OpClass::MatmulForward,
        OpClass::InputGrad,
        OpClass::WeightGrad,
        OpClass::Statistics,
        OpClass::Misc,
    ];

    fn index(self) -> usize {
        match self {
            OpClass::MatmulForward => 0,
            OpClass::InputGrad => 1,
            OpClass::WeightGrad => 2,
            OpClass::Statistics => 3,
            OpClass::Misc => 4,
        }
    }

    /// Whether this class runs on systolic units when the device has them.
    fn is_matmul_class(self) -> bool {
        matches!(self, OpClass::MatmulForward | OpClass::InputGrad)
    }
}

/// The execution state of one simulated run: a reducer per op class, wired
/// to the device's accumulation semantics and (for nondeterministic
/// execution) to the run's scheduler entropy.
///
/// See the [crate-level docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct ExecutionContext {
    device: Device,
    mode: ExecutionMode,
    threads: usize,
    reducers: [Reducer; 5],
}

/// Fluent constructor for [`ExecutionContext`], obtained from
/// [`ExecutionContext::builder`]. Every knob has a sensible default
/// (`Default` mode, entropy 0, no amplification, single-threaded), so call
/// sites only name what they change:
///
/// ```
/// use hwsim::{Device, ExecutionContext, ExecutionMode};
/// let ctx = ExecutionContext::builder(Device::v100())
///     .mode(ExecutionMode::Deterministic)
///     .entropy(42)
///     .threads(4)
///     .build();
/// assert!(!ctx.is_nondeterministic());
/// assert_eq!(ctx.threads(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ExecutionContextBuilder {
    device: Device,
    mode: ExecutionMode,
    entropy: u64,
    amp_ulps: f32,
    threads: usize,
}

impl ExecutionContextBuilder {
    /// Sets the framework execution mode (default: [`ExecutionMode::Default`]).
    pub fn mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Seeds the scheduler RNG (default: 0). Only consumed when the
    /// device/mode combination is nondeterministic; deterministic execution
    /// produces bitwise-identical results for any entropy.
    pub fn entropy(mut self, entropy: u64) -> Self {
        self.entropy = entropy;
        self
    }

    /// Enables the amplified-noise tier
    /// (see [`nstensor::Reducer::with_amplification`]): `amp_ulps` models
    /// the longer accumulation chains of full-scale workloads. Ignored by
    /// deterministic execution. Default: 0 (faithful order-only noise).
    pub fn amp_ulps(mut self, amp_ulps: f32) -> Self {
        self.amp_ulps = amp_ulps;
        self
    }

    /// Sets the host thread count the blocked GEMM engine may use for this
    /// context's tensor ops (default: 1). Purely a wall-clock knob: the
    /// engine is bitwise invariant in the thread count, so this never
    /// changes simulated results — simulated nondeterminism comes only from
    /// the device/mode reducer configuration. Clamped to at least 1.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Builds the context.
    pub fn build(self) -> ExecutionContext {
        let mut seeder = SplitMix64::new(self.entropy);
        let reducers = core::array::from_fn(|i| {
            let class = OpClass::ALL[i];
            let order = ExecutionContext::order_for(&self.device, self.mode, class);
            let lanes = self.device.lanes();
            let seed = seeder.next_u64();
            Reducer::new(order, lanes, seed).with_amplification(self.amp_ulps)
        });
        ExecutionContext {
            device: self.device,
            mode: self.mode,
            threads: self.threads,
            reducers,
        }
    }
}

impl ExecutionContext {
    /// Starts a fluent builder for a context on `device`. See
    /// [`ExecutionContextBuilder`] for the knobs and their defaults.
    pub fn builder(device: Device) -> ExecutionContextBuilder {
        ExecutionContextBuilder {
            device,
            mode: ExecutionMode::Default,
            entropy: 0,
            amp_ulps: 0.0,
            threads: 1,
        }
    }

    /// Creates a context for `device` in `mode`.
    ///
    /// `entropy` seeds the scheduler RNG. It is only consumed when the
    /// device/mode combination is nondeterministic; deterministic execution
    /// produces bitwise-identical results for any entropy.
    pub fn new(device: Device, mode: ExecutionMode, entropy: u64) -> Self {
        Self::builder(device).mode(mode).entropy(entropy).build()
    }

    /// Creates a context with the amplified-noise tier enabled.
    #[deprecated(
        since = "0.2.0",
        note = "use `ExecutionContext::builder(device).mode(..).entropy(..).amp_ulps(..).build()` \
                — positional f32/u64 arguments were too easy to swap"
    )]
    pub fn with_amplification(
        device: Device,
        mode: ExecutionMode,
        entropy: u64,
        amp_ulps: f32,
    ) -> Self {
        Self::builder(device)
            .mode(mode)
            .entropy(entropy)
            .amp_ulps(amp_ulps)
            .build()
    }

    /// The accumulation order a given op class uses on this device/mode.
    pub fn order_for(device: &Device, mode: ExecutionMode, class: OpClass) -> ReduceOrder {
        if device.arch() == Architecture::Cpu {
            return ReduceOrder::Sequential;
        }
        if device.deterministic_by_design() || mode == ExecutionMode::Deterministic {
            return ReduceOrder::FixedTree;
        }
        if device.systolic_matmul() && class.is_matmul_class() {
            // Tensor Cores: fixed-order systolic accumulation for matmuls...
            ReduceOrder::FixedTree
        } else {
            // ...but everything else still lands on CUDA cores.
            ReduceOrder::Permuted
        }
    }

    /// The reducer for an op class.
    pub fn reducer(&mut self, class: OpClass) -> &mut Reducer {
        &mut self.reducers[class.index()]
    }

    /// The device.
    pub fn device(&self) -> Device {
        self.device
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Host threads the blocked GEMM engine may use for this context's
    /// tensor ops. Bitwise irrelevant to results; see
    /// [`ExecutionContextBuilder::threads`].
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether any op class in this context is nondeterministic.
    pub fn is_nondeterministic(&self) -> bool {
        self.reducers.iter().any(|r| !r.order().is_deterministic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_is_sequential_everywhere() {
        for class in OpClass::ALL {
            assert_eq!(
                ExecutionContext::order_for(&Device::cpu(), ExecutionMode::Default, class),
                ReduceOrder::Sequential
            );
        }
    }

    #[test]
    fn gpu_default_mode_is_permuted_everywhere() {
        for class in OpClass::ALL {
            assert_eq!(
                ExecutionContext::order_for(&Device::v100(), ExecutionMode::Default, class),
                ReduceOrder::Permuted
            );
        }
    }

    #[test]
    fn gpu_deterministic_mode_is_fixed_everywhere() {
        for class in OpClass::ALL {
            assert_eq!(
                ExecutionContext::order_for(&Device::p100(), ExecutionMode::Deterministic, class),
                ReduceOrder::FixedTree
            );
        }
    }

    #[test]
    fn tensor_cores_split_by_class() {
        let d = Device::rtx5000_tensor_cores();
        assert_eq!(
            ExecutionContext::order_for(&d, ExecutionMode::Default, OpClass::MatmulForward),
            ReduceOrder::FixedTree
        );
        assert_eq!(
            ExecutionContext::order_for(&d, ExecutionMode::Default, OpClass::WeightGrad),
            ReduceOrder::Permuted
        );
        assert_eq!(
            ExecutionContext::order_for(&d, ExecutionMode::Default, OpClass::Statistics),
            ReduceOrder::Permuted
        );
        // So TC execution is still nondeterministic overall:
        let ctx = ExecutionContext::new(d, ExecutionMode::Default, 5);
        assert!(ctx.is_nondeterministic());
    }

    #[test]
    fn tpu_is_deterministic_in_default_mode() {
        let ctx = ExecutionContext::new(Device::tpu_v2(), ExecutionMode::Default, 5);
        assert!(!ctx.is_nondeterministic());
    }

    #[test]
    fn deterministic_mode_ignores_entropy() {
        let xs: Vec<f32> = (0..500).map(|i| (i as f32 * 0.7).sin()).collect();
        let mut a = ExecutionContext::new(Device::v100(), ExecutionMode::Deterministic, 111);
        let mut b = ExecutionContext::new(Device::v100(), ExecutionMode::Deterministic, 222);
        for class in OpClass::ALL {
            assert_eq!(
                a.reducer(class).sum(&xs).to_bits(),
                b.reducer(class).sum(&xs).to_bits()
            );
        }
    }

    #[test]
    fn default_mode_entropy_changes_results_eventually() {
        let xs: Vec<f32> = (0..2000).map(|i| (i as f32 * 0.7).sin()).collect();
        let mut a = ExecutionContext::new(Device::v100(), ExecutionMode::Default, 111);
        let mut b = ExecutionContext::new(Device::v100(), ExecutionMode::Default, 222);
        let mut any_diff = false;
        for _ in 0..64 {
            if a.reducer(OpClass::WeightGrad).sum(&xs).to_bits()
                != b.reducer(OpClass::WeightGrad).sum(&xs).to_bits()
            {
                any_diff = true;
                break;
            }
        }
        assert!(any_diff, "different entropy never changed a GPU reduction");
    }

    #[test]
    fn reducers_use_device_lanes() {
        let mut ctx = ExecutionContext::new(Device::t4(), ExecutionMode::Default, 0);
        assert_eq!(ctx.reducer(OpClass::Misc).lanes(), Device::t4().lanes());
    }

    #[test]
    fn builder_defaults() {
        let ctx = ExecutionContext::builder(Device::v100()).build();
        assert_eq!(ctx.mode(), ExecutionMode::Default);
        assert_eq!(ctx.threads(), 1);
        assert_eq!(ctx.device().name(), Device::v100().name());
    }

    #[test]
    fn builder_threads_clamped_to_one() {
        let ctx = ExecutionContext::builder(Device::cpu()).threads(0).build();
        assert_eq!(ctx.threads(), 1);
    }

    #[test]
    fn builder_threads_do_not_change_reducer_state() {
        let xs: Vec<f32> = (0..800).map(|i| (i as f32 * 0.3).cos()).collect();
        let mut a = ExecutionContext::builder(Device::v100()).entropy(9).build();
        let mut b = ExecutionContext::builder(Device::v100())
            .entropy(9)
            .threads(8)
            .build();
        for class in OpClass::ALL {
            assert_eq!(
                a.reducer(class).sum(&xs).to_bits(),
                b.reducer(class).sum(&xs).to_bits()
            );
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_with_amplification_matches_builder() {
        let xs: Vec<f32> = (0..800).map(|i| (i as f32 * 0.9).sin()).collect();
        let mut old =
            ExecutionContext::with_amplification(Device::v100(), ExecutionMode::Default, 7, 1e4);
        let mut new = ExecutionContext::builder(Device::v100())
            .mode(ExecutionMode::Default)
            .entropy(7)
            .amp_ulps(1e4)
            .build();
        for class in OpClass::ALL {
            assert_eq!(
                old.reducer(class).sum(&xs).to_bits(),
                new.reducer(class).sum(&xs).to_bits()
            );
        }
    }
}
