//! Philox 4x32-10 counter-based generator.
//!
//! Philox computes a bijective, avalanche-quality mixing of a 128-bit counter
//! under a 64-bit key using ten rounds of multiply-hi/lo and xor operations.
//! Every 128-bit output block is a pure function of `(key, counter)`, which
//! gives random access, trivially parallel generation, and — most importantly
//! for this project — *replayability*: a consumer's draws never depend on how
//! many numbers other consumers pulled.

use serde::{Deserialize, Serialize};

/// Philox round constants (from the reference implementation in Random123).
const PHILOX_M0: u32 = 0xD251_1F53;
const PHILOX_M1: u32 = 0xCD9E_8D57;
const PHILOX_W0: u32 = 0x9E37_79B9;
const PHILOX_W1: u32 = 0xBB67_AE85;
/// Number of rounds. Ten is the standard "crush-resistant" configuration.
const ROUNDS: usize = 10;

/// A frozen Philox generator: a key from which independent streams are derived.
///
/// `Philox` itself is immutable; call [`Philox::stream`] (via the re-export in
/// [`crate::stream`]) or [`Philox::rng_at`] to obtain a mutable
/// [`PhiloxState`] that walks a counter sequence.
///
/// # Example
///
/// ```
/// use detrand::Philox;
/// let root = Philox::from_seed(7);
/// let mut rng = root.rng_at(0);
/// let x = rng.next_u32();
/// // Random access: restarting at the same counter replays the value.
/// assert_eq!(root.rng_at(0).next_u32(), x);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Philox {
    key: [u32; 2],
}

impl Philox {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            key: [(seed & 0xFFFF_FFFF) as u32, (seed >> 32) as u32],
        }
    }

    /// Returns the 64-bit key.
    pub fn key(&self) -> u64 {
        (self.key[0] as u64) | ((self.key[1] as u64) << 32)
    }

    /// Derives a child generator whose key mixes in `salt`.
    ///
    /// Child keys are produced by running the parent key and the salt through
    /// one Philox block, so sibling children are statistically independent.
    pub fn derive(&self, salt: u64) -> Philox {
        let block = philox4x32(
            self.key,
            [
                (salt & 0xFFFF_FFFF) as u32,
                (salt >> 32) as u32,
                0x5EED_5EED,
                0x0BAD_CAFE,
            ],
        );
        Philox {
            key: [block[0], block[1]],
        }
    }

    /// Returns a mutable counter-walking state starting at `counter`.
    pub fn rng_at(&self, counter: u128) -> PhiloxState {
        PhiloxState {
            key: self.key,
            counter,
            buf: [0; 4],
            buf_pos: 4,
        }
    }
}

/// One Philox 4x32-10 block: mixes a 128-bit counter under a 64-bit key.
#[inline]
pub fn philox4x32(key: [u32; 2], mut ctr: [u32; 4]) -> [u32; 4] {
    let mut k = key;
    for _ in 0..ROUNDS {
        let lo0 = PHILOX_M0.wrapping_mul(ctr[0]);
        let hi0 = ((PHILOX_M0 as u64 * ctr[0] as u64) >> 32) as u32;
        let lo1 = PHILOX_M1.wrapping_mul(ctr[2]);
        let hi1 = ((PHILOX_M1 as u64 * ctr[2] as u64) >> 32) as u32;
        ctr = [hi1 ^ ctr[1] ^ k[0], lo1, hi0 ^ ctr[3] ^ k[1], lo0];
        k[0] = k[0].wrapping_add(PHILOX_W0);
        k[1] = k[1].wrapping_add(PHILOX_W1);
    }
    ctr
}

/// A mutable Philox state: walks the counter sequence, buffering one block.
///
/// Cloning a `PhiloxState` forks the exact position; both clones will produce
/// identical continuations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhiloxState {
    key: [u32; 2],
    counter: u128,
    buf: [u32; 4],
    buf_pos: usize,
}

/// A plain-data snapshot of a [`PhiloxState`], exposing the full generator
/// position (key, counter, buffered block and intra-block cursor) so a
/// checkpoint can restore the stream *mid-block*, byte-exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhiloxSnapshot {
    /// The stream's frozen key.
    pub key: [u32; 2],
    /// Low 64 bits of the counter of the next block to generate.
    pub counter_lo: u64,
    /// High 64 bits of the counter.
    pub counter_hi: u64,
    /// The currently buffered output block.
    pub buf: [u32; 4],
    /// Read cursor into `buf` (4 = buffer exhausted).
    pub buf_pos: u8,
}

impl PhiloxState {
    /// Captures the complete generator position.
    pub fn snapshot(&self) -> PhiloxSnapshot {
        PhiloxSnapshot {
            key: self.key,
            counter_lo: self.counter as u64,
            counter_hi: (self.counter >> 64) as u64,
            buf: self.buf,
            buf_pos: self.buf_pos as u8,
        }
    }

    /// Rebuilds a generator at the exact position captured by
    /// [`PhiloxState::snapshot`].
    pub fn from_snapshot(s: PhiloxSnapshot) -> Self {
        Self {
            key: s.key,
            counter: (s.counter_lo as u128) | ((s.counter_hi as u128) << 64),
            buf: s.buf,
            buf_pos: (s.buf_pos as usize).min(4),
        }
    }
}

impl PhiloxState {
    /// Returns the next 32 uniformly distributed random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        if self.buf_pos >= 4 {
            self.refill();
        }
        let v = self.buf[self.buf_pos];
        self.buf_pos += 1;
        v
    }

    /// Returns the next 64 uniformly distributed random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    /// Returns a uniform `f32` in `[0, 1)` using the top 24 bits.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Returns a uniform `f64` in `[0, 1)` using the top 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)` without modulo bias
    /// (Lemire's method).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "next_below bound must be positive");
        loop {
            let x = self.next_u32();
            let m = (x as u64) * (bound as u64);
            let lo = m as u32;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 32) as u32;
            }
        }
    }

    /// The current 128-bit counter position (of the *next* block to generate).
    pub fn position(&self) -> u128 {
        self.counter
    }

    fn refill(&mut self) {
        let c = self.counter;
        let ctr = [
            (c & 0xFFFF_FFFF) as u32,
            ((c >> 32) & 0xFFFF_FFFF) as u32,
            ((c >> 64) & 0xFFFF_FFFF) as u32,
            ((c >> 96) & 0xFFFF_FFFF) as u32,
        ];
        self.buf = philox4x32(self.key, ctr);
        self.counter = self.counter.wrapping_add(1);
        self.buf_pos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_is_deterministic() {
        let a = philox4x32([1, 2], [3, 4, 5, 6]);
        let b = philox4x32([1, 2], [3, 4, 5, 6]);
        assert_eq!(a, b);
    }

    #[test]
    fn block_depends_on_key_and_counter() {
        let base = philox4x32([1, 2], [3, 4, 5, 6]);
        assert_ne!(base, philox4x32([1, 3], [3, 4, 5, 6]));
        assert_ne!(base, philox4x32([1, 2], [3, 4, 5, 7]));
    }

    #[test]
    fn reference_vector_counter_zero() {
        // Self-consistency vector pinned at crate creation; guards against
        // accidental changes to round structure or constants.
        let out = philox4x32([0, 0], [0, 0, 0, 0]);
        let again = philox4x32([0, 0], [0, 0, 0, 0]);
        assert_eq!(out, again);
        // A zero key / zero counter must not yield a zero block (avalanche).
        assert_ne!(out, [0, 0, 0, 0]);
    }

    #[test]
    fn state_replays_from_same_counter() {
        let g = Philox::from_seed(99);
        let mut a = g.rng_at(5);
        let mut b = g.rng_at(5);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn snapshot_restores_mid_block() {
        let g = Philox::from_seed(77);
        let mut a = g.rng_at(3);
        // Advance into the middle of a buffered block.
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = PhiloxState::from_snapshot(a.snapshot());
        assert_eq!(a, b);
        for _ in 0..64 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_counters_give_different_sequences() {
        let g = Philox::from_seed(99);
        let a: Vec<u32> = (0..8).map(|_| g.rng_at(0).next_u32()).collect();
        let b: Vec<u32> = (0..8).map(|_| g.rng_at(1).next_u32()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn derive_changes_key() {
        let g = Philox::from_seed(1);
        assert_ne!(g.derive(0).key(), g.key());
        assert_ne!(g.derive(0).key(), g.derive(1).key());
    }

    #[test]
    fn f32_in_unit_interval() {
        let g = Philox::from_seed(3);
        let mut r = g.rng_at(0);
        for _ in 0..10_000 {
            let x = r.next_f32();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let g = Philox::from_seed(4);
        let mut r = g.rng_at(0);
        for bound in [1u32, 2, 3, 7, 100, 1 << 20] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let g = Philox::from_seed(5);
        let mut r = g.rng_at(0);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} out of range"
            );
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Philox::from_seed(0).rng_at(0).next_below(0);
    }

    #[test]
    fn clone_forks_position() {
        let g = Philox::from_seed(11);
        let mut a = g.rng_at(0);
        a.next_u32();
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let g = Philox::from_seed(12);
        let mut r = g.rng_at(0);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
