//! Offline stand-in for the `criterion` crate (see `third_party/README.md`).
//!
//! A minimal wall-clock harness with criterion 0.5's call shapes: warm up
//! briefly, time a fixed batch of iterations, print mean ns/iter. No
//! statistics, no plots, no `target/criterion` reports — just enough to
//! keep `cargo bench` meaningful offline.

use std::time::{Duration, Instant};

/// Measures one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters_hint: u64,
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Times `f` and records mean nanoseconds per iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: run until ~20ms has elapsed to fault in caches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < Duration::from_millis(20) && warm_iters < self.iters_hint {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        // Measure: a fixed batch sized by the group's sample hint.
        let n = self.iters_hint.max(1);
        let start = Instant::now();
        for _ in 0..n {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        self.last_ns_per_iter = elapsed.as_nanos() as f64 / n as f64;
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id, like `BenchmarkId::new("function", "param")`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id from just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Throughput annotation (recorded, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the per-benchmark iteration batch size.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Annotates throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run(&mut self, id: BenchmarkId, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            iters_hint: self.sample_size,
            last_ns_per_iter: 0.0,
        };
        f(&mut b);
        let mut line = format!(
            "{}/{}: {:.1} ns/iter",
            self.name, id.label, b.last_ns_per_iter
        );
        if let Some(Throughput::Elements(n)) = self.throughput {
            if b.last_ns_per_iter > 0.0 {
                line.push_str(&format!(
                    " ({:.1} Melem/s)",
                    n as f64 / b.last_ns_per_iter * 1e3
                ));
            }
        }
        println!("{line}");
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        self.run(id.into(), f);
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.run(id.into(), |b| f(b, input));
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 50,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        self.benchmark_group("bench").run(id.into(), f);
    }
}

/// Prevents the optimizer from discarding a value, like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, like criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_body_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(4));
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            });
        });
        group.finish();
        assert!(calls >= 10, "body ran {calls} times");
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", "p").label, "f/p");
        assert_eq!(BenchmarkId::from_parameter(42).label, "42");
    }
}
