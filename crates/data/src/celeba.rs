//! The CelebA stand-in: binary attribute prediction with protected
//! subgroups whose imbalance matches the paper's Table 3.
//!
//! The paper trains ResNet-18 on CelebA and dis-aggregates stability
//! metrics over two protected unitary dimensions — Male/Female and
//! Young/Old — finding that noise disproportionately destabilizes the
//! *underrepresented* positive groups (Male: 0.8 % positive, Old: 2.5 %
//! positive). What drives that result is the joint distribution of
//! (subgroup, label), which this generator reproduces; pixel content is
//! immaterial.

use detrand::{Philox, StreamId};
use nnet::trainer::{Dataset, Targets};
use nstensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};

/// Per-sample subgroup membership and label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CelebaMeta {
    /// Protected dimension 1: male (vs. female).
    pub male: bool,
    /// Protected dimension 2: young (vs. old).
    pub young: bool,
    /// Target attribute label.
    pub positive: bool,
}

/// Positive/negative counts per subgroup (the paper's Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SubgroupCounts {
    /// Positive samples among males.
    pub male_pos: usize,
    /// Negative samples among males.
    pub male_neg: usize,
    /// Positive samples among females.
    pub female_pos: usize,
    /// Negative samples among females.
    pub female_neg: usize,
    /// Positive samples among the young.
    pub young_pos: usize,
    /// Negative samples among the young.
    pub young_neg: usize,
    /// Positive samples among the old.
    pub old_pos: usize,
    /// Negative samples among the old.
    pub old_neg: usize,
}

impl SubgroupCounts {
    /// Tallies metadata rows.
    pub fn from_meta(meta: &[CelebaMeta]) -> Self {
        let mut c = SubgroupCounts::default();
        for m in meta {
            match (m.male, m.positive) {
                (true, true) => c.male_pos += 1,
                (true, false) => c.male_neg += 1,
                (false, true) => c.female_pos += 1,
                (false, false) => c.female_neg += 1,
            }
            match (m.young, m.positive) {
                (true, true) => c.young_pos += 1,
                (true, false) => c.young_neg += 1,
                (false, true) => c.old_pos += 1,
                (false, false) => c.old_neg += 1,
            }
        }
        c
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.male_pos + self.male_neg + self.female_pos + self.female_neg
    }
}

/// Specification of the CelebA stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CelebaSpec {
    /// Training samples.
    pub train_len: usize,
    /// Test samples.
    pub test_len: usize,
    /// Image height = width.
    pub hw: usize,
    /// Image channels.
    pub channels: usize,
    /// Scale of the attribute/subgroup feature directions.
    pub signal: f32,
    /// Per-sample noise scale.
    pub noise_std: f32,
    /// Generator seed.
    pub seed: u64,
}

impl Default for CelebaSpec {
    fn default() -> Self {
        Self {
            train_len: 1600,
            test_len: 1200,
            hw: 8,
            channels: 3,
            signal: 0.10,
            noise_std: 1.0,
            seed: 0xCE1E_BA01,
        }
    }
}

/// CelebA Table-3 marginals (fractions of the full dataset).
/// Male 41.9 %, Young 77.9 %; positive rates per subgroup below.
const P_MALE: f64 = 0.419;
const P_YOUNG: f64 = 0.779;
/// Positive-rate multiplicative model fitted to Table 3:
/// `P(pos | g, a) = base × r_g × s_a`.
const P_POS_BASE: f64 = 0.149;
const R_MALE: f64 = 0.136;
const R_FEMALE: f64 = 1.624;
const S_YOUNG: f64 = 1.071;
const S_OLD: f64 = 0.753;

impl CelebaSpec {
    /// Generates the dataset: binary-attribute targets `[N, 1]`, plus
    /// per-test-sample subgroup metadata.
    pub fn generate(&self) -> CelebaData {
        let root = Philox::from_seed(self.seed);
        let dim = self.channels * self.hw * self.hw;

        // Feature directions for gender, age and the target attribute.
        let mut dir_rng = root.stream(StreamId::DATASET.child(0));
        let mut dirs = vec![0f32; 3 * dim];
        for v in &mut dirs {
            *v = dir_rng.normal();
        }
        let (g_dir, rest) = dirs.split_at(dim);
        let (a_dir, t_dir) = rest.split_at(dim);

        let mut sample_rng = root.stream(StreamId::DATASET.child(1));
        let mut make_split = |n: usize| -> (Dataset, Vec<CelebaMeta>) {
            let mut x = vec![0f32; n * dim];
            let mut targets = vec![0f32; n];
            let mut meta = Vec::with_capacity(n);
            for i in 0..n {
                let male = sample_rng.next_f64() < P_MALE;
                let young = sample_rng.next_f64() < P_YOUNG;
                let p_pos = P_POS_BASE
                    * if male { R_MALE } else { R_FEMALE }
                    * if young { S_YOUNG } else { S_OLD };
                let positive = sample_rng.next_f64() < p_pos;
                meta.push(CelebaMeta {
                    male,
                    young,
                    positive,
                });
                targets[i] = positive as u8 as f32;
                let gs = if male { 1.0 } else { -1.0 };
                let as_ = if young { 1.0 } else { -1.0 };
                let ts = if positive { 1.0 } else { -1.0 };
                for j in 0..dim {
                    x[i * dim + j] = self.signal
                        * (0.6 * gs * g_dir[j] + 0.5 * as_ * a_dir[j] + ts * t_dir[j])
                        + self.noise_std * sample_rng.normal();
                }
            }
            let ds = Dataset::new(
                Tensor::from_vec(Shape::of(&[n, self.channels, self.hw, self.hw]), x)
                    .expect("celeba shape"),
                Targets::Binary(
                    Tensor::from_vec(Shape::of(&[n, 1]), targets).expect("celeba targets"),
                ),
            );
            (ds, meta)
        };

        let (train, train_meta) = make_split(self.train_len);
        let (test, test_meta) = make_split(self.test_len);
        CelebaData {
            train,
            test,
            train_meta,
            test_meta,
        }
    }
}

/// The generated CelebA stand-in.
#[derive(Debug, Clone)]
pub struct CelebaData {
    /// Training split.
    pub train: Dataset,
    /// Test split.
    pub test: Dataset,
    /// Subgroup metadata aligned with the training split.
    pub train_meta: Vec<CelebaMeta>,
    /// Subgroup metadata aligned with the test split.
    pub test_meta: Vec<CelebaMeta>,
}

impl CelebaData {
    /// Table-3-style counts over the training split.
    pub fn train_counts(&self) -> SubgroupCounts {
        SubgroupCounts::from_meta(&self.train_meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_shapes() {
        let spec = CelebaSpec::default();
        let data = spec.generate();
        assert_eq!(data.train.len(), spec.train_len);
        assert_eq!(data.test.len(), spec.test_len);
        assert_eq!(data.train_meta.len(), spec.train_len);
        match &data.train.targets {
            Targets::Binary(t) => assert_eq!(t.shape().dims(), &[spec.train_len, 1]),
            _ => panic!("expected binary targets"),
        }
    }

    #[test]
    fn subgroup_imbalance_matches_table3_shape() {
        // Large sample so proportions are tight.
        let spec = CelebaSpec {
            train_len: 40_000,
            test_len: 10,
            ..CelebaSpec::default()
        };
        let c = spec.generate().train_counts();
        let total = c.total() as f64;
        // Male fraction ≈ 41.9 %.
        let male_frac = (c.male_pos + c.male_neg) as f64 / total;
        assert!((male_frac - P_MALE).abs() < 0.02, "male frac {male_frac}");
        // Male positive rate ≈ 2 %; female ≈ 24 %: >8× disparity.
        let male_pos_rate = c.male_pos as f64 / (c.male_pos + c.male_neg) as f64;
        let female_pos_rate = c.female_pos as f64 / (c.female_pos + c.female_neg) as f64;
        assert!(male_pos_rate < 0.05, "male pos rate {male_pos_rate}");
        assert!(
            female_pos_rate > 8.0 * male_pos_rate,
            "disparity too small: {female_pos_rate} vs {male_pos_rate}"
        );
        // Old positives are the rarest age cell in absolute count.
        assert!(c.old_pos < c.young_pos);
        // Young fraction ≈ 77.9 %.
        let young_frac = (c.young_pos + c.young_neg) as f64 / total;
        assert!(
            (young_frac - P_YOUNG).abs() < 0.02,
            "young frac {young_frac}"
        );
    }

    #[test]
    fn targets_align_with_meta() {
        let data = CelebaSpec::default().generate();
        match &data.train.targets {
            Targets::Binary(t) => {
                for (i, m) in data.train_meta.iter().enumerate() {
                    assert_eq!(t.as_slice()[i] > 0.5, m.positive, "row {i}");
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn generation_deterministic_in_seed() {
        let a = CelebaSpec::default().generate();
        let b = CelebaSpec::default().generate();
        assert_eq!(a.train.x.as_slice(), b.train.x.as_slice());
        assert_eq!(a.train_meta, b.train_meta);
    }

    #[test]
    fn counts_total_is_consistent() {
        let data = CelebaSpec::default().generate();
        let c = data.train_counts();
        assert_eq!(c.total(), data.train.len());
        assert_eq!(
            c.young_pos + c.young_neg + c.old_pos + c.old_neg,
            data.train.len()
        );
    }
}
