//! The paper's published reference values, and machinery to compare a
//! reproduction run against them.
//!
//! Values are transcribed from Zhuang et al. (MLSys 2022): Table 2 (test
//! accuracy ± stddev), Table 5 (CelebA subgroup stddev with relative
//! scale), and the Figure-8 overhead extremes quoted in the text. The
//! [`compare`] helpers produce the paper-vs-measured tables recorded in
//! `EXPERIMENTS.md`.

use serde::{Deserialize, Serialize};

/// One Table-2 reference cell: mean accuracy ± stddev (percent).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table2Ref {
    /// Hardware name.
    pub hardware: &'static str,
    /// Task name (paper nomenclature).
    pub task: &'static str,
    /// Variant label (`ALGO+IMPL`, `ALGO`, `IMPL`).
    pub variant: &'static str,
    /// Mean test accuracy, percent.
    pub mean_pct: f64,
    /// Stddev of test accuracy, percent.
    pub std_pct: f64,
}

/// The paper's Table 2 (all 30 cells).
pub const TABLE2: [Table2Ref; 30] = [
    // P100
    Table2Ref {
        hardware: "P100",
        task: "SmallCNN CIFAR-10",
        variant: "ALGO+IMPL",
        mean_pct: 62.28,
        std_pct: 0.83,
    },
    Table2Ref {
        hardware: "P100",
        task: "SmallCNN CIFAR-10",
        variant: "ALGO",
        mean_pct: 61.44,
        std_pct: 0.41,
    },
    Table2Ref {
        hardware: "P100",
        task: "SmallCNN CIFAR-10",
        variant: "IMPL",
        mean_pct: 61.61,
        std_pct: 0.31,
    },
    Table2Ref {
        hardware: "P100",
        task: "ResNet18 CIFAR-10",
        variant: "ALGO+IMPL",
        mean_pct: 93.33,
        std_pct: 0.14,
    },
    Table2Ref {
        hardware: "P100",
        task: "ResNet18 CIFAR-10",
        variant: "ALGO",
        mean_pct: 93.32,
        std_pct: 0.13,
    },
    Table2Ref {
        hardware: "P100",
        task: "ResNet18 CIFAR-10",
        variant: "IMPL",
        mean_pct: 93.12,
        std_pct: 0.11,
    },
    Table2Ref {
        hardware: "P100",
        task: "ResNet18 CIFAR-100",
        variant: "ALGO+IMPL",
        mean_pct: 73.37,
        std_pct: 0.23,
    },
    Table2Ref {
        hardware: "P100",
        task: "ResNet18 CIFAR-100",
        variant: "ALGO",
        mean_pct: 73.42,
        std_pct: 0.26,
    },
    Table2Ref {
        hardware: "P100",
        task: "ResNet18 CIFAR-100",
        variant: "IMPL",
        mean_pct: 73.36,
        std_pct: 0.17,
    },
    // RTX5000
    Table2Ref {
        hardware: "RTX5000",
        task: "SmallCNN CIFAR-10",
        variant: "ALGO+IMPL",
        mean_pct: 62.24,
        std_pct: 0.64,
    },
    Table2Ref {
        hardware: "RTX5000",
        task: "SmallCNN CIFAR-10",
        variant: "ALGO",
        mean_pct: 62.13,
        std_pct: 0.85,
    },
    Table2Ref {
        hardware: "RTX5000",
        task: "SmallCNN CIFAR-10",
        variant: "IMPL",
        mean_pct: 62.36,
        std_pct: 0.16,
    },
    Table2Ref {
        hardware: "RTX5000",
        task: "ResNet18 CIFAR-10",
        variant: "ALGO+IMPL",
        mean_pct: 93.34,
        std_pct: 0.11,
    },
    Table2Ref {
        hardware: "RTX5000",
        task: "ResNet18 CIFAR-10",
        variant: "ALGO",
        mean_pct: 93.44,
        std_pct: 0.19,
    },
    Table2Ref {
        hardware: "RTX5000",
        task: "ResNet18 CIFAR-10",
        variant: "IMPL",
        mean_pct: 93.13,
        std_pct: 0.09,
    },
    Table2Ref {
        hardware: "RTX5000",
        task: "ResNet18 CIFAR-100",
        variant: "ALGO+IMPL",
        mean_pct: 73.30,
        std_pct: 0.16,
    },
    Table2Ref {
        hardware: "RTX5000",
        task: "ResNet18 CIFAR-100",
        variant: "ALGO",
        mean_pct: 73.52,
        std_pct: 0.15,
    },
    Table2Ref {
        hardware: "RTX5000",
        task: "ResNet18 CIFAR-100",
        variant: "IMPL",
        mean_pct: 73.34,
        std_pct: 0.24,
    },
    // V100
    Table2Ref {
        hardware: "V100",
        task: "SmallCNN CIFAR-10",
        variant: "ALGO+IMPL",
        mean_pct: 62.03,
        std_pct: 0.91,
    },
    Table2Ref {
        hardware: "V100",
        task: "SmallCNN CIFAR-10",
        variant: "ALGO",
        mean_pct: 62.35,
        std_pct: 0.61,
    },
    Table2Ref {
        hardware: "V100",
        task: "SmallCNN CIFAR-10",
        variant: "IMPL",
        mean_pct: 61.69,
        std_pct: 0.31,
    },
    Table2Ref {
        hardware: "V100",
        task: "ResNet18 CIFAR-10",
        variant: "ALGO+IMPL",
        mean_pct: 93.32,
        std_pct: 0.17,
    },
    Table2Ref {
        hardware: "V100",
        task: "ResNet18 CIFAR-10",
        variant: "ALGO",
        mean_pct: 93.44,
        std_pct: 0.05,
    },
    Table2Ref {
        hardware: "V100",
        task: "ResNet18 CIFAR-10",
        variant: "IMPL",
        mean_pct: 93.41,
        std_pct: 0.13,
    },
    Table2Ref {
        hardware: "V100",
        task: "ResNet18 CIFAR-100",
        variant: "ALGO+IMPL",
        mean_pct: 73.42,
        std_pct: 0.25,
    },
    Table2Ref {
        hardware: "V100",
        task: "ResNet18 CIFAR-100",
        variant: "ALGO",
        mean_pct: 73.35,
        std_pct: 0.14,
    },
    Table2Ref {
        hardware: "V100",
        task: "ResNet18 CIFAR-100",
        variant: "IMPL",
        mean_pct: 73.41,
        std_pct: 0.28,
    },
    Table2Ref {
        hardware: "V100",
        task: "ResNet50 ImageNet",
        variant: "ALGO+IMPL",
        mean_pct: 76.58,
        std_pct: 0.10,
    },
    Table2Ref {
        hardware: "V100",
        task: "ResNet50 ImageNet",
        variant: "ALGO",
        mean_pct: 76.61,
        std_pct: 0.10,
    },
    Table2Ref {
        hardware: "V100",
        task: "ResNet50 ImageNet",
        variant: "IMPL",
        mean_pct: 76.60,
        std_pct: 0.05,
    },
];

/// One Table-5 reference row: subgroup stddev scale relative to "All".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table5Ref {
    /// Variant label.
    pub variant: &'static str,
    /// Subgroup name.
    pub group: &'static str,
    /// Relative accuracy-stddev scale (×).
    pub rel_accuracy: f64,
    /// Relative FPR-stddev scale (×).
    pub rel_fpr: f64,
    /// Relative FNR-stddev scale (×).
    pub rel_fnr: f64,
}

/// The paper's Table 5 relative scales (per variant, per subgroup).
pub const TABLE5: [Table5Ref; 15] = [
    Table5Ref {
        variant: "ALGO+IMPL",
        group: "All",
        rel_accuracy: 1.00,
        rel_fpr: 1.00,
        rel_fnr: 1.00,
    },
    Table5Ref {
        variant: "ALGO+IMPL",
        group: "Male",
        rel_accuracy: 1.07,
        rel_fpr: 0.50,
        rel_fnr: 4.60,
    },
    Table5Ref {
        variant: "ALGO+IMPL",
        group: "Female",
        rel_accuracy: 1.36,
        rel_fpr: 1.71,
        rel_fnr: 0.98,
    },
    Table5Ref {
        variant: "ALGO+IMPL",
        group: "Young",
        rel_accuracy: 1.10,
        rel_fpr: 1.00,
        rel_fnr: 1.08,
    },
    Table5Ref {
        variant: "ALGO+IMPL",
        group: "Old",
        rel_accuracy: 3.31,
        rel_fpr: 1.57,
        rel_fnr: 1.51,
    },
    Table5Ref {
        variant: "ALGO",
        group: "All",
        rel_accuracy: 1.00,
        rel_fpr: 1.00,
        rel_fnr: 1.00,
    },
    Table5Ref {
        variant: "ALGO",
        group: "Male",
        rel_accuracy: 0.94,
        rel_fpr: 1.01,
        rel_fnr: 4.66,
    },
    Table5Ref {
        variant: "ALGO",
        group: "Female",
        rel_accuracy: 1.62,
        rel_fpr: 1.81,
        rel_fnr: 0.89,
    },
    Table5Ref {
        variant: "ALGO",
        group: "Young",
        rel_accuracy: 0.93,
        rel_fpr: 0.99,
        rel_fnr: 1.10,
    },
    Table5Ref {
        variant: "ALGO",
        group: "Old",
        rel_accuracy: 1.83,
        rel_fpr: 1.81,
        rel_fnr: 0.86,
    },
    Table5Ref {
        variant: "IMPL",
        group: "All",
        rel_accuracy: 1.00,
        rel_fpr: 1.00,
        rel_fnr: 1.00,
    },
    Table5Ref {
        variant: "IMPL",
        group: "Male",
        rel_accuracy: 0.64,
        rel_fpr: 0.61,
        rel_fnr: 3.61,
    },
    Table5Ref {
        variant: "IMPL",
        group: "Female",
        rel_accuracy: 1.39,
        rel_fpr: 1.48,
        rel_fnr: 0.89,
    },
    Table5Ref {
        variant: "IMPL",
        group: "Young",
        rel_accuracy: 1.00,
        rel_fpr: 0.93,
        rel_fnr: 1.27,
    },
    Table5Ref {
        variant: "IMPL",
        group: "Old",
        rel_accuracy: 2.36,
        rel_fpr: 2.21,
        rel_fnr: 2.10,
    },
];

/// The Figure-8 overhead extremes quoted in the paper's text
/// (deterministic relative GPU time, percent).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadRef {
    /// GPU name.
    pub device: &'static str,
    /// Minimum of the medium-CNN filter sweep (k = 1).
    pub sweep_min_pct: f64,
    /// Maximum of the medium-CNN filter sweep (k = 7).
    pub sweep_max_pct: f64,
}

/// Paper §4: "284%~746% on P100, 129%~241% on V100, and 117%~196% on T4".
pub const FIG8B: [OverheadRef; 3] = [
    OverheadRef {
        device: "P100",
        sweep_min_pct: 284.0,
        sweep_max_pct: 746.0,
    },
    OverheadRef {
        device: "V100",
        sweep_min_pct: 129.0,
        sweep_max_pct: 241.0,
    },
    OverheadRef {
        device: "T4",
        sweep_min_pct: 117.0,
        sweep_max_pct: 196.0,
    },
];

/// Other headline quantities from the paper's text.
pub mod headline {
    /// Fig. 4: max per-class accuracy stddev over top-line stddev, CIFAR-10.
    pub const FIG4_CIFAR10_RATIO: f64 = 4.0;
    /// Fig. 4: the same ratio for CIFAR-100.
    pub const FIG4_CIFAR100_RATIO: f64 = 23.0;
    /// Fig. 2: small-CNN accuracy stddev without BN (percent).
    pub const FIG2_STD_NO_BN_PCT: f64 = 0.86;
    /// Fig. 2: with BN (percent).
    pub const FIG2_STD_WITH_BN_PCT: f64 = 0.30;
    /// §3.1: ResNet-50/ImageNet churn under IMPL.
    pub const RESNET50_IMPL_CHURN: f64 = 0.1468;
    /// §3.1: ResNet-50/ImageNet churn under ALGO.
    pub const RESNET50_ALGO_CHURN: f64 = 0.1489;
    /// §4: VGG-19 relative GPU time on V100 (percent).
    pub const VGG19_V100_PCT: f64 = 185.0;
    /// §4: MobileNet relative GPU time on V100 (percent).
    pub const MOBILENET_V100_PCT: f64 = 101.0;
}

/// Paper-vs-measured comparison rows.
pub mod compare {
    use super::*;
    use crate::experiments::cost::OverheadPoint;
    use crate::experiments::stability::StabilityGrid;
    use crate::report::render_table;

    /// One comparison row.
    #[derive(Debug, Clone, Serialize, Deserialize)]
    pub struct Comparison {
        /// What is being compared.
        pub quantity: String,
        /// The paper's value.
        pub paper: f64,
        /// The reproduction's value.
        pub measured: f64,
    }

    impl Comparison {
        /// `measured / paper` (0 when the paper value is 0).
        pub fn ratio(&self) -> f64 {
            if self.paper == 0.0 {
                0.0
            } else {
                self.measured / self.paper
            }
        }
    }

    /// Compares a measured stability grid against the paper's Table 2
    /// accuracy means (stddev magnitudes differ by design at reduced
    /// scale; the means anchor the task difficulty).
    pub fn table2(grid: &StabilityGrid) -> Vec<Comparison> {
        TABLE2
            .iter()
            .filter_map(|r| {
                let cell = grid.reports.iter().find(|m| {
                    m.task == r.task && m.device == r.hardware && m.variant.label() == r.variant
                })?;
                Some(Comparison {
                    quantity: format!("{} / {} / {} mean acc %", r.hardware, r.task, r.variant),
                    paper: r.mean_pct,
                    measured: 100.0 * cell.mean_accuracy,
                })
            })
            .collect()
    }

    /// Compares the measured filter sweep against the paper's quoted
    /// extremes.
    pub fn fig8b(points: &[OverheadPoint]) -> Vec<Comparison> {
        let mut out = Vec::new();
        for r in FIG8B {
            let series: Vec<f64> = points
                .iter()
                .filter(|p| p.device == r.device)
                .map(|p| p.overhead_pct)
                .collect();
            if series.is_empty() {
                continue;
            }
            let min = series.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = series.iter().cloned().fold(0.0f64, f64::max);
            out.push(Comparison {
                quantity: format!("{} sweep min %", r.device),
                paper: r.sweep_min_pct,
                measured: min,
            });
            out.push(Comparison {
                quantity: format!("{} sweep max %", r.device),
                paper: r.sweep_max_pct,
                measured: max,
            });
        }
        out
    }

    /// Renders comparison rows as a text table.
    pub fn render(title: &str, rows: &[Comparison]) -> String {
        let table_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|c| {
                vec![
                    c.quantity.clone(),
                    format!("{:.2}", c.paper),
                    format!("{:.2}", c.measured),
                    format!("{:.2}x", c.ratio()),
                ]
            })
            .collect();
        render_table(
            title,
            &["Quantity", "Paper", "Measured", "Ratio"],
            &table_rows,
        )
    }
}

#[cfg(test)]
// Tests assert exact float values: bit-identical replay is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_all_thirty_cells() {
        assert_eq!(TABLE2.len(), 30);
        // 3 GPUs × 3 tasks × 3 variants + V100 ImageNet × 3.
        let v100_rows = TABLE2.iter().filter(|r| r.hardware == "V100").count();
        assert_eq!(v100_rows, 12);
        for r in &TABLE2 {
            assert!(r.mean_pct > 50.0 && r.mean_pct < 100.0);
            assert!(r.std_pct > 0.0 && r.std_pct < 1.0);
        }
    }

    #[test]
    fn table5_relative_scales_anchor_at_one() {
        for r in TABLE5.iter().filter(|r| r.group == "All") {
            assert_eq!(r.rel_accuracy, 1.0);
            assert_eq!(r.rel_fpr, 1.0);
            assert_eq!(r.rel_fnr, 1.0);
        }
        // The paper's headline: Male FNR 4.60×, Old accuracy 3.31×.
        let male = TABLE5
            .iter()
            .find(|r| r.variant == "ALGO+IMPL" && r.group == "Male")
            .unwrap();
        assert!((male.rel_fnr - 4.60).abs() < 1e-9);
    }

    #[test]
    fn comparison_ratio() {
        let c = compare::Comparison {
            quantity: "x".into(),
            paper: 2.0,
            measured: 3.0,
        };
        assert!((c.ratio() - 1.5).abs() < 1e-12);
        let z = compare::Comparison {
            quantity: "y".into(),
            paper: 0.0,
            measured: 3.0,
        };
        assert_eq!(z.ratio(), 0.0);
    }

    #[test]
    fn fig8b_comparison_computes_extremes() {
        use crate::experiments::cost::OverheadPoint;
        let pts = vec![
            OverheadPoint {
                workload: "MediumCNN k=1".into(),
                device: "P100".into(),
                default_time_s: 1.0,
                deterministic_time_s: 2.0,
                overhead_pct: 200.0,
            },
            OverheadPoint {
                workload: "MediumCNN k=7".into(),
                device: "P100".into(),
                default_time_s: 1.0,
                deterministic_time_s: 8.0,
                overhead_pct: 800.0,
            },
        ];
        let rows = compare::fig8b(&pts);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].measured, 200.0);
        assert_eq!(rows[1].measured, 800.0);
        assert!(compare::render("t", &rows).contains("P100 sweep max"));
    }
}
