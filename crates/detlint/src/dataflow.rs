//! Intra-procedural dataflow: taint tracking for the flow rules
//! (DL006–DL008).
//!
//! The v1 rules see one statement at a time, so `let vals: Vec<f64> =
//! m.values().cloned().collect();` three statements before a `.sum()` is
//! invisible to them. This module walks each function's statements in
//! order (as recovered by [`crate::parser`]) and carries two taint kinds
//! across bindings:
//!
//! * **`Unordered`** — the value's element order is arbitrary. Sources:
//!   `HashMap`/`HashSet` iteration, rayon-style `par_iter` combinators,
//!   channel `try_iter`/`try_recv`, `select!`. Cleared by the sanctioned
//!   ordered sinks (`sum_ordered_f64/f32`, `sum_compensated_f64`,
//!   `Reducer::plan_dots`), by collection into an ordered container
//!   (`BTreeMap`/`BTreeSet`), or by an explicit sort.
//! * **`Entropy`** — the value came from a *sequential* RNG draw, so it
//!   depends on the RNG cursor position. Sources: `next_u32`-family
//!   draws, `draw`, `sample`, ambient `thread_rng`/`from_entropy`.
//!   Index-derivation helpers (`entropy_for`, `derive`, `rng_at`, ...)
//!   are deliberately *not* sources: they are pure functions of an index
//!   and are the sanctioned way to hand randomness across a boundary.
//! * **`Env`** — the value came from `std::env::var("NAME")` for a name
//!   not registered in `Settings` (DL008's registry lives in
//!   `detlint.toml`).
//!
//! Propagation is deliberately simple: a statement's *result taint* is
//! the union of its in-range sources and the taints of every variable it
//! references, minus what its sanitizers clear; `let` bindings and plain
//! assignments replace the target's taint, compound assignments union
//! into it. Closure captures need no special handling because the parser
//! keeps expression braces (closure bodies) inside the statement that
//! spawns them — a tainted variable referenced inside
//! `scope.spawn(move || ...)` is a reference *within the spawn
//! statement*.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Config;
use crate::lexer::{Tok, TokKind};
use crate::parser::ParsedFile;
use crate::rules::{
    self, float_compound_assign, fold_is_order_sensitive, is_float_literal, is_nullary_call,
    tracked_hash_vars, Ctx, ITER_METHODS, PAR_COMBINATORS,
};
use crate::{Finding, RuleId};

/// Sequential RNG draw methods — their value depends on the RNG cursor.
const DRAW_METHODS: &[&str] = &[
    "next_u32",
    "next_u64",
    "next_f32",
    "next_f64",
    "next_below",
    "next_seed",
    "draw",
    "sample",
    "gen",
    "gen_range",
];

/// Ambient entropy constructors (already DL002 hazards on their own, but
/// their *values* also carry Entropy taint for DL007).
const AMBIENT_ENTROPY: &[&str] = &["thread_rng", "from_entropy", "OsRng", "getrandom"];

/// Identifiers that clear `Unordered` taint when they appear in a
/// statement: the sanctioned ordered reductions, ordered collection
/// targets, and explicit sorts.
const UNORDERED_SANITIZERS: &[&str] = &[
    "sum_ordered_f64",
    "sum_ordered_f32",
    "sum_compensated_f64",
    "plan_dots",
    "BTreeMap",
    "BTreeSet",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// Calls that move a value across a thread or process boundary (DL007).
const BOUNDARY_CALLS: &[&str] = &["spawn", "encode_frame", "write_frame", "encode_payload"];

/// Identifiers whose presence sanctions an entropy crossing: the
/// index-derivation bridges and the snapshot/result codecs, which encode
/// cursors explicitly and in a fixed order.
const ENTROPY_SANCTIONED: &[&str] = &[
    "plan_dots",
    "entropy_for",
    "derive",
    "child",
    "rng_at",
    "stream",
    "snapshot",
    "from_snapshot",
    "encode_result",
];

/// Integer and float primitive type names (DL008's numeric evidence).
const NUMERIC_TYPES: &[&str] = &[
    "f32", "f64", "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128",
    "isize",
];

/// Why a variable is tainted: the source line and a human description.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Origin {
    line: u32,
    what: String,
}

/// The taints one variable carries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Taint {
    unordered: Option<Origin>,
    entropy: Option<Origin>,
    /// Unregistered env vars feeding this value: `(NAME, read line)`.
    env: Vec<(String, u32)>,
}

impl Taint {
    fn is_clean(&self) -> bool {
        self.unordered.is_none() && self.entropy.is_none() && self.env.is_empty()
    }

    fn union(&mut self, other: &Taint) {
        if self.unordered.is_none() {
            self.unordered.clone_from(&other.unordered);
        }
        if self.entropy.is_none() {
            self.entropy.clone_from(&other.entropy);
        }
        for e in &other.env {
            if !self.env.contains(e) {
                self.env.push(e.clone());
            }
        }
    }
}

/// Entry point: runs the dataflow rules over one parsed file. Shares the
/// v1 [`Ctx`] (token slice, fn signatures, test regions, float bindings).
pub(crate) fn run_dataflow_rules(
    ctx: &Ctx,
    parsed: &ParsedFile,
    config: &Config,
    findings: &mut Vec<Finding>,
) {
    let enabled = |rule: RuleId| !config.rule_exempt(rule, ctx.rel_path);
    let dl006 = enabled(RuleId::Dl006);
    let dl007 = enabled(RuleId::Dl007);
    let dl008 = enabled(RuleId::Dl008);
    if !dl006 && !dl007 && !dl008 {
        return;
    }
    let hash_vars = tracked_hash_vars(ctx.tokens);
    for func in &parsed.functions {
        let mut vars: BTreeMap<String, Taint> = BTreeMap::new();
        // One DL008 finding per (env name, origin line) per function, so a
        // tainted value used in five numeric statements reports once.
        let mut env_reported: BTreeSet<(String, u32)> = BTreeSet::new();
        // The parser pushes a nested block's statements before their
        // header statement (it finishes the header last), so re-sort by
        // token position to process `if let` / `for` headers before
        // their bodies.
        let mut order = func.stmt_indices.clone();
        order.sort_by_key(|&si| parsed.stmts[si].range.0);
        for si in order {
            let stmt = &parsed.stmts[si];
            let (s, e) = stmt.range;

            // --- gather this statement's taint evidence ---------------
            let direct_unordered = unordered_source(ctx, &hash_vars, s, e);
            let direct_entropy = entropy_source(ctx, s, e);
            let env_here = env_reads(ctx, s, e);
            // For `let` statements only the initializer flows — reading
            // the whole range would pick the binding name itself up and
            // make `let vals = clean();` inherit the shadowed taint.
            let flow_range = match &stmt.let_binding {
                Some(b) => b.init,
                None => Some((s, e)),
            };
            let mut flowed = Taint::default();
            if let Some((fs, fe)) = flow_range {
                for t in &ctx.tokens[fs..=fe] {
                    if let Some(id) = t.ident() {
                        if let Some(taint) = vars.get(id) {
                            flowed.union(taint);
                        }
                    }
                }
            }
            let sanitized = has_ident(ctx, s, e, UNORDERED_SANITIZERS);

            // --- DL006: propagated unordered taint hits a float sink --
            // Only *cross-statement* flows: a hash iteration feeding a
            // sink in the same statement is DL001's finding already.
            if dl006 && !sanitized && direct_unordered.is_none() {
                if let (Some(origin), Some(sink_at)) =
                    (&flowed.unordered, float_accumulation_sink(ctx, s, e))
                {
                    ctx.emit(
                        findings,
                        RuleId::Dl006,
                        sink_at,
                        format!(
                            "value tainted by {} (line {}) reaches a float \
                             accumulation; element order is arbitrary, so the \
                             sum's bit pattern varies run to run",
                            origin.what, origin.line
                        ),
                    );
                }
            }

            // --- DL007: entropy crosses a thread/process boundary -----
            if dl007 && !has_ident(ctx, s, e, ENTROPY_SANCTIONED) {
                if let Some((b_at, b_name)) = boundary_call(ctx, s, e) {
                    let origin = flowed
                        .entropy
                        .as_ref()
                        .or(direct_entropy.as_ref().map(|(_, o)| o));
                    if let Some(origin) = origin {
                        ctx.emit(
                            findings,
                            RuleId::Dl007,
                            b_at,
                            format!(
                                "sequential RNG value from {} (line {}) crosses \
                                 a thread/process boundary via `{b_name}`; \
                                 cursor-dependent draws must be re-derived from \
                                 the replica index, not captured",
                                origin.what, origin.line
                            ),
                        );
                    }
                }
            }

            // --- DL008: unregistered env var on a numeric path --------
            if dl008 {
                let numeric = numeric_evidence(ctx, s, e);
                for (name, at) in &env_here {
                    if config.dl008_registered(name) {
                        continue;
                    }
                    if numeric {
                        let line = ctx.tokens[*at].line;
                        if env_reported.insert((name.clone(), line)) {
                            ctx.emit(
                                findings,
                                RuleId::Dl008,
                                *at,
                                format!(
                                    "env var `{name}` feeds a numeric path but is \
                                     not registered in Settings; unregistered \
                                     knobs change results without appearing in \
                                     the experiment fingerprint"
                                ),
                            );
                        }
                    }
                }
                if numeric && env_here.is_empty() {
                    for (name, line) in flowed.env.clone() {
                        if env_reported.insert((name.clone(), line)) {
                            ctx.emit(
                                findings,
                                RuleId::Dl008,
                                s,
                                format!(
                                    "env var `{name}` (read at line {line}) feeds \
                                     a numeric path but is not registered in \
                                     Settings; unregistered knobs change results \
                                     without appearing in the experiment \
                                     fingerprint"
                                ),
                            );
                        }
                    }
                }
            }

            // --- propagate into this statement's bindings -------------
            let mut result = flowed;
            if sanitized {
                result.unordered = None;
                // A sanitizing statement blesses the variables it touches:
                // an in-place `vals.sort_by(..)` has no binding and no
                // assignment target, so clearing only the statement result
                // would leave `vals` itself tainted forever.
                for t in &ctx.tokens[s..=e] {
                    if let Some(id) = t.ident() {
                        if let Some(taint) = vars.get_mut(id) {
                            taint.unordered = None;
                        }
                    }
                }
                vars.retain(|_, t| !t.is_clean());
            }
            // A `for x in map` header is DL001's territory and the loop
            // variable is a *single element*, not the unordered sequence;
            // only propagated taint flows into header bindings.
            let is_for_header = ctx.tokens[s..=e].iter().take(3).any(|t| t.is_ident("for"));
            if !is_for_header {
                if let Some((at, what)) = &direct_unordered {
                    if !sanitized && result.unordered.is_none() {
                        result.unordered = Some(Origin {
                            line: ctx.tokens[*at].line,
                            what: what.clone(),
                        });
                    }
                }
            }
            if let Some((at, origin)) = &direct_entropy {
                let _ = at;
                if result.entropy.is_none() {
                    result.entropy = Some(origin.clone());
                }
            }
            for (name, at) in &env_here {
                if !config.dl008_registered(name) {
                    let entry = (name.clone(), ctx.tokens[*at].line);
                    if !result.env.contains(&entry) {
                        result.env.push(entry);
                    }
                }
            }

            if let Some(binding) = &stmt.let_binding {
                for name in &binding.names {
                    if result.is_clean() {
                        vars.remove(name); // shadowing clears old taint
                    } else {
                        vars.insert(name.clone(), result.clone());
                    }
                }
            } else if let Some((target, compound)) = assignment_target(ctx, s, e) {
                if compound {
                    if !result.is_clean() {
                        vars.entry(target).or_default().union(&result);
                    }
                } else if result.is_clean() {
                    vars.remove(&target);
                } else {
                    vars.insert(target, result.clone());
                }
            }
        }
    }
}

fn has_ident(ctx: &Ctx, s: usize, e: usize, names: &[&str]) -> bool {
    ctx.tokens[s..=e]
        .iter()
        .any(|t| t.ident().is_some_and(|id| names.contains(&id)))
}

/// An in-statement `Unordered` source: hash-container iteration, a
/// parallel combinator, a nondeterministic channel read, or `select!`.
fn unordered_source(
    ctx: &Ctx,
    hash_vars: &BTreeMap<String, &'static str>,
    s: usize,
    e: usize,
) -> Option<(usize, String)> {
    for i in s..=e {
        let Some(id) = ctx.tokens[i].ident() else {
            continue;
        };
        if let Some(container) = hash_vars.get(id) {
            let iterated = ctx.tokens.get(i + 1).is_some_and(|t| t.is_punct('.'))
                && ctx
                    .tokens
                    .get(i + 2)
                    .is_some_and(|t| t.ident().is_some_and(|m| ITER_METHODS.contains(&m)));
            if iterated {
                return Some((i, format!("`{id}` ({container}) iteration")));
            }
        }
        if PAR_COMBINATORS.contains(&id) {
            return Some((i, format!("`{id}` parallel iteration")));
        }
        if (id == "try_iter" || id == "try_recv")
            && ctx
                .tokens
                .get(i.wrapping_sub(1))
                .is_some_and(|t| t.is_punct('.'))
        {
            return Some((i, format!("`{id}` nondeterministic channel read")));
        }
        if id == "select" && ctx.tokens.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            return Some((i, "`select!` arbitrary arm order".to_string()));
        }
    }
    None
}

/// An in-statement `Entropy` source: a sequential draw method or an
/// ambient-entropy constructor.
fn entropy_source(ctx: &Ctx, s: usize, e: usize) -> Option<(usize, Origin)> {
    for i in s..=e {
        let Some(id) = ctx.tokens[i].ident() else {
            continue;
        };
        let line = ctx.tokens[i].line;
        if DRAW_METHODS.contains(&id)
            && ctx
                .tokens
                .get(i.wrapping_sub(1))
                .is_some_and(|t| t.is_punct('.'))
            && ctx
                .tokens
                .get(i + 1)
                .is_some_and(|t| t.is_punct('(') || t.is_punct(':'))
        {
            return Some((
                i,
                Origin {
                    line,
                    what: format!("`.{id}()` draw"),
                },
            ));
        }
        if AMBIENT_ENTROPY.contains(&id) {
            return Some((
                i,
                Origin {
                    line,
                    what: format!("`{id}` ambient entropy"),
                },
            ));
        }
    }
    None
}

/// `std::env::var("NAME")` reads in the range: `(NAME, index of `var`)`.
/// Reads with a non-literal name cannot be checked against the registry
/// and are skipped.
fn env_reads(ctx: &Ctx, s: usize, e: usize) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for i in s..=e {
        let Some(id @ ("var" | "var_os")) = ctx.tokens[i].ident() else {
            continue;
        };
        let _ = id;
        let is_env_path = i >= 3
            && ctx.tokens[i - 1].is_punct(':')
            && ctx.tokens[i - 2].is_punct(':')
            && ctx.tokens[i - 3].is_ident("env");
        if !is_env_path {
            continue;
        }
        if !ctx.tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let close = rules::matching_paren(ctx.tokens, i + 1).min(e);
        if let Some(name) = ctx.tokens[i + 1..=close].iter().find_map(Tok::str_text) {
            out.push((name.to_string(), i));
        }
    }
    out
}

/// A float accumulation sink in the range: nullary `.sum()`/`.product()`,
/// an additive `.fold(..)`, or a float compound assignment — with float
/// evidence. Returns the sink's token index.
fn float_accumulation_sink(ctx: &Ctx, s: usize, e: usize) -> Option<usize> {
    for i in s..=e {
        let Some(method @ ("sum" | "product" | "fold")) = ctx.tokens[i].ident() else {
            continue;
        };
        if !ctx
            .tokens
            .get(i.wrapping_sub(1))
            .is_some_and(|t| t.is_punct('.'))
        {
            continue;
        }
        let after_ok = ctx
            .tokens
            .get(i + 1)
            .is_some_and(|t| t.is_punct('(') || t.is_punct(':'));
        if !after_ok {
            continue;
        }
        if method != "fold" && !is_nullary_call(ctx.tokens, i + 1) {
            continue;
        }
        if method == "fold" && !fold_is_order_sensitive(ctx.tokens, i) {
            continue;
        }
        if ctx.float_evidence((s, e), i) {
            return Some(i);
        }
    }
    if float_compound_assign(ctx, s, e, s) {
        return Some(s);
    }
    None
}

/// A thread/process boundary call in the range: `spawn(`,
/// `encode_frame(`, `write_frame(`, `encode_payload(`.
fn boundary_call(ctx: &Ctx, s: usize, e: usize) -> Option<(usize, &'static str)> {
    for i in s..=e {
        let Some(id) = ctx.tokens[i].ident() else {
            continue;
        };
        if let Some(&name) = BOUNDARY_CALLS.iter().find(|&&b| b == id) {
            if ctx.tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                return Some((i, name));
            }
        }
    }
    None
}

/// Numeric evidence for DL008: the value is parsed, typed, or combined
/// numerically in this statement.
fn numeric_evidence(ctx: &Ctx, s: usize, e: usize) -> bool {
    ctx.tokens[s..=e].iter().any(|t| match &t.kind {
        TokKind::Ident(id) => id == "parse" || NUMERIC_TYPES.contains(&id.as_str()),
        TokKind::Num(n) => is_float_literal(n),
        _ => false,
    })
}

/// `name = ...` / `name += ...` at statement head: the assigned local.
/// Field assignments (`self.x = ..`) are skipped — fields outlive the
/// intra-procedural window, so tracking them would only invite false
/// positives. Returns `(name, is_compound)`.
fn assignment_target(ctx: &Ctx, s: usize, e: usize) -> Option<(String, bool)> {
    let name = ctx.tokens[s].ident()?.to_string();
    let next = ctx.tokens.get(s + 1)?;
    if next.is_punct('=') && !ctx.tokens.get(s + 2).is_some_and(|t| t.is_punct('=')) {
        return Some((name, false));
    }
    let compound = matches!(next.kind, TokKind::Punct('+' | '-' | '*' | '/'))
        && ctx.tokens.get(s + 2).is_some_and(|t| t.is_punct('='))
        && s + 2 <= e;
    compound.then_some((name, true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn scan(src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let parsed = parse(&lexed.tokens);
        rules::run_rules("src/sample.rs", &lexed, &parsed, &Config::default())
    }

    fn rules_fired(src: &str) -> Vec<RuleId> {
        scan(src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn dl006_tracks_unordered_across_statements() {
        let f = scan(
            "fn f(m: &HashMap<String, f64>) -> f64 {\n \
             let vals: Vec<f64> = m.values().cloned().collect();\n \
             let n = vals.len();\n \
             let s: f64 = vals.iter().sum();\n \
             s\n}\n",
        );
        assert!(
            f.iter().any(|x| x.rule == RuleId::Dl006 && x.line == 4),
            "{f:?}"
        );
    }

    #[test]
    fn dl006_cleared_by_ordered_sum() {
        let f = scan(
            "fn f(m: &HashMap<String, f64>) -> f64 {\n \
             let mut vals: Vec<f64> = m.values().cloned().collect();\n \
             vals.sort_by(|a, b| a.total_cmp(b));\n \
             let s: f64 = vals.iter().sum();\n \
             s\n}\n",
        );
        assert!(f.iter().all(|x| x.rule != RuleId::Dl006), "{f:?}");
    }

    #[test]
    fn dl006_cleared_by_sanctioned_sink() {
        let f = scan(
            "fn f(m: &HashMap<String, f64>) -> f64 {\n \
             let vals: Vec<f64> = m.values().cloned().collect();\n \
             sum_ordered_f64(&vals)\n}\n",
        );
        assert!(f.iter().all(|x| x.rule != RuleId::Dl006), "{f:?}");
    }

    #[test]
    fn dl006_needs_cross_statement_flow() {
        // Same-statement hash→sum is DL001/DL004 territory; DL006 must
        // stay quiet so one hazard is not triple-reported.
        let f = scan(
            "fn f(m: &HashMap<String, f64>) -> f64 {\n \
             m.values().sum()\n}\n",
        );
        assert!(f.iter().all(|x| x.rule != RuleId::Dl006), "{f:?}");
    }

    #[test]
    fn dl006_sees_try_recv_taint() {
        let f = scan(
            "fn f(rx: &Receiver<f64>) -> f64 {\n \
             let got: Vec<f64> = rx.try_iter().collect();\n \
             let total: f64 = got.iter().sum();\n \
             total\n}\n",
        );
        assert!(f.iter().any(|x| x.rule == RuleId::Dl006), "{f:?}");
    }

    #[test]
    fn dl006_integer_accumulation_is_fine() {
        let f = scan(
            "fn f(m: &HashMap<String, u32>) -> u32 {\n \
             let vals: Vec<u32> = m.values().copied().collect();\n \
             let s: u32 = vals.iter().sum();\n \
             s\n}\n",
        );
        assert!(f.iter().all(|x| x.rule != RuleId::Dl006), "{f:?}");
    }

    #[test]
    fn dl007_fires_on_draw_crossing_spawn() {
        let f = scan(
            "fn f(rng: &mut StreamRng, scope: &Scope) {\n \
             let jitter = rng.next_f64();\n \
             scope.spawn(move || work(jitter));\n}\n",
        );
        assert!(f.iter().any(|x| x.rule == RuleId::Dl007), "{f:?}");
    }

    #[test]
    fn dl007_sanctioned_by_index_derivation() {
        let f = scan(
            "fn f(settings: &Settings, scope: &Scope, i: u64) {\n \
             let ent = settings.entropy_for(i);\n \
             scope.spawn(move || work(ent));\n}\n",
        );
        assert!(f.iter().all(|x| x.rule != RuleId::Dl007), "{f:?}");
    }

    #[test]
    fn dl007_plan_dots_crossing_is_sanctioned() {
        // The gemm engine's pre-planned draws cross the band spawn by
        // design: planning happens in reference order before the spawn.
        let f = scan(
            "fn f(red: &mut Reducer, scope: &Scope) {\n \
             let plan = red.plan_dots(m * n, ka);\n \
             scope.spawn(move || run_band(plan));\n}\n",
        );
        assert!(f.iter().all(|x| x.rule != RuleId::Dl007), "{f:?}");
    }

    #[test]
    fn dl007_fires_on_draw_reaching_frame_encode() {
        let f = scan(
            "fn f(rng: &mut StreamRng, out: &mut Vec<u8>) {\n \
             let tag = rng.next_u32();\n \
             let frame = encode_frame(Tag::Result, tag);\n \
             out.extend(frame);\n}\n",
        );
        assert!(f.iter().any(|x| x.rule == RuleId::Dl007), "{f:?}");
    }

    #[test]
    fn dl008_fires_on_unregistered_numeric_env() {
        let f = scan(
            "fn f() -> usize {\n \
             let raw = std::env::var(\"MY_SECRET_KNOB\").unwrap_or_default();\n \
             raw.parse::<usize>().unwrap_or(4)\n}\n",
        );
        assert!(f.iter().any(|x| x.rule == RuleId::Dl008), "{f:?}");
    }

    #[test]
    fn dl008_registered_names_are_quiet() {
        let cfg = Config::parse("[rules.DL008]\nregistered = [\"NS_REPLICAS\"]\n").unwrap();
        let src = "fn f() -> usize {\n \
             let raw = std::env::var(\"NS_REPLICAS\").unwrap_or_default();\n \
             raw.parse::<usize>().unwrap_or(4)\n}\n";
        let lexed = lex(src);
        let parsed = parse(&lexed.tokens);
        let f = rules::run_rules("src/sample.rs", &lexed, &parsed, &cfg);
        assert!(f.iter().all(|x| x.rule != RuleId::Dl008), "{f:?}");
    }

    #[test]
    fn dl008_non_numeric_env_is_quiet() {
        let f = scan(
            "fn f() -> String {\n \
             std::env::var(\"LOG_LABEL\").unwrap_or_default()\n}\n",
        );
        assert!(f.iter().all(|x| x.rule != RuleId::Dl008), "{f:?}");
    }

    #[test]
    fn dl008_tracks_env_value_to_later_parse() {
        // The read and the numeric use are in different statements — the
        // if-let header binds `v`, the body parses it.
        let f = scan(
            "fn f(s: &mut Settings) {\n \
             if let Ok(v) = std::env::var(\"SNEAKY_SCALE\") {\n \
             s.scale = v.parse::<f64>().unwrap_or(1.0);\n \
             }\n}\n",
        );
        assert!(f.iter().any(|x| x.rule == RuleId::Dl008), "{f:?}");
    }

    #[test]
    fn taints_flow_through_renaming_lets() {
        let f = scan(
            "fn f(m: &HashMap<String, f64>) -> f64 {\n \
             let raw: Vec<f64> = m.values().cloned().collect();\n \
             let renamed = raw;\n \
             let out: f64 = renamed.iter().sum();\n \
             out\n}\n",
        );
        assert!(f.iter().any(|x| x.rule == RuleId::Dl006), "{f:?}");
    }

    #[test]
    fn shadowing_with_clean_value_clears_taint() {
        let f = scan(
            "fn f(m: &HashMap<String, f64>, clean: &[f64]) -> f64 {\n \
             let vals: Vec<f64> = m.values().cloned().collect();\n \
             let vals: Vec<f64> = clean.to_vec();\n \
             let s: f64 = vals.iter().sum();\n \
             s\n}\n",
        );
        assert!(f.iter().all(|x| x.rule != RuleId::Dl006), "{f:?}");
    }

    #[test]
    fn no_flow_rule_fires_on_clean_code() {
        assert!(rules_fired(
            "fn f(v: &[f64]) -> f64 {\n let s = sum_ordered_f64(v);\n s * 2.0\n}\n"
        )
        .is_empty());
    }
}
