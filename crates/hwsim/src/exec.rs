//! Execution contexts: the bridge from a (device, mode) pair to the
//! accumulation order of every reduction class in a training run.

use crate::chaos::{ChaosState, FaultKind, FaultPlan};
use crate::device::{Architecture, Device};
use detrand::SplitMix64;
use nstensor::{ReduceOrder, Reducer, ReducerSnapshot};
use serde::{Deserialize, Serialize};

/// Framework-level execution mode — the paper's "TF deterministic ops"
/// switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Fastest available kernels; nondeterministic on GPUs.
    Default,
    /// Only deterministic kernels (the software patches the paper measures
    /// the cost of).
    Deterministic,
}

/// Classes of reduction in a training step, distinguished because hardware
/// routes them differently (e.g. Tensor Cores run matmuls on systolic units
/// but fall back to CUDA cores for gradient and statistics accumulations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Forward matmul/conv inner products.
    MatmulForward,
    /// Input-gradient (dgrad) accumulations.
    InputGrad,
    /// Weight-gradient (wgrad) accumulations — reductions across the batch.
    WeightGrad,
    /// Batch statistics (batch-norm mean/variance).
    Statistics,
    /// Bias sums and other miscellaneous accumulations.
    Misc,
}

impl OpClass {
    /// All classes, in a stable order.
    pub const ALL: [OpClass; 5] = [
        OpClass::MatmulForward,
        OpClass::InputGrad,
        OpClass::WeightGrad,
        OpClass::Statistics,
        OpClass::Misc,
    ];

    fn index(self) -> usize {
        match self {
            OpClass::MatmulForward => 0,
            OpClass::InputGrad => 1,
            OpClass::WeightGrad => 2,
            OpClass::Statistics => 3,
            OpClass::Misc => 4,
        }
    }

    /// Whether this class runs on systolic units when the device has them.
    fn is_matmul_class(self) -> bool {
        matches!(self, OpClass::MatmulForward | OpClass::InputGrad)
    }
}

/// The execution state of one simulated run: a reducer per op class, wired
/// to the device's accumulation semantics and (for nondeterministic
/// execution) to the run's scheduler entropy.
///
/// See the [crate-level docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct ExecutionContext {
    device: Device,
    mode: ExecutionMode,
    threads: usize,
    reducers: [Reducer; 5],
    /// Armed chaos-injection state; `None` (the default) is the zero-cost
    /// path — a single pointer-null check per reducer borrow.
    chaos: Option<Box<ChaosState>>,
}

/// The replayable state of an [`ExecutionContext`]: one
/// [`ReducerSnapshot`] per op class, in [`OpClass::ALL`] order. Device,
/// mode and chaos configuration are *not* part of the snapshot — they are
/// rebuilt from the experiment description when resuming.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecSnapshot {
    /// Per-op-class reducer states.
    pub reducers: Vec<ReducerSnapshot>,
}

/// Fluent constructor for [`ExecutionContext`], obtained from
/// [`ExecutionContext::builder`]. Every knob has a sensible default
/// (`Default` mode, entropy 0, no amplification, single-threaded), so call
/// sites only name what they change:
///
/// ```
/// use hwsim::{Device, ExecutionContext, ExecutionMode};
/// let ctx = ExecutionContext::builder(Device::v100())
///     .mode(ExecutionMode::Deterministic)
///     .entropy(42)
///     .threads(4)
///     .build();
/// assert!(!ctx.is_nondeterministic());
/// assert_eq!(ctx.threads(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ExecutionContextBuilder {
    device: Device,
    mode: ExecutionMode,
    entropy: u64,
    amp_ulps: f32,
    threads: usize,
    chaos: FaultPlan,
}

impl ExecutionContextBuilder {
    /// Sets the framework execution mode (default: [`ExecutionMode::Default`]).
    pub fn mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Seeds the scheduler RNG (default: 0). Only consumed when the
    /// device/mode combination is nondeterministic; deterministic execution
    /// produces bitwise-identical results for any entropy.
    pub fn entropy(mut self, entropy: u64) -> Self {
        self.entropy = entropy;
        self
    }

    /// Enables the amplified-noise tier
    /// (see [`nstensor::Reducer::with_amplification`]): `amp_ulps` models
    /// the longer accumulation chains of full-scale workloads. Ignored by
    /// deterministic execution. Default: 0 (faithful order-only noise).
    pub fn amp_ulps(mut self, amp_ulps: f32) -> Self {
        self.amp_ulps = amp_ulps;
        self
    }

    /// Sets the host thread count the blocked GEMM engine may use for this
    /// context's tensor ops (default: 1). Purely a wall-clock knob: the
    /// engine is bitwise invariant in the thread count, so this never
    /// changes simulated results — simulated nondeterminism comes only from
    /// the device/mode reducer configuration. Clamped to at least 1.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Arms chaos injection with a pre-built fault schedule (default: no
    /// faults). An empty plan leaves the context on the zero-cost path —
    /// chaos never consumes scheduler entropy or perturbs any measured
    /// number unless a planned fault actually fires.
    pub fn chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = plan;
        self
    }

    /// Builds the context.
    pub fn build(self) -> ExecutionContext {
        let mut seeder = SplitMix64::new(self.entropy);
        let reducers = core::array::from_fn(|i| {
            let class = OpClass::ALL[i];
            let order = ExecutionContext::order_for(&self.device, self.mode, class);
            let lanes = self.device.lanes();
            let seed = seeder.next_u64();
            Reducer::new(order, lanes, seed).with_amplification(self.amp_ulps)
        });
        let chaos = if self.chaos.is_empty() {
            None
        } else {
            Some(Box::new(ChaosState::new(self.chaos)))
        };
        ExecutionContext {
            device: self.device,
            mode: self.mode,
            threads: self.threads,
            reducers,
            chaos,
        }
    }
}

impl ExecutionContext {
    /// Starts a fluent builder for a context on `device`. See
    /// [`ExecutionContextBuilder`] for the knobs and their defaults.
    pub fn builder(device: Device) -> ExecutionContextBuilder {
        ExecutionContextBuilder {
            device,
            mode: ExecutionMode::Default,
            entropy: 0,
            amp_ulps: 0.0,
            threads: 1,
            chaos: FaultPlan::none(),
        }
    }

    /// Creates a context for `device` in `mode`.
    ///
    /// `entropy` seeds the scheduler RNG. It is only consumed when the
    /// device/mode combination is nondeterministic; deterministic execution
    /// produces bitwise-identical results for any entropy.
    pub fn new(device: Device, mode: ExecutionMode, entropy: u64) -> Self {
        Self::builder(device).mode(mode).entropy(entropy).build()
    }

    /// Creates a context with the amplified-noise tier enabled.
    #[deprecated(
        since = "0.2.0",
        note = "use `ExecutionContext::builder(device).mode(..).entropy(..).amp_ulps(..).build()` \
                — positional f32/u64 arguments were too easy to swap"
    )]
    pub fn with_amplification(
        device: Device,
        mode: ExecutionMode,
        entropy: u64,
        amp_ulps: f32,
    ) -> Self {
        Self::builder(device)
            .mode(mode)
            .entropy(entropy)
            .amp_ulps(amp_ulps)
            .build()
    }

    /// The accumulation order a given op class uses on this device/mode.
    pub fn order_for(device: &Device, mode: ExecutionMode, class: OpClass) -> ReduceOrder {
        if device.arch() == Architecture::Cpu {
            return ReduceOrder::Sequential;
        }
        if device.deterministic_by_design() || mode == ExecutionMode::Deterministic {
            return ReduceOrder::FixedTree;
        }
        if device.systolic_matmul() && class.is_matmul_class() {
            // Tensor Cores: fixed-order systolic accumulation for matmuls...
            ReduceOrder::FixedTree
        } else {
            // ...but everything else still lands on CUDA cores.
            ReduceOrder::Permuted
        }
    }

    /// The reducer for an op class.
    ///
    /// When chaos injection is armed ([`ExecutionContextBuilder::chaos`]),
    /// each borrow is an "op" of the current training step; a planned
    /// fault at this `(step, op)` index fires here: a
    /// [`FaultKind::KernelPanic`] panics the calling thread, a
    /// [`FaultKind::LaunchFailure`] is recorded for
    /// [`ExecutionContext::take_fault`], a [`FaultKind::NanPoison`]
    /// arms a one-shot NaN on the next direct-reduction class
    /// (`WeightGrad`/`Statistics`/`Misc` — matmul classes run through
    /// pre-drawn plans that never materialize a poisoned scalar), a
    /// [`FaultKind::Hang`] stalls the calling thread for the plan's
    /// configured duration, and a [`FaultKind::Abort`] takes the whole
    /// process down.
    pub fn reducer(&mut self, class: OpClass) -> &mut Reducer {
        if let Some(chaos) = self.chaos.as_deref_mut() {
            let op = chaos.op_in_step;
            chaos.op_in_step = chaos.op_in_step.saturating_add(1);
            match chaos.plan.at(chaos.step, op) {
                Some(FaultKind::KernelPanic) => {
                    panic!(
                        "hwsim chaos: injected kernel panic at step {} op {op}",
                        chaos.step
                    );
                }
                Some(FaultKind::LaunchFailure) if chaos.fault.is_none() => {
                    chaos.fault = Some(crate::chaos::ChaosEvent {
                        step: chaos.step,
                        op,
                        kind: FaultKind::LaunchFailure,
                    });
                }
                Some(FaultKind::LaunchFailure) => {}
                Some(FaultKind::NanPoison) => chaos.nan_pending = true,
                Some(FaultKind::Hang) => {
                    // A real stall, not a simulated one: the thread sleeps
                    // through the planned hang. Arithmetic is untouched, so
                    // in-process results are bit-identical; under the fleet
                    // runner the silence starves the heartbeat watchdog.
                    std::thread::sleep(std::time::Duration::from_millis(
                        chaos.plan.hang_ms() as u64
                    ));
                }
                Some(FaultKind::Abort) => {
                    eprintln!("hwsim chaos: injected abort at step {} op {op}", chaos.step);
                    std::process::abort();
                }
                None => {}
            }
            if chaos.nan_pending
                && matches!(
                    class,
                    OpClass::WeightGrad | OpClass::Statistics | OpClass::Misc
                )
            {
                chaos.nan_pending = false;
                self.reducers[class.index()].inject_nan();
            }
        }
        &mut self.reducers[class.index()]
    }

    /// Announces the start of a training step to the chaos layer; a no-op
    /// (one null check) when chaos is not armed. Training loops call this
    /// once per optimizer step so planned `(step, op)` fault indices line
    /// up with reducer borrows.
    #[inline]
    pub fn begin_step(&mut self, step: u64) {
        if let Some(chaos) = self.chaos.as_deref_mut() {
            chaos.step = step;
            chaos.op_in_step = 0;
        }
    }

    /// Takes the pending injected fault, if one fired since the last poll.
    /// Training loops poll this once per step and convert the event into a
    /// structured error.
    pub fn take_fault(&mut self) -> Option<crate::chaos::ChaosEvent> {
        self.chaos.as_deref_mut().and_then(|c| c.fault.take())
    }

    /// Disarms chaos injection for the rest of this context's life (the
    /// training loop calls this after the final optimizer step so that
    /// evaluation and prediction run clean).
    pub fn disarm_chaos(&mut self) {
        self.chaos = None;
    }

    /// Whether chaos injection is currently armed.
    pub fn chaos_armed(&self) -> bool {
        self.chaos.is_some()
    }

    /// Captures the replayable execution state (per-op-class reducer
    /// scheduler positions and invocation counters). Chaos state is not
    /// captured; resuming rebuilds the fault schedule from the experiment
    /// description.
    pub fn snapshot(&self) -> ExecSnapshot {
        ExecSnapshot {
            reducers: self.reducers.iter().map(|r| r.snapshot()).collect(),
        }
    }

    /// Restores the state captured by [`ExecutionContext::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot does not hold exactly one entry per op class.
    pub fn restore(&mut self, s: &ExecSnapshot) {
        assert_eq!(
            s.reducers.len(),
            self.reducers.len(),
            "snapshot op-class count mismatch"
        );
        for (r, snap) in self.reducers.iter_mut().zip(&s.reducers) {
            r.restore(*snap);
        }
    }

    /// The device.
    pub fn device(&self) -> Device {
        self.device
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Host threads the blocked GEMM engine may use for this context's
    /// tensor ops. Bitwise irrelevant to results; see
    /// [`ExecutionContextBuilder::threads`].
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether any op class in this context is nondeterministic.
    pub fn is_nondeterministic(&self) -> bool {
        self.reducers.iter().any(|r| !r.order().is_deterministic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_is_sequential_everywhere() {
        for class in OpClass::ALL {
            assert_eq!(
                ExecutionContext::order_for(&Device::cpu(), ExecutionMode::Default, class),
                ReduceOrder::Sequential
            );
        }
    }

    #[test]
    fn gpu_default_mode_is_permuted_everywhere() {
        for class in OpClass::ALL {
            assert_eq!(
                ExecutionContext::order_for(&Device::v100(), ExecutionMode::Default, class),
                ReduceOrder::Permuted
            );
        }
    }

    #[test]
    fn gpu_deterministic_mode_is_fixed_everywhere() {
        for class in OpClass::ALL {
            assert_eq!(
                ExecutionContext::order_for(&Device::p100(), ExecutionMode::Deterministic, class),
                ReduceOrder::FixedTree
            );
        }
    }

    #[test]
    fn tensor_cores_split_by_class() {
        let d = Device::rtx5000_tensor_cores();
        assert_eq!(
            ExecutionContext::order_for(&d, ExecutionMode::Default, OpClass::MatmulForward),
            ReduceOrder::FixedTree
        );
        assert_eq!(
            ExecutionContext::order_for(&d, ExecutionMode::Default, OpClass::WeightGrad),
            ReduceOrder::Permuted
        );
        assert_eq!(
            ExecutionContext::order_for(&d, ExecutionMode::Default, OpClass::Statistics),
            ReduceOrder::Permuted
        );
        // So TC execution is still nondeterministic overall:
        let ctx = ExecutionContext::new(d, ExecutionMode::Default, 5);
        assert!(ctx.is_nondeterministic());
    }

    #[test]
    fn tpu_is_deterministic_in_default_mode() {
        let ctx = ExecutionContext::new(Device::tpu_v2(), ExecutionMode::Default, 5);
        assert!(!ctx.is_nondeterministic());
    }

    #[test]
    fn deterministic_mode_ignores_entropy() {
        let xs: Vec<f32> = (0..500).map(|i| (i as f32 * 0.7).sin()).collect();
        let mut a = ExecutionContext::new(Device::v100(), ExecutionMode::Deterministic, 111);
        let mut b = ExecutionContext::new(Device::v100(), ExecutionMode::Deterministic, 222);
        for class in OpClass::ALL {
            assert_eq!(
                a.reducer(class).sum(&xs).to_bits(),
                b.reducer(class).sum(&xs).to_bits()
            );
        }
    }

    #[test]
    fn default_mode_entropy_changes_results_eventually() {
        let xs: Vec<f32> = (0..2000).map(|i| (i as f32 * 0.7).sin()).collect();
        let mut a = ExecutionContext::new(Device::v100(), ExecutionMode::Default, 111);
        let mut b = ExecutionContext::new(Device::v100(), ExecutionMode::Default, 222);
        let mut any_diff = false;
        for _ in 0..64 {
            if a.reducer(OpClass::WeightGrad).sum(&xs).to_bits()
                != b.reducer(OpClass::WeightGrad).sum(&xs).to_bits()
            {
                any_diff = true;
                break;
            }
        }
        assert!(any_diff, "different entropy never changed a GPU reduction");
    }

    #[test]
    fn reducers_use_device_lanes() {
        let mut ctx = ExecutionContext::new(Device::t4(), ExecutionMode::Default, 0);
        assert_eq!(ctx.reducer(OpClass::Misc).lanes(), Device::t4().lanes());
    }

    #[test]
    fn builder_defaults() {
        let ctx = ExecutionContext::builder(Device::v100()).build();
        assert_eq!(ctx.mode(), ExecutionMode::Default);
        assert_eq!(ctx.threads(), 1);
        assert_eq!(ctx.device().name(), Device::v100().name());
    }

    #[test]
    fn builder_threads_clamped_to_one() {
        let ctx = ExecutionContext::builder(Device::cpu()).threads(0).build();
        assert_eq!(ctx.threads(), 1);
    }

    #[test]
    fn builder_threads_do_not_change_reducer_state() {
        let xs: Vec<f32> = (0..800).map(|i| (i as f32 * 0.3).cos()).collect();
        let mut a = ExecutionContext::builder(Device::v100()).entropy(9).build();
        let mut b = ExecutionContext::builder(Device::v100())
            .entropy(9)
            .threads(8)
            .build();
        for class in OpClass::ALL {
            assert_eq!(
                a.reducer(class).sum(&xs).to_bits(),
                b.reducer(class).sum(&xs).to_bits()
            );
        }
    }

    #[test]
    fn snapshot_restore_replays_nondeterministic_context() {
        let xs: Vec<f32> = (0..600).map(|i| (i as f32 * 0.4).sin()).collect();
        let mut a = ExecutionContext::builder(Device::v100())
            .entropy(13)
            .build();
        for class in OpClass::ALL {
            a.reducer(class).sum(&xs);
        }
        let snap = a.snapshot();
        let ahead: Vec<u32> = OpClass::ALL
            .map(|c| a.reducer(c).sum(&xs).to_bits())
            .to_vec();
        // Restore into a context built with *different* entropy: the
        // snapshot carries the full scheduler position.
        let mut b = ExecutionContext::builder(Device::v100())
            .entropy(999)
            .build();
        b.restore(&snap);
        let replayed: Vec<u32> = OpClass::ALL
            .map(|c| b.reducer(c).sum(&xs).to_bits())
            .to_vec();
        assert_eq!(ahead, replayed);
    }

    #[test]
    fn chaos_off_is_default_and_unarmed() {
        let ctx = ExecutionContext::builder(Device::v100()).build();
        assert!(!ctx.chaos_armed());
        let ctx2 = ExecutionContext::builder(Device::v100())
            .chaos(crate::chaos::FaultPlan::none())
            .build();
        assert!(!ctx2.chaos_armed());
    }

    #[test]
    fn chaos_does_not_perturb_results_before_fault_steps() {
        use crate::chaos::{ChaosConfig, FaultPlan};
        let xs: Vec<f32> = (0..400).map(|i| (i as f32 * 0.8).cos()).collect();
        // Plan faults far in the future; every reduction before them must
        // be bit-identical to an unarmed context.
        let plan = FaultPlan::build(&ChaosConfig::standard(5), 0, 0, 1_000_000);
        let earliest = plan.faults().iter().map(|f| f.step).min().unwrap();
        let mut armed = ExecutionContext::builder(Device::v100())
            .entropy(4)
            .chaos(plan)
            .build();
        let mut clean = ExecutionContext::builder(Device::v100()).entropy(4).build();
        for step in 0..earliest.min(32) {
            armed.begin_step(step);
            clean.begin_step(step);
            for class in OpClass::ALL {
                assert_eq!(
                    armed.reducer(class).sum(&xs).to_bits(),
                    clean.reducer(class).sum(&xs).to_bits()
                );
            }
        }
        assert!(armed.take_fault().is_none());
    }

    #[test]
    fn launch_failure_is_recorded_and_polled() {
        use crate::chaos::{ChaosConfig, FaultPlan};
        // A schedule with only launch failures over a 1-step horizon: the
        // fault must fire within the first OPS_PER_STEP borrows of step 0.
        let cfg = ChaosConfig::parse("9:1,0,0").unwrap();
        let plan = FaultPlan::build(&cfg, 0, 0, 1);
        assert_eq!(plan.len(), 1);
        let mut ctx = ExecutionContext::builder(Device::v100())
            .chaos(plan)
            .build();
        ctx.begin_step(0);
        for _ in 0..8 {
            ctx.reducer(OpClass::Misc).sum(&[1.0]);
        }
        let ev = ctx.take_fault().expect("launch failure recorded");
        assert_eq!(ev.step, 0);
        assert!(ctx.take_fault().is_none(), "event is taken once");
    }

    #[test]
    fn nan_poison_materializes_on_direct_reduction() {
        use crate::chaos::{ChaosConfig, FaultPlan};
        let cfg = ChaosConfig::parse("3:0,0,1").unwrap();
        let plan = FaultPlan::build(&cfg, 0, 0, 1);
        let mut ctx = ExecutionContext::builder(Device::v100())
            .chaos(plan)
            .build();
        ctx.begin_step(0);
        let mut saw_nan = false;
        for _ in 0..8 {
            saw_nan |= ctx.reducer(OpClass::WeightGrad).sum(&[1.0, 2.0]).is_nan();
        }
        assert!(saw_nan, "poison never materialized");
    }

    #[test]
    #[should_panic(expected = "injected kernel panic")]
    fn kernel_panic_panics() {
        use crate::chaos::{ChaosConfig, FaultPlan};
        let cfg = ChaosConfig::parse("2:0,1,0").unwrap();
        let plan = FaultPlan::build(&cfg, 0, 0, 1);
        let mut ctx = ExecutionContext::builder(Device::v100())
            .chaos(plan)
            .build();
        ctx.begin_step(0);
        for _ in 0..8 {
            ctx.reducer(OpClass::Misc).sum(&[1.0]);
        }
    }

    #[test]
    fn hang_stalls_but_does_not_perturb_results() {
        use crate::chaos::{ChaosConfig, FaultPlan};
        // One hang of 60ms over a 1-step horizon: it must fire within the
        // first OPS_PER_STEP borrows of step 0 and change nothing else.
        let cfg = ChaosConfig::parse("4:0,0,0,1@60").unwrap();
        let plan = FaultPlan::build(&cfg, 0, 0, 1);
        assert_eq!(plan.len(), 1);
        let mut armed = ExecutionContext::builder(Device::v100())
            .entropy(4)
            .chaos(plan)
            .build();
        let mut clean = ExecutionContext::builder(Device::v100()).entropy(4).build();
        armed.begin_step(0);
        clean.begin_step(0);
        let xs = [1.0f32, 2.0, 3.0];
        let start = std::time::Instant::now();
        for _ in 0..8 {
            assert_eq!(
                armed.reducer(OpClass::Misc).sum(&xs).to_bits(),
                clean.reducer(OpClass::Misc).sum(&xs).to_bits(),
            );
        }
        assert!(
            start.elapsed() >= std::time::Duration::from_millis(60),
            "hang never stalled"
        );
        assert!(armed.take_fault().is_none(), "a hang is not an error");
    }

    #[test]
    fn abort_is_planned_but_never_fired_here() {
        use crate::chaos::{ChaosConfig, FaultPlan};
        // Firing an abort would take the test harness down, which is
        // exactly the property that motivates process isolation; here we
        // only prove the schedule carries it to the firing point.
        let cfg = ChaosConfig::parse("4:0,0,0,0,1").unwrap();
        let plan = FaultPlan::build(&cfg, 0, 0, 1);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.faults()[0].kind, crate::chaos::FaultKind::Abort);
        assert!(plan.faults()[0].op < 4);
    }

    #[test]
    fn disarm_stops_injection() {
        use crate::chaos::{ChaosConfig, FaultPlan};
        let cfg = ChaosConfig::parse("2:0,1,0").unwrap();
        let plan = FaultPlan::build(&cfg, 0, 0, 1);
        let mut ctx = ExecutionContext::builder(Device::v100())
            .chaos(plan)
            .build();
        assert!(ctx.chaos_armed());
        ctx.disarm_chaos();
        ctx.begin_step(0);
        for _ in 0..8 {
            ctx.reducer(OpClass::Misc).sum(&[1.0]);
        }
        assert!(!ctx.chaos_armed());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_with_amplification_matches_builder() {
        let xs: Vec<f32> = (0..800).map(|i| (i as f32 * 0.9).sin()).collect();
        let mut old =
            ExecutionContext::with_amplification(Device::v100(), ExecutionMode::Default, 7, 1e4);
        let mut new = ExecutionContext::builder(Device::v100())
            .mode(ExecutionMode::Default)
            .entropy(7)
            .amp_ulps(1e4)
            .build();
        for class in OpClass::ALL {
            assert_eq!(
                old.reducer(class).sum(&xs).to_bits(),
                new.reducer(class).sum(&xs).to_bits()
            );
        }
    }
}
