//! Chrome-trace export of kernel profiles.
//!
//! Serializes a [`KernelProfile`] into the Chrome Trace Event Format
//! (`chrome://tracing`, Perfetto), laying the kernels out on a simulated
//! timeline: one lane per kernel name, one complete event per invocation
//! with its average duration. This is the visual counterpart of the
//! paper's Figure 7 — load the default-mode and deterministic-mode traces
//! side by side to *see* the narrower, slower kernel schedule.

use crate::profiler::KernelProfile;
use serde::Serialize;

/// One Chrome trace event (the `X` complete-event form).
#[derive(Debug, Clone, Serialize)]
struct TraceEvent {
    name: String,
    /// Category.
    cat: &'static str,
    /// Phase: `X` = complete event.
    ph: &'static str,
    /// Timestamp, microseconds.
    ts: f64,
    /// Duration, microseconds.
    dur: f64,
    /// Process id (one per profile).
    pid: u32,
    /// Thread id (one lane per kernel).
    tid: u32,
}

/// Renders a kernel profile as a Chrome Trace Event Format JSON string.
///
/// Each kernel occupies its own lane (`tid`); its invocations are laid out
/// back-to-back at the kernel's mean duration. `max_events` bounds the
/// output size (events beyond it are dropped lane-by-lane, never
/// mid-lane).
///
/// # Example
///
/// ```
/// use hwsim::{profile_workload, trace, Device, ExecutionMode, WorkloadOp};
/// use nstensor::ConvGeometry;
///
/// let ops = [WorkloadOp::Conv {
///     geom: ConvGeometry::new(3, 8, 3, 1, 1, 16, 16),
///     batch: 4,
/// }];
/// let profile = profile_workload(&ops, &Device::v100(), ExecutionMode::Default, 3);
/// let json = trace::to_chrome_trace(&profile, 100);
/// assert!(json.contains("traceEvents"));
/// ```
pub fn to_chrome_trace(profile: &KernelProfile, max_events: usize) -> String {
    let mut events: Vec<TraceEvent> = Vec::new();
    let pid = 1u32;
    for (lane, record) in profile.records().iter().enumerate() {
        if record.invocations == 0 {
            continue;
        }
        let mean_dur_us = record.total_time_s * 1e6 / record.invocations as f64;
        let remaining = max_events.saturating_sub(events.len());
        if remaining == 0 {
            break;
        }
        let n = (record.invocations as usize).min(remaining);
        for i in 0..n {
            events.push(TraceEvent {
                name: record.name.clone(),
                cat: "kernel",
                ph: "X",
                ts: i as f64 * mean_dur_us,
                dur: mean_dur_us,
                pid,
                tid: lane as u32,
            });
        }
    }
    let body = serde_json::json!({
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "device": profile.device(),
            "mode": format!("{:?}", profile.mode()),
            "steps": profile.steps(),
            "total_simulated_s": profile.total_time_s(),
        }
    });
    serde_json::to_string_pretty(&body).expect("trace serialization")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::exec::ExecutionMode;
    use crate::profiler::profile_workload;
    use crate::workload::WorkloadOp;
    use nstensor::ConvGeometry;

    fn profile(steps: u64) -> KernelProfile {
        let ops = [
            WorkloadOp::Conv {
                geom: ConvGeometry::new(3, 8, 3, 1, 1, 16, 16),
                batch: 4,
            },
            WorkloadOp::Activation { elems: 1024 },
        ];
        profile_workload(&ops, &Device::v100(), ExecutionMode::Default, steps)
    }

    #[test]
    fn trace_is_valid_json_with_events() {
        let json = to_chrome_trace(&profile(2), 1000);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = parsed["traceEvents"].as_array().unwrap();
        assert!(!events.is_empty());
        for e in events {
            assert_eq!(e["ph"], "X");
            assert!(e["dur"].as_f64().unwrap() > 0.0);
        }
        assert_eq!(parsed["otherData"]["device"], "V100");
    }

    #[test]
    fn event_cap_is_respected() {
        let json = to_chrome_trace(&profile(50), 7);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(parsed["traceEvents"].as_array().unwrap().len() <= 7);
    }

    #[test]
    fn empty_profile_yields_empty_trace() {
        let p = profile_workload(&[], &Device::t4(), ExecutionMode::Deterministic, 1);
        let json = to_chrome_trace(&p, 10);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(parsed["traceEvents"].as_array().unwrap().is_empty());
    }
}
