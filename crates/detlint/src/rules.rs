//! The token-pattern determinism rules (DL001–DL005).
//!
//! The cross-statement dataflow rules (DL006–DL008) live in
//! `crate::dataflow`; this module is the single-statement layer.
//!
//! Each rule is a token-pattern heuristic over one lexed file. The engine
//! works on "statements" — token runs delimited by `;`, `{`, `}` — plus the
//! enclosing `fn` signature as extra evidence (e.g. a `-> f64` return type
//! marks a bare `.sum()` as a float reduction). This is deliberately not a
//! type checker: the rules are tuned to the hazards that matter for
//! reproducing run-to-run-identical numbers, and anything they get wrong
//! can be suppressed with an audited `detlint::allow`.

use std::collections::BTreeMap;

use crate::config::Config;
use crate::lexer::{test_regions, LexedFile, Tok, TokKind};
use crate::{Finding, RuleId};

/// Iteration methods whose order is arbitrary on hash containers.
pub(crate) const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Identifiers that accumulate, serialize, or emit — the sinks that turn
/// arbitrary iteration order into observable nondeterminism.
const SINKS: &[&str] = &[
    "collect",
    "extend",
    "push",
    "push_str",
    "sum",
    "product",
    "fold",
    "reduce",
    "write",
    "writeln",
    "write_all",
    "write_str",
    "print",
    "println",
    "eprint",
    "eprintln",
    "format",
    "serialize",
    "to_value",
    "to_string",
    "to_json",
    "json",
    "join",
];

/// Unordered parallel combinators (rayon-style).
pub(crate) const PAR_COMBINATORS: &[&str] = &[
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_chunks_mut",
    "par_bridge",
    "par_windows",
];

/// Entry point: runs every enabled rule over one lexed + parsed file.
pub fn run_rules(
    rel_path: &str,
    lexed: &LexedFile,
    parsed: &crate::parser::ParsedFile,
    config: &Config,
) -> Vec<Finding> {
    let tokens = &lexed.tokens;
    let skip_tests = !config.scan_test_code;
    if skip_tests && Config::is_test_path(rel_path) {
        return Vec::new();
    }
    let ctx = Ctx {
        rel_path,
        tokens,
        fn_sigs: fn_signatures(tokens),
        test_regions: if skip_tests {
            test_regions(tokens)
        } else {
            Vec::new()
        },
        float_vars: tracked_float_vars(tokens),
    };
    let mut findings = Vec::new();
    let enabled = |rule: RuleId| !config.rule_exempt(rule, rel_path);
    if enabled(RuleId::Dl001) {
        dl001_hash_iteration(&ctx, &mut findings);
    }
    if enabled(RuleId::Dl002) {
        dl002_ambient_entropy(&ctx, &mut findings);
    }
    if enabled(RuleId::Dl003) {
        dl003_wall_clock(&ctx, &mut findings);
    }
    if enabled(RuleId::Dl004) {
        dl004_float_reduction(&ctx, &mut findings);
    }
    if enabled(RuleId::Dl005) {
        dl005_parallel_float(&ctx, &mut findings);
    }
    crate::dataflow::run_dataflow_rules(&ctx, parsed, config, &mut findings);
    // One finding per (rule, line): a chain like `.keys().map(..).sum()` can
    // trip a rule through several tokens on the same line.
    findings.sort_by_key(|f| (f.line, f.rule));
    findings.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    findings
}

pub(crate) struct Ctx<'a> {
    pub(crate) rel_path: &'a str,
    pub(crate) tokens: &'a [Tok],
    /// Per-token index of the innermost enclosing `fn` signature range.
    pub(crate) fn_sigs: Vec<Option<(usize, usize)>>,
    pub(crate) test_regions: Vec<(u32, u32)>,
    /// Local bindings initialized with float evidence; their names carry
    /// that evidence into later statements.
    pub(crate) float_vars: std::collections::BTreeSet<String>,
}

impl Ctx<'_> {
    pub(crate) fn in_test_region(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| (s..=e).contains(&line))
    }

    pub(crate) fn emit(
        &self,
        findings: &mut Vec<Finding>,
        rule: RuleId,
        i: usize,
        message: String,
    ) {
        let line = self.tokens[i].line;
        if self.in_test_region(line) {
            return;
        }
        findings.push(Finding {
            rule,
            file: self.rel_path.to_string(),
            line,
            message,
        });
    }

    /// Token range of the statement containing index `i` (inclusive),
    /// delimited by `;`, `{`, `}` on either side.
    pub(crate) fn stmt_range(&self, i: usize) -> (usize, usize) {
        let boundary = |t: &Tok| t.is_punct(';') || t.is_punct('{') || t.is_punct('}');
        let mut s = i;
        while s > 0 && !boundary(&self.tokens[s - 1]) {
            s -= 1;
        }
        let mut e = i;
        while e + 1 < self.tokens.len() && !boundary(&self.tokens[e + 1]) {
            e += 1;
        }
        (s, e)
    }

    pub(crate) fn stmt_has_ident(&self, range: (usize, usize), names: &[&str]) -> bool {
        self.tokens[range.0..=range.1]
            .iter()
            .any(|t| t.ident().is_some_and(|s| names.contains(&s)))
    }

    /// Float evidence in a statement or its enclosing `fn` signature: an
    /// `f32`/`f64` mention, a float literal, or a binding already known to
    /// hold floats.
    pub(crate) fn float_evidence(&self, range: (usize, usize), i: usize) -> bool {
        let check = |s: usize, e: usize| {
            self.tokens[s..=e].iter().any(|t| match &t.kind {
                TokKind::Ident(id) => id == "f32" || id == "f64" || self.float_vars.contains(id),
                TokKind::Num(n) => is_float_literal(n),
                _ => false,
            })
        };
        check(range.0, range.1) || self.fn_sigs[i].is_some_and(|(s, e)| check(s, e))
    }
}

pub(crate) fn is_float_literal(n: &str) -> bool {
    if n.starts_with("0x") || n.starts_with("0b") || n.starts_with("0o") {
        return false;
    }
    n.ends_with("f32")
        || n.ends_with("f64")
        || n.contains('.')
        || (n.contains(['e', 'E']) && !n.contains(['u', 'i']))
}

/// Collects `let` bindings whose initializer statement shows float evidence
/// (an `f32`/`f64` mention, a float literal, or a previously tracked
/// binding). `let mut lane = [0f32; 64];` makes a later bare
/// `lane.iter().sum()` recognizable as a float reduction even when neither
/// that statement nor the enclosing signature names a float type.
pub(crate) fn tracked_float_vars(tokens: &[Tok]) -> std::collections::BTreeSet<String> {
    let mut tracked = std::collections::BTreeSet::new();
    let boundary = |t: &Tok| t.is_punct(';') || t.is_punct('{') || t.is_punct('}');
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let name = tokens.get(j).and_then(Tok::ident);
        let mut e = i;
        while e + 1 < tokens.len() && !boundary(&tokens[e + 1]) {
            e += 1;
        }
        if let Some(name) = name {
            let evidence = tokens[i..=e].iter().any(|t| match &t.kind {
                TokKind::Ident(id) => id == "f32" || id == "f64" || tracked.contains(id),
                TokKind::Num(n) => is_float_literal(n),
                _ => false,
            });
            if evidence {
                tracked.insert(name.to_string());
            }
        }
        i = e + 1;
    }
    tracked
}

/// Maps each token index to the signature range of its innermost enclosing
/// `fn`, so rules can consult parameter and return types.
fn fn_signatures(tokens: &[Tok]) -> Vec<Option<(usize, usize)>> {
    let mut out = vec![None; tokens.len()];
    // (brace depth at which the fn body opened, signature token range)
    let mut stack: Vec<(i32, (usize, usize))> = Vec::new();
    let mut depth = 0i32;
    let mut pending_fn: Option<usize> = None;
    // Paren/bracket nesting inside a pending signature, so the `;` in
    // `xs: [f32; 4]` doesn't end the declaration.
    let mut sig_nest = 0i32;
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("fn") {
            pending_fn = Some(i);
            sig_nest = 0;
        } else if t.is_punct('{') {
            if let Some(start) = pending_fn.take() {
                stack.push((depth, (start, i)));
            }
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            while stack.last().is_some_and(|(d, _)| *d >= depth) {
                stack.pop();
            }
        } else if pending_fn.is_some() && (t.is_punct('(') || t.is_punct('[')) {
            sig_nest += 1;
        } else if pending_fn.is_some() && (t.is_punct(')') || t.is_punct(']')) {
            sig_nest -= 1;
        } else if t.is_punct(';') && sig_nest == 0 {
            pending_fn = None; // trait method declaration without a body
        }
        out[i] = stack.last().map(|(_, r)| *r);
    }
    out
}

/// Index of the `)` matching the `(` at `open` (or end of tokens).
pub(crate) fn matching_paren(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    tokens.len() - 1
}

/// Index of the `}` matching the `{` at `open` (or end of tokens).
pub(crate) fn matching_brace(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    tokens.len() - 1
}

// ---------------------------------------------------------------------------
// DL001 — hash-container iteration feeding an order-sensitive sink
// ---------------------------------------------------------------------------

/// Finds variables bound with a `HashMap`/`HashSet` type annotation or
/// constructor, mapped to the container type name for diagnostics.
pub(crate) fn tracked_hash_vars(tokens: &[Tok]) -> BTreeMap<String, &'static str> {
    let mut tracked = BTreeMap::new();
    for (i, t) in tokens.iter().enumerate() {
        let container = match t.ident() {
            Some("HashMap") => "HashMap",
            Some("HashSet") => "HashSet",
            _ => continue,
        };
        // Walk back over a `std::collections::` path prefix.
        let mut j = i;
        while j >= 3
            && tokens[j - 1].is_punct(':')
            && tokens[j - 2].is_punct(':')
            && matches!(tokens[j - 3].kind, TokKind::Ident(_))
        {
            j -= 3;
        }
        // Skip reference/mutability noise before the path.
        let mut k = j;
        while k >= 1
            && (tokens[k - 1].is_punct('&')
                || tokens[k - 1].is_ident("mut")
                || matches!(tokens[k - 1].kind, TokKind::Lifetime))
        {
            k -= 1;
        }
        // `name: HashMap<..>` (type annotation; `::` excluded) or
        // `name = HashMap::new()` (constructor binding).
        let annotated = k >= 2 && tokens[k - 1].is_punct(':') && !tokens[k - 2].is_punct(':');
        let constructed = k >= 2 && tokens[k - 1].is_punct('=');
        let name = (annotated || constructed)
            .then(|| tokens[k - 2].ident())
            .flatten();
        if let Some(name) = name {
            tracked.insert(name.to_string(), container);
        }
    }
    tracked
}

/// A compound assignment (`+=`, `-=`, `*=`, `/=`) over floats in the range —
/// an order-sensitive accumulation sink. Integer compound assignment is
/// order-insensitive, so float evidence is required: in the range itself
/// (tracked bindings count), or a literal `f32`/`f64` in the enclosing
/// signature. Tracked *names* in the signature are deliberately ignored —
/// a parameter name reused across functions in the same file would
/// otherwise leak one function's float-ness into another's counter loop.
pub(crate) fn float_compound_assign(ctx: &Ctx, s: usize, e: usize, i: usize) -> bool {
    let has_op = ctx.tokens[s..=e]
        .windows(2)
        .any(|w| matches!(w[0].kind, TokKind::Punct('+' | '-' | '*' | '/')) && w[1].is_punct('='));
    if !has_op {
        return false;
    }
    let range_ev = ctx.tokens[s..=e].iter().any(|t| match &t.kind {
        TokKind::Ident(id) => id == "f32" || id == "f64" || ctx.float_vars.contains(id),
        TokKind::Num(n) => is_float_literal(n),
        _ => false,
    });
    let sig_ev = ctx.fn_sigs[i].is_some_and(|(ss, se)| {
        ctx.tokens[ss..=se]
            .iter()
            .any(|t| t.is_ident("f32") || t.is_ident("f64"))
    });
    range_ev || sig_ev
}

fn dl001_hash_iteration(ctx: &Ctx, findings: &mut Vec<Finding>) {
    let tracked = tracked_hash_vars(ctx.tokens);
    if tracked.is_empty() {
        return;
    }
    for (i, t) in ctx.tokens.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        let Some(&container) = tracked.get(name) else {
            continue;
        };
        let stmt = ctx.stmt_range(i);
        // `map.keys()` / `map.into_values()` style iteration.
        let method_iter = ctx.tokens.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && ctx
                .tokens
                .get(i + 2)
                .is_some_and(|t| t.ident().is_some_and(|m| ITER_METHODS.contains(&m)));
        // `for x in &map {` / `for x in map {` direct iteration.
        let for_iter = ctx.stmt_has_ident(stmt, &["for"])
            && ctx.tokens[stmt.0..i].iter().any(|t| t.is_ident("in"))
            && !ctx.tokens.get(i + 1).is_some_and(|t| t.is_punct('.'));
        if !method_iter && !for_iter {
            continue;
        }
        // A sink in the same statement, or — for loop headers — anywhere
        // in the loop body. Compound float accumulation (`total += v`)
        // counts: it has no method name to match but is just as
        // order-sensitive.
        let find_sink = |s: usize, e: usize| {
            ctx.tokens[s..=e]
                .iter()
                .find_map(|t| t.ident().filter(|m| SINKS.contains(m)))
                .or_else(|| float_compound_assign(ctx, s, e, i).then_some("+="))
        };
        let mut sink = find_sink(stmt.0, stmt.1);
        if sink.is_none()
            && ctx.tokens.get(stmt.1 + 1).is_some_and(|t| t.is_punct('{'))
            && ctx.stmt_has_ident(stmt, &["for"])
        {
            let close = matching_brace(ctx.tokens, stmt.1 + 1);
            sink = find_sink(stmt.1 + 1, close);
        }
        if let Some(sink) = sink {
            ctx.emit(
                findings,
                RuleId::Dl001,
                i,
                format!(
                    "iteration over `{name}` ({container}) feeds `{sink}`; \
                     {container} iteration order varies run to run"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// DL002 — RNG seeded from ambient entropy (OS randomness or wall time)
// ---------------------------------------------------------------------------

const SEED_CONTEXT: &[&str] = &[
    "seed",
    "from_seed",
    "seed_from_u64",
    "SeedableRng",
    "StdRng",
    "SmallRng",
    "Philox",
    "PhiloxState",
    "rng",
];

fn dl002_ambient_entropy(ctx: &Ctx, findings: &mut Vec<Finding>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        let message = match id {
            "thread_rng" if ctx.tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) => {
                "`thread_rng()` draws from OS entropy; experiments become \
                 unrepeatable"
                    .to_string()
            }
            "from_entropy" => "`from_entropy()` seeds from OS entropy instead \
                 of the experiment seed"
                .to_string(),
            "OsRng" => "`OsRng` bypasses seeded randomness".to_string(),
            "getrandom" => "`getrandom` reads OS entropy directly".to_string(),
            "random"
                if i >= 3
                    && ctx.tokens[i - 1].is_punct(':')
                    && ctx.tokens[i - 2].is_punct(':')
                    && ctx.tokens[i - 3].is_ident("rand") =>
            {
                "`rand::random` draws from a thread-local OS-seeded RNG".to_string()
            }
            "SystemTime" | "UNIX_EPOCH" if ctx.stmt_has_ident(ctx.stmt_range(i), SEED_CONTEXT) => {
                "time-derived RNG seed; wall-clock values differ every run".to_string()
            }
            _ => continue,
        };
        ctx.emit(findings, RuleId::Dl002, i, message);
    }
}

// ---------------------------------------------------------------------------
// DL003 — wall-clock reads in result-producing paths
// ---------------------------------------------------------------------------

fn dl003_wall_clock(ctx: &Ctx, findings: &mut Vec<Finding>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        if !t.is_ident("now") {
            continue;
        }
        let source = (i >= 3 && ctx.tokens[i - 1].is_punct(':') && ctx.tokens[i - 2].is_punct(':'))
            .then(|| ctx.tokens[i - 3].ident())
            .flatten();
        let Some(source @ ("Instant" | "SystemTime")) = source else {
            continue;
        };
        ctx.emit(
            findings,
            RuleId::Dl003,
            i,
            format!(
                "`{source}::now()` in a result-producing path; timings leak \
                 host load into reported numbers"
            ),
        );
    }
}

// ---------------------------------------------------------------------------
// DL004 — order-sensitive float reductions
// ---------------------------------------------------------------------------

fn dl004_float_reduction(ctx: &Ctx, findings: &mut Vec<Finding>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        let Some(method @ ("sum" | "product" | "fold")) = t.ident() else {
            continue;
        };
        // Must be a method call: `.sum(` / `.sum::<f64>(` / `.fold(`.
        if !ctx
            .tokens
            .get(i.wrapping_sub(1))
            .is_some_and(|t| t.is_punct('.'))
        {
            continue;
        }
        let after_ok = ctx
            .tokens
            .get(i + 1)
            .is_some_and(|t| t.is_punct('(') || t.is_punct(':'));
        if !after_ok {
            continue;
        }
        // Iterator `sum`/`product` take no arguments; a call with arguments
        // (`reducer.sum(&xs)`) is someone's own method, not the std
        // reduction — the sanctioned `Reducer` API looks exactly like that.
        if method != "fold" && !is_nullary_call(ctx.tokens, i + 1) {
            continue;
        }
        let stmt = ctx.stmt_range(i);
        // Parallel reductions are DL005's business.
        if ctx.stmt_has_ident(stmt, PAR_COMBINATORS) {
            continue;
        }
        if !ctx.float_evidence(stmt, i) {
            continue;
        }
        if method == "fold" && !fold_is_order_sensitive(ctx.tokens, i) {
            continue;
        }
        ctx.emit(
            findings,
            RuleId::Dl004,
            i,
            format!(
                "float `{method}` accumulates in iteration order; float \
                 addition is non-associative, so order changes the result \
                 bit pattern"
            ),
        );
    }
}

/// `true` if the method call whose name ends at `j - 1` has an empty
/// argument list, allowing for a turbofish (`sum()` / `sum::<f64>()`).
pub(crate) fn is_nullary_call(tokens: &[Tok], mut j: usize) -> bool {
    if tokens.get(j).is_some_and(|t| t.is_punct(':')) {
        // Skip `::< ... >`.
        while j < tokens.len() && !tokens[j].is_punct('<') {
            if tokens[j].is_punct('(') || tokens[j].is_punct(';') {
                return false;
            }
            j += 1;
        }
        let mut depth = 0i32;
        while j < tokens.len() {
            if tokens[j].is_punct('<') {
                depth += 1;
            } else if tokens[j].is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    tokens.get(j).is_some_and(|t| t.is_punct('('))
        && tokens.get(j + 1).is_some_and(|t| t.is_punct(')'))
}

/// A `fold` is only a hazard when its closure combines with `+`/`*`
/// (non-associative in floats). Min/max/comparison folds are
/// order-insensitive and deliberately not flagged.
pub(crate) fn fold_is_order_sensitive(tokens: &[Tok], fold_idx: usize) -> bool {
    let mut open = fold_idx + 1;
    while open < tokens.len() && !tokens[open].is_punct('(') {
        if tokens[open].is_punct(';') || tokens[open].is_punct('{') {
            return false;
        }
        open += 1;
    }
    if open >= tokens.len() {
        return false;
    }
    let close = matching_paren(tokens, open);
    (open..=close).any(|j| {
        let t = &tokens[j];
        // `*` only counts as multiplication when it follows an operand;
        // otherwise it is a deref (`|a, b| a.max(*b)` must not fire).
        let binary_position = j > open
            && (matches!(tokens[j - 1].kind, TokKind::Ident(_) | TokKind::Num(_))
                || tokens[j - 1].is_punct(')')
                || tokens[j - 1].is_punct(']'));
        (t.is_punct('+') || t.is_punct('*')) && binary_position
            || t.ident().is_some_and(|s| s == "mul_add")
    })
}

// ---------------------------------------------------------------------------
// DL005 — unordered parallel combinators with non-associative float ops
// ---------------------------------------------------------------------------

fn dl005_parallel_float(ctx: &Ctx, findings: &mut Vec<Finding>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        let Some(comb) = t.ident().filter(|s| PAR_COMBINATORS.contains(s)) else {
            continue;
        };
        let stmt = ctx.stmt_range(i);
        if !ctx.stmt_has_ident(stmt, &["sum", "product", "fold", "reduce"]) {
            continue;
        }
        if !ctx.float_evidence(stmt, i) {
            continue;
        }
        ctx.emit(
            findings,
            RuleId::Dl005,
            i,
            format!(
                "`{comb}` reduction over floats; scheduling order changes \
                 the combination tree and thus the result"
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan(src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let parsed = crate::parser::parse(&lexed.tokens);
        run_rules("src/sample.rs", &lexed, &parsed, &Config::default())
    }

    #[test]
    fn dl001_fires_on_hashmap_collect() {
        let f = scan(
            "fn f() {\n let mut agg: HashMap<String, u32> = HashMap::new();\n \
             let v: Vec<u32> = agg.into_values().collect();\n}\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::Dl001);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn dl001_ignores_btreemap_and_sinkless_iteration() {
        let f = scan(
            "fn f() {\n let m: BTreeMap<String, u32> = BTreeMap::new();\n \
             let v: Vec<u32> = m.into_values().collect();\n \
             let h: HashMap<u32, u32> = HashMap::new();\n \
             let n = h.len();\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn dl001_sees_sink_inside_for_body() {
        let f = scan(
            "fn f(out: &mut Vec<u32>) {\n let h: HashSet<u32> = HashSet::new();\n \
             for k in &h {\n out.push(*k);\n }\n}\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::Dl001);
    }

    #[test]
    fn dl001_sees_compound_float_accumulation() {
        let f = scan(
            "fn f(m: &HashMap<String, f64>) -> f64 {\n let mut total = 0.0;\n \
             for (_k, v) in m.iter() {\n total += v;\n }\n total\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RuleId::Dl001);
    }

    #[test]
    fn dl001_ignores_integer_compound_counter() {
        // The float fn reuses the param name `m` — its float-ness must not
        // leak into the integer counter loop below.
        let f = scan(
            "fn g(m: &HashMap<String, f64>) -> f64 {\n let mut total = 0.0;\n \
             for (_k, v) in m.iter() {\n total += v;\n }\n total\n}\n\
             fn f(m: &HashMap<String, u32>) -> u32 {\n let mut count = 0u32;\n \
             for _k in m.keys() {\n count += 1;\n }\n count\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3, "only the float accumulation fires");
    }

    #[test]
    fn dl002_fires_on_entropy_sources() {
        let f = scan(
            "fn f() {\n let a = rand::thread_rng();\n \
             let b = StdRng::from_entropy();\n \
             let c: u64 = rand::random();\n}\n",
        );
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|x| x.rule == RuleId::Dl002));
    }

    #[test]
    fn dl002_fires_on_time_seed() {
        let f = scan(
            "fn f() {\n let seed = SystemTime::now().duration_since(UNIX_EPOCH)\
             .unwrap().as_nanos() as u64;\n}\n",
        );
        assert!(f.iter().any(|x| x.rule == RuleId::Dl002), "{f:?}");
    }

    #[test]
    fn dl003_fires_on_instant_now() {
        let f = scan("fn f() {\n let t = std::time::Instant::now();\n}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::Dl003);
    }

    #[test]
    fn dl004_fires_on_float_sum_with_signature_evidence() {
        let f = scan(
            "fn total(&self) -> f64 {\n \
             self.records.iter().map(|r| r.time).sum()\n}\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::Dl004);
    }

    #[test]
    fn dl004_skips_integer_sum_and_max_fold() {
        let f = scan(
            "fn f(v: &[f64]) -> f64 {\n \
             let n: usize = sizes.iter().sum();\n \
             v.iter().fold(f64::MIN, |a, b| a.max(*b))\n}\n",
        );
        // The integer sum still sees `f64` in the signature — heuristic
        // accepts that; the max-fold must NOT fire.
        assert!(f.iter().all(|x| x.line != 3), "{f:?}");
    }

    #[test]
    fn dl004_fires_on_additive_fold() {
        let f = scan("fn f(v: &[f32]) -> f32 {\n v.iter().fold(0.0, |a, b| a + b)\n}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::Dl004);
    }

    #[test]
    fn dl004_ignores_non_iterator_sum_with_args() {
        let f = scan("fn f(red: &mut Reducer, xs: &[f32]) -> f32 {\n red.sum(xs)\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn dl004_tracks_float_bindings_across_statements() {
        // Neither the sum statement nor the signature names a float type;
        // the `[0f32; 64]` binding is the only evidence.
        let f = scan(
            "fn f(out: &mut Grad) {\n let mut lane = [0f32; 64];\n \
             out.d = lane.iter().sum();\n}\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::Dl004);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn dl005_fires_on_parallel_float_sum() {
        let f = scan("fn f(v: &[f64]) -> f64 {\n v.par_iter().sum()\n}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::Dl005);
    }

    #[test]
    fn test_regions_are_skipped_by_default() {
        let f = scan(
            "#[cfg(test)]\nmod tests {\n fn t() { let x = \
             std::time::Instant::now(); }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
