//! Replay debugging: reproduce a "heisenbug" caused by nondeterministic
//! execution.
//!
//! A production team sees occasional bad training runs they cannot
//! reproduce — classic implementation-noise territory. NoiseScope's
//! scheduler entropy is *pinnable*: every replica's nondeterministic
//! schedule derives from a recorded seed, so the exact run — including its
//! nondeterminism — can be replayed, bisected and attributed. This example
//! trains a fleet, "observes" its worst replica, then replays that replica
//! bit-for-bit and contrasts it with deterministic execution.
//!
//! ```text
//! cargo run --release -p ns-examples --bin replay_debugging
//! ```

use noisescope::prelude::*;
use ns_examples::{demo_settings, demo_task};

fn main() {
    let task = demo_task();
    let settings = ExperimentSettings {
        replicas: 4,
        ..demo_settings()
    };
    let device = Device::v100();
    let prepared = PreparedTask::prepare(&task);

    println!(
        "Fleet of {} IMPL-noise replicas (same seed, pinned entropy):",
        settings.replicas
    );
    let runs = run_variant(&prepared, &device, NoiseVariant::Impl, &settings);
    let mut worst = 0usize;
    for (i, r) in runs.results.iter().enumerate() {
        println!(
            "  replica {i}: acc {:.2}%  (entropy {:#018x})",
            100.0 * r.accuracy,
            settings.entropy_for(i as u32)
        );
        if r.accuracy < runs.results[worst].accuracy {
            worst = i;
        }
    }

    println!("\nReplaying the worst replica ({worst}) from its recorded entropy...");
    let replayed = run_replica(
        &prepared,
        &device,
        NoiseVariant::Impl,
        &settings,
        worst as u32,
    )
    .expect("replayed replica trains exactly as the original did");
    let identical = replayed.weights == runs.results[worst].weights
        && replayed.preds == runs.results[worst].preds;
    println!(
        "  replay bitwise identical to the original run: {identical}\n  \
         (the nondeterministic schedule itself is part of the recorded state)"
    );

    println!("\nCounterfactual: the same seed under deterministic execution:");
    let control = run_replica(
        &prepared,
        &device,
        NoiseVariant::Control,
        &settings,
        worst as u32,
    )
    .expect("deterministic counterfactual trains");
    println!(
        "  deterministic acc {:.2}% vs noisy replica's {:.2}% — the gap is pure \
         implementation noise.",
        100.0 * control.accuracy,
        100.0 * replayed.accuracy
    );
    println!(
        "\nThis is the debugging workflow deterministic tooling buys: pin, replay,\n\
         bisect — impossible when the schedule is unrecorded entropy."
    );
}
