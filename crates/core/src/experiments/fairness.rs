//! The fairness experiments: Table 3, Figure 3 and Table 5 (CelebA
//! subgroup variance).

use crate::report::render_table;
use crate::runner::{run_variant, PreparedData, PreparedTask};
use crate::settings::ExperimentSettings;
use crate::task::TaskSpec;
use crate::variant::NoiseVariant;
use hwsim::Device;
use nnet::trainer::Targets;
use nsdata::{CelebaMeta, SubgroupCounts};
use nsmetrics::{binary_rates, relative_scale, stddev};
use serde::{Deserialize, Serialize};

/// The protected subgroups of the paper's Figure 3 / Table 5.
pub const SUBGROUPS: [&str; 5] = ["All", "Male", "Female", "Young", "Old"];

/// One row of Table 5: the stddev (and scale relative to "All") of a
/// subgroup's accuracy, FPR and FNR across replicas.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubgroupRow {
    /// Subgroup name.
    pub group: String,
    /// Stddev of subgroup accuracy.
    pub std_accuracy: f64,
    /// `std_accuracy / std_accuracy(All)`.
    pub rel_accuracy: f64,
    /// Stddev of subgroup FPR.
    pub std_fpr: f64,
    /// Relative FPR scale.
    pub rel_fpr: f64,
    /// Stddev of subgroup FNR.
    pub std_fnr: f64,
    /// Relative FNR scale.
    pub rel_fnr: f64,
}

/// Table 5 for one noise variant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5 {
    /// The variant measured.
    pub variant: NoiseVariant,
    /// Rows in [`SUBGROUPS`] order.
    pub rows: Vec<SubgroupRow>,
}

/// A subgroup name outside [`SUBGROUPS`] reached the fairness masks.
///
/// Propagated like [`crate::runner::PredsKindError`]: a typo'd subgroup in
/// an experiment configuration degrades that experiment, not the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownSubgroupError {
    /// The unrecognized subgroup name.
    pub group: String,
}

impl std::fmt::Display for UnknownSubgroupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown subgroup {:?} (expected one of {SUBGROUPS:?})",
            self.group
        )
    }
}

impl std::error::Error for UnknownSubgroupError {}

fn mask_for(meta: &[CelebaMeta], group: &str) -> Result<Vec<bool>, UnknownSubgroupError> {
    let select: fn(&CelebaMeta) -> bool = match group {
        "All" => |_| true,
        "Male" => |m| m.male,
        "Female" => |m| !m.male,
        "Young" => |m| m.young,
        "Old" => |m| !m.young,
        other => {
            return Err(UnknownSubgroupError {
                group: other.to_string(),
            })
        }
    };
    Ok(meta.iter().map(select).collect())
}

/// Runs the CelebA experiment for the three measured variants on V100,
/// returning one Table 5 per variant (Fig. 3 plots the same data).
///
/// # Errors
///
/// Returns [`UnknownSubgroupError`] if a subgroup name cannot be mapped to
/// a metadata mask (impossible for the built-in [`SUBGROUPS`], but the
/// mask path is fallible so custom subgroup lists degrade gracefully).
pub fn fig3_table5(settings: &ExperimentSettings) -> Result<Vec<Table5>, UnknownSubgroupError> {
    let task = TaskSpec::celeba();
    let prepared = PreparedTask::prepare(&task);
    let meta = match &prepared.data {
        PreparedData::Celeba(c) => c.test_meta.clone(),
        PreparedData::Gaussian(_) => unreachable!("celeba task prepares celeba data"),
    };
    let labels: Vec<u8> = match &prepared.test_set().targets {
        Targets::Binary(t) => t.as_slice().iter().map(|&v| (v > 0.5) as u8).collect(),
        Targets::Classes(_) => unreachable!(),
    };
    // Masks depend only on the metadata, not the variant or replica:
    // compute them once, surfacing any unknown subgroup before training.
    let masks: Vec<Vec<bool>> = SUBGROUPS
        .iter()
        .map(|group| mask_for(&meta, group))
        .collect::<Result<_, _>>()?;
    let device = Device::v100();

    NoiseVariant::MEASURED
        .iter()
        .map(|&variant| {
            let runs = run_variant(&prepared, &device, variant, settings);
            let preds = runs
                .binary_pred_sets()
                .expect("CelebA attribute tasks predict binary labels");
            // Per subgroup, per replica: accuracy/FPR/FNR; then stddev.
            let mut per_group: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> =
                vec![(Vec::new(), Vec::new(), Vec::new()); SUBGROUPS.len()];
            for p in &preds {
                for (gi, mask) in masks.iter().enumerate() {
                    let r = binary_rates(p, &labels, mask);
                    per_group[gi].0.push(r.accuracy);
                    per_group[gi].1.push(r.fpr);
                    per_group[gi].2.push(r.fnr);
                }
            }
            let base_acc = stddev(&per_group[0].0);
            let base_fpr = stddev(&per_group[0].1);
            let base_fnr = stddev(&per_group[0].2);
            let rows = SUBGROUPS
                .iter()
                .enumerate()
                .map(|(gi, group)| {
                    let sa = stddev(&per_group[gi].0);
                    let sp = stddev(&per_group[gi].1);
                    let sn = stddev(&per_group[gi].2);
                    SubgroupRow {
                        group: group.to_string(),
                        std_accuracy: sa,
                        rel_accuracy: relative_scale(sa, base_acc),
                        std_fpr: sp,
                        rel_fpr: relative_scale(sp, base_fpr),
                        std_fnr: sn,
                        rel_fnr: relative_scale(sn, base_fnr),
                    }
                })
                .collect();
            Table5 { variant, rows }
        })
        .map(Ok)
        .collect()
}

/// Table 3: the subgroup positive/negative counts of the generated CelebA
/// stand-in's training split.
pub fn table3() -> SubgroupCounts {
    let task = TaskSpec::celeba();
    let prepared = PreparedTask::prepare(&task);
    match &prepared.data {
        PreparedData::Celeba(c) => c.train_counts(),
        PreparedData::Gaussian(_) => unreachable!(),
    }
}

/// Renders Table 3 in the paper's layout.
pub fn render_table3(c: &SubgroupCounts) -> String {
    let total = c.total() as f64;
    let pct = |n: usize| format!("{n} ({:.1}%)", 100.0 * n as f64 / total);
    render_table(
        "Table 3: data-point distribution in the CelebA stand-in",
        &["", "Male", "Female", "Young", "Old"],
        &[
            vec![
                "Positive".into(),
                pct(c.male_pos),
                pct(c.female_pos),
                pct(c.young_pos),
                pct(c.old_pos),
            ],
            vec![
                "Negative".into(),
                pct(c.male_neg),
                pct(c.female_neg),
                pct(c.young_neg),
                pct(c.old_neg),
            ],
        ],
    )
}

/// Renders one variant's Table 5.
pub fn render_table5(tables: &[Table5]) -> String {
    let mut out = String::new();
    for t in tables {
        let rows: Vec<Vec<String>> = t
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.group.clone(),
                    format!("{:.4} ({:.2}X)", r.std_accuracy, r.rel_accuracy),
                    format!("{:.4} ({:.2}X)", r.std_fpr, r.rel_fpr),
                    format!("{:.4} ({:.2}X)", r.std_fnr, r.rel_fnr),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &format!(
                "Table 5 [{}]: subgroup stddev of accuracy / FPR / FNR",
                t.variant.label()
            ),
            &["Subgroup", "STDDEV(Acc)", "STDDEV(FPR)", "STDDEV(FNR)"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_partition_the_population() {
        let meta = vec![
            CelebaMeta {
                male: true,
                young: true,
                positive: false,
            },
            CelebaMeta {
                male: false,
                young: false,
                positive: true,
            },
        ];
        let male = mask_for(&meta, "Male").expect("known subgroup");
        let female = mask_for(&meta, "Female").expect("known subgroup");
        for i in 0..meta.len() {
            assert_ne!(male[i], female[i]);
        }
        assert!(mask_for(&meta, "All")
            .expect("known subgroup")
            .iter()
            .all(|&b| b));
    }

    #[test]
    fn unknown_group_is_an_error_not_a_panic() {
        let meta = [CelebaMeta {
            male: true,
            young: true,
            positive: false,
        }];
        let err = mask_for(&meta, "Adult").expect_err("unknown subgroup");
        assert_eq!(err.group, "Adult");
        assert!(err.to_string().contains("unknown subgroup"), "{err}");
    }

    #[test]
    fn table3_counts_are_imbalanced_like_the_paper() {
        let c = table3();
        // Male positives rarest in relative terms; old positives rare.
        let male_rate = c.male_pos as f64 / (c.male_pos + c.male_neg) as f64;
        let female_rate = c.female_pos as f64 / (c.female_pos + c.female_neg) as f64;
        assert!(male_rate < female_rate / 4.0);
        let rendered = render_table3(&c);
        assert!(rendered.contains("Positive"));
        assert!(rendered.contains("%"));
    }
}
