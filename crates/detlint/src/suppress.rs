//! Parsing and matching of `detlint::allow` suppression comments.
//!
//! A suppression is written as a comment:
//!
//! ```text
//! // detlint::allow(DL004, reason = "batch order is fixed upstream")
//! ```
//!
//! A trailing comment suppresses findings on its own line; a standalone
//! comment suppresses findings on the next line that has code. A reason
//! is mandatory — an allow without one (or naming an unknown rule) is
//! itself a gate-failing problem, so suppressions stay auditable.

use crate::lexer::{Comment, Tok};
use crate::RuleId;

/// One parsed `detlint::allow` annotation.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line of the comment itself.
    pub line: u32,
    /// Source line whose findings it suppresses.
    pub covers: u32,
    /// The named rule, or `Err(raw_text)` if unknown.
    pub rule: Result<RuleId, String>,
    /// The mandatory reason string (`None` if missing).
    pub reason: Option<String>,
}

/// Extracts all suppressions from a file's comments.
///
/// `tokens` is used to resolve which line a standalone comment covers.
pub fn parse_suppressions(comments: &[Comment], tokens: &[Tok]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        // Doc comments (`///` → text starting with `/`, `//!` → `!`) are
        // prose; only plain comments carry annotations, and only with the
        // full call form so mentions of the feature don't parse.
        if c.text.starts_with('/') || c.text.starts_with('!') {
            continue;
        }
        let Some(at) = c.text.find("detlint::allow(") else {
            continue;
        };
        let rest = &c.text[at + "detlint::allow".len()..];
        let (rule_raw, reason) = parse_args(rest);
        let covers = if c.trailing {
            c.line
        } else {
            tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > c.line)
                .unwrap_or(c.line + 1)
        };
        let rule = RuleId::parse(&rule_raw).ok_or(rule_raw);
        out.push(Suppression {
            line: c.line,
            covers,
            rule,
            reason,
        });
    }
    out
}

/// Parses `(<rule>[, reason = "<text>"])` after the `allow` keyword.
fn parse_args(rest: &str) -> (String, Option<String>) {
    let mut chars = rest.chars().peekable();
    skip_ws(&mut chars);
    if chars.next() != Some('(') {
        return (String::new(), None);
    }
    skip_ws(&mut chars);
    let mut rule = String::new();
    while let Some(&c) = chars.peek() {
        if c.is_alphanumeric() || c == '_' {
            rule.push(c);
            chars.next();
        } else {
            break;
        }
    }
    skip_ws(&mut chars);
    if chars.peek() != Some(&',') {
        return (rule, None);
    }
    chars.next();
    skip_ws(&mut chars);
    let keyword: String =
        std::iter::from_fn(|| chars.next_if(|c| c.is_alphanumeric() || *c == '_')).collect();
    skip_ws(&mut chars);
    if keyword != "reason" || chars.next() != Some('=') {
        return (rule, None);
    }
    skip_ws(&mut chars);
    if chars.next() != Some('"') {
        return (rule, None);
    }
    let mut reason = String::new();
    let mut escaped = false;
    for c in chars {
        if escaped {
            reason.push(c);
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            let trimmed = reason.trim();
            return (rule, (!trimmed.is_empty()).then(|| trimmed.to_string()));
        } else {
            reason.push(c);
        }
    }
    // Unterminated reason string: treat as missing.
    (rule, None)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.next_if(|c| c.is_whitespace()).is_some() {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_covers_same_line() {
        let lexed = lex("let t = x.sum(); // detlint::allow(DL004, reason = \"len <= 4\")\n");
        let sups = parse_suppressions(&lexed.comments, &lexed.tokens);
        assert_eq!(sups.len(), 1);
        assert_eq!(sups[0].covers, 1);
        assert_eq!(sups[0].rule, Ok(RuleId::Dl004));
        assert_eq!(sups[0].reason.as_deref(), Some("len <= 4"));
    }

    #[test]
    fn standalone_covers_next_code_line() {
        let src = "\
// detlint::allow(DL003, reason = \"diagnostic only\")
//
// another comment in between
let t = std::time::Instant::now();
";
        let lexed = lex(src);
        let sups = parse_suppressions(&lexed.comments, &lexed.tokens);
        assert_eq!(sups.len(), 1);
        assert_eq!(sups[0].covers, 4);
    }

    #[test]
    fn missing_reason_and_unknown_rule_are_reported() {
        let lexed = lex(
            "// detlint::allow(DL001)\nlet a = 1;\n// detlint::allow(DL042, reason = \"x\")\nlet b = 2;\n",
        );
        let sups = parse_suppressions(&lexed.comments, &lexed.tokens);
        assert_eq!(sups.len(), 2);
        assert!(sups[0].reason.is_none());
        assert_eq!(sups[1].rule, Err("DL042".to_string()));
    }

    #[test]
    fn empty_reason_counts_as_missing() {
        let lexed = lex("// detlint::allow(DL002, reason = \"  \")\nlet x = 1;\n");
        let sups = parse_suppressions(&lexed.comments, &lexed.tokens);
        assert!(sups[0].reason.is_none());
    }
}
