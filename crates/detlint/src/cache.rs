//! Incremental scan cache keyed by file content hash.
//!
//! The CI gate rescans the whole workspace on every run; as the tree
//! grows, so does the wall-clock cost. Per-file scan results only depend
//! on the file's bytes, its workspace-relative path, and the run
//! configuration, so they can be reused verbatim when none of those
//! changed. The cache is a single JSON document (default
//! `target/detlint-cache.json`) holding, per file, an FNV-1a 64 content
//! hash and the file's serialized [`ScanReport`]; a cache-wide
//! fingerprint covers the config and [`ANALYSIS_VERSION`], so a rule
//! change or config edit invalidates everything at once.
//!
//! A warm run must be **bit-identical** to a cold run: cached per-file
//! reports are replayed through the same merge/sort pipeline as fresh
//! ones, and cache statistics are reported on stderr only, never in the
//! report itself.

use std::collections::BTreeMap;
use std::path::Path;

use serde_json::Value;

use crate::config::Config;
use crate::{Finding, Problem, RuleId, ScanReport};

/// Bump when rule behavior changes so stale caches self-invalidate even
/// if the config text is unchanged.
pub const ANALYSIS_VERSION: u32 = 2;

/// FNV-1a 64-bit — tiny, dependency-free, and stable across platforms.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One fingerprint over everything that can change scan results besides
/// the file bytes themselves.
pub fn config_fingerprint(config: &Config) -> u64 {
    fnv1a64(format!("v{ANALYSIS_VERSION}:{config:?}").as_bytes())
}

/// How much of the run was served from cache.
#[derive(Debug, Default, Clone, Copy)]
pub struct CacheStats {
    /// Files whose cached report was reused.
    pub hits: usize,
    /// Files that were (re)analyzed.
    pub misses: usize,
}

impl CacheStats {
    /// Total files considered.
    pub fn total(&self) -> usize {
        self.hits + self.misses
    }
}

/// The on-disk cache: config fingerprint plus per-file entries.
#[derive(Debug, Default)]
pub struct Cache {
    fingerprint: u64,
    /// rel path → (content hash, serialized per-file report).
    files: BTreeMap<String, (u64, Value)>,
}

impl Cache {
    /// Loads the cache, returning an empty one on any mismatch or error —
    /// a broken cache must degrade to a cold run, never fail the lint.
    pub fn load(path: &Path, config: &Config) -> Cache {
        let fingerprint = config_fingerprint(config);
        let fresh = Cache {
            fingerprint,
            files: BTreeMap::new(),
        };
        let Ok(text) = std::fs::read_to_string(path) else {
            return fresh;
        };
        let Ok(doc) = serde_json::from_str::<Value>(&text) else {
            return fresh;
        };
        if doc.get("analysis_version").and_then(Value::as_u64) != Some(u64::from(ANALYSIS_VERSION))
            || doc.get("config").and_then(Value::as_str) != Some(&format!("{fingerprint:016x}"))
        {
            return fresh;
        }
        let mut files = BTreeMap::new();
        if let Some(map) = doc.get("files").and_then(Value::as_object) {
            for (rel, entry) in map {
                let Some(hash) = entry
                    .get("hash")
                    .and_then(Value::as_str)
                    .and_then(|h| u64::from_str_radix(h, 16).ok())
                else {
                    continue;
                };
                let Some(report) = entry.get("report") else {
                    continue;
                };
                files.insert(rel.clone(), (hash, report.clone()));
            }
        }
        Cache { fingerprint, files }
    }

    /// Saves atomically (tmp + rename). Best-effort: a read-only target
    /// directory must not fail the lint, so errors are swallowed.
    pub fn save(&self, path: &Path) {
        let mut files = BTreeMap::new();
        for (rel, (hash, report)) in &self.files {
            let mut entry = BTreeMap::new();
            entry.insert("hash".to_string(), Value::Str(format!("{hash:016x}")));
            entry.insert("report".to_string(), report.clone());
            files.insert(rel.clone(), Value::Obj(entry));
        }
        let doc = serde_json::json!({
            "analysis_version": ANALYSIS_VERSION,
            "config": format!("{:016x}", self.fingerprint),
            "files": Value::Obj(files),
        });
        let Ok(text) = serde_json::to_string_pretty(&doc) else {
            return;
        };
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let tmp = path.with_extension("json.tmp");
        if std::fs::write(&tmp, text).is_ok() {
            let _ = std::fs::rename(&tmp, path);
        }
    }
}

/// [`crate::scan_workspace`] with an incremental cache. Produces the
/// exact report a cold scan would, plus hit/miss statistics; when
/// `cache_path` is given the refreshed cache is written back.
pub fn scan_workspace_cached(
    root: &Path,
    config: &Config,
    cache_path: Option<&Path>,
) -> std::io::Result<(ScanReport, CacheStats)> {
    let mut cache = match cache_path {
        Some(p) => Cache::load(p, config),
        None => Cache {
            fingerprint: config_fingerprint(config),
            files: BTreeMap::new(),
        },
    };
    let files = crate::workspace_files(root, config)?;
    let mut report = ScanReport::default();
    let mut stats = CacheStats::default();
    let mut next_files = BTreeMap::new();
    for rel in &files {
        let source = std::fs::read_to_string(root.join(rel))?;
        let hash = fnv1a64(source.as_bytes());
        let cached = cache
            .files
            .get(rel)
            .filter(|(h, _)| *h == hash)
            .and_then(|(_, v)| report_from_value(v));
        let file_report = match cached {
            Some(r) => {
                stats.hits += 1;
                r
            }
            None => {
                stats.misses += 1;
                crate::scan_file(rel, &source, config)
            }
        };
        next_files.insert(rel.clone(), (hash, report_to_value(&file_report)));
        report.merge_file(file_report);
    }
    report.sort();
    cache.files = next_files;
    if let Some(p) = cache_path {
        cache.save(p);
    }
    Ok((report, stats))
}

fn finding_to_value(f: &Finding) -> Value {
    serde_json::json!({
        "rule": f.rule.as_str(),
        "file": f.file,
        "line": f.line,
        "message": f.message,
    })
}

fn finding_from_value(v: &Value) -> Option<Finding> {
    Some(Finding {
        rule: RuleId::parse(v.get("rule")?.as_str()?)?,
        file: v.get("file")?.as_str()?.to_string(),
        line: u32::try_from(v.get("line")?.as_u64()?).ok()?,
        message: v.get("message")?.as_str()?.to_string(),
    })
}

/// Serializes one file's report for the cache.
fn report_to_value(r: &ScanReport) -> Value {
    serde_json::json!({
        "findings": r.findings.iter().map(finding_to_value).collect::<Vec<_>>(),
        "suppressed": r
            .suppressed
            .iter()
            .map(|(f, reason)| {
                let mut v = finding_to_value(f);
                if let Value::Obj(m) = &mut v {
                    m.insert("reason".to_string(), Value::Str(reason.clone()));
                }
                v
            })
            .collect::<Vec<_>>(),
        "problems": r
            .problems
            .iter()
            .map(|p| {
                serde_json::json!({
                    "file": p.file,
                    "line": p.line,
                    "message": p.message,
                })
            })
            .collect::<Vec<_>>(),
        "unused_allows": r
            .unused_allows
            .iter()
            .map(|(file, line, rule)| {
                serde_json::json!({
                    "file": file,
                    "line": line,
                    "rule": rule.as_str(),
                })
            })
            .collect::<Vec<_>>(),
    })
}

/// Decodes one file's cached report; `None` on any shape mismatch, which
/// the caller treats as a cache miss.
fn report_from_value(v: &Value) -> Option<ScanReport> {
    let mut r = ScanReport {
        files_scanned: 1,
        ..ScanReport::default()
    };
    for f in v.get("findings")?.as_array()? {
        r.findings.push(finding_from_value(f)?);
    }
    for f in v.get("suppressed")?.as_array()? {
        let reason = f.get("reason")?.as_str()?.to_string();
        r.suppressed.push((finding_from_value(f)?, reason));
    }
    for p in v.get("problems")?.as_array()? {
        r.problems.push(Problem {
            file: p.get("file")?.as_str()?.to_string(),
            line: u32::try_from(p.get("line")?.as_u64()?).ok()?,
            message: p.get("message")?.as_str()?.to_string(),
        });
    }
    for u in v.get("unused_allows")?.as_array()? {
        r.unused_allows.push((
            u.get("file")?.as_str()?.to_string(),
            u32::try_from(u.get("line")?.as_u64()?).ok()?,
            RuleId::parse(u.get("rule")?.as_str()?)?,
        ));
    }
    Some(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn per_file_report_round_trips() {
        let src = "fn f(xs: &[f32]) -> f32 {\n xs.iter().sum()\n}\n\
                   // detlint::allow(DL001, reason = \"demo\")\nfn g() {}\n";
        let report = crate::scan_file("src/x.rs", src, &Config::default());
        let decoded = report_from_value(&report_to_value(&report)).expect("round trip");
        assert_eq!(decoded.findings, report.findings);
        assert_eq!(decoded.suppressed, report.suppressed);
        assert_eq!(decoded.problems, report.problems);
        assert_eq!(decoded.unused_allows, report.unused_allows);
    }

    #[test]
    fn warm_run_is_bit_identical_and_all_hits() {
        let dir = std::env::temp_dir().join(format!("detlint-cache-test-{}", std::process::id()));
        let src_dir = dir.join("src");
        std::fs::create_dir_all(&src_dir).unwrap();
        std::fs::write(
            src_dir.join("lib.rs"),
            "pub fn f(xs: &[f32]) -> f32 {\n    xs.iter().sum()\n}\n",
        )
        .unwrap();
        std::fs::write(src_dir.join("ok.rs"), "pub fn g() -> u32 { 7 }\n").unwrap();
        let config = Config::default();
        let cache_path = dir.join("cache.json");
        let (cold, cold_stats) = scan_workspace_cached(&dir, &config, Some(&cache_path)).unwrap();
        assert_eq!(cold_stats.hits, 0);
        assert_eq!(cold_stats.misses, 2);
        let (warm, warm_stats) = scan_workspace_cached(&dir, &config, Some(&cache_path)).unwrap();
        assert_eq!(warm_stats.misses, 0, "warm run must re-analyze nothing");
        assert_eq!(warm_stats.hits, 2);
        let render = |r: &ScanReport| {
            (
                crate::report::human(r),
                serde_json::to_string(&crate::report::json(r)).unwrap(),
            )
        };
        assert_eq!(render(&cold), render(&warm), "warm must be bit-identical");
        // Touching a file re-analyzes exactly that file.
        std::fs::write(src_dir.join("ok.rs"), "pub fn g() -> u32 { 8 }\n").unwrap();
        let (_, touched) = scan_workspace_cached(&dir, &config, Some(&cache_path)).unwrap();
        assert_eq!(touched.misses, 1);
        assert_eq!(touched.hits, 1);
        // A config change invalidates the whole cache.
        let mut cfg2 = config.clone();
        cfg2.registered_env.push("NS_FAKE".to_string());
        let (_, invalidated) = scan_workspace_cached(&dir, &cfg2, Some(&cache_path)).unwrap();
        assert_eq!(invalidated.hits, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
